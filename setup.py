"""Legacy setup shim: enables `pip install -e . --no-use-pep517` in
offline environments that lack the `wheel` package (PEP 660 editable
installs require it)."""

from setuptools import setup

setup()
