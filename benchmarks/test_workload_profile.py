"""Extension bench — engine-benchmarking workload profile fidelity.

Not a paper table/figure: §I motivates synthetic graphs as engine
benchmark instances; this bench checks the premise by running one
Zipf-skewed query workload on the private graph and on the VRDAG twin
and comparing the per-class mean result cardinalities.  A faithful
twin keeps each class's cardinality within a small factor.
"""

import numpy as np
import pytest

from repro.eval import experiments as E

from benchmarks.conftest import BENCH_EPOCHS, BENCH_SCALES, format_table, record


@pytest.mark.parametrize("dataset", ["email", "gdelt"])
def test_workload_profile(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: E.run_workload_profile(
            dataset, scale=BENCH_SCALES[dataset], seed=0, epochs=BENCH_EPOCHS
        ),
        rounds=1,
        iterations=1,
    )
    classes = sorted(result["private"])
    rows = []
    for cls in classes:
        orig = result["private"][cls]
        syn = result["synthetic"].get(cls, float("nan"))
        ratio = syn / orig if orig else float("nan")
        rows.append([cls, f"{orig:.2f}", f"{syn:.2f}", f"{ratio:.2f}"])
    record(
        f"workload_profile_{dataset}",
        format_table(
            f"Extension — workload result-cardinality profile ({dataset})",
            ["query class", "private", "synthetic", "ratio"],
            rows,
        ),
    )
    # point-lookup and traversal classes must stay within a small factor
    for cls in ("out_neighbors", "two_hop"):
        orig = result["private"].get(cls)
        syn = result["synthetic"].get(cls)
        if orig and syn:
            assert 0.2 < syn / orig < 5.0