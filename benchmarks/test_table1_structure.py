"""Table I — structure generation quality.

Eight network-property discrepancies for every generator on every
dataset twin.  The paper's headline: VRDAG and the temporal-walk
methods dominate the static baselines; VRDAG leads most
degree-distribution and PLE columns.  Dymond runs only on Email (its
motif storage cannot hold the larger datasets — same as the paper).
"""

import pytest

from repro.eval import experiments as E

from benchmarks.conftest import BENCH_EPOCHS, BENCH_SCALES, format_table, record

METRICS = [
    "in_deg_dist", "out_deg_dist", "clus_dist", "in_ple",
    "out_ple", "wedge_count", "nc", "lcc",
]

METHODS_SMALL = ["GRAN", "GenCAT", "TagGen", "Dymond", "TGGAN", "TIGGER", "VRDAG"]
METHODS_LARGE_ATTRIBUTED = ["TagGen", "TGGAN", "TIGGER", "VRDAG"]  # Brain/GDELT rows

DATASET_METHODS = {
    "email": METHODS_SMALL,
    "bitcoin": [m for m in METHODS_SMALL if m != "Dymond"],
    "wiki": [m for m in METHODS_SMALL if m != "Dymond"],
    "guarantee": [m for m in METHODS_SMALL if m != "Dymond"],
    "brain": METHODS_LARGE_ATTRIBUTED,
    "gdelt": METHODS_LARGE_ATTRIBUTED,
}


@pytest.mark.parametrize("dataset", list(DATASET_METHODS))
def test_table1(benchmark, dataset):
    def run():
        return E.run_table1(
            dataset,
            methods=DATASET_METHODS[dataset],
            scale=BENCH_SCALES[dataset],
            seed=0,
            epochs=BENCH_EPOCHS,
        )

    rows_by_method = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [method] + [f"{metrics[m]:.4f}" for m in METRICS]
        for method, metrics in rows_by_method.items()
    ]
    record(
        f"table1_{dataset}",
        format_table(
            f"Table I block — {dataset}", ["method"] + METRICS, rows
        ),
    )
    assert "VRDAG" in rows_by_method
