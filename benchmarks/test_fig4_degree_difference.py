"""Fig. 4 — temporal structure difference in degree.

Per-timestep Eq. 20 degree-difference series for Original / VRDAG /
TIGGER on the small/medium/large dataset trio.  Paper shape: VRDAG's
series hugs the original's more closely than TIGGER's.
"""

import numpy as np
import pytest

from repro.eval import experiments as E
from repro.eval.plotting import series_chart
from repro.metrics.difference import difference_alignment_error

from benchmarks.conftest import BENCH_EPOCHS, BENCH_SCALES, format_table, record

DATASETS = ["email", "wiki", "gdelt"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig4(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: E.run_difference_figure(
            dataset, "degree", kind="structure",
            scale=BENCH_SCALES[dataset], seed=0, epochs=BENCH_EPOCHS,
        ),
        rounds=1,
        iterations=1,
    )
    steps = len(result["Original"])
    rows = [
        [t] + [f"{result[k][t]:.4f}" for k in ("Original", "VRDAG", "TIGGER")]
        for t in range(steps)
    ]
    err_v = difference_alignment_error(result["Original"], result["VRDAG"])
    err_t = difference_alignment_error(result["Original"], result["TIGGER"])
    rows.append(["align_err", "-", f"{err_v:.4f}", f"{err_t:.4f}"])
    record(
        f"fig4_{dataset}",
        series_chart({k: v for k, v in result.items()})
        + "\n\n"
        + format_table(
            f"Fig. 4 — degree difference vs timestep ({dataset})",
            ["t", "Original", "VRDAG", "TIGGER"],
            rows,
        ),
    )
    assert np.all(np.isfinite(result["VRDAG"]))
