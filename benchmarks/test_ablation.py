"""Appendix ablation — the design choices DESIGN.md calls out.

Variants: full model, uni-directional encoder (no bi-flow), K=1
mixture (independent Bernoulli edges), MSE attribute loss (no SCE),
white (uncorrelated) generation noise, and KL-annealing warmup.
The paper's appendix reports the full model winning on most metrics;
here we regenerate the comparison rows.  The ``attr_diff_err`` column
is the mean gap to the original Fig. 7 difference series — the metric
the white-noise ablation degrades.
"""

from repro.eval import experiments as E

from benchmarks.conftest import BENCH_EPOCHS, BENCH_SCALES, format_table, record

METRICS = [
    "in_deg_dist", "out_deg_dist", "clus_dist", "wedge_count",
    "attr_jsd", "attr_diff_err",
]


def test_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: E.run_ablation(
            "email", scale=BENCH_SCALES["email"], seed=0, epochs=BENCH_EPOCHS
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [variant] + [f"{metrics[m]:.4f}" for m in METRICS]
        for variant, metrics in result.items()
    ]
    record(
        "ablation_email",
        format_table(
            "Appendix ablation — VRDAG variants (email)",
            ["variant"] + METRICS,
            rows,
        ),
    )
    assert set(result) == {
        "full", "uni_flow", "K1", "mse_attr", "white_noise", "kl_warmup",
    }
