"""Fig. 6 — temporal structure difference in coreness."""

import numpy as np
import pytest

from repro.eval import experiments as E
from repro.eval.plotting import series_chart
from repro.metrics.difference import difference_alignment_error

from benchmarks.conftest import BENCH_EPOCHS, BENCH_SCALES, format_table, record


@pytest.mark.parametrize("dataset", ["email", "wiki", "gdelt"])
def test_fig6(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: E.run_difference_figure(
            dataset, "coreness", kind="structure",
            scale=BENCH_SCALES[dataset], seed=0, epochs=BENCH_EPOCHS,
        ),
        rounds=1,
        iterations=1,
    )
    steps = len(result["Original"])
    rows = [
        [t] + [f"{result[k][t]:.4f}" for k in ("Original", "VRDAG", "TIGGER")]
        for t in range(steps)
    ]
    err_v = difference_alignment_error(result["Original"], result["VRDAG"])
    err_t = difference_alignment_error(result["Original"], result["TIGGER"])
    rows.append(["align_err", "-", f"{err_v:.4f}", f"{err_t:.4f}"])
    record(
        f"fig6_{dataset}",
        series_chart({k: v for k, v in result.items()})
        + "\n\n"
        + format_table(
            f"Fig. 6 — coreness difference vs timestep ({dataset})",
            ["t", "Original", "VRDAG", "TIGGER"],
            rows,
        ),
    )
    assert np.all(np.isfinite(result["VRDAG"]))
