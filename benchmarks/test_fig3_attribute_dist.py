"""Fig. 3 — attribute distribution fidelity (JSD and EMD).

VRDAG vs GenCAT vs the Normal estimator on all six dataset twins,
plus the §V related-work static attributed baselines (AGM, ANC) as
extra reference rows.  Paper shape: VRDAG achieves the lowest
divergences; the static methods cannot track the evolving attribute
distributions.
"""

import pytest

from repro.eval import experiments as E

from benchmarks.conftest import BENCH_EPOCHS, BENCH_SCALES, format_table, record

DATASETS = ["email", "bitcoin", "wiki", "guarantee", "brain", "gdelt"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig3(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: E.run_fig3(
            dataset, scale=BENCH_SCALES[dataset], seed=0, epochs=BENCH_EPOCHS,
            include_related_work=True,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [m, f"{result[m]['jsd']:.4f}", f"{result[m]['emd']:.4f}"]
        for m in ("VRDAG", "GenCAT", "Normal", "AGM", "ANC")
    ]
    record(
        f"fig3_{dataset}",
        format_table(
            f"Fig. 3 — attribute distribution ({dataset})",
            ["method", "JSD", "EMD"],
            rows,
        ),
    )
    for m in ("VRDAG", "GenCAT", "Normal"):
        assert result[m]["jsd"] >= 0.0
