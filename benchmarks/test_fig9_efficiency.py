"""Fig. 9 — efficiency evaluation.

(a,b): training/testing wall-clock per method on each dataset twin.
(c,d): running-time growth against the number of timesteps on Bitcoin.

Paper shape to reproduce: in the *testing* (generation) stage VRDAG is
fastest — orders of magnitude below the walk-based methods, whose
sample-discriminate-merge loops dominate; VRDAG's generation time also
grows far more slowly with the number of timesteps.
"""

import pytest

from repro.eval import experiments as E

from benchmarks.conftest import BENCH_SCALES, format_table, record

METHODS = ["VRDAG", "TIGGER", "TGGAN", "TagGen"]
DATASETS = ["email", "bitcoin", "wiki", "guarantee", "brain", "gdelt"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig9_ab_times(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: E.run_fig9_times(
            dataset, methods=METHODS, scale=BENCH_SCALES[dataset],
            seed=0, epochs=8,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [m, f"{result[m]['train']:.2f}", f"{result[m]['test']:.3f}"]
        for m in METHODS
    ]
    record(
        f"fig9ab_{dataset}",
        format_table(
            f"Fig. 9(a,b) — train/test time seconds ({dataset})",
            ["method", "train_s", "test_s"],
            rows,
        ),
    )
    # headline reproduction: VRDAG generates faster than TagGen (the
    # paper's 4-orders-of-magnitude comparison) everywhere, and faster
    # than every walk-based method on the dense datasets.  On the very
    # sparse twins (bitcoin/wiki/guarantee at ~100 nodes) M/T is tiny,
    # so walk costs — which scale with M — can dip below VRDAG's
    # O(T·N²) one-shot decoding; the paper's regime is M ≫ N where the
    # ordering is strict (see EXPERIMENTS.md).
    assert result["VRDAG"]["test"] < result["TagGen"]["test"]
    if dataset in ("email", "brain", "gdelt"):
        for walker in ("TIGGER", "TGGAN", "TagGen"):
            assert result["VRDAG"]["test"] < result[walker]["test"]


def test_fig9_cd_timestep_sweep(benchmark):
    timesteps = (5, 15, 25, 35)
    result = benchmark.pedantic(
        lambda: E.run_fig9_timestep_sweep(
            "bitcoin", timesteps=timesteps, methods=METHODS,
            scale=BENCH_SCALES["bitcoin"], seed=0, epochs=6,
        ),
        rounds=1,
        iterations=1,
    )
    for stage in ("train", "test"):
        rows = [
            [m] + [f"{result[m][t][stage]:.3f}" for t in timesteps]
            for m in METHODS
        ]
        record(
            f"fig9{'c' if stage == 'train' else 'd'}_bitcoin",
            format_table(
                f"Fig. 9({'c' if stage == 'train' else 'd'}) — "
                f"{stage} time vs timesteps (Bitcoin)",
                ["method"] + [f"T={t}" for t in timesteps],
                rows,
            ),
        )
    # VRDAG generation time grows slowly: T=35 no more than ~8x T=5,
    # while TagGen scales with the number of sampled walks (≈ linear in T)
    v = result["VRDAG"]
    assert v[35]["test"] < 20 * max(v[5]["test"], 1e-3)
    assert result["VRDAG"][35]["test"] < result["TagGen"][35]["test"]
