"""Table II — MAE across Spearman correlation coefficients of attributes.

Paper shape: VRDAG ≪ GenCAT < Normal on both Email and Guarantee (the
two multi-attribute small datasets); VRDAG preserves cross-attribute
correlation structure that the per-dimension-independent baselines
destroy.
"""

import pytest

from repro.eval import experiments as E

from benchmarks.conftest import BENCH_EPOCHS, BENCH_SCALES, format_table, record


@pytest.mark.parametrize("dataset", ["email", "guarantee"])
def test_table2(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: E.run_table2(
            dataset, scale=BENCH_SCALES[dataset], seed=0, epochs=BENCH_EPOCHS
        ),
        rounds=1,
        iterations=1,
    )
    rows = [[m, f"{v:.4f}"] for m, v in result.items()]
    record(
        f"table2_{dataset}",
        format_table(
            f"Table II — Spearman correlation MAE ({dataset})",
            ["method", "corr_mae"],
            rows,
        ),
    )
    # reproduction shape: the learned dynamic model preserves
    # correlations better than the independent-attribute baselines
    assert result["VRDAG"] < result["Normal"]
