"""Table IV — generation-time scalability against #temporal edges (GDELT).

Paper shape: VRDAG's generation time is 1–4 orders of magnitude below
the walk-based methods at every sweep point, and nearly flat in the
edge count (one-shot decoding is O(T·N²d), independent of M).
"""

from repro.eval import experiments as E

from benchmarks.conftest import format_table, record

EDGE_COUNTS = (500, 2000, 6000)
METHODS = ["TagGen", "TGGAN", "TIGGER", "VRDAG"]


def test_table4_generation_scalability(benchmark):
    result = benchmark.pedantic(
        lambda: E.run_scalability_sweep(
            edge_counts=EDGE_COUNTS, methods=METHODS, dataset="gdelt",
            scale=0.04, seed=0, epochs=6,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [m] + [f"{result[m][c]['test']:.3f}" for c in EDGE_COUNTS]
        for m in METHODS
    ]
    record(
        "table4_scalability_gen",
        format_table(
            "Table IV — generation seconds vs #temporal edges (GDELT twin)",
            ["method"] + [f"{c}" for c in EDGE_COUNTS],
            rows,
        ),
    )
    # headline: VRDAG generates faster than every walk method at the
    # largest sweep point
    hi = EDGE_COUNTS[-1]
    for walker in ("TagGen", "TGGAN", "TIGGER"):
        assert result["VRDAG"][hi]["test"] < result[walker][hi]["test"]
