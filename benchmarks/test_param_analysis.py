"""Appendix A-F — parameter analysis (d_z, d_h, K sweeps).

Regenerates the quality/capacity trade-off rows of the paper's
parameter study on the Email twin.
"""

from repro.eval import experiments as E

from benchmarks.conftest import BENCH_SCALES, format_table, record

COLUMNS = ["in_deg_dist", "attr_jsd", "params", "train_s"]


def test_parameter_analysis(benchmark):
    result = benchmark.pedantic(
        lambda: E.run_parameter_analysis(
            "email", scale=BENCH_SCALES["email"], seed=0, epochs=10
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [setting] + [f"{metrics[c]:.4f}" for c in COLUMNS]
        for setting, metrics in result.items()
    ]
    record(
        "param_analysis_email",
        format_table(
            "Appendix A-F — parameter analysis (email)",
            ["setting"] + COLUMNS,
            rows,
        ),
    )
    assert len(result) == 9
