"""Extension bench — quantitative leakage audit of synthetic releases.

Not a paper table/figure: the paper *asserts* that generated graphs
anonymize node entities and link relationships (§I motivation 3); this
bench measures it.  An identity copy of the private graph is the
leak-everything reference (edge overlap 1.0, attribute rows replayed,
every degree fingerprint re-identifiable); a healthy generator sits at
chance-level edge overlap and non-trivial attribute NN distance.
"""

import numpy as np
import pytest

from repro.eval import experiments as E

from benchmarks.conftest import BENCH_EPOCHS, BENCH_SCALES, format_table, record

METRICS = ["edge_overlap", "chance_overlap", "attr_nn_distance", "degree_fp_overlap"]


@pytest.mark.parametrize("dataset", ["email", "guarantee"])
def test_privacy_audit(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: E.run_privacy_audit(
            dataset, scale=BENCH_SCALES[dataset], seed=0, epochs=BENCH_EPOCHS
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [name] + [f"{metrics[m]:.4f}" for m in METRICS]
        for name, metrics in result.items()
    ]
    record(
        f"privacy_audit_{dataset}",
        format_table(
            f"Extension — release leakage audit ({dataset})",
            ["release"] + METRICS,
            rows,
        ),
    )
    identity = result["IdentityCopy"]
    vrdag = result["VRDAG"]
    assert identity["edge_overlap"] == 1.0
    assert identity["degree_fp_overlap"] == 1.0
    # the generator must leak far less than the identity release
    assert vrdag["edge_overlap"] < 0.5
    assert vrdag["attr_nn_distance"] > identity["attr_nn_distance"]
