"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure at reduced scale and
prints the paper-style rows (also appended to ``benchmarks/results/``).
All benchmarks run with ``rounds=1`` — each experiment trains models and
is itself the measurement.

Scales are chosen per dataset so the node count lands near 100 (the
paper uses 1.9k–7k nodes on native code; pure Python needs ~20x less).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: per-dataset scale factors giving ~75–110 nodes
BENCH_SCALES = {
    "email": 0.05,
    "bitcoin": 0.025,
    "wiki": 0.013,
    "guarantee": 0.018,
    "brain": 0.02,
    "gdelt": 0.02,
}

#: training epochs for VRDAG inside benches
BENCH_EPOCHS = 20


@pytest.fixture(scope="session", autouse=True)
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.txt", "w") as fh:
        fh.write(text + "\n")


def format_table(title: str, header: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(str(r[i])) for r in [header] + rows) for i in range(len(header))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
