"""Table III — training-time scalability against #temporal edges (GDELT).

The paper sweeps 1k→500k temporal edges on native code; the twin sweeps
a geometric range at pure-Python scale.  Shape to reproduce: VRDAG's
training time grows far more slowly than TagGen's (paper: 4.9x vs 13.3x
from 10k→100k).
"""

from repro.eval import experiments as E

from benchmarks.conftest import format_table, record

EDGE_COUNTS = (500, 2000, 6000)
METHODS = ["TagGen", "TGGAN", "TIGGER", "VRDAG"]


def test_table3_training_scalability(benchmark):
    result = benchmark.pedantic(
        lambda: E.run_scalability_sweep(
            edge_counts=EDGE_COUNTS, methods=METHODS, dataset="gdelt",
            scale=0.04, seed=0, epochs=6,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [m] + [f"{result[m][c]['train']:.2f}" for c in EDGE_COUNTS]
        for m in METHODS
    ]
    record(
        "table3_scalability_train",
        format_table(
            "Table III — training seconds vs #temporal edges (GDELT twin)",
            ["method"] + [f"{c}" for c in EDGE_COUNTS],
            rows,
        ),
    )
    # store for table IV's assertions via the results file; check shape:
    # VRDAG's growth factor across the sweep stays below TagGen's
    lo, hi = EDGE_COUNTS[0], EDGE_COUNTS[-1]
    vr = result["VRDAG"][hi]["train"] / max(result["VRDAG"][lo]["train"], 1e-9)
    tg = result["TagGen"][hi]["train"] / max(result["TagGen"][lo]["train"], 1e-9)
    assert vr < tg * 3  # VRDAG does not blow up faster than TagGen
