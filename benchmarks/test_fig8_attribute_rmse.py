"""Fig. 8 — temporal attribute difference (RMSE); Original vs VRDAG."""

import numpy as np
import pytest

from repro.eval import experiments as E
from repro.eval.plotting import series_chart
from repro.metrics.difference import difference_alignment_error

from benchmarks.conftest import BENCH_EPOCHS, BENCH_SCALES, format_table, record


@pytest.mark.parametrize("dataset", ["email", "wiki", "gdelt"])
def test_fig8(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: E.run_difference_figure(
            dataset, "rmse", kind="attribute",
            scale=BENCH_SCALES[dataset], seed=0, epochs=BENCH_EPOCHS,
        ),
        rounds=1,
        iterations=1,
    )
    steps = len(result["Original"])
    rows = [
        [t, f"{result['Original'][t]:.4f}", f"{result['VRDAG'][t]:.4f}"]
        for t in range(steps)
    ]
    err = difference_alignment_error(result["Original"], result["VRDAG"])
    rows.append(["align_err", "-", f"{err:.4f}"])
    record(
        f"fig8_{dataset}",
        series_chart({k: v for k, v in result.items()})
        + "\n\n"
        + format_table(
            f"Fig. 8 — attribute RMSE difference vs timestep ({dataset})",
            ["t", "Original", "VRDAG"],
            rows,
        ),
    )
    assert np.all(np.isfinite(result["VRDAG"]))
