"""Fig. 10 — downstream data-augmentation case study.

CoEvoGNN forecasts the final snapshot (link prediction F1 + attribute
prediction RMSE), trained without augmentation, with GenCAT-generated
augmentation, and with VRDAG-generated augmentation.  Paper shape:
VRDAG augmentation improves both tasks over the base model, while
GenCAT's temporally-independent snapshots tend to hurt.
"""

import numpy as np
import pytest

from repro.eval import experiments as E

from benchmarks.conftest import BENCH_EPOCHS, BENCH_SCALES, format_table, record


@pytest.mark.parametrize("dataset", ["email", "wiki", "gdelt"])
def test_fig10(benchmark, dataset):
    result = benchmark.pedantic(
        lambda: E.run_fig10(
            dataset, scale=BENCH_SCALES[dataset], seed=0,
            vrdag_epochs=30, downstream_epochs=15, n_runs=4,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [m, f"{result[m]['f1']:.4f}", f"{result[m]['rmse']:.4f}"]
        for m in ("NoAugmentation", "GenCAT", "VRDAG")
    ]
    record(
        f"fig10_{dataset}",
        format_table(
            f"Fig. 10 — downstream augmentation ({dataset})",
            ["training data", "link F1", "attr RMSE"],
            rows,
        ),
    )
    assert 0.0 <= result["VRDAG"]["f1"] <= 1.0
    assert np.isfinite(result["VRDAG"]["rmse"])
