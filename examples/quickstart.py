"""Quickstart: the ``repro.api`` lifecycle — fit any generator by
name, persist it as a versioned artifact, generate, and score.

Run:  python examples/quickstart.py [--tiny]
"""

import os
import tempfile

from repro import api


def main(tiny: bool = False) -> None:
    scale, epochs = (0.012, 2) if tiny else (0.03, 25)

    # 1. One-shot pipeline: dataset twin x generator x metric suites.
    #    "VRDAG" is one of api.list_generators(); swap in "TagGen",
    #    "GenCAT", ... for any baseline.
    artifact = os.path.join(tempfile.mkdtemp(), "vrdag_email.npz")
    result = api.Pipeline(
        dataset="email",
        generator="VRDAG",
        metrics=["structure", "attributes"],
        generator_config={"epochs": epochs, "hidden_dim": 24,
                          "latent_dim": 12, "encode_dim": 24},
        scale=scale,
        seed=1,
        artifact_out=artifact,
    ).run()
    print(f"observed graph: {result.reference}")
    print(f"synthetic graph: {result.generated}")
    print("structure metrics (lower is better):")
    for name, value in result.metrics["structure"].items():
        print(f"  {name:>14s}: {value:.4f}")
    for name, value in result.metrics["attributes"].items():
        print(f"  attribute {name}: {value:.4f}")
    print(
        f"timings: fit {result.fit_seconds:.1f}s, "
        f"generate {result.generate_seconds:.2f}s"
    )

    # 2. The artifact round-trips the fitted generator bit-exactly.
    generator = api.load_artifact(artifact)
    replay = generator.generate(result.num_timesteps, seed=1)
    assert replay == result.generated, "artifact round-trip drifted"
    print(f"artifact round-trip OK: {artifact}")

    # 3. Batched serving: many seeds over one artifact, concurrently,
    #    each request bit-identical to serial generation.
    requests = [
        api.GenerationRequest(artifact, num_timesteps=3, seed=s)
        for s in range(4)
    ]
    with api.GenerationService(executor="thread") as service:
        batch = service.run_batch(requests)
    for res in batch:
        print(
            f"  served seed={res.request.seed}: {res.graph} "
            f"in {res.seconds:.2f}s"
        )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
