"""Quickstart: train VRDAG on a dynamic attributed graph and generate a
synthetic twin.

Run:  python examples/quickstart.py [--tiny]
"""

from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.datasets import load_dataset
from repro.metrics import attribute_jsd, structure_metric_table


def main(tiny: bool = False) -> None:
    scale, epochs = (0.012, 2) if tiny else (0.03, 25)
    # 1. Load a dataset twin (Emails-DNC profile).
    graph = load_dataset("email", scale=scale, seed=0)
    print(f"observed graph: {graph}")

    # 2. Configure and train the model (Eq. 14's step-wise ELBO).
    config = VRDAGConfig(
        num_nodes=graph.num_nodes,
        num_attributes=graph.num_attributes,
        hidden_dim=24,
        latent_dim=12,
        encode_dim=24,
        mixture_components=3,
        seed=0,
    )
    model = VRDAG(config)
    print(f"model parameters: {model.num_parameters()}")
    result = VRDAGTrainer(model, TrainConfig(epochs=epochs, verbose=False)).fit(graph)
    print(
        f"trained {result.epochs_run} epochs in {result.train_seconds:.1f}s, "
        f"loss {result.loss_history[0]:.2f} -> {result.final_loss:.2f}"
    )

    # 3. Generate a fresh dynamic attributed graph (Algorithm 1).
    synthetic = model.generate(num_timesteps=graph.num_timesteps, seed=1)
    print(f"synthetic graph: {synthetic}")

    # 4. Evaluate fidelity with the paper's metric suite.
    table = structure_metric_table(graph, synthetic)
    print("structure metrics (lower is better):")
    for name, value in table.items():
        print(f"  {name:>14s}: {value:.4f}")
    print(f"attribute JSD: {attribute_jsd(graph, synthetic):.4f}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
