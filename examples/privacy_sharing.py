"""Privacy-preserving data sharing (paper motivation #3): release a
synthetic twin of a sensitive financial network instead of the raw data.

A bank cannot ship its guaranteed-loan network (§I): node identities,
link relationships and attribute profiles are all confidential.  The
VRDAG recipe is to train on the private sequence, generate a synthetic
sequence that preserves the distributional profile, verify fidelity
with the paper's metric suite, and release only the synthetic file plus
the fidelity report.

Run:  python examples/privacy_sharing.py
"""

import tempfile
from pathlib import Path

from repro.datasets import load_dataset
from repro.eval import make_vrdag
from repro.eval.reporting import markdown_table, nested_dict_table
from repro.graph import io as graph_io
from repro.metrics import (
    attribute_jsd,
    privacy_report,
    spearman_correlation_mae,
    structure_metric_table,
)


def main(tiny: bool = False) -> None:
    scale, epochs = (0.012, 2) if tiny else (0.02, 20)
    # 1. The "private" network (guaranteed-loan twin).
    private = load_dataset("guarantee", scale=scale, seed=0)
    print(f"private network (never leaves the bank): {private}")

    # 2. Train the generator and synthesize the releasable twin.
    generator = make_vrdag(epochs=epochs, seed=0).fit(private)
    synthetic = generator.generate(private.num_timesteps, seed=99)
    print(f"synthetic release candidate: {synthetic}")

    # 3. Fidelity report: structure + attribute metrics.
    fidelity = structure_metric_table(private, synthetic)
    fidelity["attr_jsd"] = attribute_jsd(private, synthetic)
    fidelity["spearman_mae"] = spearman_correlation_mae(private, synthetic)
    header, rows = nested_dict_table({"VRDAG twin": fidelity})
    print("\nfidelity report (lower is better):")
    print(markdown_table(header, rows))

    # 4. Leakage audit: edge memorization vs chance, attribute-row
    #    replay, and degree-fingerprint re-identification.
    leakage = privacy_report(private, synthetic)
    print("\nleakage audit:")
    print(
        f"  edge overlap {leakage['edge_overlap']:.4f} "
        f"(chance level {leakage['chance_overlap']:.4f})"
    )
    print(
        f"  attribute NN distance {leakage['attr_nn_distance']:.3f} "
        f"(≈1 healthy, ≪1 = training rows replayed)"
    )
    print(
        f"  degree-fingerprint overlap {leakage['degree_fp_overlap']:.4f}"
    )

    # 5. Release: persist only the synthetic graph.
    out = Path(tempfile.gettempdir()) / "guarantee_synthetic.npz"
    graph_io.save(synthetic, out)
    reloaded = graph_io.load(out)
    assert reloaded == synthetic
    print(f"released synthetic dataset: {out}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
