"""Compare every generator on one dataset — a miniature Table I + Fig. 9.

Walks the `repro.api` registry: fits each generator on the Email twin
(VRDAG, the walk/static baselines, and the classic reference models),
scores the structure metrics and reports fit/generate wall-clock,
reproducing the paper's core comparison in one script.

Run:  python examples/generator_comparison.py
"""

from repro import api
from repro.baselines.dymond import DymondCapacityError
from repro.datasets import load_dataset
from repro.eval import timed_fit_generate
from repro.metrics import structure_metric_table


def main(tiny: bool = False) -> None:
    scale = 0.012 if tiny else 0.03
    graph = load_dataset("email", scale=scale, seed=0)
    print(f"dataset: {graph}")
    print(f"registry: {', '.join(api.list_generators())}\n")

    header = (
        f"{'method':<21s} {'fit_s':>7s} {'gen_s':>7s} "
        f"{'in_deg':>8s} {'out_deg':>8s} {'clus':>8s} {'wedge':>8s} {'lcc':>8s}"
    )
    print(header)
    print("-" * len(header))
    for name in api.list_generators():
        # smoke configs keep the tiny run in seconds; full runs use the
        # registered defaults (paper-scale epochs / walk budgets)
        config = api.smoke_config(name) if tiny else {}
        generator = api.get_generator(name, seed=0, **config)
        try:
            run = timed_fit_generate(name, generator, graph, seed=1)
        except DymondCapacityError:
            print(
                f"{name:<21s} skipped (motif storage capacity, as in the "
                "paper)"
            )
            continue
        table = structure_metric_table(graph, run.generated)
        print(
            f"{name:<21s} {run.fit_seconds:7.2f} {run.generate_seconds:7.3f} "
            f"{table['in_deg_dist']:8.4f} {table['out_deg_dist']:8.4f} "
            f"{table['clus_dist']:8.4f} {table['wedge_count']:8.4f} "
            f"{table['lcc']:8.4f}"
        )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
