"""Graph-engine benchmarking on synthetic data (§I motivation 1).

A DBMS vendor must test its graph engine against a customer's workload
without access to the customer's private graph.  The VRDAG recipe:
train on the private graph once (inside the customer's perimeter),
ship the synthetic twin, and benchmark the engine on the twin with the
same query mix.  This example validates the recipe's premise — the
workload *profile* (per-class result cardinalities, relative costs)
measured on the twin tracks the profile on the private graph.

Run:  python examples/engine_benchmarking.py
"""

from repro.datasets import load_dataset
from repro.eval import make_vrdag
from repro.workloads import (
    GraphQueryEngine,
    WorkloadConfig,
    WorkloadGenerator,
    execute_workload,
)


def profile(name, graph, config):
    engine = GraphQueryEngine(graph)
    queries = WorkloadGenerator(graph, config).generate()
    report = execute_workload(engine, queries)
    print(f"\n{name}: {report.total_queries} queries, "
          f"{report.throughput():.0f} q/s")
    print(f"  {'query class':<18} {'count':>5} {'mean result':>12} {'mean ms':>9}")
    for kind in sorted(report.count_by_kind):
        print(
            f"  {kind:<18} {report.count_by_kind[kind]:>5} "
            f"{report.mean_result_size[kind]:>12.2f} "
            f"{1000 * report.latency_by_kind[kind]:>9.3f}"
        )
    return report


def main(tiny: bool = False) -> None:
    scale, epochs, num_queries = (0.012, 2, 120) if tiny else (0.05, 20, 600)
    # 1. The customer's private graph (email twin stands in).
    private = load_dataset("email", scale=scale, seed=0)
    print(f"private graph: {private}")

    # 2. Train VRDAG and generate the shippable benchmark instance.
    generator = make_vrdag(epochs=epochs, seed=0).fit(private)
    synthetic = generator.generate(private.num_timesteps, seed=42)
    print(f"synthetic benchmark instance: {synthetic}")

    # 3. One workload spec, applied to both graphs.
    config = WorkloadConfig(
        num_queries=num_queries, zipf_s=1.0, recent_bias=0.5, seed=7
    )

    original_report = profile("workload on PRIVATE graph", private, config)
    synthetic_report = profile("workload on SYNTHETIC twin", synthetic, config)

    # 4. The vendor's sanity check: per-class result cardinalities on the
    #    twin should track the private profile (same workload shape).
    print("\nresult-cardinality ratio (synthetic / private):")
    for kind in sorted(original_report.mean_result_size):
        orig = original_report.mean_result_size[kind]
        syn = synthetic_report.mean_result_size.get(kind, float("nan"))
        ratio = syn / orig if orig else float("nan")
        print(f"  {kind:<18} {ratio:>6.2f}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
