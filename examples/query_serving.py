"""High-throughput query serving on a synthetic twin (§I motivation 1).

The serving half of the benchmark-data story: a vendor ships a
synthetic twin of the customer's graph, then replays the customer's
query mix against it at production rates.  This example walks the
serving stack bottom-up:

1. batched vectorized kernels vs per-query dispatch (same answers,
   one call per query *class* instead of per query);
2. the bounded snapshot-plan cache (hot timesteps stay resident,
   eviction never changes results);
3. ``QueryService`` replaying a full workload mix over request
   batches, with per-class profile and throughput.

Run:  python examples/query_serving.py [--tiny]
"""

import time

import numpy as np

from repro.datasets import load_dataset
from repro.workloads import (
    GraphQueryEngine,
    QueryService,
    WorkloadConfig,
    WorkloadGenerator,
    run_queries_batched,
    serving_mix,
)
from repro.workloads.generator import _run_query


def main(tiny: bool = False) -> None:
    scale, num_queries, batch_size = (
        (0.02, 300, 64) if tiny else (0.08, 5000, 512)
    )
    graph = load_dataset("email", scale=scale, seed=0)
    print(f"serving graph: {graph}")

    # 1. Batched kernels answer whole query columns, bit-identically.
    config = WorkloadConfig(
        num_queries=num_queries, mix=serving_mix(), seed=7
    )
    queries = WorkloadGenerator(graph, config).generate()
    engine = GraphQueryEngine(graph)

    t0 = time.perf_counter()
    per_query = np.array([_run_query(engine, q) for q in queries])
    per_query_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched, _ = run_queries_batched(engine, queries)
    batched_s = time.perf_counter() - t0
    assert np.array_equal(per_query, batched), "dispatch changed answers!"
    print(
        f"\n{len(queries)} queries: per-query {per_query_s * 1e3:.1f} ms, "
        f"batched {batched_s * 1e3:.1f} ms "
        f"({per_query_s / max(batched_s, 1e-9):.1f}x) — identical results"
    )

    # 2. The plan cache keeps hot timesteps resident under a budget.
    budgeted = GraphQueryEngine(
        graph, cache_memory_budget_bytes=256 * 1024
    )
    for _ in range(2):  # second replay hits the resident plans
        cards, _ = run_queries_batched(budgeted, queries)
        assert np.array_equal(cards, per_query)
    stats = budgeted.plans.stats()
    print(
        f"plan cache under 256 KiB budget: {stats.resident_plans} plans "
        f"resident ({stats.resident_bytes / 1024:.1f} KiB), "
        f"hit rate {stats.hit_rate:.0%}, evictions {stats.evictions}"
    )

    # 3. QueryService: the same mix as concurrent request batches.
    with QueryService(engine, executor="thread") as service:
        report, results = service.run_workload(
            config, batch_size=batch_size
        )
    print(
        f"\nQueryService: {report.total_queries} queries in "
        f"{len(results)} requests -> {report.throughput():,.0f} q/s"
    )
    print(f"  {'query class':<18} {'count':>5} {'mean result':>12} {'mean µs':>9}")
    for kind in sorted(report.count_by_kind):
        print(
            f"  {kind:<18} {report.count_by_kind[kind]:>5} "
            f"{report.mean_result_size[kind]:>12.2f} "
            f"{1e6 * report.latency_by_kind[kind]:>9.2f}"
        )
    print(f"shared plan cache after serving: {service.plan_cache_stats()}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
