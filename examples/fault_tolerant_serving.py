"""Fault-tolerant serving: chaos-test the stack without leaving Python.

Production serving fails in boring, recurring ways — a flaky worker,
a slow disk, a burst of traffic, a corrupted file, a process killed
mid-ingest.  This example drives every failure through the
deterministic fault injector (``docs/reliability.md``) and shows the
contract each time: completed answers are bit-identical to the
fault-free run, failures are structured, nothing hangs.

1. per-request error isolation + retries on ``QueryService``;
2. deadlines bounding slow workers, admission control shedding
   overload with a retry-after hint;
3. graceful degradation: batched kernels fall back per-query,
   bit-identically;
4. artifact checksums catching silent corruption;
5. ingestion killed mid-stream, resumed from its checkpoint.

Run:  python examples/fault_tolerant_serving.py [--tiny]
"""

import os
import tempfile

import numpy as np

from repro.datasets import load_dataset
from repro.graph.streams import StreamingStoreBuilder, ingest_stream
from repro.reliability import (
    FaultPlan,
    RetryPolicy,
    ServiceOverloadedError,
    fault_injector,
)
from repro.workloads import (
    QueryRequest,
    QueryService,
    WorkloadConfig,
    WorkloadGenerator,
    serving_mix,
)


def main(tiny: bool = False) -> None:
    scale, num_queries, per_request = (
        (0.02, 240, 30) if tiny else (0.08, 4000, 250)
    )
    graph = load_dataset("email", scale=scale, seed=0)
    print(f"serving graph: {graph}")

    config = WorkloadConfig(num_queries=num_queries, mix=serving_mix(),
                            seed=7)
    queries = WorkloadGenerator(graph, config).generate()
    requests = [
        QueryRequest(queries[i:i + per_request])
        for i in range(0, len(queries), per_request)
    ]

    # The fault-free run is the oracle everything below is held to.
    with QueryService(graph, executor="serial") as svc:
        oracle = [r.cardinalities for r in svc.run_batch(requests)]

    # 1. Injected crashes stay per-request; retries heal transient ones.
    plans = {"query.request": FaultPlan(kind="error", rate=0.4)}
    with QueryService(graph, executor="thread") as svc:
        with fault_injector.arm(plans, seed=1):
            results = svc.run_batch(requests)
    ok = [r.ok for r in results]
    for r, want in zip(results, oracle):
        assert not r.ok or np.array_equal(r.cardinalities, want)
    print(
        f"\n40% crash rate: {sum(ok)}/{len(ok)} requests completed, "
        "every completion bit-identical to the fault-free run; "
        f"failures are structured ({next(r.error.error_type for r in results if not r.ok)})"
    )

    policy = RetryPolicy(max_attempts=3, base_delay_seconds=0.002)
    plans = {"query.request": FaultPlan(rate=1.0, max_triggers=2)}
    with QueryService(graph, executor="thread", retry_policy=policy) as svc:
        with fault_injector.arm(plans, seed=1):
            results = svc.run_batch(requests)
    assert all(r.ok for r in results)
    print(
        "first two attempts fault + RetryPolicy(max_attempts=3): "
        f"all {len(results)} requests healed "
        f"(max attempts observed: {max(r.attempts for r in results)})"
    )

    # 2. Deadlines and backpressure: answer, shed — never hang.
    plans = {"query.request": FaultPlan(kind="delay", delay_seconds=0.5,
                                        rate=0.4)}
    with QueryService(graph, executor="thread",
                      deadline_seconds=0.15) as svc:
        with fault_injector.arm(plans, seed=1):
            results = svc.run_batch(requests)
    expired = sum(1 for r in results if not r.ok)
    print(
        f"\n0.5s stalls under a 0.15s deadline: {expired} requests "
        "expired with DeadlineExceededError, the rest answered"
    )

    with QueryService(graph, executor="serial", max_pending=2) as svc:
        try:
            svc.run_batch(requests)
        except ServiceOverloadedError as err:
            print(
                f"max_pending=2 vs {len(requests)} requests: shed with "
                f"retry-after {err.retry_after_seconds * 1e3:.1f} ms"
            )
        results = svc.run_batch(requests[:2])
        assert all(r.ok for r in results)

    # 3. A faulting batched kernel degrades per-query, bit-identically.
    plans = {"query.batch_kernel": FaultPlan(kind="error", rate=1.0)}
    with QueryService(graph, executor="serial") as svc:
        with fault_injector.arm(plans, seed=1):
            results = svc.run_batch(requests)
    assert all(r.ok for r in results)
    for r, want in zip(results, oracle):
        assert np.array_equal(r.cardinalities, want)
    print(
        "\nevery batched kernel faulting: served per-query instead, "
        f"answers identical (degraded: "
        f"{sorted(results[0].degraded_kinds)})"
    )

    # 4. Artifact checksums catch silent corruption.
    from repro import api

    generator = api.get_generator(
        "ErdosRenyi", seed=0, **api.smoke_config("ErdosRenyi")
    )
    generator.fit(graph)
    with tempfile.TemporaryDirectory() as tmp:
        artifact = os.path.join(tmp, "gen.npz")
        api.save_artifact(generator, artifact)
        plans = {"artifact.state": FaultPlan(kind="corrupt")}
        with fault_injector.arm(plans, seed=1):
            try:
                api.load_artifact(artifact)
            except api.ArtifactError as err:
                print(f"\nflipped one byte in a saved artifact -> "
                      f"{type(err).__name__}: ...{str(err)[-60:]}")
        api.load_artifact(artifact)  # pristine once the chaos stops

    # 5. Ingestion killed mid-stream resumes from its checkpoint.
    rng = np.random.default_rng(3)
    n, t_len, m = graph.num_nodes, 6, 20 * graph.num_nodes
    events = (
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
    )
    reference = ingest_stream(events, n, t_len, chunk_events=1024)
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "ingest.ckpt.npz")
        half = m // 2
        partial = StreamingStoreBuilder(n, t_len, chunk_events=1024)
        partial.extend(events[0][:half], events[1][:half],
                       events[2][:half])
        partial.checkpoint(ckpt)
        del partial  # "the process dies here"
        resumed = ingest_stream(
            events, n, t_len, chunk_events=1024, checkpoint_path=ckpt
        )
        assert resumed == reference
        print(
            f"\ningestion killed after {half}/{m} events, resumed from "
            "checkpoint: final store identical to the uninterrupted build"
        )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
