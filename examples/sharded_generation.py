"""Sharded generation: scale the structure decode across workers
without changing a single edge.

`repro.generation` partitions each timestep's MixBernoulli decode into
contiguous node shards, each consuming a deterministic slice of the
master RNG stream.  The contract this example demonstrates:

* any shard count and any executor produce the *bit-identical* graph
  that plain ``VRDAG.generate`` produces for the same seed;
* per-shard decode work (the parallel critical path) shrinks as
  shards are added — on a multi-core host, wall-clock follows it.

Run:  python examples/sharded_generation.py [--tiny]
"""

import time

from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.datasets import load_dataset
from repro.generation import ShardPlan, generate_sharded


def main(tiny: bool = False) -> None:
    scale, epochs, timesteps = (0.012, 2, 3) if tiny else (0.04, 10, 8)
    shard_counts = (1, 2) if tiny else (1, 2, 4, 8)

    # 1. Train once.
    graph = load_dataset("email", scale=scale, seed=0)
    print(f"observed graph: {graph}")
    config = VRDAGConfig(
        num_nodes=graph.num_nodes,
        num_attributes=graph.num_attributes,
        hidden_dim=16, latent_dim=8, encode_dim=16, seed=0,
    )
    model = VRDAG(config)
    VRDAGTrainer(model, TrainConfig(epochs=epochs, verbose=False)).fit(graph)

    # 2. The unsharded reference rollout.
    t0 = time.perf_counter()
    reference = model.generate(timesteps, seed=7)
    ref_s = time.perf_counter() - t0
    print(f"VRDAG.generate: {reference}  ({ref_s:.3f}s)")

    # 3. Shard-count sweep: identical output, shrinking shard work.
    print(f"\n{'shards':>6s} {'executor':>9s} {'wall_s':>8s} {'identical':>10s}")
    for n_shards in shard_counts:
        for executor in ("serial", "thread"):
            t0 = time.perf_counter()
            generated = generate_sharded(
                model, timesteps, seed=7,
                n_shards=n_shards, executor=executor,
            )
            wall = time.perf_counter() - t0
            same = generated.store == reference.store
            print(
                f"{n_shards:>6d} {executor:>9s} {wall:>8.3f} {str(same):>10s}"
            )
            assert same, "sharding must never change the sampled graph"

    # 4. The plan is explicit and inspectable.
    plan = ShardPlan.balanced(graph.num_nodes, shard_counts[-1])
    print(f"\nshard plan for N={graph.num_nodes}: {plan.ranges()}")
    print(
        "determinism: the graph is a function of the seed alone — "
        "shard count and executor are deployment knobs."
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
