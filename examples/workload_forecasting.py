"""Workload forecasting with conditional generation.

A platform team has observed T snapshots of their interaction graph and
wants plausible *futures* to capacity-test against.  This example
trains VRDAG on the full history, then uses
:func:`repro.core.continue_sequence` to roll the model forward beyond
the observed horizon, conditioned on the real prefix — producing
several alternative futures whose statistics can be compared.

Run:  python examples/workload_forecasting.py
"""

import numpy as np

from repro.core import (
    TrainConfig,
    VRDAG,
    VRDAGConfig,
    VRDAGTrainer,
    continue_sequence,
)
from repro.datasets import load_dataset
from repro.metrics import attribute_autocorrelation


def main(tiny: bool = False) -> None:
    scale, epochs, horizon = (0.01, 2, 3) if tiny else (0.015, 15, 6)
    history = load_dataset("gdelt", scale=scale, seed=0)
    print(f"observed history: {history}")

    config = VRDAGConfig(
        num_nodes=history.num_nodes,
        num_attributes=history.num_attributes,
        hidden_dim=24, latent_dim=12, encode_dim=24, seed=0,
    )
    model = VRDAG(config)
    VRDAGTrainer(model, TrainConfig(epochs=epochs)).fit(history)

    print(f"\nthree alternative {horizon}-step futures:")
    futures = []
    for seed in range(3):
        future = continue_sequence(model, history, horizon=horizon, seed=seed)
        futures.append(future)
        edges = [s.num_edges for s in future]
        print(
            f"  seed={seed}: edges/step {edges} "
            f"attr-mean drift {future[-1].attributes.mean() - future[0].attributes.mean():+.3f}"
        )

    # futures differ (they are alternative scenarios)...
    assert futures[0] != futures[1]
    # ...but share the history's temporal character
    hist_ac = attribute_autocorrelation(history)
    fut_ac = attribute_autocorrelation(futures[0])
    print(
        f"\nattribute autocorrelation: history={hist_ac:.3f} "
        f"future={fut_ac:.3f}"
    )

    # stress scenario: what if the future is 3x longer than the history?
    long_future = continue_sequence(
        model, history, horizon=history.num_timesteps * 2, seed=9
    )
    print(f"long-range scenario: {long_future}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
