"""Node addition/deletion (§III-H extension): generate a sequence whose
node universe churns over time.

The base VRDAG fixes the node universe; the :class:`NodeDynamicsWrapper`
adds the paper's extension — nodes isolated for ``T_del`` consecutive
generated snapshots are retired, and fresh nodes arrive at the rate
observed in the training data with hidden states sampled from the
parameterized ``p_ω`` conditioned on the mean graph state.

Run:  python examples/node_churn.py
"""

import numpy as np

from repro.core import (
    NodeDynamicsWrapper,
    TrainConfig,
    VRDAG,
    VRDAGConfig,
    VRDAGTrainer,
)
from repro.datasets import load_dataset


def main(tiny: bool = False) -> None:
    scale, epochs = (0.015, 2) if tiny else (0.05, 15)
    # 1. Train on a twin of the Emails-DNC network — dense enough that
    #    per-snapshot isolation is a meaningful deletion signal.
    graph = load_dataset("email", scale=scale, seed=0)
    print(f"observed graph: {graph}")

    config = VRDAGConfig(
        num_nodes=graph.num_nodes,
        num_attributes=graph.num_attributes,
        hidden_dim=16,
        latent_dim=8,
        encode_dim=16,
        seed=0,
    )
    model = VRDAG(config)
    VRDAGTrainer(model, TrainConfig(epochs=epochs)).fit(graph)

    # 2. Fit the churn layer: learns the arrival rate and the p_ω
    #    hidden-state sampler for newly added nodes from the observed
    #    sequence (§III-H proposes training this predictor).
    wrapper = NodeDynamicsWrapper(model, deletion_threshold=4).fit(graph)
    print(f"fitted node arrival rate: {wrapper.arrival_rate:.2f} nodes/step")

    # 3. Generate with only 60% of the universe active at t=0; watch the
    #    active population evolve.
    start_active = int(0.6 * graph.num_nodes)
    synthetic, masks = wrapper.generate(
        num_timesteps=graph.num_timesteps,
        initial_active=start_active,
        seed=7,
    )
    print(f"synthetic graph: {synthetic}")
    print("active nodes per timestep:")
    for t, mask in enumerate(masks):
        bar = "#" * int(40 * mask.sum() / graph.num_nodes)
        print(f"  t={t:2d}  {int(mask.sum()):4d}  {bar}")

    arrivals = np.diff(masks.sum(axis=1).astype(int))
    print(f"net population change per step: {arrivals.tolist()}")
    print(
        "edges never touch inactive nodes:",
        all(
            synthetic[t].adjacency[~masks[t]].sum() == 0
            and synthetic[t].adjacency[:, ~masks[t]].sum() == 0
            for t in range(synthetic.num_timesteps)
        ),
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
