"""Live serving: answer queries while the graph is still ingesting.

The offline serving stack (``examples/query_serving.py``) freezes the
store first and serves second.  Real serving rarely gets that luxury:
events keep arriving while clients keep asking.  This example drives
the live tier (``docs/workloads.md``, "Live serving"):

1. a writer thread replays an event stream into a
   ``LiveStoreBuilder``, sealing one timestep at a time;
2. reader-side ``LiveQueryService.run_batch`` calls pin each batch to
   one sealed **epoch** and return it alongside the results;
3. every batch is re-checked against a bulk-built store of its
   epoch's event prefix — bit-identical, the epoch-consistency
   contract;
4. a ``live.snapshot`` fault degrades a refresh to serving the
   previous epoch (staleness, never an error).

Run:  python examples/live_serving.py [--tiny]
"""

import threading

import numpy as np

from repro.datasets import load_dataset
from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.live import LiveStoreBuilder, snapshot_owned_bytes
from repro.graph.store import TemporalEdgeStore
from repro.reliability import FaultPlan, fault_injector
from repro.workloads import (
    GraphQueryEngine,
    LiveQueryService,
    QueryRequest,
    WorkloadConfig,
    WorkloadGenerator,
    run_queries_batched,
    serving_mix,
)


def main(tiny: bool = False) -> None:
    scale, num_queries, batch = (
        (0.02, 120, 30) if tiny else (0.08, 2000, 250)
    )
    graph = load_dataset("email", scale=scale, seed=0)
    store = graph.store
    n, t_len = store.num_nodes, store.num_timesteps
    print(f"event stream: {graph} ({store.num_edges} temporal edges)")

    config = WorkloadConfig(
        num_queries=num_queries, mix=serving_mix(), seed=0
    )
    queries = WorkloadGenerator(graph, config).generate()
    requests = [
        QueryRequest(queries[i:i + batch])
        for i in range(0, len(queries), batch)
    ]

    # -- 1. writer thread: replay the stream, one sealed step at a time
    builder = LiveStoreBuilder(n, t_len, attributes=store.attributes)
    offsets = store.offsets
    step_sealed = threading.Event()

    def write():
        for step in range(t_len):
            lo, hi = int(offsets[step]), int(offsets[step + 1])
            builder.extend(
                store.src[lo:hi], store.dst[lo:hi], store.t[lo:hi]
            )
            builder.seal_step()
            step_sealed.set()

    # -- 2. serve while ingesting; every batch names its pinned epoch
    samples = []
    with LiveQueryService(builder, executor="serial") as service:
        writer = threading.Thread(target=write, daemon=True)
        writer.start()
        while builder.epoch < t_len:
            step_sealed.wait()
            step_sealed.clear()
            for request in requests:
                epoch, results = service.run_batch([request])
                samples.append((epoch, request, results[0]))
        writer.join()
        final_epoch = service.refresh()
        for request in requests:
            epoch, results = service.run_batch([request], refresh=False)
            samples.append((epoch, request, results[0]))
        live = service.live_stats()
        cache = service.plan_cache_stats()

    epochs = sorted({epoch for epoch, _, _ in samples})
    print(
        f"\nserved {len(samples)} batches across epochs {epochs} "
        f"(final epoch {final_epoch})"
    )
    print(
        f"refreshes={live.refreshes} advances={live.epoch_advances} "
        f"plan cache: hits={cache.hits} misses={cache.misses} "
        f"invalidations={cache.invalidations}"
    )
    _, final_store = builder.snapshot()
    assert final_store == store
    assert snapshot_owned_bytes(final_store) == 0
    print("snapshot owned bytes: 0 (prefix views, not copies)")

    # -- 3. the consistency contract: every batch == its epoch's bulk store
    oracles = {}
    for epoch, request, result in samples:
        assert result.ok
        if epoch not in oracles:
            end = int(offsets[epoch])
            prefix = TemporalEdgeStore(
                n, t_len,
                store.src[:end].copy(),
                store.dst[:end].copy(),
                store.t[:end].copy(),
                store.attributes,
            )
            oracles[epoch] = GraphQueryEngine(
                DynamicAttributedGraph.from_store(prefix)
            )
        want, _ = run_queries_batched(oracles[epoch], request.queries)
        assert np.array_equal(result.cardinalities, want)
    print(
        f"verified {len(samples)} batches bit-identical to bulk-built "
        f"stores of their pinned epochs"
    )

    # -- 4. a faulting refresh degrades to the previous epoch
    stale_builder = LiveStoreBuilder(n, t_len, attributes=store.attributes)
    lo, hi = int(offsets[0]), int(offsets[2])
    stale_builder.extend(
        store.src[lo:hi], store.dst[lo:hi], store.t[lo:hi]
    )
    stale_builder.seal_step()
    with LiveQueryService(stale_builder, executor="serial") as service:
        stale_builder.seal_step()  # epoch 2 exists, but refresh will fault
        plans = {"live.snapshot": FaultPlan(rate=1.0, max_triggers=1)}
        with fault_injector.arm(plans, seed=0):
            epoch, results = service.run_batch(requests[:1])
        assert epoch == 1 and results[0].ok
        recovered, _ = service.run_batch(requests[:1])
        print(
            f"\nfaulted refresh served stale epoch {epoch} "
            f"(stale_refreshes="
            f"{service.live_stats().stale_refreshes}), next refresh "
            f"caught up to epoch {recovered}"
        )
        assert recovered == 2


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
