"""Fraud-detection data augmentation (the paper's §I motivation).

Financial transaction graphs cannot leave the institution; a synthetic
twin that preserves the co-evolution of topology and node profiles can.
This example trains VRDAG on the guaranteed-loan network twin, generates
a shareable synthetic sequence, and shows that a downstream
co-evolution forecaster (CoEvoGNN) trained with the synthetic data as
augmentation improves future-snapshot prediction — the Fig. 10 case
study end to end.

Run:  python examples/fraud_detection_augmentation.py
"""

from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.datasets import load_dataset
from repro.downstream import evaluate_augmentation
from repro.metrics import spearman_correlation_mae


def main(tiny: bool = False) -> None:
    scale, epochs, aug_epochs = (0.012, 2, 3) if tiny else (0.02, 20, 30)
    # The proprietary guaranteed-loan network is simulated by its twin
    # (see DESIGN.md §4): directed guarantor->borrower edges, sparse,
    # no reciprocity, two co-evolving node attributes.
    graph = load_dataset("guarantee", scale=scale, seed=0)
    print(f"'private' loan network: {graph}")

    config = VRDAGConfig(
        num_nodes=graph.num_nodes,
        num_attributes=graph.num_attributes,
        hidden_dim=24, latent_dim=12, encode_dim=24, seed=0,
    )
    model = VRDAG(config)
    VRDAGTrainer(model, TrainConfig(epochs=epochs)).fit(graph)
    synthetic = model.generate(graph.num_timesteps, seed=7)
    print(f"shareable synthetic twin: {synthetic}")

    # privacy-motivated sanity check: the synthetic graph preserves the
    # population-level attribute correlation structure without copying
    # any individual node's trajectory
    corr_err = spearman_correlation_mae(graph, synthetic)
    print(f"attribute-correlation MAE vs source: {corr_err:.4f}")

    # downstream utility: forecast the final snapshot with/without the
    # synthetic sequence as augmentation
    base = evaluate_augmentation(graph, None, epochs=aug_epochs, seed=0)
    augmented = evaluate_augmentation(
        graph, synthetic, epochs=aug_epochs, seed=0
    )
    print("future-snapshot forecasting (CoEvoGNN):")
    print(f"  no augmentation     F1={base.f1:.4f}  RMSE={base.rmse:.4f}")
    print(f"  VRDAG augmentation  F1={augmented.f1:.4f}  RMSE={augmented.rmse:.4f}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
