"""Generating benchmark data for graph-system testing (§I motivation 1).

A database vendor needs realistic dynamic graphs at several sizes to
stress a graph processing engine, but has no customer data.  This
example fits VRDAG once on an observed workload twin and then mass-
produces synthetic benchmark instances: different random seeds give
different graphs with the same distributional profile, and the §III-H
node-churn extension produces workloads with node arrivals/departures.

Run:  python examples/benchmark_data_generation.py
"""

import numpy as np

from repro.core import (
    NodeDynamicsWrapper,
    TrainConfig,
    VRDAG,
    VRDAGConfig,
    VRDAGTrainer,
)
from repro.datasets import load_dataset
from repro.graph import io as graph_io
from repro.graph import properties as props


def main(tiny: bool = False) -> None:
    scale, epochs, num_instances = (0.01, 2, 2) if tiny else (0.015, 15, 3)
    workload = load_dataset("wiki", scale=scale, seed=0)
    print(f"observed workload: {workload}")

    config = VRDAGConfig(
        num_nodes=workload.num_nodes,
        num_attributes=workload.num_attributes,
        hidden_dim=24, latent_dim=12, encode_dim=24, seed=0,
    )
    model = VRDAG(config)
    VRDAGTrainer(model, TrainConfig(epochs=epochs)).fit(workload)

    # benchmark instances: same profile, fresh randomness per seed
    print("\nbenchmark instance suite:")
    for seed in range(num_instances):
        instance = model.generate(workload.num_timesteps, seed=seed)
        last = instance[-1]
        print(
            f"  seed={seed}: M={instance.num_temporal_edges:5d} "
            f"in-PLE={props.power_law_exponent(last.in_degrees()):.2f} "
            f"wedges={props.wedge_count(last):6d} "
            f"LCC={props.largest_component_size(last)}"
        )
        graph_io.save(instance, f"/tmp/vrdag_bench_seed{seed}.npz")
    print("  instances saved to /tmp/vrdag_bench_seed*.npz")

    # churn workload via the §III-H extension
    arrival = NodeDynamicsWrapper.estimate_arrival_rate(workload)
    wrapper = NodeDynamicsWrapper(
        model, deletion_threshold=3, arrival_rate=max(arrival, 1.0)
    )
    churn_graph, masks = wrapper.generate(
        workload.num_timesteps,
        initial_active=int(workload.num_nodes * 0.6),
        seed=11,
    )
    active_per_step = masks.sum(axis=1)
    print(
        f"\nchurn workload: active nodes per step "
        f"{active_per_step.tolist()} (estimated arrival rate {arrival:.2f})"
    )
    print(f"churn instance: {churn_graph}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
