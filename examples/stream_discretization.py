"""Continuous-time streams: how the snapshot discretization policy
shapes what a dynamic-graph generator learns.

The paper's datasets are natively continuous-time interaction streams;
the evaluation buckets them into T snapshots with uniform time windows.
This example builds a bursty stream, discretizes it under three
policies (uniform, equal-count, session), and shows the per-snapshot
density profile each policy hands to the generator — then trains VRDAG
on the uniform view and generates a synthetic stream back.

Run:  python examples/stream_discretization.py
"""

import numpy as np

from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.graph.streams import (
    InteractionStream,
    discretize,
    equal_count_windows,
    session_windows,
    snapshot_density_profile,
    to_stream,
    uniform_windows,
)


def build_bursty_stream(
    n: int = 60, seed: int = 0, burst_size: int = 220
) -> InteractionStream:
    """Three activity bursts with quiet gaps — email-like traffic."""
    rng = np.random.default_rng(seed)
    events = []
    for burst_start in (0.0, 40.0, 47.0):
        times = burst_start + rng.exponential(0.08, size=burst_size).cumsum()
        hubs = rng.integers(0, 8, size=len(times))  # heavy-tailed senders
        dsts = rng.integers(0, n, size=len(times))
        for t, u, v in zip(times, hubs, dsts):
            if u != v:
                events.append((int(u), int(v), float(t)))
    return InteractionStream(n, events)


def main(tiny: bool = False) -> None:
    n, burst_size, epochs = (24, 50, 2) if tiny else (60, 220, 15)
    stream = build_bursty_stream(n=n, burst_size=burst_size)
    print(f"stream: {stream}")
    t_len = 10

    # 1. Compare discretization policies on the bursty stream.
    for name, policy in [
        ("uniform", uniform_windows),
        ("equal-count", equal_count_windows),
        ("session", session_windows),
    ]:
        graph = discretize(stream, t_len, policy)
        profile = snapshot_density_profile(graph)
        bars = "  ".join(f"{int(c):4d}" for c in profile)
        print(f"{name:>12s} edges/snapshot: {bars}  (std={profile.std():.1f})")

    # 2. Train VRDAG on the uniform view (the paper's setting).
    graph = discretize(stream, t_len, uniform_windows)
    config = VRDAGConfig(
        num_nodes=graph.num_nodes,
        num_attributes=0,
        hidden_dim=16,
        latent_dim=8,
        encode_dim=16,
        seed=0,
    )
    model = VRDAG(config)
    result = VRDAGTrainer(model, TrainConfig(epochs=epochs)).fit(graph)
    print(f"trained: loss {result.loss_history[0]:.2f} -> {result.final_loss:.2f}")

    # 3. Generate and expand back into a continuous-time stream view.
    synthetic = model.generate(t_len, seed=1)
    synthetic_stream = to_stream(
        synthetic, window=stream.statistics().time_span / t_len,
        rng=np.random.default_rng(2),
    )
    print(f"synthetic stream: {synthetic_stream}")
    orig = snapshot_density_profile(graph)
    gen = snapshot_density_profile(synthetic)
    print("density profile (original vs synthetic):")
    for t in range(t_len):
        print(f"  t={t}  {int(orig[t]):4d}  vs  {int(gen[t]):4d}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
