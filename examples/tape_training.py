"""Training on the flat-tape autodiff engine: tape vs legacy parity,
``gradcheck``, and the per-op profiler timers.

The tape engine (``repro.autodiff.Tape``) is the default training fast
path; the legacy closure engine stays available as the reference twin.
This example fits the same VRDAG twice — once per engine — checks the
loss curves agree, pins a module gradient against finite differences,
and prints the tape's per-op timing report.

Run:  python examples/tape_training.py [--tiny]
"""

import numpy as np

from repro.autodiff import Tape, Tensor, gradcheck
from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.datasets import load_dataset
from repro.nn import GRUCell
from repro.profiling import profiler


def main(tiny: bool = False) -> None:
    scale, epochs = (0.012, 2) if tiny else (0.03, 10)
    graph = load_dataset("email", scale=scale, seed=0)
    print(f"training twin: {graph}")

    # 1. Same model, same seed, both engines: near-identical losses.
    results = {}
    for engine in ("tape", "legacy"):
        cfg = VRDAGConfig(
            num_nodes=graph.num_nodes,
            num_attributes=graph.num_attributes,
            hidden_dim=16, latent_dim=8, encode_dim=16,
            mixture_components=2, seed=7,
        )
        trainer = VRDAGTrainer(
            VRDAG(cfg), TrainConfig(epochs=epochs, engine=engine)
        )
        results[engine] = trainer.fit(graph)
        print(
            f"  {engine:>6s}: loss {results[engine].loss_history[0]:.4f}"
            f" -> {results[engine].final_loss:.4f}"
        )
    assert np.isclose(
        results["tape"].final_loss, results["legacy"].final_loss, rtol=1e-6
    ), "engines diverged"
    print("engines agree on the loss curve")

    # 2. gradcheck pins either engine against finite differences.
    rng = np.random.default_rng(3)
    gru = GRUCell(4, 6, rng=rng)
    x, h = rng.normal(size=(5, 4)), rng.normal(size=(5, 6))

    def legacy_loss():
        return (gru(Tensor(x), Tensor(h)) ** 2).mean()

    def tape_loss():
        with Tape():
            return legacy_loss()

    assert gradcheck(legacy_loss, gru.parameters(), max_entries=8)
    assert gradcheck(tape_loss, gru.parameters(), max_entries=8)
    print("gradcheck OK on both engines (GRU cell vs finite differences)")

    # 3. The profiler breaks an epoch down per tape op: tape.op.* is
    #    the forward record, tape.vjp.* the backward kernel.
    profiler.reset()
    with profiler.enable():
        with Tape():
            loss = legacy_loss()
            loss.backward()
    report = profiler.report()
    tape_lines = [
        line for line in report.splitlines()
        if "tape.op." in line or "tape.vjp." in line
    ]
    print("per-op tape timers for one GRU forward/backward:")
    for line in tape_lines:
        print(f"  {line.strip()}")
    profiler.reset()


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="smoke-test settings: seconds instead of minutes",
    )
    main(tiny=parser.parse_args().tiny)
