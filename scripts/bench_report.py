#!/usr/bin/env python
"""Performance trajectory report: kernels + paper-scale experiments.

Runs (a) micro-benchmarks of every vectorized hot-path kernel against
its ``_reference_*`` Python implementation and (b) the reduced-scale
Fig. 9 / Table III / Table IV timing experiments, then writes the
results to ``BENCH_perf.json`` so successive PRs have a perf trajectory
to compare against (schema documented in ``benchmarks/README.md``).

Usage::

    PYTHONPATH=src python scripts/bench_report.py             # full run
    PYTHONPATH=src python scripts/bench_report.py --quick     # CI-sized
    PYTHONPATH=src python scripts/bench_report.py --skip-macro

The kernel section also verifies parity (vectorized output == reference
output) before timing, so a kernel can never get "faster" by drifting.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.autodiff.tensor import Tensor
from repro.baselines.walks import TemporalWalkSampler
from repro.core.generator import MixBernoulliSampler
from repro.graph import properties as graph_props
from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.sparse import SparseDirectedGraph
from repro.graph.store import TemporalEdgeStore
from repro.graph.temporal import TemporalEdgeList
from repro.profiling import best_of as _best_of, profiler


def _random_sparse_graph(
    n: int, e: int, seed: int
) -> SparseDirectedGraph:
    rng = np.random.default_rng(seed)
    return SparseDirectedGraph(n, rng.integers(0, n, size=(e, 2)))


def _random_stream(n: int, e: int, t_len: int, seed: int) -> TemporalEdgeList:
    rng = np.random.default_rng(seed)
    tel = TemporalEdgeList(n, t_len)
    for u, v, t in zip(
        rng.integers(0, n, size=e),
        rng.integers(0, n, size=e),
        rng.integers(0, t_len, size=e),
    ):
        if u != v:
            tel.add(int(u), int(v), int(t))
    return tel


def bench_kernels(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Vectorized-vs-reference timings for every hot-path kernel."""
    # Table-IV generation scale: the paper sweeps temporal edge counts;
    # our reduced reproduction's largest generation setting lands near
    # N≈1200 / E≈7000 for the metric kernels and N≈160 decode rows.
    n_graph, e_graph = (400, 2400) if quick else (1200, 7200)
    n_decode = 60 if quick else 160
    n_walks, walk_len = (200, 8) if quick else (1500, 12)
    out: Dict[str, Dict[str, float]] = {}

    g = _random_sparse_graph(n_graph, e_graph, seed=1)
    cases: List[Tuple[str, Callable[[], object], Callable[[], object]]] = [
        (
            "sparse.clustering_coefficients",
            g.clustering_coefficients,
            g._reference_clustering_coefficients,
        ),
        (
            "sparse.connected_component_sizes",
            g.connected_component_sizes,
            g._reference_connected_component_sizes,
        ),
        ("sparse.wedge_count", g.wedge_count, g._reference_wedge_count),
    ]
    for name, fast, ref in cases:
        fast_out, ref_out = fast(), ref()
        if isinstance(fast_out, np.ndarray):
            assert np.allclose(fast_out, ref_out), f"{name} parity violated"
        else:
            assert fast_out == ref_out, f"{name} parity violated"
        out[name] = {
            "n": n_graph,
            "edges": g.num_edges,
            "reference_s": _best_of(ref, repeats),
            "vectorized_s": _best_of(fast, repeats),
        }

    # fused MixBernoulli decode (structure generation hot path)
    rng = np.random.default_rng(2)
    sampler = MixBernoulliSampler(36, num_components=3, rng=rng)
    s = Tensor(rng.normal(size=(n_decode, 36)))
    assert np.array_equal(
        sampler.sample(s, np.random.default_rng(5)),
        sampler._reference_sample(s, np.random.default_rng(5)),
    ), "decode parity violated"
    out["generator.mixbernoulli_sample"] = {
        "n": n_decode,
        "edges": n_decode * n_decode,
        "reference_s": _best_of(
            lambda: sampler._reference_sample(s, np.random.default_rng(5)),
            repeats,
        ),
        "vectorized_s": _best_of(
            lambda: sampler.sample(s, np.random.default_rng(5)), repeats
        ),
    }

    # batched temporal walk sampling (Fig. 9 baseline hot path)
    stream = _random_stream(max(n_graph // 4, 20), e_graph, 10, seed=3)
    sam = TemporalWalkSampler(stream, time_window=2, seed=0)

    def scalar_walks() -> list:
        walks = []
        for _ in range(n_walks):
            w = sam.sample_walk(walk_len)
            if w and len(w) >= 2:
                walks.append(w)
        return walks

    out["walks.sample_walks"] = {
        "n": n_walks,
        "edges": len(list(stream)),
        "reference_s": _best_of(scalar_walks, repeats),
        "vectorized_s": _best_of(
            lambda: sam.sample_walks(n_walks, walk_len), repeats
        ),
    }

    out.update(bench_training(quick, repeats))
    out.update(bench_store(quick, repeats))
    out.update(bench_generation(quick, repeats))
    out.update(bench_ingest(quick, repeats))
    out.update(bench_api(quick, repeats))
    out.update(bench_workloads(quick, repeats))
    out.update(bench_serving(quick, repeats))
    out.update(bench_live(quick, repeats))
    out.update(bench_reliability(quick, repeats))

    for entry in out.values():
        entry["speedup"] = (
            entry["reference_s"] / entry["vectorized_s"]
            if entry["vectorized_s"] > 0
            else float("inf")
        )
    return out


def bench_training(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Flat-tape vs legacy closure autodiff: per-epoch training time.

    One ``training.fit`` entry comparing the two engines on the email
    twin, per net-training generator.  For VRDAG the per-epoch time is
    the profiled ``trainer.forward`` + ``trainer.backward`` seconds
    (the autodiff work the tape rebuilds; optimizer/calibration are
    engine-independent); for the baselines it is fit wall-clock over
    their epoch count.  ``reference_s`` / ``vectorized_s`` are the
    legacy / tape VRDAG per-epoch times.  Engine equivalence is checked
    before timing (identical seeds must give near-identical final
    losses), and at full scale the run asserts the >= 2x VRDAG
    epoch-time target the tape engine was built for (quick mode runs a
    graph too small for the fused pairwise kernels to amortize, so the
    target is recorded but not asserted there).
    """
    from repro.baselines.gran import GRAN
    from repro.baselines.tggan import TGGAN
    from repro.baselines.tigger import TIGGER
    from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
    from repro.datasets import load_dataset

    scale = 0.03 if quick else 0.1
    epochs = 2
    graph = load_dataset("email", scale=scale, seed=0)

    generators: Dict[str, Dict[str, float]] = {}

    # -- VRDAG: profiled forward+backward per epoch
    vrdag_times: Dict[str, float] = {}
    vrdag_final: Dict[str, float] = {}
    for engine in ("tape", "legacy"):
        cfg = VRDAGConfig(
            num_nodes=graph.num_nodes,
            num_attributes=graph.num_attributes,
            hidden_dim=24, latent_dim=12, encode_dim=24,
            mixture_components=3, seed=7,
        )
        trainer = VRDAGTrainer(
            VRDAG(cfg), TrainConfig(epochs=epochs, engine=engine)
        )
        was_enabled = profiler.enabled
        profiler.reset()
        profiler.enabled = True
        try:
            result = trainer.fit(graph)
            timers = profiler.snapshot()["timers"]
        finally:
            profiler.enabled = was_enabled
            profiler.reset()
        vrdag_times[engine] = (
            timers["trainer.forward"]["seconds"]
            + timers["trainer.backward"]["seconds"]
        ) / epochs
        vrdag_final[engine] = result.final_loss
    assert np.isclose(
        vrdag_final["tape"], vrdag_final["legacy"], rtol=1e-6
    ), "tape/legacy VRDAG training diverged"
    generators["VRDAG"] = {
        "legacy_epoch_s": vrdag_times["legacy"],
        "tape_epoch_s": vrdag_times["tape"],
        "epoch_speedup": vrdag_times["legacy"] / vrdag_times["tape"],
    }

    # -- net-training baselines: fit wall-clock over epoch count
    cases = [
        ("GRAN", lambda engine: GRAN(epochs=10, engine=engine, seed=4), 10),
        (
            "TIGGER",
            lambda engine: TIGGER(
                epochs=2, walks_per_edge=0.5, engine=engine, seed=4
            ),
            2,
        ),
        (
            "TGGAN",
            lambda engine: TGGAN(
                adversarial_rounds=2, disc_epochs=10, engine=engine, seed=4
            ),
            2 * 10,
        ),
    ]
    for name, factory, n_epochs in cases:
        per_epoch: Dict[str, float] = {}
        for engine in ("tape", "legacy"):
            wall = _best_of(lambda: factory(engine).fit(graph), repeats)
            per_epoch[engine] = wall / n_epochs
        generators[name] = {
            "legacy_epoch_s": per_epoch["legacy"],
            "tape_epoch_s": per_epoch["tape"],
            "epoch_speedup": per_epoch["legacy"] / per_epoch["tape"],
        }

    vrdag_speedup = generators["VRDAG"]["epoch_speedup"]
    meets_target = vrdag_speedup >= 2.0
    assert meets_target or quick, (
        f"tape engine reached only {vrdag_speedup:.2f}x VRDAG epoch-time "
        "speedup (target: 2x)"
    )
    return {
        "training.fit": {
            "n": graph.num_nodes,
            "edges": graph.num_temporal_edges,
            "epochs": epochs,
            "reference_s": vrdag_times["legacy"],
            "vectorized_s": vrdag_times["tape"],
            "generators": generators,
            "meets_2x_target": meets_target,
        }
    }


def bench_store(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Columnar store vs dense representation on a Table-I-shaped graph.

    Three entries track the refactor's win: canonical *construction*
    (columnar store build vs dense tensor ingestion), *snapshot
    iteration* (per-timestep degree/edge-count queries through the
    store views vs dense row sums), and *metric evaluation* (the CSR
    structure-summary kernels vs their dense references).
    """
    n, m, t_len = (200, 2400, 8) if quick else (600, 7200, 10)
    rng = np.random.default_rng(7)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    t = np.sort(rng.integers(0, t_len, size=m))
    keep = src != dst
    src, dst, t = src[keep], dst[keep], t[keep]
    out: Dict[str, Dict[str, float]] = {}

    # -- construction: columnar canonicalization vs dense-stack ingest
    def build_store() -> DynamicAttributedGraph:
        return DynamicAttributedGraph.from_store(
            TemporalEdgeStore(n, t_len, src, dst, t)
        )

    def build_dense() -> DynamicAttributedGraph:
        tensor = np.zeros((t_len, n, n))
        tensor[t, src, dst] = 1.0
        return DynamicAttributedGraph.from_tensors(tensor)

    store_graph = build_store()
    dense_graph = build_dense()
    assert np.array_equal(
        store_graph.adjacency_tensor(), dense_graph.adjacency_tensor()
    ), "store construction parity violated"
    out["store.construction"] = {
        "n": n,
        "edges": store_graph.num_temporal_edges,
        "reference_s": _best_of(build_dense, repeats),
        "vectorized_s": _best_of(build_store, repeats),
    }

    # -- snapshot iteration: store views vs dense row sums
    def iterate_store() -> np.ndarray:
        degs = [s.degrees() for s in store_graph]
        return np.stack(degs)

    def iterate_dense() -> np.ndarray:
        degs = [
            s.adjacency.sum(axis=0) + s.adjacency.sum(axis=1)
            for s in dense_graph
        ]
        return np.stack(degs)

    assert np.allclose(iterate_store(), iterate_dense()), (
        "snapshot iteration parity violated"
    )
    out["store.snapshot_iteration"] = {
        "n": n,
        "edges": store_graph.num_temporal_edges,
        "reference_s": _best_of(iterate_dense, repeats),
        "vectorized_s": _best_of(iterate_store, repeats),
    }

    # -- metric eval: CSR structure summary vs dense reference kernels
    def metrics_store() -> list:
        # fresh snapshot views per call so the timing includes CSR
        # construction, not just warm-cache kernel hits
        graph = DynamicAttributedGraph.from_store(store_graph.store)
        return [graph_props.structure_summary(s) for s in graph]

    def metrics_dense() -> list:
        return [
            graph_props._reference_structure_summary(s) for s in dense_graph
        ]

    for got, ref in zip(metrics_store(), metrics_dense()):
        for key, val in ref.items():
            assert (np.isnan(val) and np.isnan(got[key])) or np.isclose(
                got[key], val
            ), f"store metric parity violated on {key}"
    out["store.metric_eval"] = {
        "n": n,
        "edges": store_graph.num_temporal_edges,
        "reference_s": _best_of(metrics_dense, repeats),
        "vectorized_s": _best_of(metrics_store, repeats),
    }
    return out


def bench_generation(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Sharded structure decode: scaling-vs-shards at generation scale.

    One ``generation.sharded`` entry: ``reference_s`` is the monolithic
    fused ``sample_edges`` decode, ``vectorized_s`` the best sharded
    wall-clock across shard counts, and the ``shards`` sub-dict records
    the full curve — serial wall-clock plus the *critical path* (the
    slowest single shard, i.e. the parallel wall-clock an executor with
    ``>= n_shards`` free cores approaches).  On single-core hosts
    serial wall stays flat while the critical path shrinks ~1/k; on
    multi-core hosts thread/process wall-clock tracks the critical
    path.  Parity with the monolithic decode is asserted for every
    shard count before timing.
    """
    from repro.generation import ShardPlan, ShardedStructureDecoder
    from repro.generation.decode import (
        PlainHead,
        ShardTask,
        decode_shard,
        prepare_decode,
    )

    n = 400 if quick else 1200
    shard_counts = (1, 2, 4) if quick else (1, 2, 4, 8)
    rng = np.random.default_rng(11)
    sampler = MixBernoulliSampler(36, num_components=3, rng=rng)
    s = Tensor(rng.normal(size=(n, 36)))

    def monolithic():
        return sampler.sample_edges(s, np.random.default_rng(5))

    ref_src, ref_dst = monolithic()
    head = PlainHead.from_mlp(sampler.f_theta)
    alpha, proj, block = prepare_decode(sampler, s)
    state = np.random.default_rng(5).bit_generator.state

    shards_curve: Dict[str, Dict[str, float]] = {}
    for k in shard_counts:
        plan = ShardPlan.balanced(n, k)
        decoder = ShardedStructureDecoder(plan, executor="serial")

        def sharded(decoder=decoder):
            return decoder(sampler, s, np.random.default_rng(5))

        src, dst = sharded()
        assert np.array_equal(src, ref_src) and np.array_equal(
            dst, ref_dst
        ), f"sharded decode parity violated at n_shards={k}"
        critical = max(
            _best_of(
                lambda t=ShardTask(
                    lo, hi, n, sampler.num_components, head, proj,
                    alpha[lo:hi], state, block,
                ): decode_shard(t),
                repeats,
            )
            for lo, hi in plan.ranges()
        )
        shards_curve[str(k)] = {
            "wall_s": _best_of(sharded, repeats),
            "critical_path_s": critical,
        }

    best_wall = min(e["wall_s"] for e in shards_curve.values())
    best_critical = min(e["critical_path_s"] for e in shards_curve.values())
    reference_s = _best_of(monolithic, repeats)
    return {
        "generation.sharded": {
            "n": n,
            "edges": n * n,
            "reference_s": reference_s,
            "vectorized_s": best_wall,
            # `speedup` (reference_s / vectorized_s) compares *serial*
            # sharded wall-clock and hovers near 1 by construction; the
            # decomposition win is the critical path — the slowest
            # single shard, i.e. the parallel wall-clock an executor
            # with enough free cores approaches.  Report it explicitly
            # so the entry cannot be read as "sharding bought nothing".
            "critical_path_s": best_critical,
            "critical_path_speedup": (
                reference_s / best_critical
                if best_critical > 0
                else float("inf")
            ),
            "shards": shards_curve,
        }
    }


def bench_ingest(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Bounded-memory streaming ingestion vs bulk store construction.

    ``reference_s`` is the one-shot canonicalization
    (``TemporalEdgeStore(src, dst, t)``: full-stream lexsort),
    ``vectorized_s`` the chunked :func:`ingest_stream` fold whose
    transient working set is one chunk.  This entry tracks the *cost
    of bounded memory* — the target is parity (speedup ≈ 1), not a
    win; equality of the resulting stores is asserted before timing.
    """
    from repro.graph.streams import ingest_stream

    n, t_len = 600, 10
    m = 60_000 if quick else 240_000
    chunk = 16_384
    rng = np.random.default_rng(13)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    t = rng.integers(0, t_len, size=m)

    def bulk():
        return TemporalEdgeStore(n, t_len, src, dst, t)

    def streaming():
        return ingest_stream((src, dst, t), n, t_len, chunk_events=chunk)

    assert streaming() == bulk(), "streaming ingest parity violated"
    return {
        "ingest.streaming": {
            "n": n,
            "edges": m,
            "reference_s": _best_of(bulk, repeats),
            "vectorized_s": _best_of(streaming, repeats),
            "chunk_events": chunk,
        }
    }


def bench_api(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Facade tax: ``api.Pipeline.run`` vs calling the pieces directly.

    Both sides do identical work (load the twin, fit a small VRDAG,
    generate, score the structure suite); the entry tracks what the
    ``repro.api`` plumbing adds on top.  The facade must stay free:
    the run asserts the overhead under 5% of the direct wall-clock.
    """
    from repro.api import Pipeline, get_generator, smoke_config
    from repro.datasets import load_dataset
    from repro.metrics import structure_metric_table

    dataset, scale, timesteps, seed = "email", 0.012, 3, 1
    config = dict(smoke_config("VRDAG"))

    def direct():
        graph = load_dataset(dataset, scale=scale, seed=0)
        generator = get_generator("VRDAG", seed=seed, **config)
        generator.fit(graph)
        generated = generator.generate(timesteps, seed=seed)
        return structure_metric_table(graph, generated)

    def facade():
        return Pipeline(
            dataset, "VRDAG", ["structure"], generator_config=config,
            scale=scale, timesteps=timesteps, seed=seed,
        ).run().metrics["structure"]

    assert facade() == direct(), "pipeline facade parity violated"
    # the workload includes a (deterministic but allocation-heavy)
    # training run whose single-shot jitter exceeds the 5% budget;
    # best-of >= 5 keeps the comparison about plumbing, not noise
    reps = max(repeats, 5)
    direct_s = _best_of(direct, reps)
    facade_s = _best_of(facade, reps)
    overhead = facade_s / direct_s - 1.0
    # 5% relative budget plus a 20ms absolute allowance: on shared CI
    # runners scheduler jitter alone can move a ~0.2s best-of by more
    # than 5%, and that noise is not facade overhead
    assert facade_s <= direct_s * 1.05 + 0.02, (
        f"api.Pipeline adds {overhead:.1%} wall-clock over direct calls "
        "(budget: 5%)"
    )
    return {
        "api.pipeline_overhead": {
            "n": timesteps,
            "edges": 0,
            "reference_s": direct_s,
            "vectorized_s": facade_s,
            "overhead_fraction": overhead,
        }
    }


def bench_workloads(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Query serving: batched kernels + QueryService vs per-query dispatch.

    Three entries over a Table-I-shaped store-backed graph and a
    point-lookup-heavy serving mix (``serving_mix()``):

    - ``workloads.batched_queries`` — one workload replayed through
      the batched vectorized kernels (``run_queries_batched``) vs the
      per-query dispatch loop.  Result cardinalities are asserted
      bit-identical before timing.
    - ``workloads.service_throughput`` — the same workload served by
      ``QueryService`` request batches; ``vectorized_s`` is the best
      wall-clock across the (executor × pool size × batch size) grid
      and the ``service`` sub-dict records the full queries/sec
      curve.  Batched serving must beat per-query dispatch — the run
      asserts it.
    - ``workloads.batched_traversals`` — the frontier-vectorized BFS
      kernels (``batch_two_hop`` / ``batch_temporal_reach``) vs their
      per-query reference twins, one ``kinds`` sub-dict per traversal
      class.  Parity and zero dense materializations are asserted
      before timing; at full scale each kind must clear a 5x speedup
      floor.
    """
    from repro.graph.store import (
        TemporalEdgeStore,
        track_dense_materializations,
    )
    from repro.workloads import (
        GraphQueryEngine,
        QueryRequest,
        QueryService,
        WorkloadConfig,
        WorkloadGenerator,
        run_queries_batched,
        serving_mix,
    )
    from repro.workloads.generator import _run_query

    n, m, t_len = (200, 2400, 8) if quick else (600, 7200, 10)
    n_q = 500 if quick else 2000
    rng = np.random.default_rng(17)
    store = TemporalEdgeStore(
        n, t_len,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
        rng.normal(size=(t_len, n, 2)),
    )
    graph = DynamicAttributedGraph.from_store(store)
    config = WorkloadConfig(num_queries=n_q, mix=serving_mix(), seed=5)
    queries = WorkloadGenerator(graph, config).generate()
    engine = GraphQueryEngine(graph)

    def per_query() -> np.ndarray:
        return np.array([_run_query(engine, q) for q in queries])

    def batched() -> np.ndarray:
        return run_queries_batched(engine, queries)[0]

    with track_dense_materializations() as materialized:
        ref_cards = per_query()  # also warms the plan cache
        fast_cards = batched()
    assert np.array_equal(ref_cards, fast_cards), (
        "batched query parity violated"
    )
    assert materialized() == 0, "serving path touched a dense adjacency"
    out: Dict[str, Dict[str, float]] = {
        "workloads.batched_queries": {
            "n": n,
            "edges": m,
            "num_queries": n_q,
            "reference_s": _best_of(per_query, repeats),
            "vectorized_s": _best_of(batched, repeats),
        }
    }

    # -- concurrent serving: qps across the (executor, workers, batch) grid
    grid = [("serial", 1), ("thread", 2), ("thread", 4)]
    batch_sizes = (64, 256) if quick else (64, 256, 1024)
    curve: Dict[str, Dict[str, float]] = {}
    for executor, workers in grid:
        with QueryService(engine, executor=executor,
                          max_workers=workers) as service:
            for batch_size in batch_sizes:
                requests = [
                    QueryRequest(queries[i:i + batch_size])
                    for i in range(0, len(queries), batch_size)
                ]
                service.run_batch(requests)  # warm pool + plans
                wall = _best_of(lambda: service.run_batch(requests), repeats)
                curve[f"{executor}:w{workers}:b{batch_size}"] = {
                    "wall_s": wall,
                    "qps": n_q / wall if wall else float("inf"),
                }
    per_query_s = out["workloads.batched_queries"]["reference_s"]
    best_wall = min(entry["wall_s"] for entry in curve.values())
    assert best_wall < per_query_s, (
        f"batched serving ({best_wall:.4f}s) failed to beat per-query "
        f"dispatch ({per_query_s:.4f}s)"
    )
    out["workloads.service_throughput"] = {
        "n": n,
        "edges": m,
        "num_queries": n_q,
        "reference_s": per_query_s,
        "vectorized_s": best_wall,
        "service": curve,
    }

    # -- frontier-vectorized traversals: batched BFS vs per-query BFS
    nodes = rng.integers(0, n, size=n_q)
    hop_ts = rng.integers(0, t_len, size=n_q)
    src = rng.integers(0, n, size=n_q)
    dst = rng.integers(0, n, size=n_q)
    t0 = rng.integers(0, t_len, size=n_q)
    t1 = np.minimum(t0 + rng.integers(0, t_len, size=n_q), t_len - 1)
    per_kind = {
        "two_hop": (
            lambda: engine.batch_two_hop(nodes, hop_ts),
            lambda: engine._reference_batch_two_hop(nodes, hop_ts),
        ),
        "temporal_reach": (
            lambda: engine.batch_temporal_reach(src, dst, t0, t1),
            lambda: engine._reference_batch_temporal_reach(src, dst, t0, t1),
        ),
    }
    kinds: Dict[str, Dict[str, float]] = {}
    for name, (fast, ref) in per_kind.items():
        with track_dense_materializations() as materialized:
            fast_out = fast()
            ref_out = ref()
        assert np.array_equal(fast_out, ref_out), (
            f"batched {name} parity violated"
        )
        assert materialized() == 0, (
            f"batched {name} touched a dense adjacency"
        )
        fast_s = _best_of(fast, repeats)
        ref_s = _best_of(ref, repeats)
        speedup = ref_s / fast_s if fast_s else float("inf")
        # the headline claim: frontier-vectorized BFS answers whole
        # batches >= 5x faster than the per-query loop at bench scale
        # (the quick CI shape only has to stay ahead, not 5x ahead)
        floor = 1.0 if quick else 5.0
        assert speedup >= floor, (
            f"batched {name} speedup {speedup:.1f}x below {floor:.0f}x floor"
        )
        kinds[name] = {
            "reference_s": ref_s,
            "vectorized_s": fast_s,
            "speedup": speedup,
        }
    out["workloads.batched_traversals"] = {
        "n": n,
        "edges": m,
        "num_queries": n_q,
        "reference_s": sum(k["reference_s"] for k in kinds.values()),
        "vectorized_s": sum(k["vectorized_s"] for k in kinds.values()),
        "kinds": kinds,
    }
    return out


def bench_serving(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Multi-process serving tier: worker-count scaling vs one process.

    One ``workloads.multiprocess_throughput`` entry: ``reference_s``
    serves a Table-I-shaped serving-mix workload through the
    single-process serial ``QueryService``; ``vectorized_s`` is the
    best wall-clock of ``ProcessQueryService`` across worker counts
    (1, 2, 4), with the full queries/sec curve under ``workers``.
    Requests travel in the tier's native columnar form, so the timing
    measures the shared-memory + pipe serving path, not per-query
    Python.

    Before timing, every worker count is checked against the
    single-process results (bit-identical cardinalities) and every
    worker must report ``resident_copy_bytes == 0`` — the
    one-resident-copy invariant of the shared store segment.

    Scaling is hardware-bound: the ``>= 2x at 4 workers`` target needs
    at least 4 usable cores.  The entry records ``cpu_count`` and sets
    ``hardware_limited`` when the host cannot express the parallelism;
    on capable hosts the run *asserts* the target.
    """
    import os

    from repro.serving import ProcessQueryService, encode_queries
    from repro.workloads import (
        QueryRequest,
        QueryService,
        WorkloadConfig,
        WorkloadGenerator,
        serving_mix,
    )

    n, m, t_len = (200, 2400, 8) if quick else (600, 7200, 10)
    n_q = 4000 if quick else 40_000
    batch = 2048
    worker_counts = (1, 2, 4)
    rng = np.random.default_rng(17)
    store = TemporalEdgeStore(
        n, t_len,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
        rng.normal(size=(t_len, n, 2)),
    )
    graph = DynamicAttributedGraph.from_store(store)
    config = WorkloadConfig(num_queries=n_q, mix=serving_mix(), seed=17)
    queries = WorkloadGenerator(graph, config).generate()
    chunks = [queries[i:i + batch] for i in range(0, len(queries), batch)]
    columnar = [encode_queries(c) for c in chunks]
    plain = [QueryRequest(c) for c in chunks]

    with QueryService(graph, executor="serial") as single:
        ref_results = single.run_batch(plain)  # also warms the plan cache
        assert all(r.ok for r in ref_results)
        single_s = _best_of(lambda: single.run_batch(plain), repeats)
    ref_cards = [r.cardinalities for r in ref_results]

    workers_curve: Dict[str, Dict[str, float]] = {}
    for k in worker_counts:
        with ProcessQueryService(graph, num_workers=k) as tier:
            results = tier.run_batch(columnar)  # warm caches + pipes
            assert all(r.ok for r in results)
            for got, want in zip(results, ref_cards):
                assert np.array_equal(got.cardinalities, want), (
                    f"multiprocess serving parity violated at {k} workers"
                )
            stats = tier.worker_stats()
            assert len(stats) == k and all(
                s["resident_copy_bytes"] == 0 for s in stats
            ), "worker holds a resident store copy"
            wall = _best_of(lambda: tier.run_batch(columnar), repeats)
        workers_curve[str(k)] = {
            "wall_s": wall,
            "qps": n_q / wall if wall else float("inf"),
        }

    best_wall = min(e["wall_s"] for e in workers_curve.values())
    speedup_at_4 = single_s / workers_curve["4"]["wall_s"]
    cpu_count = len(os.sched_getaffinity(0)) if hasattr(
        os, "sched_getaffinity"
    ) else (os.cpu_count() or 1)
    hardware_limited = cpu_count < 4
    meets_target = speedup_at_4 >= 2.0
    assert meets_target or hardware_limited, (
        f"multiprocess serving reached only {speedup_at_4:.2f}x at 4 "
        f"workers on {cpu_count} cores (target: 2x)"
    )
    return {
        "workloads.multiprocess_throughput": {
            "n": n,
            "edges": m,
            "num_queries": n_q,
            "reference_s": single_s,
            "vectorized_s": best_wall,
            "single_process_qps": n_q / single_s if single_s else float("inf"),
            "workers": workers_curve,
            "speedup_at_4": speedup_at_4,
            "cpu_count": cpu_count,
            "hardware_limited": hardware_limited,
            "meets_2x_target": meets_target,
        }
    }


def bench_live(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Live serving: query-while-ingesting vs frozen-snapshot serving.

    One ``workloads.live_serving`` entry over a Table-I-shaped graph
    and the serving mix: ``reference_s`` is the per-batch p50 latency
    of a frozen serial ``QueryService``; ``vectorized_s`` the per-batch
    p50 of a ``LiveQueryService`` at the final epoch (identical work,
    so the delta is the epoch-pinning machinery).  The ``rate_curve``
    sub-dict records, per target ingest rate, the achieved sustained
    rate and the mid-ingest batch latencies while a writer thread is
    sealing timesteps concurrently.

    Three claims are asserted before the entry is written: sustained
    ingest stays above 100k events/s (pure replay, no pacing), every
    final-epoch result is bit-identical to frozen serving, each
    snapshot's edge columns own zero bytes
    (:func:`~repro.graph.live.snapshot_owned_bytes` — prefix views,
    not copies), and the live p50 stays within 2x of frozen (plus a
    5ms scheduler-jitter allowance).
    """
    import threading

    from repro.graph.live import LiveStoreBuilder, snapshot_owned_bytes
    from repro.workloads import (
        LiveQueryService,
        QueryRequest,
        QueryService,
        WorkloadConfig,
        WorkloadGenerator,
        serving_mix,
    )

    n, m, t_len = (200, 2400, 8) if quick else (600, 7200, 10)
    n_q = 500 if quick else 2000
    batch = 64
    rng = np.random.default_rng(23)
    store = TemporalEdgeStore(
        n, t_len,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
        rng.normal(size=(t_len, n, 2)),
    )
    graph = DynamicAttributedGraph.from_store(store)
    offsets = store.offsets
    config = WorkloadConfig(num_queries=n_q, mix=serving_mix(), seed=23)
    queries = WorkloadGenerator(graph, config).generate()
    requests = [
        QueryRequest(queries[i:i + batch])
        for i in range(0, len(queries), batch)
    ]

    def replay_step(builder: LiveStoreBuilder, step: int) -> None:
        lo, hi = int(offsets[step]), int(offsets[step + 1])
        builder.extend(store.src[lo:hi], store.dst[lo:hi], store.t[lo:hi])

    # -- sustained ingest rate: full unpaced replay, extend + seal
    def ingest_only() -> LiveStoreBuilder:
        builder = LiveStoreBuilder(n, t_len, attributes=store.attributes)
        for step in range(t_len):
            replay_step(builder, step)
            builder.seal_step()
        return builder

    assert ingest_only().freeze() == store, "live replay parity violated"
    ingest_s = _best_of(ingest_only, repeats)
    ingest_rate = store.num_edges / ingest_s if ingest_s else float("inf")
    assert ingest_rate >= 100_000, (
        f"live ingest sustained only {ingest_rate:,.0f} events/s "
        "(target: 100k)"
    )

    def p50_of(run) -> float:
        latencies = []
        for request in requests:
            t0 = time.perf_counter()
            run(request)
            latencies.append(time.perf_counter() - t0)
        return float(np.median(latencies))

    # -- frozen baseline: per-batch p50 of a warm serial QueryService
    with QueryService(graph, executor="serial") as frozen:
        frozen_results = frozen.run_batch(requests)  # warm the plans
        assert all(r.ok for r in frozen_results)
        frozen_cards = [r.cardinalities for r in frozen_results]
        frozen_p50 = min(
            p50_of(lambda req: frozen.run_batch([req]))
            for _ in range(repeats)
        )

    # -- live serving at a sweep of target ingest rates
    rate_curve: Dict[str, Dict[str, object]] = {}
    for label, rate in (
        ("100k", 100_000.0),
        ("400k", 400_000.0),
        ("unthrottled", None),
    ):
        builder = LiveStoreBuilder(n, t_len, attributes=store.attributes)
        writer_error: list = []
        writer_stats: Dict[str, float] = {}

        def write(builder=builder, rate=rate):
            start = time.perf_counter()
            try:
                for step in range(t_len):
                    replay_step(builder, step)
                    if rate is not None:
                        lag = (
                            builder.events_ingested / rate
                            - (time.perf_counter() - start)
                        )
                        if lag > 0:
                            time.sleep(lag)
                    builder.seal_step()
            except Exception as exc:
                writer_error.append(exc)
            finally:
                writer_stats["seconds"] = time.perf_counter() - start

        with LiveQueryService(builder, executor="serial") as live:
            writer = threading.Thread(target=write, daemon=True)
            writer.start()
            mid_latencies = []
            i = 0
            while writer.is_alive():
                request = requests[i % len(requests)]
                t0 = time.perf_counter()
                live.run_batch([request])
                mid_latencies.append(time.perf_counter() - t0)
                i += 1
            writer.join()
            assert not writer_error, f"live writer failed: {writer_error[0]}"
            final_epoch = live.refresh()
            assert final_epoch == t_len
            final_latencies = []
            for request, want in zip(requests, frozen_cards):
                t0 = time.perf_counter()
                _, results = live.run_batch([request], refresh=False)
                final_latencies.append(time.perf_counter() - t0)
                assert results[0].ok and np.array_equal(
                    results[0].cardinalities, want
                ), "live final-epoch parity with frozen serving violated"
            _, final_store = builder.snapshot()
            assert snapshot_owned_bytes(final_store) == 0, (
                "live snapshot copied its edge columns"
            )
        seconds = writer_stats["seconds"]
        rate_curve[label] = {
            "target_rate": rate,
            "events_per_s": (
                builder.events_ingested / seconds
                if seconds
                else float("inf")
            ),
            "p50_mid_ingest_batch_s": (
                float(np.median(mid_latencies)) if mid_latencies else None
            ),
            "p50_final_epoch_batch_s": float(np.median(final_latencies)),
            "mid_ingest_batches": len(mid_latencies),
        }

    live_p50 = min(
        e["p50_final_epoch_batch_s"] for e in rate_curve.values()
    )
    assert live_p50 <= 2.0 * frozen_p50 + 0.005, (
        f"live serving p50 ({live_p50:.5f}s) exceeds 2x the frozen "
        f"baseline ({frozen_p50:.5f}s)"
    )
    return {
        "workloads.live_serving": {
            "n": n,
            "edges": store.num_edges,
            "num_queries": n_q,
            "reference_s": frozen_p50,
            "vectorized_s": live_p50,
            "ingest_events_per_s": ingest_rate,
            "snapshot_owned_bytes": 0,
            "rate_curve": rate_curve,
        }
    }


def bench_reliability(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    """Reliability tax: a fully-guarded ``QueryService`` vs a bare one.

    ``reference_s`` serves a workload through a plain service,
    ``vectorized_s`` through the same service wrapped in the whole
    reliability stack — retry policy, per-request deadline, bounded
    admission — with fault injection *disabled* (the deployment
    default).  The guarantees must be free when nothing fails: the
    run asserts the guarded wall-clock stays within 5% of the bare
    one (plus a 20ms absolute allowance for scheduler jitter, as in
    ``api.pipeline_overhead``).
    """
    from repro.graph.store import TemporalEdgeStore
    from repro.reliability import RetryPolicy, fault_injector
    from repro.workloads import (
        QueryRequest,
        QueryService,
        WorkloadConfig,
        WorkloadGenerator,
        serving_mix,
    )

    n, m, t_len = (200, 2400, 8) if quick else (600, 7200, 10)
    n_q = 500 if quick else 2000
    rng = np.random.default_rng(19)
    store = TemporalEdgeStore(
        n, t_len,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
        rng.normal(size=(t_len, n, 2)),
    )
    graph = DynamicAttributedGraph.from_store(store)
    config = WorkloadConfig(num_queries=n_q, mix=serving_mix(), seed=5)
    queries = WorkloadGenerator(graph, config).generate()
    requests = [
        QueryRequest(queries[i:i + 256]) for i in range(0, len(queries), 256)
    ]
    assert not fault_injector.enabled, "injector must be disarmed here"

    guards = dict(
        retry_policy=RetryPolicy(),
        deadline_seconds=300.0,
        max_pending=len(requests),
    )
    with QueryService(graph, executor="thread", max_workers=2) as bare, \
            QueryService(graph, executor="thread", max_workers=2,
                         **guards) as guarded:
        for svc in (bare, guarded):  # warm pools and plan caches
            assert all(r.ok for r in svc.run_batch(requests))
        bare_s = _best_of(lambda: bare.run_batch(requests), repeats)
        guarded_s = _best_of(lambda: guarded.run_batch(requests), repeats)
    overhead = guarded_s / bare_s - 1.0
    assert guarded_s <= bare_s * 1.05 + 0.02, (
        f"reliability stack adds {overhead:.1%} wall-clock with faults "
        "disabled (budget: 5%)"
    )
    return {
        "reliability.overhead": {
            "n": n,
            "edges": m,
            "num_queries": n_q,
            "reference_s": bare_s,
            "vectorized_s": guarded_s,
            "overhead_fraction": overhead,
        }
    }


def bench_experiments(quick: bool) -> Dict[str, object]:
    """Reduced-scale Fig. 9 + Table III/IV wall-clock sweeps."""
    from repro.eval.experiments import run_fig9_times, run_scalability_sweep

    scale = 0.015 if quick else 0.025
    epochs = 3 if quick else 6
    edge_counts = (100, 300) if quick else (150, 500, 1200)
    out: Dict[str, object] = {}
    with profiler.enable():
        out["fig9_times"] = run_fig9_times(
            "email", scale=scale, epochs=epochs
        )
        out["table3_table4_scalability"] = run_scalability_sweep(
            edge_counts=edge_counts, scale=scale, epochs=epochs
        )
    return out


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized scales (seconds instead of minutes)",
    )
    parser.add_argument(
        "--skip-macro", action="store_true",
        help="kernel micro-benchmarks only (skip fig9/table3/table4)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per kernel (best-of)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_perf.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    profiler.reset()
    t0 = time.perf_counter()
    kernels = bench_kernels(args.quick, args.repeats)
    experiments: Dict[str, object] = {}
    if not args.skip_macro:
        experiments = bench_experiments(args.quick)
    report = {
        "schema_version": 1,
        "created_unix": time.time(),
        "total_seconds": time.perf_counter() - t0,
        "config": {
            "quick": args.quick,
            "repeats": args.repeats,
            "skip_macro": args.skip_macro,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "kernels": kernels,
        "experiments": experiments,
        "profiler": profiler.snapshot(),
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.output}")
    print(f"{'kernel':<36} {'ref_s':>9} {'vec_s':>9} {'speedup':>8}")
    for name, entry in kernels.items():
        print(
            f"{name:<36} {entry['reference_s']:>9.4f} "
            f"{entry['vectorized_s']:>9.4f} {entry['speedup']:>7.1f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
