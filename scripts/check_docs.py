#!/usr/bin/env python
"""Docs lint: every relative markdown link must resolve.

Scans the repo's markdown surface (root ``*.md``, ``docs/``,
``benchmarks/``) for ``[text](target)`` links and fails if a relative
target does not exist on disk, or if a ``#fragment`` does not match a
heading of the target file (GitHub-style slugs).  External links
(``http(s)://``) are not fetched — CI must not depend on the network.

Usage::

    python scripts/check_docs.py            # check, exit 1 on breakage
    python scripts/check_docs.py --list     # also print every link
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO = Path(__file__).resolve().parent.parent

#: Markdown files that form the documentation surface.
DOC_GLOBS = ("*.md", "docs/**/*.md", "benchmarks/**/*.md", "examples/**/*.md")

#: Machine-generated reference material (paper/related-work dumps from
#: the retrieval pipeline) — not hand-maintained documentation, may
#: carry extraction artifacts like image links.
EXCLUDE = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}

#: ``[text](target)`` — good enough for our hand-written markdown
#: (no nested brackets, no reference-style links in this repo).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced code blocks, stripped before link extraction so shell
#: snippets like ``foo(bar)`` are not mistaken for links.
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def _heading_slugs(path: Path) -> set:
    """GitHub-style anchor slugs of every heading in ``path``."""
    slugs = set()
    for line in path.read_text().splitlines():
        m = re.match(r"\s{0,3}(#{1,6})\s+(.*)", line)
        if not m:
            continue
        text = re.sub(r"[`*_\[\]()]", "", m.group(2)).strip().lower()
        slugs.add(re.sub(r"\s+", "-", re.sub(r"[^\w\s-]", "", text)))
    return slugs


def collect_links() -> List[Tuple[Path, str]]:
    """All ``(source_file, target)`` markdown links in the doc surface."""
    links = []
    seen = set()
    for glob in DOC_GLOBS:
        for md in sorted(REPO.glob(glob)):
            if md in seen or md.name in EXCLUDE:
                continue
            seen.add(md)
            text = _FENCE_RE.sub("", md.read_text())
            for target in _LINK_RE.findall(text):
                links.append((md, target))
    return links


def check() -> List[str]:
    """Return a list of human-readable breakage descriptions."""
    errors = []
    for md, target in collect_links():
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (
            md if not path_part else (md.parent / path_part).resolve()
        )
        rel = md.relative_to(REPO)
        if not resolved.exists():
            errors.append(f"{rel}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _heading_slugs(resolved):
                errors.append(
                    f"{rel}: missing anchor -> {target}"
                )
    return errors


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--list", action="store_true", help="print every link found"
    )
    args = parser.parse_args(argv)
    links = collect_links()
    if args.list:
        for md, target in links:
            print(f"{md.relative_to(REPO)} -> {target}")
    errors = check()
    for err in errors:
        print(f"BROKEN  {err}", file=sys.stderr)
    print(
        f"checked {len(links)} links across the markdown surface: "
        f"{len(errors)} broken"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
