"""Checkpoint/resume for streaming ingestion (crash safety)."""

import os

import numpy as np
import pytest

from repro.graph.streams import StreamingStoreBuilder, ingest_stream
from repro.reliability import CheckpointError

N, T, M = 30, 5, 3000


@pytest.fixture()
def events():
    rng = np.random.default_rng(9)
    return (
        rng.integers(0, N, size=M),
        rng.integers(0, N, size=M),
        rng.integers(0, T, size=M),
    )


@pytest.fixture()
def reference(events):
    return ingest_stream(events, N, T, chunk_events=256)


def _rewrite_npz(path, **overrides):
    """Rewrite a checkpoint npz with some entries replaced."""
    with np.load(path, allow_pickle=False) as data:
        payload = {key: data[key] for key in data.files}
    payload.update(overrides)
    with open(path, "wb") as fh:
        np.savez(fh, **payload)


class TestRoundTrip:
    def test_checkpoint_restores_builder_state(self, events, reference,
                                               tmp_path):
        ckpt = str(tmp_path / "ingest.ckpt.npz")
        builder = StreamingStoreBuilder(N, T, chunk_events=256)
        builder.extend(*events)
        builder.checkpoint(ckpt)

        restored = StreamingStoreBuilder.from_checkpoint(ckpt)
        assert restored.num_nodes == N
        assert restored.num_timesteps == T
        assert restored.chunk_events == 256
        assert restored.events_ingested == M
        assert restored.build() == reference

    def test_partial_checkpoint_resumes_to_identical_store(
        self, events, reference, tmp_path
    ):
        ckpt = str(tmp_path / "ingest.ckpt.npz")
        partial = StreamingStoreBuilder(N, T, chunk_events=256)
        partial.extend(events[0][:1000], events[1][:1000], events[2][:1000])
        partial.checkpoint(ckpt)
        del partial

        resumed = ingest_stream(
            events, N, T, chunk_events=256, checkpoint_path=ckpt
        )
        assert resumed == reference

    def test_checkpoint_deleted_after_successful_build(self, events,
                                                       tmp_path):
        ckpt = str(tmp_path / "ingest.ckpt.npz")
        ingest_stream(events, N, T, chunk_events=256, checkpoint_path=ckpt)
        assert not os.path.exists(ckpt)

    def test_checkpoint_overwrite_is_atomic(self, events, tmp_path):
        """Re-checkpointing the same path leaves no temp litter."""
        ckpt = str(tmp_path / "ingest.ckpt.npz")
        builder = StreamingStoreBuilder(N, T, chunk_events=256)
        builder.extend(events[0][:500], events[1][:500], events[2][:500])
        builder.checkpoint(ckpt)
        builder.extend(events[0][500:], events[1][500:], events[2][500:])
        builder.checkpoint(ckpt)
        assert os.listdir(tmp_path) == ["ingest.ckpt.npz"]
        restored = StreamingStoreBuilder.from_checkpoint(ckpt)
        assert restored.events_ingested == M


class TestCadence:
    def test_checkpoint_written_mid_stream(self, events, reference,
                                           tmp_path):
        """A producer that dies mid-stream leaves a usable checkpoint at
        the configured cadence; the rerun resumes and converges."""
        ckpt = str(tmp_path / "ingest.ckpt.npz")

        def dying_producer():
            for pos in range(0, M, 100):
                if pos == 700:
                    raise RuntimeError("producer died")
                yield (
                    events[0][pos:pos + 100],
                    events[1][pos:pos + 100],
                    events[2][pos:pos + 100],
                )

        with pytest.raises(RuntimeError, match="producer died"):
            ingest_stream(
                dying_producer(), N, T,
                chunk_events=256,
                checkpoint_path=ckpt,
                checkpoint_every_events=200,
            )
        assert os.path.exists(ckpt)
        survivor = StreamingStoreBuilder.from_checkpoint(ckpt)
        assert 0 < survivor.events_ingested <= 700
        assert survivor.events_ingested % 100 == 0  # batch-aligned

        resumed = ingest_stream(
            events, N, T, chunk_events=256, checkpoint_path=ckpt
        )
        assert resumed == reference

    def test_checkpoint_every_must_be_positive(self, events, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every_events"):
            ingest_stream(
                events, N, T,
                checkpoint_path=str(tmp_path / "c.npz"),
                checkpoint_every_events=0,
            )


class TestRejection:
    def test_missing_file_passes_through(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            StreamingStoreBuilder.from_checkpoint(tmp_path / "nope.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, data=np.arange(4))
        with pytest.raises(CheckpointError, match="not an ingestion"):
            StreamingStoreBuilder.from_checkpoint(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = str(tmp_path / "garbage.npz")
        with open(path, "wb") as fh:
            fh.write(b"this is not a zip archive at all")
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            StreamingStoreBuilder.from_checkpoint(path)

    def test_unsupported_version_rejected(self, events, tmp_path):
        ckpt = str(tmp_path / "ingest.ckpt.npz")
        builder = StreamingStoreBuilder(N, T)
        builder.extend(*events)
        builder.checkpoint(ckpt)
        _rewrite_npz(ckpt, version=np.array(99))
        with pytest.raises(CheckpointError, match="version 99"):
            StreamingStoreBuilder.from_checkpoint(ckpt)

    def test_tampered_runs_fail_checksum(self, events, tmp_path):
        ckpt = str(tmp_path / "ingest.ckpt.npz")
        builder = StreamingStoreBuilder(N, T)
        builder.extend(*events)
        builder.checkpoint(ckpt)
        with np.load(ckpt, allow_pickle=False) as data:
            src = data["run0_src"].copy()
        src[0] = (src[0] + 1) % N  # flip one edge endpoint, keep checksum
        _rewrite_npz(ckpt, run0_src=src)
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            StreamingStoreBuilder.from_checkpoint(ckpt)

    def test_mismatched_universe_rejected_on_resume(self, events, tmp_path):
        ckpt = str(tmp_path / "ingest.ckpt.npz")
        builder = StreamingStoreBuilder(N, T)
        builder.extend(*events)
        builder.checkpoint(ckpt)
        with pytest.raises(CheckpointError, match="does not match"):
            ingest_stream(events, N + 1, T, checkpoint_path=ckpt)
