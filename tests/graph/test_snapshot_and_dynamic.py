"""Tests for GraphSnapshot and DynamicAttributedGraph."""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph, GraphSnapshot


def make_adj(n, edges):
    adj = np.zeros((n, n))
    for u, v in edges:
        adj[u, v] = 1.0
    return adj


class TestGraphSnapshot:
    def test_basic_counts(self):
        snap = GraphSnapshot(make_adj(4, [(0, 1), (1, 2), (2, 0)]))
        assert snap.num_nodes == 4
        assert snap.num_edges == 3
        assert snap.num_attributes == 0

    def test_degrees(self):
        snap = GraphSnapshot(make_adj(3, [(0, 1), (0, 2), (1, 2)]))
        np.testing.assert_allclose(snap.out_degrees(), [2, 1, 0])
        np.testing.assert_allclose(snap.in_degrees(), [0, 1, 2])
        np.testing.assert_allclose(snap.degrees(), [2, 2, 2])

    def test_edges_roundtrip(self):
        edges = [(0, 1), (2, 3), (3, 0)]
        snap = GraphSnapshot.from_edges(4, edges)
        assert sorted(snap.edges()) == sorted(edges)

    def test_from_edges_drops_self_loops(self):
        snap = GraphSnapshot.from_edges(3, [(0, 0), (0, 1)])
        assert snap.num_edges == 1

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            GraphSnapshot(np.zeros((2, 3)))

    def test_rejects_non_binary(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = 0.5
        with pytest.raises(ValueError, match="binary"):
            GraphSnapshot(adj)

    def test_rejects_self_loops(self):
        adj = np.eye(3)
        with pytest.raises(ValueError, match="self-loops"):
            GraphSnapshot(adj)

    def test_rejects_nan_attributes(self):
        attrs = np.zeros((3, 2))
        attrs[0, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            GraphSnapshot(np.zeros((3, 3)), attrs)

    def test_rejects_attribute_shape_mismatch(self):
        with pytest.raises(ValueError):
            GraphSnapshot(np.zeros((3, 3)), np.zeros((4, 2)))

    def test_validate_false_skips_checks(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = 0.7
        snap = GraphSnapshot(adj, validate=False)  # no raise
        assert snap.num_nodes == 3

    def test_undirected_adjacency_symmetric(self):
        snap = GraphSnapshot(make_adj(3, [(0, 1)]))
        sym = snap.undirected_adjacency()
        np.testing.assert_array_equal(sym, sym.T)
        assert sym[0, 1] == sym[1, 0] == 1.0

    def test_copy_independent(self):
        snap = GraphSnapshot(make_adj(3, [(0, 1)]), np.ones((3, 2)))
        dup = snap.copy()
        dup.adjacency[0, 1] = 0.0
        assert snap.adjacency[0, 1] == 1.0

    def test_equality(self):
        a = GraphSnapshot(make_adj(3, [(0, 1)]))
        b = GraphSnapshot(make_adj(3, [(0, 1)]))
        c = GraphSnapshot(make_adj(3, [(1, 0)]))
        assert a == b
        assert a != c


class TestDynamicAttributedGraph:
    def test_statistics(self, tiny_graph):
        stats = tiny_graph.statistics()
        assert stats.num_nodes == 16
        assert stats.num_timesteps == 4
        assert stats.num_attributes == 2
        assert stats.num_temporal_edges == tiny_graph.num_temporal_edges
        assert "N=16" in str(stats)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DynamicAttributedGraph([])

    def test_inconsistent_nodes_rejected(self):
        snaps = [
            GraphSnapshot(np.zeros((3, 3))),
            GraphSnapshot(np.zeros((4, 4))),
        ]
        with pytest.raises(ValueError, match="nodes"):
            DynamicAttributedGraph(snaps)

    def test_inconsistent_attrs_rejected(self):
        snaps = [
            GraphSnapshot(np.zeros((3, 3)), np.zeros((3, 2))),
            GraphSnapshot(np.zeros((3, 3)), np.zeros((3, 1))),
        ]
        with pytest.raises(ValueError, match="attributes"):
            DynamicAttributedGraph(snaps)

    def test_indexing_and_slicing(self, tiny_graph):
        assert isinstance(tiny_graph[0], GraphSnapshot)
        sliced = tiny_graph[1:3]
        assert isinstance(sliced, DynamicAttributedGraph)
        assert sliced.num_timesteps == 2
        assert sliced[0] == tiny_graph[1]

    def test_iteration(self, tiny_graph):
        assert len(list(tiny_graph)) == 4

    def test_tensors_shapes(self, tiny_graph):
        assert tiny_graph.adjacency_tensor().shape == (4, 16, 16)
        assert tiny_graph.attribute_tensor().shape == (4, 16, 2)

    def test_from_tensors_roundtrip(self, tiny_graph):
        rebuilt = DynamicAttributedGraph.from_tensors(
            tiny_graph.adjacency_tensor(), tiny_graph.attribute_tensor()
        )
        assert rebuilt == tiny_graph

    def test_from_tensors_bad_ndim(self):
        with pytest.raises(ValueError):
            DynamicAttributedGraph.from_tensors(np.zeros((3, 3)))

    def test_truncated(self, tiny_graph):
        prefix = tiny_graph.truncated(2)
        assert prefix.num_timesteps == 2
        with pytest.raises(IndexError):
            tiny_graph.truncated(0)
        with pytest.raises(IndexError):
            tiny_graph.truncated(99)

    def test_active_nodes(self):
        snaps = [GraphSnapshot(make_adj(4, [(0, 1)]))]
        g = DynamicAttributedGraph(snaps)
        np.testing.assert_array_equal(g.active_nodes(0), [0, 1])

    def test_copy_independent(self, tiny_graph):
        dup = tiny_graph.copy()
        dup[0].adjacency[:] = 0
        assert tiny_graph[0].num_edges > 0
