"""Structural analytics tests, including networkx cross-checks."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import GraphSnapshot
from repro.graph import properties as props


def snapshot_from_nx(g: nx.DiGraph, n: int) -> GraphSnapshot:
    adj = np.zeros((n, n))
    for u, v in g.edges():
        adj[u, v] = 1.0
    return GraphSnapshot(adj)


@pytest.fixture
def random_digraph(rng):
    n = 20
    g = nx.gnp_random_graph(n, 0.15, seed=3, directed=True)
    return snapshot_from_nx(g, n), g


class TestDegreeHistogram:
    def test_normalized(self):
        h = props.degree_histogram(np.array([0, 1, 1, 3]))
        assert h.sum() == pytest.approx(1.0)
        assert len(h) == 4

    def test_fixed_max(self):
        h = props.degree_histogram(np.array([1, 1]), max_degree=5)
        assert len(h) == 6

    def test_empty(self):
        h = props.degree_histogram(np.array([], dtype=int))
        assert h.sum() == 0


class TestClustering:
    def test_matches_networkx(self, random_digraph):
        snap, g = random_digraph
        ours = props.clustering_coefficients(snap)
        theirs = nx.clustering(g.to_undirected())
        for i in range(snap.num_nodes):
            assert ours[i] == pytest.approx(theirs[i], abs=1e-9)

    def test_triangle_graph(self):
        snap = GraphSnapshot.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        np.testing.assert_allclose(props.clustering_coefficients(snap), 1.0)

    def test_no_edges(self):
        snap = GraphSnapshot(np.zeros((4, 4)))
        np.testing.assert_allclose(props.clustering_coefficients(snap), 0.0)


class TestWedgeTriangle:
    def test_matches_networkx_triangles(self, random_digraph):
        snap, g = random_digraph
        nx_tri = sum(nx.triangles(g.to_undirected()).values()) // 3
        assert props.triangle_count(snap) == nx_tri

    def test_star_wedges(self):
        # star with 4 leaves: center degree 4 -> C(4,2)=6 wedges
        snap = GraphSnapshot.from_edges(5, [(0, i) for i in range(1, 5)])
        assert props.wedge_count(snap) == 6

    def test_triangle_wedges(self):
        snap = GraphSnapshot.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert props.wedge_count(snap) == 3


class TestComponents:
    def test_matches_networkx(self, random_digraph):
        snap, g = random_digraph
        nx_comps = list(nx.connected_components(g.to_undirected()))
        ours = props.connected_components(snap)
        assert len(ours) == len(nx_comps)
        assert props.largest_component_size(snap) == max(
            len(c) for c in nx_comps
        )

    def test_component_count_excludes_singletons(self):
        snap = GraphSnapshot.from_edges(5, [(0, 1), (2, 3)])
        assert props.component_count(snap) == 2
        assert props.component_count(snap, include_singletons=True) == 3

    def test_fully_disconnected(self):
        snap = GraphSnapshot(np.zeros((4, 4)))
        assert props.component_count(snap) == 0
        assert props.largest_component_size(snap) == 1


class TestCoreness:
    def test_matches_networkx(self, random_digraph):
        snap, g = random_digraph
        und = g.to_undirected()
        und.remove_edges_from(nx.selfloop_edges(und))
        theirs = nx.core_number(und)
        ours = props.coreness(snap)
        for i in range(snap.num_nodes):
            assert ours[i] == theirs.get(i, 0)

    def test_clique_coreness(self):
        n = 5
        adj = np.ones((n, n)) - np.eye(n)
        snap = GraphSnapshot(adj)
        np.testing.assert_array_equal(props.coreness(snap), n - 1)


class TestPowerLawExponent:
    def test_recovers_known_alpha(self):
        from scipy import stats

        alpha = 2.5
        samples = stats.zipf.rvs(alpha, size=20000, random_state=1)
        # the (d_min - 1/2) continuity-corrected MLE is accurate for
        # d_min >= 2 on discrete power laws (Clauset et al.)
        est = props.power_law_exponent(samples, d_min=2)
        assert abs(est - alpha) < 0.15

    def test_empty_degrees_nan(self):
        assert np.isnan(props.power_law_exponent(np.array([0, 0])))

    def test_greater_than_one(self, rng):
        degs = rng.integers(1, 50, size=100)
        assert props.power_law_exponent(degs) > 1.0


class TestStructureSummary:
    def test_keys(self, tiny_snapshot):
        summary = props.structure_summary(tiny_snapshot)
        assert set(summary) == {"in_ple", "out_ple", "wedge_count", "nc", "lcc"}
        assert all(np.isfinite(v) or np.isnan(v) for v in summary.values())
