"""Epoch-consistency harness for live ingestion (``repro.graph.live``).

The invariant this file pins (and ``docs/workloads.md`` documents):
**every query at epoch E is bit-identical to the same query against a
bulk-built store of E's sealed event prefix**, across all five batched
kernels and the per-query fallbacks, no matter how appends, seals and
snapshots interleave.

Randomized streams follow the repo's chaos convention: the schedule is
a pure function of ``REPRO_CHAOS_SEED`` (default 0), so a CI failure
reproduces locally with the same seed.
"""

import os

import numpy as np
import pytest

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.live import LiveStoreBuilder, snapshot_owned_bytes
from repro.graph.store import TemporalEdgeStore
from repro.graph.streams import ingest_stream
from repro.reliability import FaultPlan, InjectedFault, fault_injector
from repro.workloads import GraphQueryEngine

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

N, T = 40, 6


def random_events(rng, m, n=N, t_len=T):
    """Raw event columns with loops and duplicates (canonicalization food)."""
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    t = rng.integers(0, t_len, size=m)
    dups = rng.integers(0, m, size=m // 4)  # force duplicate events
    return (
        np.concatenate([src, src[dups]]),
        np.concatenate([dst, dst[dups]]),
        np.concatenate([t, t[dups]]),
    )


def bulk_prefix(src, dst, t, epoch, attrs=None, n=N, t_len=T):
    """Bulk-built store of the events with ``t < epoch`` — the oracle."""
    keep = t < epoch
    return TemporalEdgeStore(n, t_len, src[keep], dst[keep], t[keep], attrs)


def feed_interleaved(builder, src, dst, t, rng):
    """Append the stream in random chunks, never ahead of the seal front.

    Yields ``(epoch, snapshot)`` after every seal so callers can check
    each epoch as it is born.  Events for already-sealed steps are
    withheld (not late) — the stream is replayed in seal order, but
    chunk sizes, intra-step order and snapshot timing are randomized.
    """
    order = np.argsort(t, kind="stable")
    src, dst, t = src[order], dst[order], t[order]
    bounds = np.searchsorted(t, np.arange(T + 1))
    cursors = bounds[:-1].copy()
    while builder.epoch < T:
        step = builder.epoch
        # drain this step's remaining events in 1..3 random chunks
        while cursors[step] < bounds[step + 1]:
            hi = int(
                rng.integers(cursors[step] + 1, bounds[step + 1] + 1)
            )
            sel = slice(int(cursors[step]), hi)
            perm = rng.permutation(hi - int(cursors[step]))
            builder.extend(src[sel][perm], dst[sel][perm], t[sel][perm])
            cursors[step] = hi
            if rng.random() < 0.3:
                builder.snapshot()  # mid-step snapshot: must be stable
        epoch = builder.seal_step()
        yield epoch, builder.snapshot()


class TestEpochConsistency:
    def test_every_epoch_matches_bulk_prefix_store(self):
        rng = np.random.default_rng(CHAOS_SEED)
        src, dst, t = random_events(rng, 400)
        builder = LiveStoreBuilder(N, T)
        seen = 0
        for epoch, (snap_epoch, snap) in feed_interleaved(
            builder, src, dst, t, rng
        ):
            assert snap_epoch == epoch
            assert snap == bulk_prefix(src, dst, t, epoch)
            assert snapshot_owned_bytes(snap) == 0
            seen += 1
        assert seen == T

    def test_batched_kernels_bit_identical_per_epoch(self):
        rng = np.random.default_rng(CHAOS_SEED + 1)
        src, dst, t = random_events(rng, 300)
        attrs = rng.normal(size=(T, N, 2))
        builder = LiveStoreBuilder(N, T, attributes=attrs)
        q = 64
        nodes = rng.integers(0, N, size=q)
        qsrc = rng.integers(0, N, size=q)
        qdst = rng.integers(0, N, size=q)
        qts = rng.integers(0, T, size=q)
        qt0 = rng.integers(0, T, size=q)
        qt1 = qt0 + rng.integers(0, T - qt0)
        dims = rng.integers(0, 2, size=q)
        lo = rng.normal(size=q) - 0.5
        hi = lo + rng.random(size=q) * 2
        for epoch, (_, snap) in feed_interleaved(builder, src, dst, t, rng):
            live = GraphQueryEngine(DynamicAttributedGraph.from_store(snap))
            oracle = GraphQueryEngine(
                DynamicAttributedGraph.from_store(
                    bulk_prefix(src, dst, t, epoch, attrs)
                )
            )
            for direction in ("out", "in", "total"):
                assert np.array_equal(
                    live.batch_degrees(nodes, qts, direction),
                    oracle.batch_degrees(nodes, qts, direction),
                )
            for direction in ("out", "in"):
                got = live.batch_neighbors(nodes, qts, direction)
                want = oracle.batch_neighbors(nodes, qts, direction)
                assert np.array_equal(got[0], want[0])
                assert np.array_equal(got[1], want[1])
            assert np.array_equal(
                live.batch_has_edge(qsrc, qdst, qts),
                oracle.batch_has_edge(qsrc, qdst, qts),
            )
            assert np.array_equal(
                live.batch_edge_window_counts(qsrc, qdst, qt0, qt1),
                oracle.batch_edge_window_counts(qsrc, qdst, qt0, qt1),
            )
            assert np.array_equal(
                live.batch_attribute_range_counts(qts, dims, lo, hi),
                oracle.batch_attribute_range_counts(qts, dims, lo, hi),
            )

    def test_per_query_fallbacks_bit_identical_per_epoch(self):
        rng = np.random.default_rng(CHAOS_SEED + 2)
        src, dst, t = random_events(rng, 250)
        attrs = rng.normal(size=(T, N, 1))
        builder = LiveStoreBuilder(N, T, attributes=attrs)
        for epoch, (_, snap) in feed_interleaved(builder, src, dst, t, rng):
            live = GraphQueryEngine(DynamicAttributedGraph.from_store(snap))
            oracle = GraphQueryEngine(
                DynamicAttributedGraph.from_store(
                    bulk_prefix(src, dst, t, epoch, attrs)
                )
            )
            for _ in range(10):
                v = int(rng.integers(0, N))
                u = int(rng.integers(0, N))
                ts = int(rng.integers(0, T))
                t0 = int(rng.integers(0, T))
                t1 = int(rng.integers(t0, T))
                assert live.out_neighbors(v, ts) == oracle.out_neighbors(v, ts)
                assert live.in_neighbors(v, ts) == oracle.in_neighbors(v, ts)
                assert live.has_edge(u, v, ts) == oracle.has_edge(u, v, ts)
                assert live.k_hop(v, ts, 2) == oracle.k_hop(v, ts, 2)
                assert live.triangle_count(ts) == oracle.triangle_count(ts)
                assert live.degree_topk(ts, 5) == oracle.degree_topk(ts, 5)
                assert live.temporal_reachable(u, v, t0, t1) == (
                    oracle.temporal_reachable(u, v, t0, t1)
                )
                assert live.edge_window_count(u, v, t0, t1) == (
                    oracle.edge_window_count(u, v, t0, t1)
                )
                assert live.attribute_range(ts, 0, -0.5, 0.5) == (
                    oracle.attribute_range(ts, 0, -0.5, 0.5)
                )

    def test_unsealed_timesteps_are_visible_but_empty(self):
        builder = LiveStoreBuilder(N, T)
        builder.add(1, 2, 0)
        builder.add(3, 4, 3)
        builder.seal_step()
        epoch, snap = builder.snapshot()
        assert epoch == 1
        engine = GraphQueryEngine(DynamicAttributedGraph.from_store(snap))
        assert engine.out_neighbors(1, 0) == [2]
        # t=3 has a buffered event, invisible until sealed
        assert engine.out_neighbors(3, 3) == []
        assert not engine.has_edge(3, 4, 3)


class TestSnapshotMechanics:
    def test_epochs_are_monotone_and_snapshots_cached(self):
        rng = np.random.default_rng(CHAOS_SEED + 3)
        src, dst, t = random_events(rng, 120)
        builder = LiveStoreBuilder(N, T)
        last = builder.epoch
        assert last == 0
        for epoch, _ in feed_interleaved(builder, src, dst, t, rng):
            assert epoch == last + 1
            # same-epoch snapshots return the identical store object
            assert builder.snapshot()[1] is builder.snapshot()[1]
            last = epoch

    def test_snapshot_survives_capacity_growth(self):
        builder = LiveStoreBuilder(N, T, initial_capacity=16)
        rng = np.random.default_rng(CHAOS_SEED + 4)
        src, dst, t = random_events(rng, 30)
        t = np.zeros_like(t)
        builder.extend(src, dst, t)
        builder.seal_step()
        _, early = builder.snapshot()
        frozen = early.src.copy(), early.dst.copy(), early.t.copy()
        # force several reallocations past the early snapshot's view
        big = np.arange(2000) % N
        builder.extend(big, (big + 1) % N, np.full(big.size, 2))
        builder.seal_step()
        builder.seal_step()
        assert np.array_equal(early.src, frozen[0])
        assert np.array_equal(early.dst, frozen[1])
        assert np.array_equal(early.t, frozen[2])

    def test_freeze_equals_bulk_and_streaming_ingest(self):
        rng = np.random.default_rng(CHAOS_SEED + 5)
        src, dst, t = random_events(rng, 200)
        builder = LiveStoreBuilder(N, T)
        for _ in feed_interleaved(builder, src, dst, t, rng):
            pass
        final = builder.freeze()
        assert final == TemporalEdgeStore(N, T, src, dst, t)
        assert final == ingest_stream((src, dst, t), N, T, chunk_events=64)

    def test_freeze_seals_remaining_steps(self):
        builder = LiveStoreBuilder(N, T)
        builder.add(0, 1, 4)
        final = builder.freeze()
        assert builder.epoch == T
        assert final.num_edges == 1


class TestLatePolicy:
    def test_error_policy_raises_and_preserves_builder(self):
        builder = LiveStoreBuilder(N, T)
        builder.add(1, 2, 0)
        builder.seal_step()
        with pytest.raises(ValueError, match="sealed"):
            builder.add(3, 4, 0)
        assert builder.events_ingested == 1
        assert builder.snapshot()[1].num_edges == 1

    def test_drop_policy_counts_and_filters(self):
        builder = LiveStoreBuilder(N, T, late_policy="drop")
        builder.add(1, 2, 0)
        builder.seal_step()
        accepted = builder.extend(
            np.array([3, 5]), np.array([4, 6]), np.array([0, 1])
        )
        assert accepted == 1  # the t=0 event is late, the t=1 one lands
        assert builder.late_events == 1
        builder.seal_step()
        assert builder.snapshot()[1].num_edges == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="late_policy"):
            LiveStoreBuilder(N, T, late_policy="ignore")


class TestSealFaultAtomicity:
    def test_faulted_seal_leaves_builder_unchanged_and_retryable(self):
        rng = np.random.default_rng(CHAOS_SEED + 6)
        src, dst, t = random_events(rng, 150)
        builder = LiveStoreBuilder(N, T)
        order = np.argsort(t, kind="stable")
        builder.extend(src[order], dst[order], t[order])
        plans = {
            "live.advance_epoch": FaultPlan(rate=1.0, max_triggers=2)
        }
        with fault_injector.arm(plans, seed=CHAOS_SEED):
            before = builder.snapshot()
            pending = builder.pending_events
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    builder.seal_step()
                assert builder.epoch == 0
                assert builder.pending_events == pending
                assert builder.snapshot() == before
            # triggers exhausted: the retry succeeds and the result is
            # exactly what an unfaulted seal would have produced
            assert builder.seal_step() == 1
        assert builder.snapshot()[1] == bulk_prefix(src, dst, t, 1)

    def test_snapshot_fault_propagates_but_builder_survives(self):
        builder = LiveStoreBuilder(N, T)
        builder.add(1, 2, 0)
        builder.seal_step()
        plans = {"live.snapshot": FaultPlan(rate=1.0, max_triggers=1)}
        with fault_injector.arm(plans, seed=CHAOS_SEED):
            with pytest.raises(InjectedFault):
                builder.snapshot()
            epoch, snap = builder.snapshot()
        assert epoch == 1 and snap.num_edges == 1


class TestValidation:
    def test_out_of_range_events_rejected(self):
        builder = LiveStoreBuilder(N, T)
        with pytest.raises(ValueError):
            builder.add(N, 0, 0)
        with pytest.raises(ValueError):
            builder.add(0, 1, T)
        with pytest.raises(ValueError):
            builder.extend(
                np.array([1, 2]), np.array([3]), np.array([0, 0])
            )
        assert builder.events_ingested == 0

    def test_attribute_block_validated(self):
        with pytest.raises(ValueError, match="attributes"):
            LiveStoreBuilder(N, T, attributes=np.zeros((T, N + 1, 2)))
        bad = np.zeros((T, N, 1))
        bad[0, 0, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            LiveStoreBuilder(N, T, attributes=bad)

    def test_empty_extend_is_a_noop(self):
        builder = LiveStoreBuilder(N, T)
        assert builder.extend(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
        ) == 0
