"""Tests for CSV interop (edge streams, event streams, attributes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicAttributedGraph, TemporalEdgeList
from repro.graph.formats import (
    export_graph_csv,
    import_graph_csv,
    read_attribute_csv,
    read_edge_csv,
    read_event_csv,
    write_attribute_csv,
    write_edge_csv,
    write_event_csv,
)
from repro.graph.streams import InteractionStream


def sample_graph(seed=0, n=8, t=3, f=2):
    rng = np.random.default_rng(seed)
    adj = (rng.random((t, n, n)) < 0.25).astype(float)
    for k in range(t):
        np.fill_diagonal(adj[k], 0.0)
    attrs = rng.normal(size=(t, n, f)).round(6)
    return DynamicAttributedGraph.from_tensors(adj, attrs)


class TestEdgeCsv:
    def test_round_trip(self, tmp_path):
        tel = TemporalEdgeList(5, 3, [(0, 1, 0), (1, 2, 1), (4, 3, 2)])
        path = tmp_path / "edges.csv"
        write_edge_csv(tel, path)
        back = read_edge_csv(path, num_nodes=5, num_timesteps=3)
        assert sorted(back.edges) == sorted(tel.edges)

    def test_universe_inferred(self, tmp_path):
        tel = TemporalEdgeList(5, 3, [(0, 4, 2)])
        path = tmp_path / "edges.csv"
        write_edge_csv(tel, path)
        back = read_edge_csv(path)
        assert back.num_nodes == 5
        assert back.num_timesteps == 3

    def test_header_required(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("0,1,0\n")
        with pytest.raises(ValueError, match="expected header"):
            read_edge_csv(path)

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("src,dst,t\n0,1\n")
        with pytest.raises(ValueError, match="edges.csv:2"):
            read_edge_csv(path)

    def test_non_integer_rejected_with_line(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("src,dst,t\n0,1,0\na,b,c\n")
        with pytest.raises(ValueError, match="edges.csv:3"):
            read_edge_csv(path)

    def test_negative_rejected(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("src,dst,t\n0,-1,0\n")
        with pytest.raises(ValueError, match="negative"):
            read_edge_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_edge_csv(path)

    def test_no_edges_no_universe_rejected(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("src,dst,t\n")
        with pytest.raises(ValueError, match="universe"):
            read_edge_csv(path)


class TestEventCsv:
    def test_round_trip_preserves_float_times(self, tmp_path):
        stream = InteractionStream(
            4, [(0, 1, 0.123456789), (2, 3, 1.5), (1, 0, 2.25)]
        )
        path = tmp_path / "events.csv"
        write_event_csv(stream, path)
        back = read_event_csv(path, num_nodes=4)
        assert back == stream

    def test_malformed_time_rejected(self, tmp_path):
        path = tmp_path / "events.csv"
        path.write_text("src,dst,time\n0,1,notatime\n")
        with pytest.raises(ValueError, match="events.csv:2"):
            read_event_csv(path)


class TestAttributeCsv:
    def test_round_trip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "attrs.csv"
        write_attribute_csv(g, path)
        back = read_attribute_csv(path)
        np.testing.assert_allclose(back, g.attribute_tensor())

    def test_duplicate_cell_rejected(self, tmp_path):
        path = tmp_path / "attrs.csv"
        path.write_text("t,node,x0\n0,0,1.0\n0,0,2.0\n")
        with pytest.raises(ValueError, match="duplicate"):
            read_attribute_csv(path)

    def test_sparse_table_rejected(self, tmp_path):
        path = tmp_path / "attrs.csv"
        path.write_text("t,node,x0\n0,0,1.0\n1,1,2.0\n")
        with pytest.raises(ValueError, match="sparse"):
            read_attribute_csv(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "attrs.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(ValueError, match="t,node"):
            read_attribute_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "attrs.csv"
        path.write_text("t,node,x0\n")
        with pytest.raises(ValueError, match="no attribute rows"):
            read_attribute_csv(path)


class TestWholeGraph:
    def test_export_import_round_trip(self, tmp_path):
        g = sample_graph()
        edge_path = tmp_path / "e.csv"
        attr_path = tmp_path / "a.csv"
        export_graph_csv(g, edge_path, attr_path)
        back = import_graph_csv(edge_path, attr_path)
        assert back == g

    def test_import_structure_only(self, tmp_path):
        g = sample_graph(f=2)
        edge_path = tmp_path / "e.csv"
        write_edge_csv(TemporalEdgeList.from_dynamic_graph(g), edge_path)
        back = import_graph_csv(
            edge_path, num_nodes=g.num_nodes, num_timesteps=g.num_timesteps
        )
        assert np.array_equal(back.adjacency_tensor(), g.adjacency_tensor())
        assert back.num_attributes == 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(2, 10), t=st.integers(1, 5))
def test_property_csv_round_trip(tmp_path_factory, seed, n, t):
    """export -> import is the identity for any dense attributed graph."""
    tmp = tmp_path_factory.mktemp("fmt")
    rng = np.random.default_rng(seed)
    adj = (rng.random((t, n, n)) < 0.3).astype(float)
    for k in range(t):
        np.fill_diagonal(adj[k], 0.0)
    attrs = rng.normal(size=(t, n, 2))
    g = DynamicAttributedGraph.from_tensors(adj, attrs)
    export_graph_csv(g, tmp / "e.csv", tmp / "a.csv")
    back = import_graph_csv(tmp / "e.csv", tmp / "a.csv")
    assert np.array_equal(back.adjacency_tensor(), g.adjacency_tensor())
    np.testing.assert_allclose(back.attribute_tensor(), g.attribute_tensor())
