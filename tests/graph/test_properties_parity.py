"""CSR property kernels pinned to their dense ``_reference_*`` twins.

Mirrors the ``tests/graph/test_sparse_parity.py`` pattern: every
metric migrated off dense adjacency in ``repro.graph.properties`` must
agree with the original dense implementation, on dense-backed and
store-backed snapshots alike.
"""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.graph import properties as props


def _random_snapshot(n, density, seed):
    rng = np.random.default_rng(seed)
    adj = (rng.random((n, n)) < density).astype(float)
    np.fill_diagonal(adj, 0.0)
    return GraphSnapshot(adj)


def _store_backed(snapshot):
    graph = DynamicAttributedGraph([snapshot])
    return DynamicAttributedGraph.from_store(graph.store)[0]


SNAPSHOTS = [
    _random_snapshot(20, 0.15, 0),
    _random_snapshot(40, 0.05, 1),
    _random_snapshot(12, 0.5, 2),
    GraphSnapshot(np.zeros((6, 6))),  # empty
]


@pytest.fixture(params=range(len(SNAPSHOTS)), ids=lambda i: f"graph{i}")
def snap_pair(request):
    dense = SNAPSHOTS[request.param]
    return dense, _store_backed(dense)


class TestPropertiesParity:
    def test_clustering(self, snap_pair):
        dense, stored = snap_pair
        ref = props._reference_clustering_coefficients(dense)
        np.testing.assert_allclose(props.clustering_coefficients(dense), ref)
        np.testing.assert_allclose(props.clustering_coefficients(stored), ref)

    def test_wedges_and_triangles(self, snap_pair):
        dense, stored = snap_pair
        assert props.wedge_count(stored) == props._reference_wedge_count(dense)
        assert (
            props.triangle_count(stored)
            == props._reference_triangle_count(dense)
        )

    def test_components(self, snap_pair):
        dense, stored = snap_pair
        ref = props._reference_connected_components(dense)
        got = props.connected_components(stored)
        assert len(got) == len(ref)
        for a, b in zip(got, ref):
            np.testing.assert_array_equal(a, b)
        ref_nc = sum(1 for c in ref if len(c) > 1)
        assert props.component_count(stored) == ref_nc
        assert props.largest_component_size(stored) == max(
            (len(c) for c in ref), default=0
        )

    def test_coreness(self, snap_pair):
        dense, stored = snap_pair
        ref = props._reference_coreness(dense)
        np.testing.assert_array_equal(props.coreness(dense), ref)
        np.testing.assert_array_equal(props.coreness(stored), ref)

    def test_reciprocity(self, snap_pair):
        dense, stored = snap_pair
        ref = props._reference_reciprocity(dense)
        assert props.reciprocity(stored) == pytest.approx(ref)

    def test_assortativity(self, snap_pair):
        dense, stored = snap_pair
        ref = props._reference_degree_assortativity(dense)
        assert props.degree_assortativity(stored) == pytest.approx(ref)

    def test_pagerank(self, snap_pair):
        dense, stored = snap_pair
        ref = props._reference_pagerank(dense)
        np.testing.assert_allclose(props.pagerank(stored), ref, atol=1e-9)

    def test_structure_summary(self, snap_pair):
        dense, stored = snap_pair
        ref = props._reference_structure_summary(dense)
        got = props.structure_summary(stored)
        assert set(got) == set(ref)
        for key in ref:
            if np.isnan(ref[key]):
                assert np.isnan(got[key])
            else:
                assert got[key] == pytest.approx(ref[key])
