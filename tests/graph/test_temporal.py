"""Tests for the temporal edge stream view."""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph, GraphSnapshot, TemporalEdgeList


class TestTemporalEdgeList:
    def test_add_and_len(self):
        tel = TemporalEdgeList(5, 3)
        tel.add(0, 1, 0)
        tel.add(1, 2, 2)
        assert len(tel) == 2

    def test_self_loops_ignored(self):
        tel = TemporalEdgeList(5, 3)
        tel.add(2, 2, 0)
        assert len(tel) == 0

    def test_out_of_range_node(self):
        tel = TemporalEdgeList(3, 2)
        with pytest.raises(ValueError):
            tel.add(0, 5, 0)

    def test_out_of_range_time(self):
        tel = TemporalEdgeList(3, 2)
        with pytest.raises(ValueError):
            tel.add(0, 1, 7)

    def test_edges_at(self):
        tel = TemporalEdgeList(4, 2, [(0, 1, 0), (1, 2, 1), (2, 3, 1)])
        assert tel.edges_at(0) == [(0, 1)]
        assert sorted(tel.edges_at(1)) == [(1, 2), (2, 3)]

    def test_neighbors_at(self):
        tel = TemporalEdgeList(4, 2, [(0, 1, 0), (0, 2, 0), (1, 3, 1)])
        nbrs = tel.neighbors_at(0)
        assert sorted(nbrs[0]) == [1, 2]
        assert 1 not in nbrs

    def test_temporal_neighbors(self):
        tel = TemporalEdgeList(4, 3, [(0, 1, 0), (0, 2, 2)])
        tn = tel.temporal_neighbors()
        assert sorted(tn[0]) == [(1, 0), (2, 2)]

    def test_roundtrip_with_dynamic_graph(self, tiny_graph):
        tel = TemporalEdgeList.from_dynamic_graph(tiny_graph)
        assert len(tel) == tiny_graph.num_temporal_edges
        rebuilt = tel.to_dynamic_graph(attributes=tiny_graph.attribute_tensor())
        assert rebuilt == tiny_graph

    def test_roundtrip_without_attributes(self, structure_only_graph):
        tel = TemporalEdgeList.from_dynamic_graph(structure_only_graph)
        rebuilt = tel.to_dynamic_graph()
        np.testing.assert_array_equal(
            rebuilt.adjacency_tensor(), structure_only_graph.adjacency_tensor()
        )

    def test_subsample_reduces(self, tiny_graph, rng):
        tel = TemporalEdgeList.from_dynamic_graph(tiny_graph)
        sub = tel.subsample(10, rng)
        assert len(sub) == 10
        # subsampled edges are a subset of the originals
        assert set(sub.edges) <= set(tel.edges)

    def test_subsample_noop_when_small(self, rng):
        tel = TemporalEdgeList(4, 2, [(0, 1, 0)])
        sub = tel.subsample(100, rng)
        assert len(sub) == 1
