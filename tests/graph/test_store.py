"""Round-trip and contract tests for the columnar temporal edge store.

Covers the dense ↔ store ↔ stream bridges on the awkward shapes —
empty graphs, attribute-less graphs (F=0), single-timestep graphs,
duplicate temporal edges — plus io persistence through the store and
the dense-materialization accounting.
"""

import numpy as np
import pytest

from repro.graph import (
    DynamicAttributedGraph,
    GraphSnapshot,
    TemporalEdgeList,
    TemporalEdgeStore,
    TemporalEdgeStoreBuilder,
    io as graph_io,
    track_dense_materializations,
)


def make_store(edges, n=5, t_len=3, attrs=None):
    arr = np.asarray(edges, dtype=np.int64).reshape(-1, 3)
    return TemporalEdgeStore(n, t_len, arr[:, 0], arr[:, 1], arr[:, 2], attrs)


class TestTemporalEdgeStore:
    def test_canonical_order_and_dedup(self):
        store = make_store(
            [(2, 3, 1), (0, 1, 0), (2, 3, 1), (1, 0, 0), (0, 1, 1)]
        )
        assert store.num_edges == 4  # duplicate (2,3,1) collapsed
        np.testing.assert_array_equal(store.t, [0, 0, 1, 1])
        np.testing.assert_array_equal(store.src, [0, 1, 0, 2])
        np.testing.assert_array_equal(store.dst, [1, 0, 1, 3])
        np.testing.assert_array_equal(store.offsets, [0, 2, 4, 4])

    def test_self_loops_dropped(self):
        store = make_store([(1, 1, 0), (0, 1, 0)])
        assert store.num_edges == 1

    def test_range_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            make_store([(0, 9, 0)])
        with pytest.raises(ValueError, match="out of range"):
            make_store([(0, 1, 7)])

    def test_csr_and_degrees(self):
        store = make_store([(0, 1, 0), (0, 2, 0), (2, 1, 0)])
        indptr, indices = store.csr_at(0)
        assert indptr.shape == (6,)
        np.testing.assert_array_equal(indices[indptr[0]:indptr[1]], [1, 2])
        np.testing.assert_array_equal(store.out_degrees_at(0), [2, 0, 1, 0, 0])
        np.testing.assert_array_equal(store.in_degrees_at(0), [0, 2, 1, 0, 0])

    def test_csc_reverse_index(self):
        store = make_store([(0, 1, 0), (2, 1, 0), (1, 0, 0)])
        indptr, rev_src = store.csc_at(0)
        # in-neighbours of node 1 are {0, 2}
        np.testing.assert_array_equal(
            np.sort(rev_src[indptr[1]:indptr[2]]), [0, 2]
        )

    def test_dense_adjacency_counts_and_is_readonly(self):
        store = make_store([(0, 1, 0)])
        with track_dense_materializations() as materialized:
            adj = store.dense_adjacency(0)
            assert materialized() == 1
        assert adj[0, 1] == 1.0
        assert not adj.flags.writeable

    def test_slice_timesteps(self):
        store = make_store([(0, 1, 0), (1, 2, 1), (2, 3, 2)])
        part = store.slice_timesteps(1, 3)
        assert part.num_timesteps == 2
        np.testing.assert_array_equal(part.t, [0, 1])
        np.testing.assert_array_equal(part.src, [1, 2])

    def test_attribute_block_shape_enforced(self):
        with pytest.raises(ValueError, match="attributes"):
            make_store([(0, 1, 0)], attrs=np.zeros((2, 5, 1)))

    def test_with_attributes_shares_columns(self):
        store = make_store([(0, 1, 0)])
        dressed = store.with_attributes(np.ones((3, 5, 2)))
        assert np.shares_memory(dressed.src, store.src)
        assert dressed.num_attributes == 2


class TestBuilder:
    def test_builder_round_trip(self):
        builder = TemporalEdgeStoreBuilder(4, 1)
        builder.add_step([0, 2, 0], [1, 3, 1], np.ones((4, 1)))
        builder.add_step([], [], np.zeros((4, 1)))
        store = builder.build()
        assert store.num_timesteps == 2
        assert store.num_edges == 2  # duplicate (0, 1) collapsed
        assert store.num_edges_at(1) == 0
        np.testing.assert_array_equal(store.attributes[0], np.ones((4, 1)))

    def test_builder_rejects_bad_shapes(self):
        builder = TemporalEdgeStoreBuilder(4, 0)
        with pytest.raises(ValueError, match="out of range"):
            builder.add_step([0], [9])
        with pytest.raises(ValueError, match="attributes"):
            builder.add_step([0], [1], np.zeros((3, 2)))
        with pytest.raises(ValueError, match="no timesteps"):
            TemporalEdgeStoreBuilder(4).build()


class TestRoundTrips:
    def test_dense_store_dense(self, tiny_graph):
        store = tiny_graph.store
        rebuilt = DynamicAttributedGraph.from_store(store)
        assert rebuilt == tiny_graph
        np.testing.assert_array_equal(
            rebuilt.adjacency_tensor(), tiny_graph.adjacency_tensor()
        )
        np.testing.assert_array_equal(
            rebuilt.attribute_tensor(), tiny_graph.attribute_tensor()
        )

    def test_store_stream_store(self, tiny_graph):
        tel = TemporalEdgeList.from_dynamic_graph(tiny_graph)
        back = tel.to_dynamic_graph(attributes=tiny_graph.attribute_tensor())
        assert back == tiny_graph

    def test_empty_graph(self):
        graph = DynamicAttributedGraph(
            [GraphSnapshot(np.zeros((4, 4))) for _ in range(3)]
        )
        store = graph.store
        assert store.num_edges == 0
        assert store.structural_nbytes() < 100
        rebuilt = DynamicAttributedGraph.from_store(store)
        assert rebuilt == graph
        tel = TemporalEdgeList.from_dynamic_graph(graph)
        assert len(tel) == 0
        assert tel.to_dynamic_graph() == graph

    def test_attribute_less_graph(self, structure_only_graph):
        store = structure_only_graph.store
        assert store.num_attributes == 0
        rebuilt = DynamicAttributedGraph.from_store(store)
        assert rebuilt == structure_only_graph
        tel = TemporalEdgeList.from_dynamic_graph(structure_only_graph)
        np.testing.assert_array_equal(
            tel.to_dynamic_graph().adjacency_tensor(),
            structure_only_graph.adjacency_tensor(),
        )

    def test_single_timestep_graph(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = adj[2, 0] = 1.0
        graph = DynamicAttributedGraph([GraphSnapshot(adj, np.ones((3, 2)))])
        store = graph.store
        assert store.num_timesteps == 1
        assert DynamicAttributedGraph.from_store(store) == graph

    def test_duplicate_temporal_edges_collapse_into_store(self):
        tel = TemporalEdgeList(4, 2, [(0, 1, 0)] * 5 + [(1, 2, 1)])
        assert len(tel) == 6  # the stream keeps multiplicity...
        graph = tel.to_dynamic_graph()
        assert graph.num_temporal_edges == 2  # ...the store collapses it
        assert graph[0].num_edges == 1

    def test_io_round_trip_through_store(self, tmp_path, tiny_graph):
        path = tmp_path / "g.npz"
        graph_io.save(tiny_graph, path)
        loaded = graph_io.load(path)
        assert loaded.is_store_backed
        assert loaded == tiny_graph

    def test_io_round_trip_structure_only(self, tmp_path, structure_only_graph):
        path = tmp_path / "g.npz"
        graph_io.save(structure_only_graph, path)
        assert graph_io.load(path) == structure_only_graph

    def test_io_reads_legacy_v1(self, tmp_path, tiny_graph):
        path = tmp_path / "v1.npz"
        np.savez_compressed(
            path,
            version=np.array(1),
            adjacency=tiny_graph.adjacency_tensor().astype(np.int8),
            attributes=tiny_graph.attribute_tensor(),
        )
        assert graph_io.load(path) == tiny_graph


class TestStoreBackedViews:
    def test_snapshot_views_answer_without_densifying(self, tiny_graph):
        graph = DynamicAttributedGraph.from_store(tiny_graph.store)
        with track_dense_materializations() as materialized:
            for t, snap in enumerate(graph):
                assert snap.num_edges == tiny_graph[t].num_edges
                np.testing.assert_allclose(
                    snap.in_degrees(), tiny_graph[t].in_degrees()
                )
                np.testing.assert_allclose(
                    snap.out_degrees(), tiny_graph[t].out_degrees()
                )
                assert snap.edges() == tiny_graph[t].edges()
            assert materialized() == 0

    def test_lazy_adjacency_is_cached_and_readonly(self, tiny_graph):
        graph = DynamicAttributedGraph.from_store(tiny_graph.store)
        snap = graph[0]
        with track_dense_materializations() as materialized:
            first = snap.adjacency
            again = snap.adjacency
            assert materialized() == 1  # cached after first touch
        assert first is again
        assert not first.flags.writeable
        np.testing.assert_array_equal(first, tiny_graph[0].adjacency)

    def test_copy_preserves_backing_and_shares_nothing(self, tiny_graph):
        graph = DynamicAttributedGraph.from_store(tiny_graph.store)
        dup = graph.copy()
        assert dup.is_store_backed  # no densification on copy
        assert not np.shares_memory(dup.store.src, graph.store.src)
        assert not np.shares_memory(dup.store.attributes, graph.store.attributes)
        assert dup == graph
        # a mutable dense snapshot is still one call away
        snap = dup[0].copy()
        snap.adjacency[:] = 0.0
        assert dup[0].num_edges > 0

    def test_attribute_tensor_view_is_readonly(self, tiny_graph):
        graph = DynamicAttributedGraph.from_store(tiny_graph.store)
        block = graph.attribute_tensor()
        with pytest.raises(ValueError):
            block[0, 0, 0] = 99.0

    def test_truncated_stays_store_backed(self, tiny_graph):
        graph = DynamicAttributedGraph.from_store(tiny_graph.store)
        prefix = graph.truncated(2)
        assert prefix.is_store_backed
        assert prefix == tiny_graph.truncated(2)

    def test_attribute_tensor_zero_copy(self, tiny_graph):
        graph = DynamicAttributedGraph.from_store(tiny_graph.store)
        assert np.shares_memory(
            graph.attribute_tensor(), graph.store.attributes
        )


class TestFromArrays:
    def test_bulk_ingestion_matches_per_edge_add(self):
        rng = np.random.default_rng(3)
        src = rng.integers(0, 20, size=200)
        dst = rng.integers(0, 20, size=200)
        t = rng.integers(0, 6, size=200)
        bulk = TemporalEdgeList.from_arrays(src, dst, t, 20, 6)
        loop = TemporalEdgeList(20, 6)
        for u, v, tt in zip(src, dst, t):
            if u != v:
                loop.add(int(u), int(v), int(tt))
        assert bulk.edges == loop.edges

    def test_infers_universe(self):
        tel = TemporalEdgeList.from_arrays([0, 4], [1, 2], [0, 3])
        assert tel.num_nodes == 5
        assert tel.num_timesteps == 4

    def test_validates_ranges(self):
        with pytest.raises(ValueError, match="out of range"):
            TemporalEdgeList.from_arrays([0], [7], [0], num_nodes=3)
        with pytest.raises(ValueError, match="out of range"):
            TemporalEdgeList.from_arrays([0], [1], [9], 3, 2)
        with pytest.raises(ValueError, match="lengths"):
            TemporalEdgeList.from_arrays([0, 1], [1], [0])

    def test_drops_self_loops_keeps_order(self):
        tel = TemporalEdgeList.from_arrays(
            [3, 1, 0], [3, 0, 2], [0, 1, 0], 4, 2
        )
        assert tel.edges == [(1, 0, 1), (0, 2, 0)]
