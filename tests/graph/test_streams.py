"""Tests for continuous-time interaction streams and discretization."""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.graph.streams import (
    InteractionStream,
    discretize,
    discretize_to_edge_list,
    equal_count_windows,
    session_windows,
    snapshot_density_profile,
    to_stream,
    uniform_windows,
)


def simple_stream():
    return InteractionStream(
        4,
        [(0, 1, 0.0), (1, 2, 0.4), (2, 3, 1.1), (3, 0, 2.9), (0, 2, 3.0)],
    )


class TestInteractionStream:
    def test_events_sorted_by_time(self):
        s = InteractionStream(3, [(0, 1, 5.0), (1, 2, 1.0), (2, 0, 3.0)])
        assert [t for _, _, t in s] == [1.0, 3.0, 5.0]

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            InteractionStream(3, [(1, 1, 0.0)])

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(ValueError, match="out of range"):
            InteractionStream(3, [(0, 3, 0.0)])

    def test_rejects_nan_timestamp(self):
        with pytest.raises(ValueError, match="non-finite"):
            InteractionStream(3, [(0, 1, float("nan"))])

    def test_rejects_nonpositive_node_count(self):
        with pytest.raises(ValueError, match="positive"):
            InteractionStream(0)

    def test_len_and_iter(self):
        s = simple_stream()
        assert len(s) == 5
        assert list(s)[0] == (0, 1, 0.0)

    def test_start_end_time(self):
        s = simple_stream()
        assert s.start_time == 0.0
        assert s.end_time == 3.0

    def test_empty_stream_has_no_span(self):
        s = InteractionStream(2)
        with pytest.raises(ValueError, match="empty"):
            _ = s.start_time
        with pytest.raises(ValueError, match="empty"):
            _ = s.end_time
        assert s.statistics().time_span == 0.0

    def test_statistics(self):
        stats = simple_stream().statistics()
        assert stats.num_nodes == 4
        assert stats.num_events == 5
        assert stats.time_span == pytest.approx(3.0)
        assert stats.unique_pairs == 5
        assert "events=5" in str(stats)

    def test_between_half_open(self):
        s = simple_stream()
        window = s.between(0.4, 3.0)
        assert [t for _, _, t in window] == [0.4, 1.1, 2.9]

    def test_between_empty_range(self):
        assert len(simple_stream().between(10.0, 20.0)) == 0

    def test_merged(self):
        a = InteractionStream(3, [(0, 1, 0.0)])
        b = InteractionStream(3, [(1, 2, 1.0)])
        m = a.merged(b)
        assert len(m) == 2
        assert m.end_time == 1.0

    def test_merged_rejects_mismatched_universe(self):
        a = InteractionStream(3, [(0, 1, 0.0)])
        b = InteractionStream(4, [(1, 2, 1.0)])
        with pytest.raises(ValueError, match="merge"):
            a.merged(b)

    def test_shifted(self):
        s = simple_stream().shifted(10.0)
        assert s.start_time == 10.0
        assert s.end_time == 13.0

    def test_subsampled_bounds(self):
        rng = np.random.default_rng(0)
        s = simple_stream().subsampled(3, rng)
        assert len(s) == 3
        # keeps time order
        times = [t for _, _, t in s]
        assert times == sorted(times)

    def test_subsampled_noop_when_small(self):
        rng = np.random.default_rng(0)
        s = simple_stream().subsampled(100, rng)
        assert s == simple_stream()

    def test_inter_event_times(self):
        gaps = simple_stream().inter_event_times()
        assert gaps == pytest.approx([0.4, 0.7, 1.8, 0.1])

    def test_equality(self):
        assert simple_stream() == simple_stream()
        assert simple_stream() != InteractionStream(4)

    def test_repr(self):
        assert "InteractionStream" in repr(simple_stream())


class TestUniformWindows:
    def test_buckets_cover_all_events(self):
        buckets = uniform_windows(simple_stream(), 3)
        assert sum(len(b) for b in buckets) == 5

    def test_last_event_lands_in_final_bucket(self):
        buckets = uniform_windows(simple_stream(), 3)
        assert (0, 2, 3.0) in buckets[-1]

    def test_single_bucket(self):
        buckets = uniform_windows(simple_stream(), 1)
        assert len(buckets) == 1 and len(buckets[0]) == 5

    def test_zero_width_span(self):
        s = InteractionStream(3, [(0, 1, 2.0), (1, 2, 2.0)])
        buckets = uniform_windows(s, 4)
        assert len(buckets[0]) == 2
        assert all(not b for b in buckets[1:])

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError, match="empty"):
            uniform_windows(InteractionStream(2), 3)

    def test_rejects_nonpositive_t(self):
        with pytest.raises(ValueError, match="positive"):
            uniform_windows(simple_stream(), 0)


class TestEqualCountWindows:
    def test_counts_differ_by_at_most_one(self):
        buckets = equal_count_windows(simple_stream(), 2)
        sizes = [len(b) for b in buckets]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 5

    def test_preserves_time_order_across_buckets(self):
        buckets = equal_count_windows(simple_stream(), 3)
        flat = [t for b in buckets for _, _, t in b]
        assert flat == sorted(flat)

    def test_more_buckets_than_events(self):
        buckets = equal_count_windows(simple_stream(), 8)
        assert sum(len(b) for b in buckets) == 5
        assert len(buckets) == 8


class TestSessionWindows:
    def test_splits_at_largest_gap(self):
        # largest gap is 1.8 between t=1.1 and t=2.9
        buckets = session_windows(simple_stream(), 2)
        assert [len(b) for b in buckets] == [3, 2]
        assert buckets[1][0][2] == 2.9

    def test_t_equal_to_events(self):
        buckets = session_windows(simple_stream(), 5)
        assert all(len(b) == 1 for b in buckets)

    def test_t_larger_than_events_pads_empty(self):
        buckets = session_windows(simple_stream(), 7)
        assert sum(len(b) for b in buckets) == 5
        assert buckets[-1] == [] and buckets[-2] == []


class TestDiscretize:
    def test_shapes_and_edge_collapse(self):
        s = InteractionStream(
            3, [(0, 1, 0.1), (0, 1, 0.2), (1, 2, 0.9)]
        )
        g = discretize(s, 1)
        assert g.num_timesteps == 1
        # repeated (0,1) collapses to one edge
        assert g[0].num_edges == 2

    def test_attributes_attached(self):
        s = simple_stream()
        attrs = np.ones((3, 4, 2))
        g = discretize(s, 3, attributes=attrs)
        assert g.num_attributes == 2
        assert np.all(g[1].attributes == 1.0)

    def test_policy_choice_changes_profile(self):
        rng = np.random.default_rng(1)
        # bursty stream: 20 early events, 2 late
        events = [(int(a), int(b), float(t)) for a, b, t in zip(
            rng.integers(0, 10, 22), rng.integers(0, 10, 22),
            list(np.linspace(0, 1, 20)) + [99.0, 100.0])
            if a != b]
        s = InteractionStream(10, events)
        uni = snapshot_density_profile(discretize(s, 4, uniform_windows))
        eq = snapshot_density_profile(discretize(s, 4, equal_count_windows))
        assert uni.std() > eq.std()

    def test_bad_policy_bucket_count_rejected(self):
        def broken(stream, t):
            return [[]]

        with pytest.raises(ValueError, match="buckets"):
            discretize(simple_stream(), 3, broken)

    def test_discretize_to_edge_list_dedupes(self):
        s = InteractionStream(3, [(0, 1, 0.1), (0, 1, 0.2)])
        tel = discretize_to_edge_list(s, 1)
        assert len(tel) == 1


class TestToStream:
    def graph(self):
        a = np.zeros((3, 3))
        a[0, 1] = 1
        b = np.zeros((3, 3))
        b[1, 2] = 1
        return DynamicAttributedGraph([GraphSnapshot(a), GraphSnapshot(b)])

    def test_midpoint_timestamps(self):
        s = to_stream(self.graph(), window=2.0)
        assert [t for _, _, t in s] == [1.0, 3.0]

    def test_random_timestamps_within_window(self):
        rng = np.random.default_rng(0)
        s = to_stream(self.graph(), window=1.0, rng=rng)
        for (u, v, t), expected_window in zip(s, [0, 1]):
            assert expected_window <= t < expected_window + 1

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="positive"):
            to_stream(self.graph(), window=0.0)

    def test_round_trip_structure(self):
        g = self.graph()
        s = to_stream(g, window=1.0)
        g2 = discretize(s, 2)
        assert np.array_equal(g.adjacency_tensor(), g2.adjacency_tensor())


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 8),
    t=st.integers(1, 6),
    raw=st.lists(
        st.tuples(
            st.integers(0, 7), st.integers(0, 7),
            st.floats(0, 100, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    ),
)
def test_property_discretization_conserves_events(n, t, raw):
    """Every policy places every event in exactly one bucket."""
    events = [(u % n, v % n, ts) for u, v, ts in raw if u % n != v % n]
    if not events:
        return
    stream = InteractionStream(n, events)
    for policy in (uniform_windows, equal_count_windows, session_windows):
        buckets = policy(stream, t)
        assert len(buckets) == t
        assert sum(len(b) for b in buckets) == len(stream)
        flat = [ts for b in buckets for _, _, ts in b]
        assert flat == sorted(flat)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 6),
    t=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_property_stream_round_trip(n, t, seed):
    """graph -> stream -> discretize(uniform) reproduces the graph."""
    rng = np.random.default_rng(seed)
    adj = (rng.random((t, n, n)) < 0.3).astype(float)
    for k in range(t):
        np.fill_diagonal(adj[k], 0.0)
    g = DynamicAttributedGraph.from_tensors(adj)
    if sum(s.num_edges for s in g) == 0:
        return
    stream = to_stream(g, window=1.0)
    pinned = functools.partial(uniform_windows, t0=0.0, t1=float(t))
    g2 = discretize(stream, t, pinned)
    assert np.array_equal(g.adjacency_tensor(), g2.adjacency_tensor())
