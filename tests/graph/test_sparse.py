"""Sparse graph representation tests (cross-checked against dense)."""

import numpy as np
import pytest

from repro.graph import GraphSnapshot
from repro.graph import properties as props
from repro.graph.sparse import SparseDirectedGraph


@pytest.fixture
def snapshot(rng):
    adj = (rng.random((25, 25)) < 0.15).astype(float)
    np.fill_diagonal(adj, 0.0)
    return GraphSnapshot(adj)


class TestConstruction:
    def test_roundtrip_dense(self, snapshot):
        sparse = SparseDirectedGraph.from_snapshot(snapshot)
        np.testing.assert_array_equal(sparse.to_dense(), snapshot.adjacency)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SparseDirectedGraph(3, np.array([[0, 5]]))

    def test_drops_self_loops_and_dups(self):
        g = SparseDirectedGraph(4, np.array([[0, 0], [1, 2], [1, 2]]))
        assert g.num_edges == 1

    def test_empty(self):
        g = SparseDirectedGraph(5, np.zeros((0, 2)))
        assert g.num_edges == 0
        assert g.out_degrees().sum() == 0

    def test_out_neighbors(self):
        g = SparseDirectedGraph(4, np.array([[0, 1], [0, 3], [2, 1]]))
        np.testing.assert_array_equal(sorted(g.out_neighbors(0)), [1, 3])
        assert len(g.out_neighbors(1)) == 0


class TestAgainstDense:
    def test_degrees(self, snapshot):
        sparse = SparseDirectedGraph.from_snapshot(snapshot)
        np.testing.assert_allclose(sparse.in_degrees(), snapshot.in_degrees())
        np.testing.assert_allclose(sparse.out_degrees(), snapshot.out_degrees())

    def test_clustering(self, snapshot):
        sparse = SparseDirectedGraph.from_snapshot(snapshot)
        np.testing.assert_allclose(
            sparse.clustering_coefficients(),
            props.clustering_coefficients(snapshot),
            atol=1e-12,
        )

    def test_components(self, snapshot):
        sparse = SparseDirectedGraph.from_snapshot(snapshot)
        sizes = sparse.connected_component_sizes()
        dense_comps = props.connected_components(snapshot)
        assert sorted(sizes, reverse=True) == sorted(
            (len(c) for c in dense_comps), reverse=True
        )
        assert sizes[0] == props.largest_component_size(snapshot)

    def test_wedges(self, snapshot):
        sparse = SparseDirectedGraph.from_snapshot(snapshot)
        assert sparse.wedge_count() == props.wedge_count(snapshot)


class TestScale:
    def test_handles_larger_graph_quickly(self, rng):
        n, e = 3000, 12000
        edges = rng.integers(0, n, size=(e, 2))
        g = SparseDirectedGraph(n, edges)
        assert g.in_degrees().sum() == g.num_edges
        assert len(g.connected_component_sizes()) >= 1
