"""Bounded-memory streaming ingestion: round trips, budgets, wiring.

The contract under test: folding an event stream chunk by chunk
through :class:`StreamingStoreBuilder` produces *exactly* the store
that bulk construction (`TemporalEdgeStore(src, dst, t)`) produces —
chunk size, batching pattern and arrival order are invisible.
"""

import numpy as np
import pytest

from repro.graph import io as graph_io
from repro.graph.store import TemporalEdgeStore, merge_canonical_runs
from repro.graph.streams import StreamingStoreBuilder, ingest_stream
from repro.workloads import GraphQueryEngine

N, T = 40, 6


@pytest.fixture(scope="module")
def events():
    rng = np.random.default_rng(17)
    m = 12000
    return (
        rng.integers(0, N, size=m),
        rng.integers(0, N, size=m),
        rng.integers(0, T, size=m),
    )


@pytest.fixture(scope="module")
def bulk_store(events):
    return TemporalEdgeStore(N, T, *events)


class TestMergeCanonicalRuns:
    def test_merges_interleaved_runs(self):
        a = (np.array([0, 1]), np.array([1, 0]), np.array([0, 2]))
        b = (np.array([0, 5]), np.array([2, 1]), np.array([0, 1]))
        src, dst, t = merge_canonical_runs([a, b], num_nodes=6)
        ref = TemporalEdgeStore(
            6, 3,
            np.concatenate([a[0], b[0]]),
            np.concatenate([a[1], b[1]]),
            np.concatenate([a[2], b[2]]),
        )
        np.testing.assert_array_equal(src, ref.src)
        np.testing.assert_array_equal(dst, ref.dst)
        np.testing.assert_array_equal(t, ref.t)

    def test_deduplicates_across_runs(self):
        run = (np.array([1]), np.array([2]), np.array([0]))
        src, dst, t = merge_canonical_runs([run, run, run], num_nodes=4)
        assert src.size == 1

    def test_empty_input(self):
        src, dst, t = merge_canonical_runs([], num_nodes=4)
        assert src.size == dst.size == t.size == 0

    def test_kway_matches_bulk_sort(self, events, bulk_store):
        src, dst, t = events
        runs = []
        for lo in range(0, src.size, 1000):
            hi = lo + 1000
            chunk = TemporalEdgeStore(N, T, src[lo:hi], dst[lo:hi], t[lo:hi])
            runs.append((chunk.src, chunk.dst, chunk.t))
        m_src, m_dst, m_t = merge_canonical_runs(runs, N)
        np.testing.assert_array_equal(m_src, bulk_store.src)
        np.testing.assert_array_equal(m_dst, bulk_store.dst)
        np.testing.assert_array_equal(m_t, bulk_store.t)


class TestStreamingRoundTrip:
    @pytest.mark.parametrize("chunk", [256, 1000, 100000])
    def test_bulk_columns_any_chunk_size(self, events, bulk_store, chunk):
        store = ingest_stream(events, N, T, chunk_events=chunk)
        assert store == bulk_store

    def test_memory_budget_sizes_chunk(self, events, bulk_store):
        builder = StreamingStoreBuilder(
            N, T, memory_budget_bytes=64 * 1000
        )
        assert builder.chunk_events == 1000
        builder.extend(*events)
        assert builder.build() == bulk_store
        # tiered compaction keeps the run count logarithmic pre-build
        assert builder.num_runs <= 1

    def test_scalar_event_iterator(self, events):
        src, dst, t = (c[:600] for c in events)
        src, dst, t = np.asarray(src), np.asarray(dst), np.asarray(t)
        store = ingest_stream(
            iter(zip(src.tolist(), dst.tolist(), t.tolist())),
            N, T, chunk_events=256,
        )
        assert store == TemporalEdgeStore(N, T, src, dst, t)

    def test_batch_iterator(self, events, bulk_store):
        src, dst, t = events
        batches = (
            (src[lo:lo + 777], dst[lo:lo + 777], t[lo:lo + 777])
            for lo in range(0, src.size, 777)
        )
        assert ingest_stream(batches, N, T, chunk_events=512) == bulk_store

    def test_duplicates_across_chunks_collapse(self):
        src = np.array([1, 1, 1, 1] * 500)
        dst = np.array([2, 2, 2, 2] * 500)
        t = np.array([0, 0, 1, 1] * 500)
        store = ingest_stream((src, dst, t), 5, 2, chunk_events=256)
        assert store.num_edges == 2

    def test_self_loops_dropped(self):
        store = ingest_stream(
            (np.array([1, 2]), np.array([1, 3]), np.array([0, 0])), 5, 1
        )
        assert store.num_edges == 1

    def test_mixed_add_extend_respects_chunk_bound(self, events, bulk_store):
        """Interleaved add()/extend() keeps the sealed-chunk bound: a
        scalar flush can leave the buffer over-full, and extend must
        seal before slicing its batch (regression: negative slice
        arithmetic corrupted the buffer accounting)."""
        src, dst, t = events
        builder = StreamingStoreBuilder(N, T, chunk_events=256)
        builder.extend(src[:255], dst[:255], t[:255])  # buffered = 255
        pos = 255
        for _ in range(255):  # below the scalar flush threshold
            builder.add(int(src[pos]), int(dst[pos]), int(t[pos]))
            pos += 1
        # pre-fix: _flush_scalars raises buffered to 510 > chunk_events
        # and the slice arithmetic goes negative here
        builder.extend(src[pos:pos + 500], dst[pos:pos + 500], t[pos:pos + 500])
        pos += 500
        assert builder.events_ingested == pos
        assert builder.num_buffered < 2 * builder.chunk_events
        assert builder.build() == TemporalEdgeStore(
            N, T, src[:pos], dst[:pos], t[:pos]
        )

    def test_list_of_columns_is_bulk_not_scalars(self):
        """A 3-element *list* of column arrays must take the bulk path —
        even when each column happens to have length 3 (regression:
        columns misread as scalar events)."""
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 3])
        t = np.array([0, 0, 1])
        store = ingest_stream([src, dst, t], 5, 2)
        assert store == TemporalEdgeStore(5, 2, src, dst, t)

    def test_incremental_build_then_continue(self, events, bulk_store):
        src, dst, t = events
        half = src.size // 2
        builder = StreamingStoreBuilder(N, T, chunk_events=300)
        builder.extend(src[:half], dst[:half], t[:half])
        mid = builder.build()
        assert mid == TemporalEdgeStore(N, T, src[:half], dst[:half], t[:half])
        builder.extend(src[half:], dst[half:], t[half:])
        assert builder.build() == bulk_store

    def test_attributes_attached(self):
        attrs = np.random.default_rng(0).normal(size=(2, 5, 3))
        store = ingest_stream(
            (np.array([0]), np.array([1]), np.array([0])), 5, 2,
            attributes=attrs,
        )
        np.testing.assert_array_equal(store.attributes, attrs)

    def test_empty_stream(self):
        store = ingest_stream(iter([]), 5, 3)
        assert store.num_edges == 0 and store.num_timesteps == 3


class TestValidation:
    def test_out_of_range_endpoint(self):
        builder = StreamingStoreBuilder(4, 2)
        with pytest.raises(ValueError):
            builder.extend(np.array([4]), np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            builder.add(0, 4, 0)

    def test_out_of_range_timestep(self):
        builder = StreamingStoreBuilder(4, 2)
        with pytest.raises(ValueError):
            builder.extend(np.array([0]), np.array([1]), np.array([2]))
        with pytest.raises(ValueError):
            builder.add(0, 1, -1)

    def test_mismatched_columns(self):
        builder = StreamingStoreBuilder(4, 2)
        with pytest.raises(ValueError):
            builder.extend(np.array([0, 1]), np.array([1]), np.array([0]))

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            StreamingStoreBuilder(4, 2, memory_budget_bytes=0)


class TestWiring:
    def test_event_log_io_round_trip(self, tmp_path, events, bulk_store):
        path = tmp_path / "events.npz"
        graph_io.save_events(path, *events, num_nodes=N, num_timesteps=T)
        graph = graph_io.load(path, memory_budget_bytes=64 * 1024)
        assert graph.store == bulk_store

    def test_event_log_with_attributes(self, tmp_path):
        attrs = np.random.default_rng(1).normal(size=(2, 4, 2))
        path = tmp_path / "events.npz"
        graph_io.save_events(
            path, [0], [1], [1], num_nodes=4, num_timesteps=2,
            attributes=attrs,
        )
        graph = graph_io.load(path)
        np.testing.assert_array_equal(graph.store.attributes, attrs)

    def test_graph_archives_still_load(self, tmp_path, bulk_store):
        path = tmp_path / "graph.npz"
        graph = bulk_store.to_graph()
        graph_io.save(graph, path)
        assert graph_io.load(path).store == bulk_store

    def test_engine_from_event_stream(self, events, bulk_store):
        engine = GraphQueryEngine.from_event_stream(
            events, N, T, memory_budget_bytes=32 * 1024
        )
        assert engine.graph.num_temporal_edges == bulk_store.num_edges
        csr_src, csr_dst = bulk_store.edges_at(0)
        u = int(csr_src[0])
        assert engine.out_neighbors(u, 0) == sorted(
            set(csr_dst[csr_src == u].tolist())
        )
