"""PageRank tests, validated against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.graph.properties import pagerank
from repro.metrics import pagerank_divergence


def snapshot(seed=0, n=10, density=0.25):
    rng = np.random.default_rng(seed)
    adj = (rng.random((n, n)) < density).astype(float)
    np.fill_diagonal(adj, 0.0)
    return GraphSnapshot(adj)


class TestPageRank:
    def test_sums_to_one(self):
        pr = pagerank(snapshot())
        assert pr.sum() == pytest.approx(1.0)
        assert np.all(pr > 0)

    def test_empty_graph_uniform(self):
        pr = pagerank(GraphSnapshot(np.zeros((5, 5))))
        np.testing.assert_allclose(pr, 0.2)

    def test_star_center_ranks_highest(self):
        n = 6
        adj = np.zeros((n, n))
        adj[1:, 0] = 1.0  # everyone points at node 0
        pr = pagerank(GraphSnapshot(adj))
        assert pr.argmax() == 0

    def test_bad_damping_rejected(self):
        with pytest.raises(ValueError, match="damping"):
            pagerank(snapshot(), damping=1.0)
        with pytest.raises(ValueError, match="damping"):
            pagerank(snapshot(), damping=0.0)

    def test_dangling_mass_redistributed(self):
        # 0 -> 1, node 1 dangles; ranks must still sum to 1
        adj = np.zeros((3, 3))
        adj[0, 1] = 1.0
        pr = pagerank(GraphSnapshot(adj))
        assert pr.sum() == pytest.approx(1.0)
        assert pr[1] > pr[2]  # 1 receives 0's vote

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        snap = snapshot(seed=seed, n=12)
        ours = pagerank(snap, damping=0.85)
        nxg = nx.from_numpy_array(snap.adjacency, create_using=nx.DiGraph)
        theirs = nx.pagerank(nxg, alpha=0.85, tol=1e-10, max_iter=1000)
        np.testing.assert_allclose(
            ours, [theirs[v] for v in range(snap.num_nodes)], atol=1e-6
        )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 3000), n=st.integers(2, 12))
def test_property_pagerank_matches_networkx(seed, n):
    rng = np.random.default_rng(seed)
    adj = (rng.random((n, n)) < 0.3).astype(float)
    np.fill_diagonal(adj, 0.0)
    snap = GraphSnapshot(adj)
    ours = pagerank(snap)
    theirs = nx.pagerank(
        nx.from_numpy_array(adj, create_using=nx.DiGraph),
        tol=1e-10,
        max_iter=1000,
    )
    np.testing.assert_allclose(
        ours, [theirs[v] for v in range(n)], atol=1e-6
    )


class TestPagerankDivergence:
    def graphs(self):
        rng = np.random.default_rng(0)
        adj = (rng.random((3, 12, 12)) < 0.25).astype(float)
        for t in range(3):
            np.fill_diagonal(adj[t], 0.0)
        return DynamicAttributedGraph.from_tensors(adj)

    def test_identity_is_zero(self):
        g = self.graphs()
        assert pagerank_divergence(g, g) == pytest.approx(0.0)

    def test_different_topology_positive(self):
        g = self.graphs()
        n = g.num_nodes
        star = np.zeros((3, n, n))
        star[:, 1:, 0] = 1.0
        h = DynamicAttributedGraph.from_tensors(star)
        assert pagerank_divergence(g, h) > 0.1

    def test_bounded_by_one(self):
        g = self.graphs()
        n = g.num_nodes
        star = np.zeros((3, n, n))
        star[:, 1:, 0] = 1.0
        h = DynamicAttributedGraph.from_tensors(star)
        assert pagerank_divergence(g, h) <= 1.0
