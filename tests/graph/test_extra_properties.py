"""Reciprocity and assortativity tests (networkx cross-checks)."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import GraphSnapshot
from repro.graph.properties import degree_assortativity, reciprocity


class TestReciprocity:
    def test_empty(self):
        assert reciprocity(GraphSnapshot(np.zeros((4, 4)))) == 0.0

    def test_fully_mutual(self):
        adj = np.ones((4, 4)) - np.eye(4)
        assert reciprocity(GraphSnapshot(adj)) == pytest.approx(1.0)

    def test_one_way_zero(self):
        snap = GraphSnapshot.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert reciprocity(snap) == 0.0

    def test_matches_networkx(self, rng):
        adj = (rng.random((20, 20)) < 0.2).astype(float)
        np.fill_diagonal(adj, 0.0)
        snap = GraphSnapshot(adj)
        g = nx.from_numpy_array(adj, create_using=nx.DiGraph)
        assert reciprocity(snap) == pytest.approx(nx.reciprocity(g))


class TestAssortativity:
    def test_degenerate_zero(self):
        assert degree_assortativity(GraphSnapshot(np.zeros((4, 4)))) == 0.0

    def test_regular_graph_zero_variance(self):
        # a directed cycle: every node has degree 2 -> zero variance
        snap = GraphSnapshot.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
        assert degree_assortativity(snap) == 0.0

    def test_star_disassortative(self):
        snap = GraphSnapshot.from_edges(8, [(0, i) for i in range(1, 8)])
        assert degree_assortativity(snap) < 0.0

    def test_matches_networkx(self, rng):
        adj = (rng.random((25, 25)) < 0.15).astype(float)
        np.fill_diagonal(adj, 0.0)
        sym = np.maximum(adj, adj.T)
        snap = GraphSnapshot(adj)
        g = nx.from_numpy_array(sym)
        expected = nx.degree_pearson_correlation_coefficient(g)
        assert degree_assortativity(snap) == pytest.approx(expected, abs=1e-9)


class TestEarlyStopping:
    def test_patience_stops_training(self, tiny_graph):
        from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer

        cfg = VRDAGConfig(
            num_nodes=tiny_graph.num_nodes,
            num_attributes=tiny_graph.num_attributes,
            hidden_dim=8, latent_dim=4, encode_dim=8, seed=0,
        )
        model = VRDAG(cfg)
        # absurd min_delta: no epoch ever "improves" -> stops at patience+1
        result = VRDAGTrainer(
            model, TrainConfig(epochs=100, patience=2, min_delta=1e9)
        ).fit(tiny_graph)
        assert result.epochs_run <= 4
