"""Persistence round-trips and property-based graph invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import DynamicAttributedGraph, GraphSnapshot, TemporalEdgeList
from repro.graph import io as graph_io


class TestIO:
    def test_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.npz"
        graph_io.save(tiny_graph, path)
        loaded = graph_io.load(path)
        assert loaded == tiny_graph

    def test_roundtrip_no_attrs(self, structure_only_graph, tmp_path):
        path = tmp_path / "graph.npz"
        graph_io.save(structure_only_graph, path)
        assert graph_io.load(path) == structure_only_graph

    def test_version_check(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.npz"
        np.savez_compressed(
            path,
            version=np.array(99),
            adjacency=tiny_graph.adjacency_tensor(),
            attributes=tiny_graph.attribute_tensor(),
        )
        with pytest.raises(ValueError, match="version"):
            graph_io.load(path)


@st.composite
def random_dynamic_graph(draw):
    n = draw(st.integers(2, 8))
    t = draw(st.integers(1, 4))
    f = draw(st.integers(0, 3))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    snaps = []
    for _ in range(t):
        adj = (rng.random((n, n)) < 0.3).astype(float)
        np.fill_diagonal(adj, 0.0)
        attrs = rng.normal(size=(n, f))
        snaps.append(GraphSnapshot(adj, attrs))
    return DynamicAttributedGraph(snaps)


@settings(max_examples=30, deadline=None)
@given(random_dynamic_graph())
def test_temporal_edge_list_roundtrip(graph):
    tel = TemporalEdgeList.from_dynamic_graph(graph)
    rebuilt = tel.to_dynamic_graph(attributes=graph.attribute_tensor())
    assert rebuilt == graph


@settings(max_examples=30, deadline=None)
@given(random_dynamic_graph())
def test_temporal_edge_count_invariant(graph):
    tel = TemporalEdgeList.from_dynamic_graph(graph)
    assert len(tel) == graph.num_temporal_edges


@settings(max_examples=30, deadline=None)
@given(random_dynamic_graph())
def test_degree_sum_equals_edge_count(graph):
    for snap in graph:
        assert snap.in_degrees().sum() == snap.num_edges
        assert snap.out_degrees().sum() == snap.num_edges


@settings(max_examples=30, deadline=None)
@given(random_dynamic_graph())
def test_tensor_roundtrip(graph):
    rebuilt = DynamicAttributedGraph.from_tensors(
        graph.adjacency_tensor(), graph.attribute_tensor()
    )
    assert rebuilt == graph


@settings(max_examples=20, deadline=None)
@given(random_dynamic_graph())
def test_save_load_roundtrip(graph):
    import tempfile, os

    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "g.npz")
        graph_io.save(graph, path)
        assert graph_io.load(path) == graph
