"""Parity: vectorized sparse kernels vs their reference implementations.

Every vectorized kernel in :mod:`repro.graph.sparse` must reproduce its
``_reference_*`` Python implementation exactly — on random directed
graphs, on inputs with self-loops and duplicate edges (dropped and
deduplicated by the constructor), and on empty corner cases.
"""

import numpy as np
import pytest

from repro.graph.sparse import SparseDirectedGraph


def _random_graph(seed: int, n: int, e: int) -> SparseDirectedGraph:
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, max(n, 1), size=(e, 2))
    return SparseDirectedGraph(n, edges)


RANDOM_CASES = [
    (0, 1, 0),
    (1, 5, 3),
    (2, 30, 60),       # sparse
    (3, 40, 500),      # dense-ish, many duplicates / self-loops
    (4, 80, 200),
    (5, 120, 900),
]


class TestVectorizedParity:
    @pytest.mark.parametrize("seed,n,e", RANDOM_CASES)
    def test_clustering(self, seed, n, e):
        g = _random_graph(seed, n, e)
        np.testing.assert_allclose(
            g.clustering_coefficients(),
            g._reference_clustering_coefficients(),
            atol=1e-12,
        )

    @pytest.mark.parametrize("seed,n,e", RANDOM_CASES)
    def test_components(self, seed, n, e):
        g = _random_graph(seed, n, e)
        assert (
            g.connected_component_sizes()
            == g._reference_connected_component_sizes()
        )

    @pytest.mark.parametrize("seed,n,e", RANDOM_CASES)
    def test_wedges(self, seed, n, e):
        g = _random_graph(seed, n, e)
        assert g.wedge_count() == g._reference_wedge_count()

    @pytest.mark.parametrize("seed,n,e", RANDOM_CASES)
    def test_neighbor_sets(self, seed, n, e):
        g = _random_graph(seed, n, e)
        assert (
            g.undirected_neighbor_sets()
            == g._reference_undirected_neighbor_sets()
        )

    def test_clustering_searchsorted_branch(self):
        """Graphs too large for the dense membership matrix still agree."""
        g = _random_graph(9, 4200, 9000)  # 4200² > 1<<24 → CSR keys path
        np.testing.assert_allclose(
            g.clustering_coefficients(),
            g._reference_clustering_coefficients(),
            atol=1e-12,
        )

    def test_self_loops_and_duplicates_dropped(self):
        edges = np.array([[0, 0], [1, 2], [1, 2], [2, 1], [3, 3], [0, 1]])
        g = SparseDirectedGraph(4, edges)
        assert g.num_edges == 3  # (0,1), (1,2), (2,1)
        np.testing.assert_allclose(
            g.clustering_coefficients(),
            g._reference_clustering_coefficients(),
        )
        assert (
            g.connected_component_sizes()
            == g._reference_connected_component_sizes()
        )


class TestCornerCases:
    def test_zero_nodes(self):
        g = SparseDirectedGraph(0, np.zeros((0, 2)))
        assert g.num_edges == 0
        assert g.connected_component_sizes() == []
        assert g.wedge_count() == 0
        assert g.clustering_coefficients().shape == (0,)
        assert g.out_degrees().shape == (0,)
        assert g.in_degrees().shape == (0,)

    def test_nodes_without_edges(self):
        g = SparseDirectedGraph(5, np.zeros((0, 2)))
        assert g.connected_component_sizes() == [1, 1, 1, 1, 1]
        assert g.wedge_count() == 0
        np.testing.assert_array_equal(g.clustering_coefficients(), np.zeros(5))

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(ValueError):
            SparseDirectedGraph(-1, np.zeros((0, 2)))

    def test_all_self_loops_collapse_to_empty(self):
        g = SparseDirectedGraph(3, np.array([[0, 0], [1, 1], [2, 2]]))
        assert g.num_edges == 0
        assert g.connected_component_sizes() == [1, 1, 1]


class TestDegreesAndHasEdge:
    def test_degree_dtypes_consistent(self):
        g = _random_graph(6, 20, 50)
        assert g.in_degrees().dtype == np.int64
        assert g.out_degrees().dtype == np.int64
        assert g.in_degrees().sum() == g.num_edges
        assert g.out_degrees().sum() == g.num_edges

    def test_has_edge_matches_dense(self):
        g = _random_graph(7, 25, 120)
        dense = g.to_dense()
        for u in range(25):
            for v in range(25):
                assert g.has_edge(u, v) == bool(dense[u, v])

    def test_has_edge_rejects_out_of_range(self):
        g = _random_graph(8, 4, 5)
        with pytest.raises(ValueError):
            g.has_edge(0, 4)
        with pytest.raises(ValueError):
            g.has_edge(-1, 0)
