"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "email" in out and "gdelt" in out

    def test_list_generators(self, capsys):
        from repro import api

        assert main(["list-generators"]) == 0
        out = capsys.readouterr().out
        for name in api.list_generators():
            assert name in out

    def test_train_and_generate(self, tmp_path, capsys):
        model_path = str(tmp_path / "m.npz")
        rc = main([
            "train", "--dataset", "email", "--scale", "0.012",
            "--epochs", "2", "--hidden-dim", "8", "--latent-dim", "4",
            "--model-out", model_path,
        ])
        assert rc == 0
        out_path = str(tmp_path / "g.npz")
        rc = main([
            "generate", "--model", model_path, "--timesteps", "3",
            "--out", out_path,
        ])
        assert rc == 0
        from repro.graph import io as graph_io

        g = graph_io.load(out_path)
        assert g.num_timesteps == 3
        # sharded decode is a deployment knob: same seed, same graph
        sharded_path = str(tmp_path / "g_sharded.npz")
        rc = main([
            "generate", "--model", model_path, "--timesteps", "3",
            "--out", sharded_path, "--shards", "3", "--executor", "thread",
        ])
        assert rc == 0
        assert graph_io.load(sharded_path).store == g.store

    def test_train_and_generate_baseline_artifact(self, tmp_path, capsys):
        """Any registered generator trains and generates through the CLI."""
        from repro import api
        from repro.graph import io as graph_io

        model_path = str(tmp_path / "taggen.npz")
        rc = main([
            "train", "--dataset", "email", "--scale", "0.012",
            "--generator", "TagGen",
            "--generator-config", '{"walks_per_edge": 1.0}',
            "--model-out", model_path,
        ])
        assert rc == 0
        assert api.is_artifact(model_path)
        out_path = str(tmp_path / "taggen_g.npz")
        rc = main([
            "generate", "--model", model_path, "--timesteps", "3",
            "--out", out_path,
        ])
        assert rc == 0
        assert graph_io.load(out_path).num_timesteps == 3
        # non-VRDAG artifacts reject the sharded decode with a clean exit
        rc = main([
            "generate", "--model", model_path, "--timesteps", "3",
            "--out", out_path, "--shards", "2",
        ])
        assert rc == 2

    def test_generate_reads_legacy_v1_model(self, tmp_path):
        """Pre-artifact VRDAG files still drive the generate command."""
        import numpy as np

        from repro.api import load_artifact, save_artifact
        from repro.graph import io as graph_io

        artifact = str(tmp_path / "m.npz")
        rc = main([
            "train", "--dataset", "email", "--scale", "0.012",
            "--epochs", "2", "--hidden-dim", "8", "--latent-dim", "4",
            "--model-out", artifact,
        ])
        assert rc == 0
        # rewrite the artifact in the legacy v1 layout by hand
        from repro.core.persistence import _FORMAT_VERSION, vrdag_state
        import json as json_mod

        model = load_artifact(artifact).model
        state = vrdag_state(model)
        arrays = dict(state["arrays"])
        arrays["calib::has_target_mean"] = np.array(
            "calib::target_mean" in arrays
        )
        legacy = str(tmp_path / "legacy.npz")
        np.savez_compressed(
            legacy,
            version=np.array(_FORMAT_VERSION),
            config=np.frombuffer(
                json_mod.dumps(state["config"]).encode(), dtype=np.uint8
            ),
            **arrays,
        )
        out_new, out_old = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        assert main(["generate", "--model", artifact, "--timesteps", "2",
                     "--out", out_new]) == 0
        assert main(["generate", "--model", legacy, "--timesteps", "2",
                     "--out", out_old]) == 0
        assert graph_io.load(out_old) == graph_io.load(out_new)

    def test_run_pipeline_from_config(self, tmp_path, capsys):
        config_path = tmp_path / "run.json"
        config_path.write_text(json.dumps({
            "dataset": "email",
            "scale": 0.012,
            "generator": "ErdosRenyi",
            "metrics": ["structure"],
            "timesteps": 2,
        }))
        out_path = tmp_path / "result.json"
        rc = main(["run", "--config", str(config_path),
                   "--out", str(out_path)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["generator"] == "ErdosRenyi"
        assert "structure" in payload["metrics"]
        assert json.loads(out_path.read_text()) == payload

    def test_ingest_event_log(self, tmp_path, capsys):
        import numpy as np

        from repro.graph import io as graph_io
        from repro.graph.store import TemporalEdgeStore

        rng = np.random.default_rng(2)
        src, dst, t = (
            rng.integers(0, 20, size=400),
            rng.integers(0, 20, size=400),
            rng.integers(0, 4, size=400),
        )
        events_path = str(tmp_path / "events.npz")
        graph_io.save_events(
            events_path, src, dst, t, num_nodes=20, num_timesteps=4
        )
        out_path = str(tmp_path / "ingested.npz")
        rc = main([
            "ingest", "--events", events_path, "--out", out_path,
            "--memory-budget-mb", "0.1",
        ])
        assert rc == 0
        assert graph_io.load(out_path).store == TemporalEdgeStore(
            20, 4, src, dst, t
        )

    def test_experiment_json_output(self, capsys):
        rc = main([
            "experiment", "--name", "fig3", "--dataset", "email",
            "--scale", "0.012", "--epochs", "2",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "VRDAG" in payload

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--name", "table99"])

    def test_compare_report(self, tmp_path, capsys):
        import numpy as np

        from repro.graph import DynamicAttributedGraph, io as graph_io

        rng = np.random.default_rng(0)
        adj = (rng.random((3, 12, 12)) < 0.2).astype(float)
        for t in range(3):
            np.fill_diagonal(adj[t], 0.0)
        attrs = rng.normal(size=(3, 12, 2))
        a = DynamicAttributedGraph.from_tensors(adj, attrs)
        b = DynamicAttributedGraph.from_tensors(
            adj[:, :, :], attrs + rng.normal(0, 0.1, size=attrs.shape)
        )
        pa, pb = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        graph_io.save(a, pa)
        graph_io.save(b, pb)
        assert main(["compare", "--original", pa, "--synthetic", pb]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "fidelity" in payload and "privacy" in payload
        assert payload["privacy"]["edge_overlap"] == 1.0

    def test_compare_json_flag(self, tmp_path, capsys):
        import numpy as np

        from repro.graph import DynamicAttributedGraph, io as graph_io

        rng = np.random.default_rng(3)
        adj = (rng.random((2, 10, 10)) < 0.2).astype(float)
        for t in range(2):
            np.fill_diagonal(adj[t], 0.0)
        g = DynamicAttributedGraph.from_tensors(adj)
        pa, pb = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        graph_io.save(g, pa)
        graph_io.save(g, pb)
        assert main(["compare", "--original", pa, "--synthetic", pb,
                     "--json"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 1  # single machine line
        payload = json.loads(out)
        assert payload["status"] == "ok"
        assert payload["privacy"]["edge_overlap"] == 1.0

    def test_compare_load_failure_exits_nonzero(self, tmp_path, capsys):
        """CI can gate on compare: load failures are a clean nonzero exit."""
        rc = main([
            "compare", "--original", str(tmp_path / "nope.npz"),
            "--synthetic", str(tmp_path / "nope2.npz"), "--json",
        ])
        assert rc == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "error"
        assert "nope.npz" in payload["error"]
        # same contract without --json: message on stderr, nonzero exit
        rc = main([
            "compare", "--original", str(tmp_path / "nope.npz"),
            "--synthetic", str(tmp_path / "nope2.npz"),
        ])
        assert rc == 2
        assert "nope.npz" in capsys.readouterr().err
