"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "email" in out and "gdelt" in out

    def test_list_generators(self, capsys):
        from repro import api

        assert main(["list-generators"]) == 0
        out = capsys.readouterr().out
        for name in api.list_generators():
            assert name in out

    def test_train_and_generate(self, tmp_path, capsys):
        model_path = str(tmp_path / "m.npz")
        rc = main([
            "train", "--dataset", "email", "--scale", "0.012",
            "--epochs", "2", "--hidden-dim", "8", "--latent-dim", "4",
            "--model-out", model_path,
        ])
        assert rc == 0
        out_path = str(tmp_path / "g.npz")
        rc = main([
            "generate", "--model", model_path, "--timesteps", "3",
            "--out", out_path,
        ])
        assert rc == 0
        from repro.graph import io as graph_io

        g = graph_io.load(out_path)
        assert g.num_timesteps == 3
        # sharded decode is a deployment knob: same seed, same graph
        sharded_path = str(tmp_path / "g_sharded.npz")
        rc = main([
            "generate", "--model", model_path, "--timesteps", "3",
            "--out", sharded_path, "--shards", "3", "--executor", "thread",
        ])
        assert rc == 0
        assert graph_io.load(sharded_path).store == g.store

    def test_train_and_generate_baseline_artifact(self, tmp_path, capsys):
        """Any registered generator trains and generates through the CLI."""
        from repro import api
        from repro.graph import io as graph_io

        model_path = str(tmp_path / "taggen.npz")
        rc = main([
            "train", "--dataset", "email", "--scale", "0.012",
            "--generator", "TagGen",
            "--generator-config", '{"walks_per_edge": 1.0}',
            "--model-out", model_path,
        ])
        assert rc == 0
        assert api.is_artifact(model_path)
        out_path = str(tmp_path / "taggen_g.npz")
        rc = main([
            "generate", "--model", model_path, "--timesteps", "3",
            "--out", out_path,
        ])
        assert rc == 0
        assert graph_io.load(out_path).num_timesteps == 3
        # non-VRDAG artifacts reject the sharded decode with a clean exit
        rc = main([
            "generate", "--model", model_path, "--timesteps", "3",
            "--out", out_path, "--shards", "2",
        ])
        assert rc == 2

    def test_generate_reads_legacy_v1_model(self, tmp_path):
        """Pre-artifact VRDAG files still drive the generate command."""
        import numpy as np

        from repro.api import load_artifact, save_artifact
        from repro.graph import io as graph_io

        artifact = str(tmp_path / "m.npz")
        rc = main([
            "train", "--dataset", "email", "--scale", "0.012",
            "--epochs", "2", "--hidden-dim", "8", "--latent-dim", "4",
            "--model-out", artifact,
        ])
        assert rc == 0
        # rewrite the artifact in the legacy v1 layout by hand
        from repro.core.persistence import _FORMAT_VERSION, vrdag_state
        import json as json_mod

        model = load_artifact(artifact).model
        state = vrdag_state(model)
        arrays = dict(state["arrays"])
        arrays["calib::has_target_mean"] = np.array(
            "calib::target_mean" in arrays
        )
        legacy = str(tmp_path / "legacy.npz")
        np.savez_compressed(
            legacy,
            version=np.array(_FORMAT_VERSION),
            config=np.frombuffer(
                json_mod.dumps(state["config"]).encode(), dtype=np.uint8
            ),
            **arrays,
        )
        out_new, out_old = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        assert main(["generate", "--model", artifact, "--timesteps", "2",
                     "--out", out_new]) == 0
        assert main(["generate", "--model", legacy, "--timesteps", "2",
                     "--out", out_old]) == 0
        assert graph_io.load(out_old) == graph_io.load(out_new)

    def test_run_pipeline_from_config(self, tmp_path, capsys):
        config_path = tmp_path / "run.json"
        config_path.write_text(json.dumps({
            "dataset": "email",
            "scale": 0.012,
            "generator": "ErdosRenyi",
            "metrics": ["structure"],
            "timesteps": 2,
        }))
        out_path = tmp_path / "result.json"
        rc = main(["run", "--config", str(config_path),
                   "--out", str(out_path)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["generator"] == "ErdosRenyi"
        assert "structure" in payload["metrics"]
        assert json.loads(out_path.read_text()) == payload

    def test_ingest_event_log(self, tmp_path, capsys):
        import numpy as np

        from repro.graph import io as graph_io
        from repro.graph.store import TemporalEdgeStore

        rng = np.random.default_rng(2)
        src, dst, t = (
            rng.integers(0, 20, size=400),
            rng.integers(0, 20, size=400),
            rng.integers(0, 4, size=400),
        )
        events_path = str(tmp_path / "events.npz")
        graph_io.save_events(
            events_path, src, dst, t, num_nodes=20, num_timesteps=4
        )
        out_path = str(tmp_path / "ingested.npz")
        rc = main([
            "ingest", "--events", events_path, "--out", out_path,
            "--memory-budget-mb", "0.1",
        ])
        assert rc == 0
        assert graph_io.load(out_path).store == TemporalEdgeStore(
            20, 4, src, dst, t
        )

    def test_experiment_json_output(self, capsys):
        rc = main([
            "experiment", "--name", "fig3", "--dataset", "email",
            "--scale", "0.012", "--epochs", "2",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "VRDAG" in payload

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--name", "table99"])

    def test_compare_report(self, tmp_path, capsys):
        import numpy as np

        from repro.graph import DynamicAttributedGraph, io as graph_io

        rng = np.random.default_rng(0)
        adj = (rng.random((3, 12, 12)) < 0.2).astype(float)
        for t in range(3):
            np.fill_diagonal(adj[t], 0.0)
        attrs = rng.normal(size=(3, 12, 2))
        a = DynamicAttributedGraph.from_tensors(adj, attrs)
        b = DynamicAttributedGraph.from_tensors(
            adj[:, :, :], attrs + rng.normal(0, 0.1, size=attrs.shape)
        )
        pa, pb = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        graph_io.save(a, pa)
        graph_io.save(b, pb)
        assert main(["compare", "--original", pa, "--synthetic", pb]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "fidelity" in payload and "privacy" in payload
        assert payload["privacy"]["edge_overlap"] == 1.0

    def test_compare_json_flag(self, tmp_path, capsys):
        import numpy as np

        from repro.graph import DynamicAttributedGraph, io as graph_io

        rng = np.random.default_rng(3)
        adj = (rng.random((2, 10, 10)) < 0.2).astype(float)
        for t in range(2):
            np.fill_diagonal(adj[t], 0.0)
        g = DynamicAttributedGraph.from_tensors(adj)
        pa, pb = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        graph_io.save(g, pa)
        graph_io.save(g, pb)
        assert main(["compare", "--original", pa, "--synthetic", pb,
                     "--json"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 1  # single machine line
        payload = json.loads(out)
        assert payload["status"] == "ok"
        assert payload["privacy"]["edge_overlap"] == 1.0

    def test_compare_load_failure_exits_nonzero(self, tmp_path, capsys):
        """CI can gate on compare: load failures are a clean nonzero exit."""
        rc = main([
            "compare", "--original", str(tmp_path / "nope.npz"),
            "--synthetic", str(tmp_path / "nope2.npz"), "--json",
        ])
        assert rc == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "error"
        assert "nope.npz" in payload["error"]
        # same contract without --json: message on stderr, nonzero exit
        rc = main([
            "compare", "--original", str(tmp_path / "nope.npz"),
            "--synthetic", str(tmp_path / "nope2.npz"),
        ])
        assert rc == 2
        assert "nope.npz" in capsys.readouterr().err

    def test_train_profile_prints_tape_timers(self, tmp_path, capsys):
        model_path = str(tmp_path / "m.npz")
        rc = main([
            "train", "--dataset", "email", "--scale", "0.012",
            "--epochs", "2", "--hidden-dim", "8", "--latent-dim", "4",
            "--profile", "--engine", "tape",
            "--model-out", model_path,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trainer.forward" in out
        assert "trainer.backward" in out
        # per-op tape timers from the profiled fit
        assert "tape.op." in out
        assert "tape.vjp." in out

    def test_train_engine_flag_on_non_nn_generator_fails(
        self, tmp_path, capsys
    ):
        rc = main([
            "train", "--dataset", "email", "--scale", "0.012",
            "--generator", "GenCAT", "--engine", "tape",
            "--model-out", str(tmp_path / "m.npz"),
        ])
        assert rc == 2
        assert "--engine" in capsys.readouterr().err

    def _save_workload_graph(self, tmp_path):
        import numpy as np

        from repro.graph import DynamicAttributedGraph
        from repro.graph import io as graph_io
        from repro.graph.store import TemporalEdgeStore

        rng = np.random.default_rng(0)
        n, m, t_len = 30, 250, 4
        graph = DynamicAttributedGraph.from_store(TemporalEdgeStore(
            n, t_len,
            rng.integers(0, n, size=m),
            rng.integers(0, n, size=m),
            rng.integers(0, t_len, size=m),
            rng.normal(size=(t_len, n, 2)),
        ))
        path = str(tmp_path / "wl.npz")
        graph_io.save(graph, path)
        return path

    def test_bench_queries_json_report(self, tmp_path, capsys):
        path = self._save_workload_graph(tmp_path)
        rc = main([
            "bench-queries", "--graph", path, "--num-queries", "120",
            "--batch-size", "32", "--executor", "serial",
            "--compare-per-query", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert payload["queries"] == 120
        assert payload["qps"] > 0
        assert payload["per_kind"]
        assert "batched_speedup" in payload
        assert payload["plan_cache"]["misses"] > 0

    def test_bench_queries_custom_mix_and_cache_budget(
        self, tmp_path, capsys
    ):
        path = self._save_workload_graph(tmp_path)
        rc = main([
            "bench-queries", "--graph", path, "--num-queries", "60",
            "--mix", '{"has_edge": 0.5, "out_neighbors": 0.5}',
            "--cache-budget-mb", "0.001", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["per_kind"]) == {"has_edge", "out_neighbors"}

    def test_bench_queries_unknown_mix_kind_rejected(self, tmp_path, capsys):
        path = self._save_workload_graph(tmp_path)
        rc = main([
            "bench-queries", "--graph", path, "--mix",
            '{"teleport": 1.0}', "--json",
        ])
        assert rc == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "error"
        assert "teleport" in payload["error"]

    def test_bench_queries_malformed_mix_rejected(self, tmp_path, capsys):
        path = self._save_workload_graph(tmp_path)
        for bad in ('{bad', '["has_edge"]', '{"has_edge": "lots"}'):
            rc = main([
                "bench-queries", "--graph", path, "--mix", bad, "--json",
            ])
            assert rc == 2, bad
            payload = json.loads(capsys.readouterr().out)
            assert payload["status"] == "error"

    def test_bench_queries_invalid_settings_fail_cleanly(
        self, tmp_path, capsys
    ):
        """Config/weight errors keep the single-line JSON contract."""
        path = self._save_workload_graph(tmp_path)
        bad_invocations = [
            ["--mix", '{"has_edge": -1.0}'],     # negative weight
            ["--mix", '{"has_edge": NaN}'],      # NaN probability
            ["--mix", "{}"],                     # empty custom mix
            ["--num-queries", "0"],
            ["--cache-budget-mb", "0"],
            ["--batch-size", "0"],
        ]
        for extra in bad_invocations:
            rc = main(["bench-queries", "--graph", path, "--json"] + extra)
            assert rc == 2, extra
            payload = json.loads(capsys.readouterr().out)
            assert payload["status"] == "error", extra

    def test_bench_queries_attribute_free_graph_empty_mix(
        self, tmp_path, capsys
    ):
        import numpy as np

        from repro.graph import DynamicAttributedGraph
        from repro.graph import io as graph_io
        from repro.graph.store import TemporalEdgeStore

        rng = np.random.default_rng(1)
        graph = DynamicAttributedGraph.from_store(TemporalEdgeStore(
            20, 3,
            rng.integers(0, 20, size=80),
            rng.integers(0, 20, size=80),
            rng.integers(0, 3, size=80),
        ))
        path = str(tmp_path / "bare.npz")
        graph_io.save(graph, path)
        # the default serving mix still works (attribute_range dropped)
        rc = main([
            "bench-queries", "--graph", path, "--num-queries", "40",
            "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "attribute_range" not in payload["per_kind"]
        # an attribute-only mix collapses to empty -> clean error
        rc = main([
            "bench-queries", "--graph", path,
            "--mix", '{"attribute_range": 1.0}', "--json",
        ])
        assert rc == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "error"
        assert "no attributes" in payload["error"]

    def test_bench_queries_load_failure_exits_nonzero(
        self, tmp_path, capsys
    ):
        """CI gates on bench-queries the same way it gates on compare."""
        rc = main([
            "bench-queries", "--graph", str(tmp_path / "nope.npz"), "--json",
        ])
        assert rc == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "error"
        rc = main(["bench-queries", "--graph", str(tmp_path / "nope.npz")])
        assert rc == 2
        assert "nope.npz" in capsys.readouterr().err
