"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "email" in out and "gdelt" in out

    def test_train_and_generate(self, tmp_path, capsys):
        model_path = str(tmp_path / "m.npz")
        rc = main([
            "train", "--dataset", "email", "--scale", "0.012",
            "--epochs", "2", "--hidden-dim", "8", "--latent-dim", "4",
            "--model-out", model_path,
        ])
        assert rc == 0
        out_path = str(tmp_path / "g.npz")
        rc = main([
            "generate", "--model", model_path, "--timesteps", "3",
            "--out", out_path,
        ])
        assert rc == 0
        from repro.graph import io as graph_io

        g = graph_io.load(out_path)
        assert g.num_timesteps == 3
        # sharded decode is a deployment knob: same seed, same graph
        sharded_path = str(tmp_path / "g_sharded.npz")
        rc = main([
            "generate", "--model", model_path, "--timesteps", "3",
            "--out", sharded_path, "--shards", "3", "--executor", "thread",
        ])
        assert rc == 0
        assert graph_io.load(sharded_path).store == g.store

    def test_ingest_event_log(self, tmp_path, capsys):
        import numpy as np

        from repro.graph import io as graph_io
        from repro.graph.store import TemporalEdgeStore

        rng = np.random.default_rng(2)
        src, dst, t = (
            rng.integers(0, 20, size=400),
            rng.integers(0, 20, size=400),
            rng.integers(0, 4, size=400),
        )
        events_path = str(tmp_path / "events.npz")
        graph_io.save_events(
            events_path, src, dst, t, num_nodes=20, num_timesteps=4
        )
        out_path = str(tmp_path / "ingested.npz")
        rc = main([
            "ingest", "--events", events_path, "--out", out_path,
            "--memory-budget-mb", "0.1",
        ])
        assert rc == 0
        assert graph_io.load(out_path).store == TemporalEdgeStore(
            20, 4, src, dst, t
        )

    def test_experiment_json_output(self, capsys):
        rc = main([
            "experiment", "--name", "fig3", "--dataset", "email",
            "--scale", "0.012", "--epochs", "2",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "VRDAG" in payload

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--name", "table99"])

    def test_compare_report(self, tmp_path, capsys):
        import numpy as np

        from repro.graph import DynamicAttributedGraph, io as graph_io

        rng = np.random.default_rng(0)
        adj = (rng.random((3, 12, 12)) < 0.2).astype(float)
        for t in range(3):
            np.fill_diagonal(adj[t], 0.0)
        attrs = rng.normal(size=(3, 12, 2))
        a = DynamicAttributedGraph.from_tensors(adj, attrs)
        b = DynamicAttributedGraph.from_tensors(
            adj[:, :, :], attrs + rng.normal(0, 0.1, size=attrs.shape)
        )
        pa, pb = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        graph_io.save(a, pa)
        graph_io.save(b, pb)
        assert main(["compare", "--original", pa, "--synthetic", pb]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "fidelity" in payload and "privacy" in payload
        assert payload["privacy"]["edge_overlap"] == 1.0

    def test_compare_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main([
                "compare", "--original", str(tmp_path / "nope.npz"),
                "--synthetic", str(tmp_path / "nope2.npz"),
            ])
