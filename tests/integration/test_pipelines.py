"""Cross-module integration pipelines exercising the public API end to
end: streams → training → release, churn generation, perturbation
sanity, and persistence → continuation."""

import numpy as np
import pytest

from repro.core import (
    NodeDynamicsWrapper,
    TrainConfig,
    VRDAG,
    VRDAGConfig,
    VRDAGTrainer,
    continue_sequence,
    load_model,
    save_model,
)
from repro.datasets import load_dataset
from repro.datasets.perturb import rewire_edges
from repro.graph import DynamicAttributedGraph
from repro.graph.formats import export_graph_csv, import_graph_csv
from repro.graph.streams import InteractionStream, discretize, to_stream
from repro.metrics import (
    degree_distribution_mmd,
    privacy_report,
    structure_metric_table,
)


def train_small(graph, epochs=4, seed=0):
    cfg = VRDAGConfig(
        num_nodes=graph.num_nodes,
        num_attributes=graph.num_attributes,
        hidden_dim=8, latent_dim=4, encode_dim=8, seed=seed,
    )
    model = VRDAG(cfg)
    VRDAGTrainer(model, TrainConfig(epochs=epochs)).fit(graph)
    return model


@pytest.fixture(scope="module")
def email_graph():
    return load_dataset("email", scale=0.015, seed=0)


@pytest.fixture(scope="module")
def email_model(email_graph):
    return train_small(email_graph)


class TestStreamToReleasePipeline:
    def test_full_pipeline(self, tmp_path, email_graph, email_model):
        # generate a synthetic twin
        synthetic = email_model.generate(email_graph.num_timesteps, seed=1)
        # leakage audit must come back complete and finite where defined
        audit = privacy_report(email_graph, synthetic)
        assert 0.0 <= audit["edge_overlap"] <= 1.0
        assert audit["attr_nn_distance"] > 0.0
        # release via CSV, re-import, and verify the round trip exactly
        export_graph_csv(synthetic, tmp_path / "e.csv", tmp_path / "a.csv")
        back = import_graph_csv(tmp_path / "e.csv", tmp_path / "a.csv")
        assert np.array_equal(
            back.adjacency_tensor(), synthetic.adjacency_tensor()
        )
        np.testing.assert_allclose(
            back.attribute_tensor(), synthetic.attribute_tensor()
        )
        # fidelity metrics on the re-imported graph are finite
        table = structure_metric_table(email_graph, back)
        assert all(np.isfinite(v) for v in table.values())

    def test_stream_view_round_trip(self, email_model, email_graph):
        synthetic = email_model.generate(4, seed=2)
        stream = to_stream(synthetic, window=1.0)
        assert isinstance(stream, InteractionStream)
        assert len(stream) == synthetic.num_temporal_edges
        rebucketed = discretize(stream, 4)
        # uniform windows on midpoint timestamps reproduce the buckets
        # when the first and last snapshots are non-empty
        if synthetic[0].num_edges and synthetic[3].num_edges:
            assert (
                rebucketed.num_temporal_edges == synthetic.num_temporal_edges
            )


class TestChurnPipeline:
    def test_fitted_churn_generation(self, email_graph, email_model):
        wrapper = NodeDynamicsWrapper(
            email_model, deletion_threshold=3
        ).fit(email_graph)
        out, masks = wrapper.generate(
            5, initial_active=email_graph.num_nodes // 2, seed=3
        )
        assert out.num_timesteps == 5
        assert masks.shape == (5, email_graph.num_nodes)
        # active-set evolution stays within the universe
        assert masks.sum(axis=1).max() <= email_graph.num_nodes
        # inactive nodes never carry edges
        for t in range(5):
            assert out[t].adjacency[~masks[t]].sum() == 0


class TestPerturbationSanity:
    def test_metrics_rank_corruption_levels(self, email_graph):
        """The metric suite must rank an uncorrupted copy above a
        heavily rewired one — the precondition for trusting Table I."""
        light = rewire_edges(email_graph, 0.05, np.random.default_rng(0))
        heavy = rewire_edges(email_graph, 0.95, np.random.default_rng(0))
        mmd_light = degree_distribution_mmd(email_graph, light, "in")
        mmd_heavy = degree_distribution_mmd(email_graph, heavy, "in")
        assert mmd_light <= mmd_heavy


class TestPersistContinue:
    def test_save_load_continue(self, tmp_path, email_graph, email_model):
        path = tmp_path / "model.npz"
        save_model(email_model, path)
        loaded = load_model(path)
        # loaded model generates identically (incl. AR(1) rho state)
        a = email_model.generate(3, seed=5)
        b = loaded.generate(3, seed=5)
        assert a == b
        # and supports conditional continuation of the observed prefix
        prefix = DynamicAttributedGraph(email_graph.snapshots[:3])
        future = continue_sequence(loaded, prefix, horizon=2, seed=6)
        assert future.num_timesteps == 2
        assert future.num_nodes == email_graph.num_nodes
