"""End-to-end pipeline tests: dataset -> train -> generate -> evaluate."""

import numpy as np
import pytest

from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.datasets import load_dataset
from repro.graph import io as graph_io
from repro.metrics import (
    attribute_jsd,
    structure_metric_table,
)
from repro.metrics.difference import (
    attribute_difference_series,
    structure_difference_series,
)


@pytest.fixture(scope="module")
def pipeline():
    """One shared train->generate run (module-scoped: it is the slow part)."""
    graph = load_dataset("email", scale=0.015, seed=0)
    cfg = VRDAGConfig(
        num_nodes=graph.num_nodes,
        num_attributes=graph.num_attributes,
        hidden_dim=16, latent_dim=8, encode_dim=16, seed=0,
    )
    model = VRDAG(cfg)
    result = VRDAGTrainer(model, TrainConfig(epochs=15)).fit(graph)
    synthetic = model.generate(graph.num_timesteps, seed=1)
    return graph, model, result, synthetic


class TestPipeline:
    def test_training_converged_downward(self, pipeline):
        _, _, result, _ = pipeline
        assert result.loss_history[-1] < result.loss_history[0]

    def test_synthetic_statistics_plausible(self, pipeline):
        graph, _, _, synthetic = pipeline
        assert synthetic.num_nodes == graph.num_nodes
        # generated edge volume within 3x of the original
        ratio = synthetic.num_temporal_edges / graph.num_temporal_edges
        assert 1 / 3 < ratio < 3

    def test_structure_metrics_reasonable(self, pipeline):
        graph, _, _, synthetic = pipeline
        table = structure_metric_table(graph, synthetic)
        assert table["in_deg_dist"] < 0.2
        assert np.isfinite(table["wedge_count"])

    def test_attribute_fidelity(self, pipeline):
        graph, _, _, synthetic = pipeline
        assert attribute_jsd(graph, synthetic) < np.log(2) / 2

    def test_difference_series_computable(self, pipeline):
        graph, _, _, synthetic = pipeline
        for metric in ("degree", "clustering", "coreness"):
            s = structure_difference_series(synthetic, metric)
            assert len(s) == synthetic.num_timesteps - 1
        for metric in ("mae", "rmse"):
            s = attribute_difference_series(synthetic, metric)
            assert np.all(np.isfinite(s))

    def test_model_persistence_roundtrip(self, pipeline, tmp_path):
        graph, model, _, _ = pipeline
        state = model.state_dict()
        clone = VRDAG(model.config)
        clone.load_state_dict(state)
        # same parameters -> same expected adjacency rollout
        p1 = model.expected_adjacency(2, seed=3)
        p2 = clone.expected_adjacency(2, seed=3)
        np.testing.assert_allclose(p1, p2)

    def test_generated_graph_persistence(self, pipeline, tmp_path):
        _, _, _, synthetic = pipeline
        path = tmp_path / "synthetic.npz"
        graph_io.save(synthetic, path)
        assert graph_io.load(path) == synthetic


class TestFailureInjection:
    def test_trainer_raises_on_nan_loss(self, tiny_graph):
        cfg = VRDAGConfig(
            num_nodes=tiny_graph.num_nodes,
            num_attributes=tiny_graph.num_attributes,
            hidden_dim=8, latent_dim=4, encode_dim=8,
        )
        model = VRDAG(cfg)
        # corrupt a parameter: the trainer must detect the NaN loss
        model.encoder.input_proj.weight.data[:] = np.nan
        trainer = VRDAGTrainer(model, TrainConfig(epochs=3))
        with pytest.raises(FloatingPointError, match="diverged"):
            trainer.fit(tiny_graph)

    def test_model_rejects_wrong_graph(self, tiny_graph, structure_only_graph):
        cfg = VRDAGConfig(
            num_nodes=tiny_graph.num_nodes, num_attributes=2,
            hidden_dim=8, latent_dim=4, encode_dim=8,
        )
        model = VRDAG(cfg)
        with pytest.raises(ValueError):
            model.sequence_loss(structure_only_graph)
