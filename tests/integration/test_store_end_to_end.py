"""Acceptance: fit → generate → evaluate never densifies the store.

On a Table-I-shaped workload (co-evolving attributed graph) the
migrated harness path — walk-baseline and VRDAG fit paths, store-backed
generation, CSR metric scoring — must finish with **zero** store→dense
adjacency materializations, i.e. peak structural memory stays
O(M + N) per timestep view rather than an O(N²·T) dense stack.
"""

import numpy as np

from repro.datasets import CoEvolutionConfig, generate_co_evolving_graph
from repro.eval.harness import VRDAGGenerator, timed_fit_generate
from repro.baselines import TagGen, TIGGER
from repro.graph import track_dense_materializations
from repro.metrics import privacy_report, structure_metric_table
from repro.metrics.motifs import motif_discrepancy


def _workload():
    cfg = CoEvolutionConfig(
        num_nodes=20,
        num_timesteps=4,
        num_attributes=2,
        edges_per_step=40,
        num_communities=3,
    )
    return generate_co_evolving_graph(cfg, seed=11)


class TestZeroDenseMaterializations:
    def test_taggen_fit_generate_score(self):
        graph = _workload()
        with track_dense_materializations() as materialized:
            run = timed_fit_generate("TagGen", TagGen(seed=0), graph, seed=1)
            structure_metric_table(graph, run.generated)
            privacy_report(graph, run.generated)
            motif_discrepancy(graph, run.generated)
            assert materialized() == 0
        assert run.dense_materializations == 0
        assert run.generated.is_store_backed

    def test_tigger_fit_generate_score(self):
        graph = _workload()
        with track_dense_materializations() as materialized:
            run = timed_fit_generate("TIGGER", TIGGER(epochs=1, seed=0),
                                     graph, seed=1)
            structure_metric_table(graph, run.generated)
            assert materialized() == 0
        assert run.dense_materializations == 0

    def test_vrdag_fit_generate_score(self):
        graph = _workload()
        with track_dense_materializations() as materialized:
            run = timed_fit_generate(
                "VRDAG", VRDAGGenerator(epochs=2, seed=0), graph, seed=1
            )
            structure_metric_table(graph, run.generated)
            privacy_report(graph, run.generated)
            assert materialized() == 0
        assert run.dense_materializations == 0
        assert run.generated.is_store_backed

    def test_generated_structural_memory_is_sparse(self):
        graph = _workload()
        run = timed_fit_generate(
            "VRDAG", VRDAGGenerator(epochs=1, seed=0), graph, seed=1
        )
        store = run.generated.store
        n, t = store.num_nodes, store.num_timesteps
        dense_bytes = n * n * t * 8
        # structural columns are O(M + T), nowhere near the dense stack
        assert store.structural_nbytes() <= max(
            32 * (store.num_edges + t + 1), dense_bytes // 4
        )
        assert store.structural_nbytes() < dense_bytes

    def test_scoring_two_store_backed_graphs_stays_sparse(self):
        graph = _workload()
        gen = VRDAGGenerator(epochs=1, seed=0).fit(graph)
        a = gen.generate(graph.num_timesteps, seed=2)
        b = gen.generate(graph.num_timesteps, seed=3)
        with track_dense_materializations() as materialized:
            structure_metric_table(a, b)
            privacy_report(a, b)
            assert materialized() == 0

    def test_dense_core_fit_on_store_backed_input_is_bounded(self):
        # VRDAG's teacher-forced ELBO is O(N²) by design: fitting a
        # *store-backed* input materializes each training timestep's
        # cached dense view at most once (≤ T, never per-epoch), and
        # generation/scoring stays at zero.
        from repro.graph import DynamicAttributedGraph

        dense = _workload()
        graph = DynamicAttributedGraph.from_store(dense.store)
        t_len = graph.num_timesteps
        with track_dense_materializations() as materialized:
            gen = VRDAGGenerator(epochs=3, seed=0).fit(graph)
            assert materialized() <= t_len
            fit_count = materialized()
            out = gen.generate(t_len, seed=1)
            structure_metric_table(graph, out)
            assert materialized() == fit_count  # generate + score add 0

    def test_reference_decode_matches_store_path(self):
        # the store-emitting decode must produce the same graphs as the
        # dense reference sampler (RNG-consumption parity)
        graph = _workload()
        gen = VRDAGGenerator(epochs=1, seed=0).fit(graph)
        sampler = gen.model.structure_sampler
        rng = np.random.default_rng(7)
        s = np.random.default_rng(8).normal(size=(20, sampler.f_theta.layers[0].weight.shape[0]))
        from repro.autodiff.tensor import Tensor

        fast = sampler.sample(Tensor(s), np.random.default_rng(9))
        ref = sampler._reference_sample(Tensor(s), np.random.default_rng(9))
        np.testing.assert_array_equal(fast, ref)
        src, dst = sampler.sample_edges(Tensor(s), np.random.default_rng(9))
        np.testing.assert_array_equal(np.nonzero(ref)[0], src)
        np.testing.assert_array_equal(np.nonzero(ref)[1], dst)
