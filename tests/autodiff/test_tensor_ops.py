"""Gradient checks for Tensor operator methods vs finite differences."""

import numpy as np
import pytest

from repro.autodiff import Tensor

from tests.conftest import numeric_gradient


def check_unary(op, x_data, tol=1e-5):
    x = Tensor(x_data.copy(), requires_grad=True)
    out = op(x)
    out.sum().backward()
    num = numeric_gradient(lambda a: float(op(Tensor(a)).sum().data), x_data.copy())
    np.testing.assert_allclose(x.grad, num, rtol=tol, atol=tol)


def check_binary(op, a_data, b_data, tol=1e-5):
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    op(a, b).sum().backward()
    num_a = numeric_gradient(
        lambda x: float(op(Tensor(x), Tensor(b_data)).sum().data), a_data.copy()
    )
    num_b = numeric_gradient(
        lambda x: float(op(Tensor(a_data), Tensor(x)).sum().data), b_data.copy()
    )
    np.testing.assert_allclose(a.grad, num_a, rtol=tol, atol=tol)
    np.testing.assert_allclose(b.grad, num_b, rtol=tol, atol=tol)


class TestArithmetic:
    def test_add(self, rng):
        check_binary(lambda a, b: a + b, rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))

    def test_sub(self, rng):
        check_binary(lambda a, b: a - b, rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))

    def test_mul(self, rng):
        check_binary(lambda a, b: a * b, rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))

    def test_div(self, rng):
        b = rng.normal(size=(3, 4))
        b[np.abs(b) < 0.3] = 0.5  # keep away from zero
        check_binary(lambda a, x: a / x, rng.normal(size=(3, 4)), b)

    def test_neg(self, rng):
        check_unary(lambda x: -x, rng.normal(size=(4,)))

    def test_pow(self, rng):
        x = np.abs(rng.normal(size=(3, 3))) + 0.5
        check_unary(lambda t: t**3.0, x)

    def test_pow_tensor_exponent_rejected(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(TypeError):
            x ** Tensor(np.ones(3))

    def test_scalar_operands(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = (2.0 * x + 1.0 - 0.5) / 2.0
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_rsub_rdiv(self):
        x = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        (1.0 - x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])
        x.zero_grad()
        (8.0 / x).sum().backward()
        np.testing.assert_allclose(x.grad, -8.0 / np.array([4.0, 16.0]))


class TestMatmul:
    def test_matmul_2d(self, rng):
        check_binary(lambda a, b: a @ b, rng.normal(size=(3, 4)), rng.normal(size=(4, 2)))

    def test_matmul_vec(self, rng):
        check_binary(lambda a, b: a @ b, rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_matmul_shapes(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.ones((3, 5)))
        assert (a @ b).shape == (2, 5)


class TestReductions:
    def test_sum_all(self, rng):
        check_unary(lambda x: x.sum(), rng.normal(size=(3, 4)))

    def test_sum_axis(self, rng):
        check_unary(lambda x: x.sum(axis=0), rng.normal(size=(3, 4)))

    def test_sum_keepdims(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_mean(self, rng):
        check_unary(lambda x: x.mean(), rng.normal(size=(4, 5)))

    def test_mean_axis(self, rng):
        check_unary(lambda x: x.mean(axis=1), rng.normal(size=(4, 5)))

    def test_max(self, rng):
        x = rng.normal(size=(3, 4))
        check_unary(lambda t: t.max(axis=1), x)

    def test_max_tie_subgradient(self):
        x = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        # ties split the gradient: still a valid subgradient summing to 1
        assert pytest.approx(1.0) == x.grad.sum()


class TestShapeOps:
    def test_reshape(self, rng):
        check_unary(lambda x: (x.reshape(6, 2) * 2.0), rng.normal(size=(3, 4)))

    def test_transpose(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 4))
        check_binary(lambda x, y: x.transpose() @ y, a, b)

    def test_transpose_axes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = x.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_getitem_rows(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        out = x[np.array([0, 2, 2])]
        out.sum().backward()
        expected = np.zeros((5, 3))
        expected[0] = 1.0
        expected[2] = 2.0  # repeated index accumulates
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_slice(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((5, 3))
        expected[1:3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_expand_squeeze(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = x.expand_dims(1)
        assert out.shape == (3, 1, 4)
        assert out.squeeze(1).shape == (3, 4)
        out.squeeze(1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))


class TestBackwardSemantics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_explicit_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3).backward(np.full((2, 2), 2.0))
        np.testing.assert_allclose(x.grad, np.full((2, 2), 6.0))

    def test_grad_shape_mismatch(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 3).backward(np.ones(3))

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 4.0))

    def test_diamond_graph_accumulation(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3
        z = y + y * y  # two paths through y
        z.sum().backward()
        # dz/dx = 3 + 2*y*3 = 3 + 36 = 39
        np.testing.assert_allclose(x.grad, [39.0])

    def test_no_grad_blocks_tape(self):
        from repro.autodiff import no_grad

        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._parents == ()

    def test_no_grad_is_thread_local(self):
        """no_grad in one thread must not disable recording in others."""
        import threading

        from repro.autodiff import is_grad_enabled, no_grad

        seen = {}
        release = threading.Event()

        def hold_no_grad():
            with no_grad():
                release.wait(timeout=5)

        worker = threading.Thread(target=hold_no_grad)
        worker.start()
        try:
            seen["main"] = is_grad_enabled()
            x = Tensor(np.ones(2), requires_grad=True)
            y = x * 3
            seen["recorded"] = y.requires_grad
        finally:
            release.set()
            worker.join()
        assert seen["main"] and seen["recorded"]
        assert is_grad_enabled()  # worker exit restored only its own state

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad
        z = y * 3
        assert not z.requires_grad

    def test_repr(self):
        assert "shape=(2,)" in repr(Tensor(np.ones(2)))
