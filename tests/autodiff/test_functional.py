"""Gradient and semantics checks for repro.autodiff.functional."""

import numpy as np
import pytest

from repro.autodiff import Tensor, functional as F

from tests.conftest import numeric_gradient


def check_unary(op, x_data, tol=1e-5):
    x = Tensor(x_data.copy(), requires_grad=True)
    op(x).sum().backward()
    num = numeric_gradient(lambda a: float(op(Tensor(a)).sum().data), x_data.copy())
    np.testing.assert_allclose(x.grad, num, rtol=tol, atol=tol)


class TestNonlinearities:
    def test_exp(self, rng):
        check_unary(F.exp, rng.normal(size=(3, 4)))

    def test_log(self, rng):
        check_unary(F.log, np.abs(rng.normal(size=(3, 4))) + 0.5)

    def test_log_eps(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        out = F.log(x, eps=1e-6)
        assert np.all(np.isfinite(out.data))

    def test_sqrt(self, rng):
        check_unary(F.sqrt, np.abs(rng.normal(size=(4,))) + 0.1)

    def test_abs(self, rng):
        x = rng.normal(size=(3, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_unary(F.abs_, x)

    def test_sigmoid(self, rng):
        check_unary(F.sigmoid, rng.normal(size=(3, 4)) * 3)

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor(np.array([-1000.0, 1000.0]))
        out = F.sigmoid(x)
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_tanh(self, rng):
        check_unary(F.tanh, rng.normal(size=(3, 4)))

    def test_relu(self, rng):
        x = rng.normal(size=(3, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_unary(F.relu, x)

    def test_leaky_relu(self, rng):
        x = rng.normal(size=(3, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_unary(lambda t: F.leaky_relu(t, 0.2), x)

    def test_elu(self, rng):
        x = rng.normal(size=(3, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_unary(F.elu, x)

    def test_softplus(self, rng):
        check_unary(F.softplus, rng.normal(size=(4,)))

    def test_softplus_large_input(self):
        out = F.softplus(Tensor(np.array([500.0])))
        assert np.isfinite(out.data).all()


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(5, 7))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5))

    def test_softmax_grad(self, rng):
        x = rng.normal(size=(3, 4))
        check_unary(lambda t: (F.softmax(t, axis=1) * np.arange(4)), x)

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(2, 5))
        a = F.softmax(Tensor(x), axis=1).data
        b = F.softmax(Tensor(x + 100.0), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(
            F.log_softmax(x, axis=1).data,
            np.log(F.softmax(x, axis=1).data),
            atol=1e-12,
        )

    def test_log_softmax_grad(self, rng):
        x = rng.normal(size=(3, 4))
        check_unary(lambda t: (F.log_softmax(t, axis=1) * np.arange(4)), x)

    def test_logsumexp_matches_numpy(self, rng):
        from scipy.special import logsumexp as scipy_lse

        x = rng.normal(size=(3, 5))
        out = F.logsumexp(Tensor(x), axis=1)
        np.testing.assert_allclose(out.data, scipy_lse(x, axis=1))

    def test_logsumexp_grad(self, rng):
        x = rng.normal(size=(3, 5))
        check_unary(lambda t: F.logsumexp(t, axis=1), x)

    def test_logsumexp_large_values_stable(self):
        out = F.logsumexp(Tensor(np.array([[1000.0, 1000.0]])), axis=1)
        np.testing.assert_allclose(out.data, [1000.0 + np.log(2)])


class TestStructuralOps:
    def test_clip_grad_masks_outside(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        F.clip(x, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_concat_axis1(self, rng):
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = F.concat([a, b], axis=1)
        assert out.shape == (3, 6)
        (out * np.arange(6)).sum().backward()
        np.testing.assert_allclose(a.grad, np.tile([0.0, 1.0], (3, 1)))
        np.testing.assert_allclose(b.grad, np.tile([2.0, 3.0, 4.0, 5.0], (3, 1)))

    def test_concat_axis0(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 3)), requires_grad=True)
        out = F.concat([a, b], axis=0)
        assert out.shape == (3, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((1, 3)))

    def test_stack(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = F.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out[0] * 2 + out[1] * 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(3, 2.0))
        np.testing.assert_allclose(b.grad, np.full(3, 3.0))

    def test_where_select_and_grads(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0]), requires_grad=True)
        out = F.where(np.array([True, False]), a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_maximum_minimum(self):
        a = Tensor(np.array([1.0, 5.0]))
        b = Tensor(np.array([3.0, 2.0]))
        np.testing.assert_allclose(F.maximum(a, b).data, [3.0, 5.0])
        np.testing.assert_allclose(F.minimum(a, b).data, [1.0, 2.0])

    def test_norm(self, rng):
        x = rng.normal(size=(4, 3))
        check_unary(lambda t: F.norm(t, axis=1), x, tol=1e-4)

    def test_norm_at_zero_finite_grad(self):
        x = Tensor(np.zeros((1, 3)), requires_grad=True)
        F.norm(x, axis=1).sum().backward()
        assert np.all(np.isfinite(x.grad))


class TestDropout:
    def test_dropout_eval_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_training_zeroes_and_scales(self):
        gen = np.random.default_rng(0)
        x = Tensor(np.ones((100, 100)))
        out = F.dropout(x, 0.5, gen, training=True)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling
        frac = (out.data > 0).mean()
        assert 0.4 < frac < 0.6

    def test_dropout_p_zero(self, rng):
        x = Tensor(np.ones(5))
        out = F.dropout(x, 0.0, rng, training=True)
        np.testing.assert_allclose(out.data, 1.0)


class TestTensorMethodAttachment:
    def test_methods_exist(self, rng):
        x = Tensor(np.abs(rng.normal(size=(3,))) + 1.0)
        np.testing.assert_allclose(x.exp().data, np.exp(x.data))
        np.testing.assert_allclose(x.log().data, np.log(x.data))
        np.testing.assert_allclose(x.sigmoid().data, 1 / (1 + np.exp(-x.data)))
        np.testing.assert_allclose(x.tanh().data, np.tanh(x.data))
