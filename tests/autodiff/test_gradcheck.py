"""The finite-difference checker itself: catches wrong gradients,
passes correct ones, on both engines."""

import numpy as np
import pytest

from repro.autodiff import Tape, Tensor, functional as F, gradcheck
from repro.nn import Parameter


class TestGradcheckPasses:
    def test_legacy_engine(self):
        p = Parameter(np.array([0.3, -1.2, 0.7]))

        def fn():
            return (F.sigmoid(p * 2.0) ** 2).sum()

        assert gradcheck(fn, [p])

    def test_tape_engine(self):
        p = Parameter(np.array([0.3, -1.2, 0.7]))

        def fn():
            with Tape() as tape:
                v = tape.lift(p)
                return (F.sigmoid(v * 2.0) ** 2).sum()

        assert gradcheck(fn, [p])

    def test_multiple_params(self):
        rng = np.random.default_rng(5)
        w = Parameter(rng.normal(size=(3, 2)))
        b = Parameter(rng.normal(size=(2,)))
        x = rng.normal(size=(4, 3))

        def fn():
            return (F.tanh(Tensor(x) @ w + b) ** 2).mean()

        assert gradcheck(fn, [w, b])

    def test_max_entries_subsamples(self):
        p = Parameter(np.linspace(-1, 1, 50))

        def fn():
            return (p ** 2).sum()

        assert gradcheck(fn, [p], max_entries=5)


class TestGradcheckCatchesBugs:
    def test_wrong_backward_is_flagged(self):
        p = Parameter(np.array([0.5, 1.5]))

        def fn():
            # deliberately broken VJP: claims d(sum 2p)/dp = 3
            return Tensor._from_op(
                np.asarray(np.sum(2.0 * p.data)),
                (p,),
                (lambda g: 3.0 * np.ones_like(p.data) * g,),
                "broken",
            )

        with pytest.raises(AssertionError, match="gradcheck failed"):
            gradcheck(fn, [p])

    def test_missing_gradient_is_flagged(self):
        p = Parameter(np.array([0.5, 1.5]))

        def fn():
            # loss depends on p but p never enters the graph
            return Tensor(np.asarray(float((p.data ** 2).sum())))

        with pytest.raises(AssertionError, match="gradcheck failed"):
            gradcheck(fn, [p])
