"""Gradient parity: flat-tape engine vs the legacy closure engine.

For every nn module and for the full VRDAG sequence loss, the same
forward computation is differentiated on both engines and the per-
parameter gradients are compared.  Shared primitives evaluate the very
same numpy expressions on both engines, so most paths agree to machine
precision; the fused tape kernels (``linear_act``, ``pairwise_mlp2``,
…) reassociate sums, so those paths are pinned with a small tolerance.
Both engines are additionally pinned against central finite differences
via :func:`repro.autodiff.gradcheck`.
"""

import numpy as np
import pytest

from repro.autodiff import Tape, Tensor, functional as F, gradcheck
from repro.core.generator import MixBernoulliSampler
from repro.core.model import VRDAG, VRDAGConfig
from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.nn import GRUCell, Linear, MLP, Module, Time2Vec
from repro.nn.attention import GATLayer
from repro.nn.gin import GINLayer

TOL = 1e-9  # reassociation-level agreement; exact paths hit 0.0


def _jitter(module: Module, seed: int = 17, scale: float = 0.05) -> None:
    """Nudge every parameter off its (often zero) init.

    Zero-initialized biases put the pairwise heads' diagonal
    preactivations *exactly* on the leaky-ReLU kink, where the
    subgradient and a central finite difference legitimately disagree;
    jittering moves the check to a generic point.
    """
    jrng = np.random.default_rng(seed)
    for p in module.parameters():
        p.data += jrng.normal(0.0, scale, size=p.data.shape)


def _engine_grads(module: Module, loss_fn, engine: str):
    """Loss value + per-parameter grads of ``loss_fn`` on one engine."""
    params = module.parameters()
    for p in params:
        p.grad = None
    if engine == "tape":
        with Tape():
            loss = loss_fn()
            loss.backward()
    else:
        loss = loss_fn()
        loss.backward()
    grads = [
        p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
        for p in params
    ]
    return float(loss.data), grads


def _assert_parity(module: Module, loss_fn, grad_tol: float = TOL):
    """Tape and legacy agree with each other and with finite diffs."""
    loss_t, grads_t = _engine_grads(module, loss_fn, "tape")
    loss_l, grads_l = _engine_grads(module, loss_fn, "legacy")
    assert loss_t == pytest.approx(loss_l, rel=1e-12, abs=1e-12)
    assert len(grads_t) == len(grads_l)
    for gt, gl in zip(grads_t, grads_l):
        np.testing.assert_allclose(gt, gl, rtol=grad_tol, atol=grad_tol)
    # finite-difference pin for BOTH engines
    assert gradcheck(loss_fn, module.parameters(), max_entries=8, tol=1e-4)

    def tape_fn():
        with Tape():
            return loss_fn()

    assert gradcheck(tape_fn, module.parameters(), max_entries=8, tol=1e-4)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestModuleParity:
    def test_linear(self, rng):
        lin = Linear(5, 3, rng=rng)
        x = rng.normal(size=(7, 5))
        _assert_parity(lin, lambda: (lin(Tensor(x)) ** 2).mean())

    def test_linear_no_bias(self, rng):
        lin = Linear(5, 3, bias=False, rng=rng)
        x = rng.normal(size=(7, 5))
        _assert_parity(lin, lambda: (lin(Tensor(x)) ** 2).mean())

    @pytest.mark.parametrize("act", ["relu", "tanh", "sigmoid", "elu"])
    def test_mlp_activations(self, rng, act):
        mlp = MLP([4, 6, 2], activation=act, rng=rng)
        x = rng.normal(size=(5, 4))
        _assert_parity(mlp, lambda: (mlp(Tensor(x)) ** 2).mean())

    def test_mlp_out_activation(self, rng):
        mlp = MLP([4, 6, 2], activation="relu", out_activation="tanh", rng=rng)
        x = rng.normal(size=(5, 4))
        _assert_parity(mlp, lambda: (mlp(Tensor(x)) ** 2).mean())

    def test_gru_cell(self, rng):
        gru = GRUCell(4, 6, rng=rng)
        x = rng.normal(size=(5, 4))
        h = rng.normal(size=(5, 6))
        _assert_parity(
            gru, lambda: (gru(Tensor(x), Tensor(h)) ** 2).mean()
        )

    def test_gru_cell_unrolled(self, rng):
        """BPTT through several steps — grads accumulate across records."""
        gru = GRUCell(3, 4, rng=rng)
        xs = [rng.normal(size=(2, 3)) for _ in range(3)]

        def loss_fn():
            h = Tensor(np.zeros((2, 4)))
            for x in xs:
                h = gru(Tensor(x), h)
            return (h ** 2).mean()

        _assert_parity(gru, loss_fn)

    def test_gat_layer(self, rng):
        gat = GATLayer(4, 5, rng=rng)
        h = rng.normal(size=(6, 4))
        adj = (rng.random((6, 6)) < 0.4).astype(float)
        np.fill_diagonal(adj, 0.0)
        _assert_parity(gat, lambda: (gat(Tensor(h), adj) ** 2).mean())

    def test_gin_layer(self, rng):
        gin = GINLayer(4, 5, rng=rng)
        h = rng.normal(size=(6, 4))
        adj = (rng.random((6, 6)) < 0.4).astype(float)
        np.fill_diagonal(adj, 0.0)
        _assert_parity(gin, lambda: (gin(Tensor(h), adj) ** 2).mean())

    def test_time2vec(self, rng):
        t2v = Time2Vec(5, rng=rng)
        _assert_parity(t2v, lambda: (t2v(3.0) ** 2).sum())

    def test_time2vec_dim1(self, rng):
        t2v = Time2Vec(1, rng=rng)
        _assert_parity(t2v, lambda: (t2v(2.0) ** 2).sum())


class TestSamplerParity:
    """The fused pairwise/decoder kernels against the generic path."""

    def _sampler(self, seed=3, k=2, d=6):
        sampler = MixBernoulliSampler(
            d, num_components=k, rng=np.random.default_rng(seed)
        )
        _jitter(sampler)
        return sampler

    def test_log_likelihood(self, rng):
        sampler = self._sampler()
        s = rng.normal(size=(8, 6))
        adj = (rng.random((8, 8)) < 0.3).astype(float)
        np.fill_diagonal(adj, 0.0)
        _assert_parity(
            sampler,
            lambda: sampler.log_likelihood(Tensor(s), adj),
            grad_tol=1e-8,
        )

    def test_distribution_alpha_theta(self, rng):
        sampler = self._sampler()
        s = rng.normal(size=(7, 6))

        def loss_fn():
            alpha, theta = sampler.distribution(Tensor(s))
            return (alpha ** 2).sum() + (theta ** 2).sum()

        _assert_parity(sampler, loss_fn, grad_tol=1e-8)

    def test_sampled_log_likelihood(self, rng):
        sampler = self._sampler()
        s = rng.normal(size=(8, 6))
        adj = (rng.random((8, 8)) < 0.3).astype(float)
        np.fill_diagonal(adj, 0.0)

        def loss_fn():
            # fixed negative draws so the loss replays identically
            return sampler.sampled_log_likelihood(
                Tensor(s), adj, 4, np.random.default_rng(13)
            )

        _assert_parity(sampler, loss_fn, grad_tol=1e-8)


def _toy_graph(n=9, t_len=3, f=2, seed=0):
    rng = np.random.default_rng(seed)
    snaps = []
    adj = (rng.random((n, n)) < 0.25).astype(float)
    np.fill_diagonal(adj, 0.0)
    for t in range(t_len):
        flip = (rng.random((n, n)) < 0.05).astype(float)
        adj = np.clip(adj + flip, 0, 1)
        np.fill_diagonal(adj, 0.0)
        snaps.append(GraphSnapshot(adj.copy(), rng.normal(size=(n, f))))
    return DynamicAttributedGraph(snaps)


class TestVRDAGLossParity:
    """End-to-end: the full sequence ELBO on both engines."""

    def _model(self):
        cfg = VRDAGConfig(
            num_nodes=9, num_attributes=2, hidden_dim=6, latent_dim=4,
            encode_dim=6, mixture_components=2, seed=11,
        )
        return VRDAG(cfg)

    def test_full_loss_parity(self):
        graph = self._model().calibrate(_toy_graph())
        model = self._model()
        graph = model.calibrate(_toy_graph())

        def loss_fn():
            # sampling must replay identically on every call
            model._sample_rng = np.random.default_rng(99)
            loss, _ = model.sequence_loss(graph)
            return loss

        loss_t, grads_t = _engine_grads(model, loss_fn, "tape")
        loss_l, grads_l = _engine_grads(model, loss_fn, "legacy")
        assert loss_t == pytest.approx(loss_l, rel=1e-10)
        for gt, gl in zip(grads_t, grads_l):
            np.testing.assert_allclose(gt, gl, rtol=1e-7, atol=1e-8)

    def test_full_loss_gradcheck_both_engines(self):
        model = self._model()
        graph = model.calibrate(_toy_graph())
        _jitter(model)

        def legacy_fn():
            model._sample_rng = np.random.default_rng(99)
            loss, _ = model.sequence_loss(graph)
            return loss

        def tape_fn():
            with Tape():
                return legacy_fn()

        assert gradcheck(
            legacy_fn, model.parameters(), max_entries=2, tol=2e-4
        )
        assert gradcheck(
            tape_fn, model.parameters(), max_entries=2, tol=2e-4
        )
