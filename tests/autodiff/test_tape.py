"""Flat-tape engine mechanics: recording, lifting, backward, threading.

Gradient *values* are covered by the parity suite
(``test_engine_parity.py``); this file pins the tape's structural
contracts — what gets recorded when, how legacy Tensors cross the
engine boundary, and the thread-locality of the active-tape stack.
"""

import threading

import numpy as np
import pytest

from repro.autodiff import Tape, Tensor, Variable, no_grad
from repro.autodiff.ops import get_op, registered_ops
from repro.autodiff.tape import active_tape, tape_for
from repro.autodiff.tensor import as_tensor
from repro.nn import Parameter


class TestRecording:
    def test_tape_is_flat_and_ordered(self):
        with Tape() as tape:
            x = tape.leaf(np.ones(3), requires_grad=True)
            y = (x * 2.0 + 1.0).sum()
        names = [r.spec.name for r in tape.records]
        assert names == ["mul", "add", "sum"]
        assert len(tape) == 3
        # records address earlier value ids only: the tape order is
        # the topological order the backward sweep relies on
        for rec in tape.records:
            assert all(i < rec.out_id for i in rec.input_ids)
        assert isinstance(y, Variable)

    def test_constant_only_ops_record_nothing(self):
        with Tape() as tape:
            a = tape.leaf(np.ones(3))  # requires_grad=False
            out = (a * 3.0).sum()
        assert len(tape) == 0
        np.testing.assert_allclose(out.data, 9.0)

    def test_no_grad_records_nothing(self):
        with Tape() as tape:
            x = tape.leaf(np.ones(3), requires_grad=True)
            with no_grad():
                out = (x * 2.0).sum()
        assert len(tape) == 0
        assert not out.requires_grad

    def test_apply_rejects_unknown_op(self):
        with pytest.raises(KeyError):
            get_op("definitely_not_an_op")

    def test_fused_ops_are_registered(self):
        names = registered_ops()
        for fused in (
            "linear_act", "gru_cell", "gat_attention",
            "pairwise_mlp2", "mixbern_row_loglik",
        ):
            assert fused in names


class TestLifting:
    def test_parameter_lift_dedupes(self):
        p = Parameter(np.ones(4))
        with Tape() as tape:
            a = tape.lift(p)
            b = tape.lift(p)
        assert a.vid == b.vid

    def test_leaf_grad_writes_back_to_source(self):
        p = Parameter(np.arange(3.0))
        with Tape() as tape:
            v = tape.lift(p)
            loss = (v * v).sum()
            loss.backward()
        np.testing.assert_allclose(p.grad, 2.0 * np.arange(3.0))

    def test_backward_accumulates_across_calls(self):
        p = Parameter(np.ones(2))
        with Tape() as tape:
            loss = (tape.lift(p) * 3.0).sum()
            loss.backward()
            loss.backward()
        np.testing.assert_allclose(p.grad, 6.0 * np.ones(2))

    def test_legacy_interior_node_is_rejected(self):
        p = Parameter(np.ones(3))
        interior = p * 2.0  # legacy closure node with parents
        with Tape() as tape:
            with pytest.raises(RuntimeError, match="interior"):
                tape.lift(interior)
            # detaching explicitly is the sanctioned escape hatch
            v = tape.lift(interior.detach())
            assert not v.requires_grad

    def test_cross_tape_mixing_is_rejected(self):
        t1, t2 = Tape(), Tape()
        a = t1.leaf(np.ones(2), requires_grad=True)
        with pytest.raises(RuntimeError, match="different tapes"):
            t2.lift(a)

    def test_as_tensor_rejects_variables(self):
        with Tape() as tape:
            v = tape.leaf(np.ones(2), requires_grad=True)
            with pytest.raises(TypeError, match="detach"):
                as_tensor(v)

    def test_detach_cuts_from_tape(self):
        with Tape() as tape:
            v = tape.leaf(np.ones(2), requires_grad=True)
            t = v.detach()
        assert isinstance(t, Tensor) and not t.requires_grad


class TestMixedEngine:
    def test_tensor_op_variable_promotes_to_variable(self):
        p = Parameter(np.ones(3))
        c = Tensor(np.full(3, 2.0))
        with Tape() as tape:
            v = tape.lift(p)
            for mixed in (c * v, v * c, c + v, v - c, c / v, v @ np.ones(3)):
                assert isinstance(mixed, Variable)

    def test_numpy_defers_to_variable(self):
        with Tape() as tape:
            v = tape.leaf(np.ones(3), requires_grad=True)
            out = np.full(3, 2.0) * v
        assert isinstance(out, Variable)
        np.testing.assert_allclose(out.data, 2.0)


class TestRouting:
    def test_no_active_tape_routes_legacy(self):
        assert tape_for() is None
        assert active_tape() is None

    def test_active_tape_routes_when_grad_enabled(self):
        with Tape() as tape:
            assert tape_for() is tape
            with no_grad():
                assert tape_for() is None

    def test_variable_argument_wins(self):
        t1 = Tape()
        v = t1.leaf(np.ones(2), requires_grad=True)
        with Tape():
            assert tape_for(v) is t1

    def test_tapes_nest(self):
        with Tape() as outer:
            with Tape() as inner:
                assert active_tape() is inner
            assert active_tape() is outer

    def test_active_tape_is_thread_local(self):
        seen = {}

        def worker():
            seen["worker_tape"] = active_tape()
            with Tape() as wt:
                seen["worker_inner"] = active_tape() is wt

        with Tape() as tape:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert active_tape() is tape
        assert seen["worker_tape"] is None
        assert seen["worker_inner"] is True


class TestBackwardValidation:
    def test_nonscalar_backward_needs_explicit_grad(self):
        with Tape() as tape:
            v = tape.leaf(np.ones(3), requires_grad=True) * 2.0
            with pytest.raises(ValueError, match="scalar"):
                v.backward()
            v.backward(np.ones(3))

    def test_grad_shape_mismatch_raises(self):
        with Tape() as tape:
            v = tape.leaf(np.ones(3), requires_grad=True) * 2.0
            with pytest.raises(ValueError, match="shape"):
                v.backward(np.ones(4))


class TestDerivedLinearMaps:
    def test_get_vjp_matches_backward(self):
        p = Parameter(np.arange(1.0, 4.0))
        with Tape() as tape:
            v = tape.lift(p)
            loss = (v * v).sum()
            vjp = tape.get_vjp(loss, [p])
            (g,) = vjp()
        np.testing.assert_allclose(g, 2.0 * np.arange(1.0, 4.0))

    def test_get_vjp_zero_when_no_path(self):
        p = Parameter(np.ones(2))
        q = Parameter(np.ones(2))
        with Tape() as tape:
            v = tape.lift(p)
            tape.lift(q)  # on the tape but not in the graph
            loss = v.sum()
            gp, gq = tape.get_vjp(loss, [p, q])()
        np.testing.assert_allclose(gp, np.ones(2))
        np.testing.assert_allclose(gq, np.zeros(2))

    def test_jvp_consistent_with_vjp(self):
        # <w, J t> == <J^T w, t> for scalar outputs (w = 1)
        rng = np.random.default_rng(0)
        p = Parameter(rng.normal(size=(3,)))
        t = rng.normal(size=(3,))
        with Tape() as tape:
            v = tape.lift(p)
            loss = (v * v * v).sum()
            jvp = tape.get_jvp(loss, [p])
            vjp = tape.get_vjp(loss, [p])
        forward = float(jvp([t]))
        (g,) = vjp()
        np.testing.assert_allclose(forward, float(g @ t), rtol=1e-10)

    def test_jvp_without_kernel_raises(self):
        p = Parameter(np.ones((2, 2)))
        with Tape() as tape:
            v = tape.lift(p)
            out = v.max()  # max registers no JVP kernel
            jvp = tape.get_jvp(out, [p])
        with pytest.raises(NotImplementedError, match="max"):
            jvp([np.ones((2, 2))])

    def test_jvp_tangent_shape_validated(self):
        p = Parameter(np.ones(3))
        with Tape() as tape:
            v = tape.lift(p)
            out = (v * 2.0).sum()
            jvp = tape.get_jvp(out, [p])
        with pytest.raises(ValueError, match="shape"):
            jvp([np.ones(4)])
