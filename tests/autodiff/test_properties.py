"""Property-based tests (hypothesis) on autodiff algebra."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import Tensor, functional as F

arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=5),
    elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=50, deadline=None)
@given(arrays)
def test_add_zero_identity(x):
    t = Tensor(x, requires_grad=True)
    out = t + np.zeros_like(x)
    np.testing.assert_array_equal(out.data, x)


@settings(max_examples=50, deadline=None)
@given(arrays)
def test_mul_grad_is_other_operand(x):
    a = Tensor(x, requires_grad=True)
    b = np.full_like(x, 3.0)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, b)


@settings(max_examples=50, deadline=None)
@given(arrays)
def test_sum_grad_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_array_equal(t.grad, np.ones_like(x))


@settings(max_examples=50, deadline=None)
@given(arrays)
def test_double_negation(x):
    t = Tensor(x)
    np.testing.assert_array_equal((-(-t)).data, x)


@settings(max_examples=50, deadline=None)
@given(arrays)
def test_sigmoid_range(x):
    out = F.sigmoid(Tensor(x)).data
    assert np.all(out >= 0.0) and np.all(out <= 1.0)


@settings(max_examples=50, deadline=None)
@given(arrays)
def test_softmax_is_distribution(x):
    out = F.softmax(Tensor(x), axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(arrays)
def test_exp_log_roundtrip(x):
    t = Tensor(x)
    np.testing.assert_allclose(F.log(F.exp(t)).data, x, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(arrays)
def test_reshape_roundtrip_grad(x):
    t = Tensor(x, requires_grad=True)
    t.reshape(-1).reshape(*x.shape).sum().backward()
    np.testing.assert_array_equal(t.grad, np.ones_like(x))


@settings(max_examples=50, deadline=None)
@given(arrays, st.floats(0.1, 5.0))
def test_linearity_of_backward(x, c):
    a = Tensor(x, requires_grad=True)
    (a * c).sum().backward()
    grad1 = a.grad.copy()
    a.zero_grad()
    a.sum().backward()
    np.testing.assert_allclose(grad1, c * a.grad, rtol=1e-9)
