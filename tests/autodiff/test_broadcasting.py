"""Broadcast gradient correctness (unbroadcast) — the trickiest part of
any numpy autodiff."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.autodiff.tensor import unbroadcast

from tests.conftest import numeric_gradient


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert unbroadcast(g, (3, 4)).shape == (3, 4)

    def test_leading_axis(self):
        g = np.ones((5, 3, 4))
        out = unbroadcast(g, (3, 4))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out, np.full((3, 4), 5.0))

    def test_kept_singleton(self):
        g = np.ones((3, 4))
        out = unbroadcast(g, (3, 1))
        assert out.shape == (3, 1)
        np.testing.assert_allclose(out, np.full((3, 1), 4.0))

    def test_scalar(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, ())
        assert out.shape == ()
        assert out == 6.0


@pytest.mark.parametrize(
    "shape_a,shape_b",
    [
        ((3, 4), (4,)),
        ((3, 4), (1, 4)),
        ((3, 1), (1, 4)),
        ((2, 3, 4), (3, 4)),
        ((2, 3, 4), (1, 1, 4)),
        ((5,), ()),
    ],
)
@pytest.mark.parametrize("op_name", ["add", "mul", "sub"])
def test_broadcast_grads_match_numeric(shape_a, shape_b, op_name, rng):
    ops = {
        "add": lambda a, b: a + b,
        "mul": lambda a, b: a * b,
        "sub": lambda a, b: a - b,
    }
    op = ops[op_name]
    a_data = rng.normal(size=shape_a)
    b_data = rng.normal(size=shape_b)
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    op(a, b).sum().backward()
    num_a = numeric_gradient(
        lambda x: float(op(Tensor(x), Tensor(b_data)).sum().data), a_data.copy()
    )
    num_b = numeric_gradient(
        lambda x: float(op(Tensor(a_data), Tensor(x)).sum().data), b_data.copy()
    )
    assert a.grad.shape == shape_a
    assert b.grad.shape == shape_b
    np.testing.assert_allclose(a.grad, num_a, atol=1e-6)
    np.testing.assert_allclose(b.grad, num_b, atol=1e-6)


def test_pairwise_difference_pattern(rng):
    """The MixBernoulli pairwise pattern: s[:,None,:] - s[None,:,:]."""
    s_data = rng.normal(size=(5, 3))
    s = Tensor(s_data.copy(), requires_grad=True)
    diff = s.expand_dims(1) - s.expand_dims(0)
    assert diff.shape == (5, 5, 3)
    (diff**2).sum().backward()
    num = numeric_gradient(
        lambda x: float(
            ((x[:, None, :] - x[None, :, :]) ** 2).sum()
        ),
        s_data.copy(),
    )
    np.testing.assert_allclose(s.grad, num, atol=1e-5)


def test_row_broadcast_time_vector(rng):
    """Recurrence pattern: (1, dT) vector broadcast to (N, dT)."""
    v = Tensor(rng.normal(size=(4,)), requires_grad=True)
    rows = v.expand_dims(0) + np.zeros((6, 1))
    assert rows.shape == (6, 4)
    rows.sum().backward()
    np.testing.assert_allclose(v.grad, np.full(4, 6.0))
