"""Shared fixtures: small deterministic graphs and gradient-check helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import CoEvolutionConfig, generate_co_evolving_graph
from repro.graph import DynamicAttributedGraph, GraphSnapshot


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_snapshot():
    """12-node directed snapshot with 2 attributes and varied structure."""
    rng = np.random.default_rng(7)
    adj = (rng.random((12, 12)) < 0.25).astype(float)
    np.fill_diagonal(adj, 0.0)
    attrs = rng.normal(size=(12, 2))
    return GraphSnapshot(adj, attrs)


@pytest.fixture
def tiny_graph():
    """Small co-evolving dynamic graph: N=16, T=4, F=2."""
    cfg = CoEvolutionConfig(
        num_nodes=16,
        num_timesteps=4,
        num_attributes=2,
        edges_per_step=30,
        num_communities=3,
    )
    return generate_co_evolving_graph(cfg, seed=42)


@pytest.fixture
def structure_only_graph():
    """Dynamic graph with no attributes (F=0)."""
    cfg = CoEvolutionConfig(
        num_nodes=14,
        num_timesteps=3,
        num_attributes=0,
        edges_per_step=25,
        num_communities=2,
    )
    return generate_co_evolving_graph(cfg, seed=5)


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn w.r.t. array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = fn(x)
        x[idx] = orig - eps
        f_minus = fn(x)
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad
