"""Columnar wire protocol: encode/decode inverse, execution parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import FaultPlan, fault_injector
from repro.serving import decode_queries, encode_queries
from repro.serving.protocol import (
    KIND_CODES,
    ColumnarQueryRequest,
    execute_encoded,
)
from repro.workloads import (
    GraphQueryEngine,
    QueryKind,
    WorkloadConfig,
    WorkloadGenerator,
)
from repro.workloads.generator import _run_query


def test_kind_codes_are_the_enum_definition_order():
    # the integer codes are the wire surface: appending new kinds is
    # fine, reordering existing ones breaks deployed manifests
    assert KIND_CODES == tuple(QueryKind)
    assert [k.value for k in KIND_CODES[:5]] == [
        "out_neighbors", "in_neighbors", "has_edge", "two_hop",
        "triangle_count",
    ]


def test_encode_decode_is_the_identity(serving_graph):
    # the default analytics mix exercises the kinds serving_mix skips
    # (traversals, pattern counts) — cover every kind's arg packing
    for config in (
        WorkloadConfig(num_queries=300, seed=5),
        WorkloadConfig(num_queries=300, seed=9),
    ):
        queries = WorkloadGenerator(serving_graph, config).generate()
        enc = encode_queries(queries)
        assert len(enc) == len(queries)
        assert decode_queries(enc) == queries


def test_encode_decode_serving_mix(serving_queries):
    assert decode_queries(encode_queries(serving_queries)) == serving_queries


def test_columns_round_trip(serving_queries):
    enc = encode_queries(serving_queries)
    rebuilt = ColumnarQueryRequest.from_columns(enc.columns())
    assert decode_queries(rebuilt) == serving_queries


def test_request_validation(serving_queries):
    enc = encode_queries(serving_queries[:4])
    with pytest.raises(ValueError):
        ColumnarQueryRequest(
            kinds=enc.kinds[:2], ts=enc.ts, a0=enc.a0, a1=enc.a1,
            a2=enc.a2, a3=enc.a3, f0=enc.f0, f1=enc.f1,
        )
    with pytest.raises(ValueError):
        encode_queries([])
    bad = enc.kinds.copy()
    bad[0] = len(KIND_CODES)
    with pytest.raises(ValueError):
        ColumnarQueryRequest(
            kinds=bad, ts=enc.ts, a0=enc.a0, a1=enc.a1,
            a2=enc.a2, a3=enc.a3, f0=enc.f0, f1=enc.f1,
        )


def test_execute_encoded_matches_per_query_dispatch(serving_graph):
    config = WorkloadConfig(num_queries=300, seed=7)
    queries = WorkloadGenerator(serving_graph, config).generate()
    engine = GraphQueryEngine(serving_graph)
    reference = np.array([_run_query(engine, q) for q in queries])
    cards, seconds, degraded = execute_encoded(
        engine, encode_queries(queries)
    )
    np.testing.assert_array_equal(cards, reference)
    assert degraded == frozenset()
    assert set(seconds) == {q.kind.value for q in queries}


def test_execute_encoded_degrades_per_query_on_kernel_fault(
    serving_graph, serving_queries
):
    engine = GraphQueryEngine(serving_graph)
    enc = encode_queries(serving_queries)
    reference, _, _ = execute_encoded(engine, enc)
    with fault_injector.arm(
        {"query.batch_kernel": FaultPlan(kind="error", rate=1.0)}, seed=1
    ):
        cards, _, degraded = execute_encoded(engine, enc, degrade=True)
    np.testing.assert_array_equal(cards, reference)
    assert QueryKind.HAS_EDGE.value in degraded
    with fault_injector.arm(
        {"query.batch_kernel": FaultPlan(kind="error", rate=1.0)}, seed=1
    ):
        with pytest.raises(Exception):
            execute_encoded(engine, enc, degrade=False)
