"""Segment lifecycle: no leaked shared memory, whatever kills the tier.

The probe (`segment_exists`) attaches by OS name, so these tests pin
the actual kernel object, not Python-side bookkeeping: a leak here
would survive interpreter exit and eat `/dev/shm` across runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import FaultPlan, RetryPolicy, fault_injector
from repro.serving import ProcessQueryService
from repro.workloads import QueryRequest, QueryService

from .conftest import segment_exists


def _requests(queries, size=50):
    return [
        QueryRequest(queries[i:i + size])
        for i in range(0, len(queries), size)
    ]


def test_clean_shutdown_unlinks_the_segment(
    serving_graph, serving_queries
):
    tier = ProcessQueryService(serving_graph, num_workers=2)
    name = tier.shared_memory_stats()["segment_name"]
    assert segment_exists(name)
    assert all(r.ok for r in tier.run_batch(_requests(serving_queries)))
    tier.close()
    assert not segment_exists(name)


def test_worker_crash_does_not_unlink_the_segment(
    serving_graph, serving_queries
):
    # a dying worker's exit (clean or os._exit) must never take the
    # segment with it — attachers hold no resource-tracker ownership
    with fault_injector.arm(
        {"serving.worker_exit": FaultPlan(kind="error", rate=0.25)},
        seed=3,
    ):
        with ProcessQueryService(
            serving_graph,
            num_workers=2,
            retry_policy=RetryPolicy(max_attempts=4, base_delay_seconds=0.0),
        ) as tier:
            name = tier.shared_memory_stats()["segment_name"]
            results = tier.run_batch(_requests(serving_queries))
            assert sum(
                w["respawns"] for w in tier.worker_stats()
            ) > 0, "chaos plan provoked no crash"
            # siblings and respawned workers still serve from it
            assert segment_exists(name)
            assert all(r.ok for r in results)
    assert not segment_exists(name)


def test_teardown_mid_batch_with_dead_workers(
    serving_graph, serving_queries
):
    # crash-heavy batch with no retry policy: requests fail, workers
    # die mid-flight — teardown right after must still unlink exactly
    # once and leave no kernel object behind
    with fault_injector.arm(
        {"serving.worker_exit": FaultPlan(kind="error", rate=0.5)},
        seed=7,
    ):
        tier = ProcessQueryService(serving_graph, num_workers=2)
        name = tier.shared_memory_stats()["segment_name"]
        results = tier.run_batch(_requests(serving_queries))
        assert any(not r.ok for r in results), "no crash provoked"
        tier.close()
    assert not segment_exists(name)


def test_sequential_tiers_do_not_collide(serving_graph, serving_queries):
    names = []
    for _ in range(3):
        with ProcessQueryService(serving_graph, num_workers=1) as tier:
            names.append(tier.shared_memory_stats()["segment_name"])
            assert all(
                r.ok
                for r in tier.run_batch(_requests(serving_queries)[:2])
            )
    assert len(set(names)) == 3
    assert not any(segment_exists(n) for n in names)


def test_spawn_start_method_round_trips(serving_graph, serving_queries):
    # spawn rebuilds workers from pickled WorkerConfig instead of
    # inheriting parent memory: the manifest and fault-plan shipping
    # must carry everything
    requests = _requests(serving_queries)
    with QueryService(serving_graph, executor="serial") as single:
        baseline = single.run_batch(requests)
    with ProcessQueryService(
        serving_graph, num_workers=2, start_method="spawn"
    ) as tier:
        name = tier.shared_memory_stats()["segment_name"]
        results = tier.run_batch(requests)
    assert all(r.ok for r in results)
    for got, want in zip(results, baseline):
        np.testing.assert_array_equal(got.cardinalities, want.cardinalities)
    assert not segment_exists(name)


def test_unknown_start_method_rejected(serving_graph):
    with pytest.raises(ValueError):
        ProcessQueryService(serving_graph, start_method="nope")
