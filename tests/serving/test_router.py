"""Request router: parity with the single-process service, stats,
reliability knobs across the process boundary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (
    FaultPlan,
    RetryPolicy,
    ServiceOverloadedError,
    fault_injector,
)
from repro.serving import ProcessQueryService, encode_queries
from repro.workloads import (
    PlanCacheStats,
    QueryRequest,
    QueryService,
    WorkloadConfig,
    serving_mix,
)


def _requests(queries, size=50):
    return [
        QueryRequest(queries[i:i + size])
        for i in range(0, len(queries), size)
    ]


@pytest.fixture
def baseline(serving_graph, serving_queries):
    with QueryService(serving_graph, executor="serial") as service:
        return service.run_batch(_requests(serving_queries))


@pytest.mark.parametrize("num_workers", [1, 2, 3])
def test_bit_identical_to_single_process(
    serving_graph, serving_queries, baseline, num_workers
):
    with ProcessQueryService(
        serving_graph, num_workers=num_workers
    ) as tier:
        results = tier.run_batch(_requests(serving_queries))
    assert all(r.ok for r in results)
    for got, want in zip(results, baseline):
        np.testing.assert_array_equal(got.cardinalities, want.cardinalities)


def test_columnar_requests_are_first_class(
    serving_graph, serving_queries, baseline
):
    columnar = [
        encode_queries(serving_queries[i:i + 50])
        for i in range(0, len(serving_queries), 50)
    ]
    with ProcessQueryService(serving_graph, num_workers=2) as tier:
        results = tier.run_batch(columnar)
    assert all(r.ok for r in results)
    for got, want in zip(results, baseline):
        np.testing.assert_array_equal(got.cardinalities, want.cardinalities)


def test_uneven_batch_splits(serving_graph, serving_queries, baseline):
    flat_ref = np.concatenate([r.cardinalities for r in baseline])
    with ProcessQueryService(serving_graph, num_workers=2) as tier:
        results = tier.run_batch(_requests(serving_queries, size=37))
    flat = np.concatenate([r.cardinalities for r in results])
    np.testing.assert_array_equal(flat, flat_ref)


def test_run_workload_report_matches_single_process(serving_graph):
    config = WorkloadConfig(num_queries=300, mix=serving_mix(), seed=3)
    with QueryService(serving_graph, executor="serial") as single:
        ref_report, _ = single.run_workload(config, batch_size=64)
    with ProcessQueryService(serving_graph, num_workers=2) as tier:
        report, results = tier.run_workload(config, batch_size=64)
    assert all(r.ok for r in results)
    assert report.total_queries == ref_report.total_queries
    assert report.count_by_kind == ref_report.count_by_kind
    assert report.mean_result_size == ref_report.mean_result_size


def test_stats_surfaces(serving_graph, serving_queries):
    with ProcessQueryService(serving_graph, num_workers=2) as tier:
        tier.run_batch(_requests(serving_queries))
        tier.run_batch(_requests(serving_queries))  # warm second pass
        per_worker = tier.worker_stats()
        aggregate = tier.plan_cache_stats()
        shm = tier.shared_memory_stats()
    assert len(per_worker) == 2
    assert {w["worker_id"] for w in per_worker} == {0, 1}
    for w in per_worker:
        assert w["resident_copy_bytes"] == 0
        assert w["respawns"] == 0
        assert w["plan_cache"]["hits"] > 0
    assert isinstance(aggregate, PlanCacheStats)
    assert aggregate.hits == sum(
        w["plan_cache"]["hits"] for w in per_worker
    )
    assert aggregate.bypasses == sum(
        w["plan_cache"]["bypasses"] for w in per_worker
    )
    assert aggregate.hits + aggregate.misses > 0
    assert shm["num_workers"] == 2
    assert shm["worker_resident_bytes"] == 0
    assert shm["segment_bytes"] > 0


def test_cache_bypass_counters_aggregate(serving_graph, serving_queries):
    # a cache.plan fault makes every lookup degrade around the cache;
    # the per-worker bypass counters must surface in the aggregate
    with fault_injector.arm(
        {"cache.plan": FaultPlan(kind="error", rate=1.0)}, seed=1
    ):
        with ProcessQueryService(serving_graph, num_workers=2) as tier:
            results = tier.run_batch(_requests(serving_queries))
            stats = tier.plan_cache_stats()
    assert all(r.ok for r in results)
    assert stats.bypasses > 0
    assert stats.hits == 0


def test_backpressure_sheds_oversized_batches(
    serving_graph, serving_queries
):
    requests = _requests(serving_queries)
    assert len(requests) > 2
    with ProcessQueryService(
        serving_graph, num_workers=1, max_pending=2
    ) as tier:
        with pytest.raises(ServiceOverloadedError):
            tier.run_batch(requests)
        # the shed batch must not poison admission accounting
        assert all(r.ok for r in tier.run_batch(requests[:2]))


def test_deadline_expiry_is_a_structured_failure(
    serving_graph, serving_queries
):
    with fault_injector.arm(
        {
            "serving.worker": FaultPlan(
                kind="delay", rate=1.0, delay_seconds=0.3, max_triggers=2
            )
        },
        seed=0,
    ):
        with ProcessQueryService(
            serving_graph, num_workers=2, deadline_seconds=0.1
        ) as tier:
            results = tier.run_batch(_requests(serving_queries)[:4])
    expired = [r for r in results if not r.ok]
    assert expired
    assert all(
        r.error.error_type == "DeadlineExceededError" for r in expired
    )


def test_in_worker_faults_heal_via_worker_local_retry(
    serving_graph, serving_queries, baseline
):
    with fault_injector.arm(
        {"serving.worker": FaultPlan(kind="error", rate=0.5)}, seed=11
    ):
        with ProcessQueryService(
            serving_graph,
            num_workers=2,
            retry_policy=RetryPolicy(
                max_attempts=10, base_delay_seconds=0.0
            ),
        ) as tier:
            results = tier.run_batch(_requests(serving_queries))
    assert all(r.ok for r in results), [
        str(r.error) for r in results if not r.ok
    ]
    assert any(r.attempts > 1 for r in results)
    for got, want in zip(results, baseline):
        np.testing.assert_array_equal(got.cardinalities, want.cardinalities)


def test_in_worker_faults_isolate_without_retry(
    serving_graph, serving_queries, baseline
):
    with fault_injector.arm(
        {"serving.worker": FaultPlan(kind="error", rate=0.5)}, seed=11
    ):
        with ProcessQueryService(serving_graph, num_workers=2) as tier:
            results = tier.run_batch(_requests(serving_queries))
    failed = [r for r in results if not r.ok]
    assert failed and len(failed) < len(results)
    assert all(r.error.error_type == "InjectedFault" for r in failed)
    for got, want in zip(results, baseline):
        if got.ok:
            np.testing.assert_array_equal(
                got.cardinalities, want.cardinalities
            )


def test_worker_death_heals_with_respawn_and_resend(
    serving_graph, serving_queries, baseline
):
    with fault_injector.arm(
        {"serving.worker_exit": FaultPlan(kind="error", rate=0.25)},
        seed=3,
    ):
        with ProcessQueryService(
            serving_graph,
            num_workers=2,
            retry_policy=RetryPolicy(max_attempts=4, base_delay_seconds=0.0),
        ) as tier:
            results = tier.run_batch(_requests(serving_queries))
            respawns = sum(w["respawns"] for w in tier.worker_stats())
    assert respawns > 0, "chaos plan provoked no crash"
    assert all(r.ok for r in results), [
        str(r.error) for r in results if not r.ok
    ]
    for got, want in zip(results, baseline):
        np.testing.assert_array_equal(got.cardinalities, want.cardinalities)


def test_worker_death_isolates_without_retry(
    serving_graph, serving_queries
):
    with fault_injector.arm(
        {
            "serving.worker_exit": FaultPlan(
                kind="error", rate=0.25, max_triggers=1
            )
        },
        seed=3,
    ):
        with ProcessQueryService(serving_graph, num_workers=2) as tier:
            results = tier.run_batch(_requests(serving_queries))
    failed = [r for r in results if not r.ok]
    assert failed, "chaos plan provoked no crash"
    assert all(r.error.error_type == "WorkerCrashError" for r in failed)


def test_closed_service_rejects_work(serving_graph, serving_queries):
    tier = ProcessQueryService(serving_graph, num_workers=1)
    tier.close()
    tier.close()  # idempotent
    with pytest.raises(ValueError):
        tier.run_batch(_requests(serving_queries)[:1])


def test_empty_batch_is_a_no_op(serving_graph):
    with ProcessQueryService(serving_graph, num_workers=1) as tier:
        assert tier.run_batch([]) == []
