"""Shared-memory store segments: layout, zero-copy attach, accounting."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.serving import attach_store, resident_copy_bytes
from repro.serving.segments import SharedStoreSegment, StoreManifest

from .conftest import segment_exists

_FIELDS = ("src", "dst", "t", "offsets", "attributes")


@pytest.fixture
def segment(serving_graph):
    seg = SharedStoreSegment(serving_graph.store)
    yield seg
    seg.close()


def test_view_store_round_trips_every_column(serving_graph, segment):
    view = segment.view_store()
    for field in _FIELDS:
        np.testing.assert_array_equal(
            getattr(view, field), getattr(serving_graph.store, field),
            err_msg=field,
        )
    assert view.num_nodes == serving_graph.store.num_nodes
    assert view.num_timesteps == serving_graph.store.num_timesteps


def test_owned_bytes_accounting(serving_graph, segment):
    store = serving_graph.store
    owned = sum(
        getattr(store, f).nbytes for f in _FIELDS
        if getattr(store, f).base is None
    )
    assert resident_copy_bytes(store) == owned > 0
    # every array of the exported view is a view into the segment
    assert resident_copy_bytes(segment.view_store()) == 0


def test_manifest_is_plain_aligned_and_picklable(segment):
    manifest = segment.manifest
    assert isinstance(manifest, StoreManifest)
    for spec in manifest.arrays:
        assert spec.offset % 64 == 0
        assert spec.offset + spec.nbytes <= manifest.total_bytes
    assert manifest.spec("src").field == "src"
    with pytest.raises(KeyError):
        manifest.spec("nope")
    restored = pickle.loads(pickle.dumps(manifest))
    assert restored == manifest


def test_attach_is_zero_copy_and_read_only(serving_graph, segment):
    with attach_store(segment.manifest) as attached:
        store = attached.store
        assert resident_copy_bytes(store) == 0
        np.testing.assert_array_equal(store.src, serving_graph.store.src)
        with pytest.raises(ValueError):
            store.src[0] = 99


def test_attacher_close_never_unlinks(segment):
    attached = attach_store(segment.manifest)
    attached.close()
    assert attached.store is None
    # the segment survives its attachers; only the owner unlinks
    assert segment_exists(segment.name)
    with attach_store(segment.manifest) as again:
        assert again.store.num_nodes == segment.manifest.num_nodes


def test_owner_close_unlinks_and_is_idempotent(serving_graph):
    seg = SharedStoreSegment(serving_graph.store)
    name = seg.name
    assert segment_exists(name)
    seg.close()
    assert seg.closed
    assert not segment_exists(name)
    seg.close()  # idempotent
    with pytest.raises(ValueError):
        seg.view_store()
    with pytest.raises(FileNotFoundError):
        attach_store(seg.manifest)


def test_context_manager_cleans_up(serving_graph):
    with SharedStoreSegment(serving_graph.store) as seg:
        name = seg.name
        assert segment_exists(name)
    assert not segment_exists(name)
