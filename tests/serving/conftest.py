"""Serving-suite fixtures: tiny attributed store, deterministic workload.

The injector fixture mirrors ``tests/reliability``: the global
:data:`~repro.reliability.fault_injector` never leaks across tests —
which matters doubly here because worker processes re-arm themselves
from plans captured at spawn time.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.store import TemporalEdgeStoreBuilder
from repro.reliability import fault_injector
from repro.workloads import WorkloadConfig, WorkloadGenerator, serving_mix


@pytest.fixture(autouse=True)
def _clean_injector():
    fault_injector.reset()
    yield
    fault_injector.reset()


@pytest.fixture
def serving_graph():
    """N=40, T=6, F=2 attributed graph — big enough for every kind."""
    rng = np.random.default_rng(0)
    n, t_len = 40, 6
    builder = TemporalEdgeStoreBuilder(num_nodes=n, num_attributes=2)
    for _ in range(t_len):
        builder.add_step(
            rng.integers(0, n, 50),
            rng.integers(0, n, 50),
            attributes=rng.normal(size=(n, 2)),
        )
    return DynamicAttributedGraph.from_store(builder.build())


@pytest.fixture
def serving_queries(serving_graph):
    """400 deterministic serving-mix queries over ``serving_graph``."""
    config = WorkloadConfig(num_queries=400, mix=serving_mix(), seed=5)
    return WorkloadGenerator(serving_graph, config).generate()


def segment_exists(name: str) -> bool:
    """True while the named shared-memory segment is attachable.

    The portable leak probe the lifecycle tests use: after a clean
    teardown the attach must fail with ``FileNotFoundError``.
    """
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    # never let the probe itself unlink the segment on interpreter
    # exit: drop resource-tracker ownership before closing
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(handle._name, "shared_memory")
    except Exception:
        pass
    handle.close()
    return True
