"""Perf smoke: vectorized kernels must not regress behind the
references (``-m perf`` selects these; they run at tiny scale so tier-1
stays fast).

These are sanity bounds, not benchmarks — the real trajectory lives in
``BENCH_perf.json`` (see ``scripts/bench_report.py``).  The bound is
deliberately loose (vectorized ≤ 3× reference wall-clock) so scheduler
noise on tiny inputs can't flake the suite; a genuine regression (the
vectorized path degenerating to per-element work) overshoots it by
orders of magnitude.
"""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.baselines.walks import TemporalWalkSampler
from repro.core.generator import MixBernoulliSampler
from repro.graph import TemporalEdgeList
from repro.graph.sparse import SparseDirectedGraph
from repro.profiling import best_of as _best_of

#: vectorized may be at most this multiple of the reference wall-clock
SANITY_BOUND = 3.0


def _assert_not_slower(fast, ref):
    fast_s = _best_of(fast)
    ref_s = _best_of(ref)
    assert fast_s <= max(ref_s * SANITY_BOUND, 1e-3), (
        f"vectorized path took {fast_s:.4f}s vs reference {ref_s:.4f}s"
    )


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(0)
    return SparseDirectedGraph(300, rng.integers(0, 300, size=(1800, 2)))


@pytest.mark.perf
class TestPerfSmoke:
    def test_clustering(self, graph):
        _assert_not_slower(
            graph.clustering_coefficients,
            graph._reference_clustering_coefficients,
        )

    def test_components(self, graph):
        _assert_not_slower(
            graph.connected_component_sizes,
            graph._reference_connected_component_sizes,
        )

    def test_wedges(self, graph):
        _assert_not_slower(
            graph.wedge_count, graph._reference_wedge_count
        )

    def test_decode(self):
        rng = np.random.default_rng(1)
        sampler = MixBernoulliSampler(16, num_components=3, rng=rng)
        s = Tensor(rng.normal(size=(48, 16)))
        _assert_not_slower(
            lambda: sampler.sample(s, np.random.default_rng(2)),
            lambda: sampler._reference_sample(s, np.random.default_rng(2)),
        )

    def test_walks(self):
        rng = np.random.default_rng(2)
        tel = TemporalEdgeList(40, 8)
        for u, v, t in zip(
            rng.integers(0, 40, size=400),
            rng.integers(0, 40, size=400),
            rng.integers(0, 8, size=400),
        ):
            if u != v:
                tel.add(int(u), int(v), int(t))
        sampler = TemporalWalkSampler(tel, time_window=2, seed=0)

        def scalar():
            out = []
            for _ in range(100):
                w = sampler.sample_walk(8)
                if w and len(w) >= 2:
                    out.append(w)
            return out

        _assert_not_slower(lambda: sampler.sample_walks(100, 8), scalar)

    def test_batched_queries(self):
        from repro.graph import DynamicAttributedGraph
        from repro.graph.store import TemporalEdgeStore
        from repro.workloads import (
            GraphQueryEngine,
            WorkloadConfig,
            WorkloadGenerator,
            run_queries_batched,
            serving_mix,
        )
        from repro.workloads.generator import _run_query

        rng = np.random.default_rng(3)
        n, m, t_len = 120, 900, 6
        graph = DynamicAttributedGraph.from_store(TemporalEdgeStore(
            n, t_len,
            rng.integers(0, n, size=m),
            rng.integers(0, n, size=m),
            rng.integers(0, t_len, size=m),
            rng.normal(size=(t_len, n, 2)),
        ))
        queries = WorkloadGenerator(
            graph, WorkloadConfig(num_queries=300, mix=serving_mix(), seed=1)
        ).generate()
        engine = GraphQueryEngine(graph)
        engine.batch_has_edge([0], [1], [0])  # warm the key plans

        _assert_not_slower(
            lambda: run_queries_batched(engine, queries),
            lambda: [_run_query(engine, q) for q in queries],
        )

    def test_batched_traversals(self):
        from repro.graph import DynamicAttributedGraph
        from repro.graph.store import TemporalEdgeStore
        from repro.workloads import GraphQueryEngine

        rng = np.random.default_rng(4)
        n, m, t_len = 150, 1500, 6
        graph = DynamicAttributedGraph.from_store(TemporalEdgeStore(
            n, t_len,
            rng.integers(0, n, size=m),
            rng.integers(0, n, size=m),
            rng.integers(0, t_len, size=m),
            None,
        ))
        engine = GraphQueryEngine(graph)
        n_q = 400
        nodes = rng.integers(0, n, size=n_q)
        ts = rng.integers(0, t_len, size=n_q)
        src = rng.integers(0, n, size=n_q)
        dst = rng.integers(0, n, size=n_q)
        t0 = rng.integers(0, t_len, size=n_q)
        t1 = np.minimum(t0 + rng.integers(0, t_len, size=n_q), t_len - 1)
        engine.batch_two_hop(nodes[:1], ts[:1])  # warm the plans

        _assert_not_slower(
            lambda: engine.batch_two_hop(nodes, ts),
            lambda: engine._reference_batch_two_hop(nodes, ts),
        )
        _assert_not_slower(
            lambda: engine.batch_temporal_reach(src, dst, t0, t1),
            lambda: engine._reference_batch_temporal_reach(src, dst, t0, t1),
        )
