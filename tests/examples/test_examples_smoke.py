"""Every example must run end-to-end under its ``--tiny`` settings.

Examples are the repo's living documentation; this suite is what keeps
them from drifting off the API.  Each example module exposes
``main(tiny: bool)`` — ``tiny=True`` shrinks dataset scale and epochs
to smoke-test size — and is loaded by file path (``examples/`` is not
a package).  One subprocess case covers the actual ``--tiny`` CLI
flag.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"
EXAMPLE_FILES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", EXAMPLES_DIR / name
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_example_is_covered():
    """New examples must land in this suite automatically."""
    assert EXAMPLE_FILES, "examples directory went missing"
    assert "sharded_generation.py" in EXAMPLE_FILES
    assert "query_serving.py" in EXAMPLE_FILES


@pytest.mark.parametrize("name", EXAMPLE_FILES)
def test_example_runs_tiny(name, capsys):
    module = _load_example(name)
    assert hasattr(module, "main"), f"{name} has no main()"
    module.main(tiny=True)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


def test_tiny_flag_via_subprocess():
    env = dict(os.environ)
    src = str(EXAMPLES_DIR.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py"), "--tiny"],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "synthetic graph" in result.stdout
