"""GenerationService: batch output bit-identical to serial generation."""

import pytest

from repro import api


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Two fitted artifacts: a VRDAG and a cheap baseline."""
    from repro.datasets import load_dataset

    root = tmp_path_factory.mktemp("service-artifacts")
    graph = load_dataset("email", scale=0.012, seed=0)
    paths = {}
    for name in ("VRDAG", "ErdosRenyi"):
        generator = api.get_generator(name, seed=0, **api.smoke_config(name))
        generator.fit(graph)
        paths[name] = str(root / f"{name}.npz")
        api.save_artifact(generator, paths[name])
    return paths


def _requests(artifacts):
    return [
        api.GenerationRequest(artifacts["VRDAG"], num_timesteps=3, seed=0),
        api.GenerationRequest(artifacts["VRDAG"], num_timesteps=3, seed=1),
        api.GenerationRequest(artifacts["VRDAG"], num_timesteps=2, seed=0,
                              shards=3),
        api.GenerationRequest(artifacts["ErdosRenyi"], num_timesteps=4,
                              seed=2),
        api.GenerationRequest(artifacts["ErdosRenyi"], num_timesteps=4,
                              seed=3),
    ]


def _serial_reference(requests):
    out = []
    for req in requests:
        generator = api.load_artifact(req.artifact)
        out.append(generator.generate(req.num_timesteps, seed=req.seed))
    return out


class TestGenerationService:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_batch_bit_identical_to_serial(self, artifacts, executor):
        requests = _requests(artifacts)
        with api.GenerationService(executor=executor, max_workers=3) as svc:
            results = svc.run_batch(requests)
        reference = _serial_reference(requests)
        assert [r.request for r in results] == requests  # request order kept
        for result, expected in zip(results, reference):
            assert result.graph == expected
            assert result.seconds >= 0

    def test_repeated_batches_reuse_pool(self, artifacts):
        requests = _requests(artifacts)[:2]
        with api.GenerationService(executor="thread") as svc:
            first = svc.run_batch(requests)
            second = svc.run_batch(requests)
        for a, b in zip(first, second):
            assert a.graph == b.graph  # determinism across batches too

    def test_empty_batch(self):
        assert api.GenerationService(executor="serial").run_batch([]) == []

    def test_thread_batches_do_not_leak_grad_mode(self, artifacts):
        """Concurrent no_grad generates must not disable autodiff globally.

        Grad mode is thread-local (see autodiff.tensor._GradMode);
        with a process-global flag, interleaved save/restore across
        worker threads could leave tape recording off for the rest of
        the process.
        """
        from repro.autodiff import is_grad_enabled

        requests = [
            api.GenerationRequest(artifacts["VRDAG"], num_timesteps=2, seed=s)
            for s in range(8)
        ]
        with api.GenerationService(executor="thread", max_workers=4) as svc:
            svc.run_batch(requests)
        assert is_grad_enabled()

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            api.GenerationService(executor="gpu")

    def test_shards_on_non_vrdag_rejected(self, artifacts):
        """A bad request fails structurally without poisoning siblings."""
        bad = api.GenerationRequest(
            artifacts["ErdosRenyi"], num_timesteps=2, shards=2
        )
        good = api.GenerationRequest(
            artifacts["ErdosRenyi"], num_timesteps=2, seed=0
        )
        results = api.GenerationService(executor="serial").run_batch(
            [good, bad, good]
        )
        assert results[0].ok and results[2].ok
        assert results[0].graph == results[2].graph
        assert not results[1].ok and results[1].graph is None
        assert results[1].error.error_type == "ValueError"
        assert "shards=1" in results[1].error.message

    def test_request_validation(self):
        with pytest.raises(ValueError, match="num_timesteps"):
            api.GenerationRequest("x.npz", num_timesteps=0)
        with pytest.raises(ValueError, match="shards"):
            api.GenerationRequest("x.npz", num_timesteps=1, shards=0)
