"""Artifact envelope: bit-exact round-trips for every registered generator.

The headline guarantee: for each registry entry, ``save -> load ->
generate(seed=s)`` is bit-identical to generating from the pre-save
instance.  A generator whose state legitimately cannot be serialized
would be skip-marked here with a reason — currently none need it (the
module-holding generators re-encode their networks, and fit-only
helpers are excluded from state by design).
"""

import numpy as np
import pytest

from repro import api
from repro.core import VRDAG, VRDAGConfig

GENERATOR_NAMES = api.list_generators()

#: registry names whose state cannot round-trip, mapped to the reason
#: (kept for the skip-marking protocol; empty on purpose)
UNSERIALIZABLE: dict = {}


def _fitted(name, graph, seed=3):
    generator = api.get_generator(name, seed=seed, **api.smoke_config(name))
    generator.fit(graph)
    return generator


@pytest.mark.parametrize("name", GENERATOR_NAMES)
class TestRoundTripPerGenerator:
    def test_generate_bit_identical_after_roundtrip(
        self, name, tiny_graph, tmp_path
    ):
        if name in UNSERIALIZABLE:
            pytest.skip(f"{name}: {UNSERIALIZABLE[name]}")
        generator = _fitted(name, tiny_graph)
        before = generator.generate(3, seed=11)
        path = tmp_path / f"{name}.npz"
        api.save_artifact(generator, path)
        loaded = api.load_artifact(path)
        assert type(loaded) is type(generator)
        assert loaded.fitted
        assert loaded.to_config() == generator.to_config()
        after = loaded.generate(3, seed=11)
        assert before == after

    def test_unfitted_roundtrip_keeps_contract(self, name, tmp_path):
        if name in UNSERIALIZABLE:
            pytest.skip(f"{name}: {UNSERIALIZABLE[name]}")
        generator = api.get_generator(name, **api.smoke_config(name))
        path = tmp_path / f"{name}-raw.npz"
        api.save_artifact(generator, path)
        loaded = api.load_artifact(path)
        assert not loaded.fitted
        with pytest.raises(RuntimeError, match="before fit"):
            loaded.generate(2)


class TestEnvelope:
    def test_bare_vrdag_is_wrapped(self, tmp_path):
        model = VRDAG(VRDAGConfig(num_nodes=10, num_attributes=0,
                                  hidden_dim=8, latent_dim=4, encode_dim=8))
        path = tmp_path / "bare.npz"
        api.save_artifact(model, path)
        loaded = api.load_artifact(path)
        assert api.generator_name_of(loaded) == "VRDAG"
        assert loaded.model.generate(2, seed=1) == model.generate(2, seed=1)

    def test_is_artifact(self, tmp_path):
        path = tmp_path / "er.npz"
        api.save_artifact(api.get_generator("ErdosRenyi"), path)
        assert api.is_artifact(path)
        other = tmp_path / "other.npz"
        np.savez(other, data=np.arange(3))
        assert not api.is_artifact(other)
        with pytest.raises(FileNotFoundError):
            api.is_artifact(tmp_path / "missing.npz")

    def test_non_artifact_rejected_with_pointer(self, tmp_path):
        other = tmp_path / "other.npz"
        np.savez(other, data=np.arange(3))
        with pytest.raises(ValueError, match="not a generator artifact"):
            api.load_artifact(other)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "er.npz"
        api.save_artifact(api.get_generator("ErdosRenyi"), path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.array(99)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version 99"):
            api.load_artifact(path)

    def test_unregistered_state_value_raises(self, tmp_path):
        generator = api.get_generator("ErdosRenyi")
        generator.rogue = object()  # outside the codec's closure
        with pytest.raises(api.ArtifactStateError, match="rogue"):
            api.save_artifact(generator, tmp_path / "bad.npz")

    def test_codec_preserves_int_keys_and_order(self, tiny_graph, tmp_path):
        # the walk baselines' bigram tables are dict[int, dict[int, float]];
        # both the integer keys and the insertion order feed rng.choice
        generator = _fitted("TagGen", tiny_graph)
        path = tmp_path / "taggen.npz"
        api.save_artifact(generator, path)
        loaded = api.load_artifact(path)
        assert loaded._bigram == generator._bigram
        assert [list(v) for v in loaded._bigram.values()] == [
            list(v) for v in generator._bigram.values()
        ]
