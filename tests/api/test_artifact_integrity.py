"""Artifact crash safety: checksums, typed errors, atomic writes."""

import os

import numpy as np
import pytest

from repro import api
from repro.api.artifacts import ARTIFACT_VERSION, ArtifactError


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from repro.datasets import load_dataset

    generator = api.get_generator(
        "ErdosRenyi", seed=0, **api.smoke_config("ErdosRenyi")
    )
    generator.fit(load_dataset("email", scale=0.012, seed=0))
    path = str(tmp_path_factory.mktemp("integrity") / "gen.npz")
    api.save_artifact(generator, path)
    return path


@pytest.fixture()
def copy_of(artifact, tmp_path):
    """A scratch copy of the pristine artifact, safe to mutilate."""
    path = str(tmp_path / "victim.npz")
    with open(artifact, "rb") as src, open(path, "wb") as dst:
        dst.write(src.read())
    return path


def _rewrite_npz(path, *, drop=(), **overrides):
    with np.load(path, allow_pickle=False) as data:
        payload = {k: data[k] for k in data.files if k not in drop}
    payload.update(overrides)
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **payload)


class TestTypedErrors:
    def test_artifact_error_is_a_value_error(self):
        assert issubclass(ArtifactError, ValueError)

    def test_missing_file_passes_through(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            api.load_artifact(tmp_path / "missing.npz")

    def test_garbage_file_named_in_error(self, tmp_path):
        path = str(tmp_path / "garbage.npz")
        with open(path, "wb") as fh:
            fh.write(b"\x00not a zip archive\x00")
        with pytest.raises(ArtifactError, match="corrupt or truncated") as e:
            api.load_artifact(path)
        assert path in str(e.value)

    def test_truncated_file_rejected(self, copy_of):
        size = os.path.getsize(copy_of)
        with open(copy_of, "rb+") as fh:
            fh.truncate(size // 2)
        with pytest.raises(ArtifactError):
            api.load_artifact(copy_of)

    def test_foreign_npz_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, weights=np.zeros(3))
        with pytest.raises(ArtifactError, match="not a generator artifact"):
            api.load_artifact(path)

    def test_unsupported_version_rejected(self, copy_of):
        _rewrite_npz(copy_of, version=np.array(ARTIFACT_VERSION + 1))
        with pytest.raises(ArtifactError, match="unsupported artifact"):
            api.load_artifact(copy_of)

    def test_invalid_state_json_rejected(self, copy_of):
        _rewrite_npz(
            copy_of, state=np.frombuffer(b"{not json", dtype=np.uint8)
        )
        with pytest.raises(ArtifactError):
            api.load_artifact(copy_of)


class TestChecksums:
    def test_tampered_state_fails_checksum(self, copy_of):
        with np.load(copy_of, allow_pickle=False) as data:
            state = data["state"].copy()
        state[0] ^= 0xFF  # one flipped byte, stale stored checksum
        _rewrite_npz(copy_of, state=state)
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            api.load_artifact(copy_of)

    def test_tampered_config_fails_checksum(self, copy_of):
        with np.load(copy_of, allow_pickle=False) as data:
            config = data["config"].copy()
        config[-2] ^= 0x01  # inside the JSON body, before the closing brace
        _rewrite_npz(copy_of, config=config)
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            api.load_artifact(copy_of)

    def test_v3_without_checksum_rejected(self, copy_of):
        _rewrite_npz(copy_of, drop=("checksum",))
        with pytest.raises(ArtifactError, match="missing its checksum"):
            api.load_artifact(copy_of)

    def test_v2_envelope_still_reads(self, copy_of, artifact):
        """Version-2 files (no checksum) predate integrity checking and
        must keep loading bit-compatibly."""
        _rewrite_npz(copy_of, drop=("checksum",), version=np.array(2))
        v2 = api.load_artifact(copy_of)
        v3 = api.load_artifact(artifact)
        assert v2.generate(num_timesteps=3) == v3.generate(num_timesteps=3)


class TestAtomicSave:
    def test_suffix_appended_and_no_temp_left(self, artifact, tmp_path):
        generator = api.load_artifact(artifact)
        api.save_artifact(generator, tmp_path / "model")
        assert sorted(os.listdir(tmp_path)) == ["model.npz"]

    def test_overwrite_leaves_single_readable_file(self, artifact,
                                                   tmp_path):
        generator = api.load_artifact(artifact)
        path = str(tmp_path / "model.npz")
        api.save_artifact(generator, path)
        api.save_artifact(generator, path)
        assert os.listdir(tmp_path) == ["model.npz"]
        reloaded = api.load_artifact(path)
        assert reloaded.generate(num_timesteps=3) == generator.generate(
            num_timesteps=3
        )
