"""Generator registry: names, config-as-data, registration rules."""

import pytest

from repro import api
from repro.baselines import ErdosRenyi
from repro.baselines.base import GraphGenerator


class TestRegistry:
    def test_list_is_sorted_and_nonempty(self):
        names = api.list_generators()
        assert names == sorted(names)
        assert {"VRDAG", "TagGen", "ErdosRenyi", "GRAN"} <= set(names)

    def test_every_name_constructs_with_defaults(self):
        for name in api.list_generators():
            generator = api.get_generator(name)
            assert isinstance(generator, GraphGenerator)
            assert not generator.fitted

    def test_config_overrides_apply(self):
        generator = api.get_generator("ErdosRenyi", seed=77)
        assert generator.seed == 77
        assert generator.to_config() == {"seed": 77}

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError, match="ErdosRenyi"):
            api.get_generator("NoSuchModel")

    def test_entry_metadata(self):
        entry = api.generator_entry("VRDAG")
        assert entry.name == "VRDAG"
        assert entry.description
        assert "epochs" in entry.smoke_config

    def test_smoke_config_is_a_copy(self):
        config = api.smoke_config("VRDAG")
        config["epochs"] = 99999
        assert api.smoke_config("VRDAG")["epochs"] != 99999

    def test_generator_name_of_roundtrip(self):
        for name in api.list_generators():
            assert api.generator_name_of(api.get_generator(name)) == name

    def test_generator_name_of_rejects_unregistered(self):
        class Unregistered(ErdosRenyi):
            pass

        with pytest.raises(ValueError, match="not a registered"):
            api.generator_name_of(Unregistered())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            api.register_generator("ErdosRenyi", ErdosRenyi)

    def test_overwrite_registration(self):
        entry = api.generator_entry("ErdosRenyi")
        try:
            api.register_generator(
                "ErdosRenyi", ErdosRenyi,
                description="replaced", overwrite=True,
            )
            assert api.generator_entry("ErdosRenyi").description == "replaced"
        finally:
            api.register_generator(
                "ErdosRenyi", entry.cls, description=entry.description,
                smoke_config=entry.smoke_config, overwrite=True,
            )

    def test_non_generator_class_rejected(self):
        with pytest.raises(TypeError, match="GraphGenerator"):
            api.register_generator("Bogus", dict)
