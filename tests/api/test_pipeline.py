"""Pipeline facade: resolution, structured results, sharded passthrough."""

import json

import pytest

from repro import api
from repro.graph import DynamicAttributedGraph


class TestPipeline:
    def test_named_components_end_to_end(self, tmp_path):
        artifact = tmp_path / "er.npz"
        generated = tmp_path / "g.npz"
        result = api.Pipeline(
            dataset="email",
            generator="ErdosRenyi",
            metrics=["structure", "privacy", "attributes"],
            scale=0.012,
            timesteps=3,
            seed=1,
            artifact_out=str(artifact),
            generated_out=str(generated),
        ).run()
        assert result.generator == "ErdosRenyi"
        assert result.dataset == "email"
        assert result.generated.num_timesteps == 3
        assert set(result.metrics) == {"structure", "privacy", "attributes"}
        assert "in_deg_dist" in result.metrics["structure"]
        # side outputs: a loadable artifact and a loadable graph
        assert api.is_artifact(artifact)
        from repro.graph import io as graph_io

        assert graph_io.load(generated) == result.generated

    def test_to_dict_is_json_serializable(self):
        result = api.Pipeline(
            "email", "ErdosRenyi", ["structure"], scale=0.012, timesteps=2
        ).run()
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["generator"] == "ErdosRenyi"
        assert payload["generated_summary"]["num_timesteps"] == 2
        assert payload["timings"]["fit_seconds"] >= 0

    def test_graph_and_instance_inputs(self, tiny_graph):
        generator = api.get_generator("Normal", seed=2)
        result = api.Pipeline(tiny_graph, generator, ["structure"]).run()
        assert result.dataset == "<graph>"
        assert result.generator == "Normal"
        assert result.num_timesteps == tiny_graph.num_timesteps
        assert isinstance(result.reference, DynamicAttributedGraph)

    def test_prefitted_generator_is_not_refit(self, tiny_graph):
        generator = api.get_generator("ErdosRenyi").fit(tiny_graph)
        p = generator._p
        api.Pipeline(tiny_graph, generator, []).run()
        assert generator._p == p

    def test_sharded_vrdag_bit_identical_to_serial(self):
        config = api.smoke_config("VRDAG")
        serial = api.Pipeline(
            "email", "VRDAG", [], generator_config=config,
            scale=0.012, timesteps=3, seed=4,
        ).run()
        sharded = api.Pipeline(
            "email", "VRDAG", [], generator_config=config,
            scale=0.012, timesteps=3, seed=4,
            shards=3, executor="thread",
        ).run()
        assert sharded.generated == serial.generated

    def test_sharding_rejected_for_non_vrdag(self, tiny_graph):
        pipeline = api.Pipeline(tiny_graph, "ErdosRenyi", [], shards=2)
        with pytest.raises(ValueError, match="sharded"):
            pipeline.run()

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="structure"):
            api.Pipeline("email", "ErdosRenyi", ["nope"])

    def test_zero_timesteps_rejected(self):
        # 0 must not silently fall back to the dataset horizon
        with pytest.raises(ValueError, match="timesteps"):
            api.Pipeline("email", "ErdosRenyi", [], timesteps=0)

    def test_from_dict_roundtrip(self):
        pipeline = api.Pipeline.from_dict({
            "dataset": "email",
            "generator": "ErdosRenyi",
            "metrics": ["structure"],
            "scale": 0.012,
            "timesteps": 2,
            "seed": 5,
        })
        result = pipeline.run()
        assert result.seed == 5
        assert result.num_timesteps == 2

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="typo_key"):
            api.Pipeline.from_dict({
                "dataset": "email", "generator": "ErdosRenyi",
                "typo_key": 1,
            })

    def test_from_dict_requires_dataset_and_generator(self):
        with pytest.raises(ValueError, match="generator"):
            api.Pipeline.from_dict({"dataset": "email"})

    def test_list_metrics(self):
        names = api.list_metrics()
        assert names == sorted(names)
        assert {"structure", "attributes", "privacy"} <= set(names)
