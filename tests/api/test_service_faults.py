"""GenerationService fault tolerance: isolation, deadlines, retries."""

import numpy as np
import pytest

from repro import api
from repro.reliability import (
    FaultPlan,
    RetryPolicy,
    ServiceOverloadedError,
    fault_injector,
)


@pytest.fixture(autouse=True)
def _clean_injector():
    fault_injector.reset()
    yield
    fault_injector.reset()


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from repro.datasets import load_dataset

    generator = api.get_generator(
        "ErdosRenyi", seed=0, **api.smoke_config("ErdosRenyi")
    )
    generator.fit(load_dataset("email", scale=0.012, seed=0))
    path = str(tmp_path_factory.mktemp("fault-artifacts") / "gen.npz")
    api.save_artifact(generator, path)
    return path


def _requests(artifact, n=4):
    return [
        api.GenerationRequest(artifact, num_timesteps=3, seed=s)
        for s in range(n)
    ]


class TestPerRequestIsolation:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_missing_artifact_fails_alone(self, artifact, executor):
        """One unreadable artifact yields one error result, not a batch
        failure — on every executor family."""
        requests = _requests(artifact, 2)
        requests.insert(
            1, api.GenerationRequest("/nonexistent/model.npz",
                                     num_timesteps=2)
        )
        with api.GenerationService(executor=executor, max_workers=2) as svc:
            results = svc.run_batch(requests)
        assert [r.request for r in results] == requests
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].error.error_type == "FileNotFoundError"
        reference = api.GenerationService(executor="serial").run_batch(
            [requests[0], requests[2]]
        )
        assert results[0].graph == reference[0].graph
        assert results[2].graph == reference[1].graph

    def test_empty_batch_every_executor(self):
        for executor in ("serial", "thread", "process"):
            with api.GenerationService(executor=executor) as svc:
                assert svc.run_batch([]) == []

    def test_injected_worker_crash_is_structured(self, artifact):
        plans = {"generation.request": FaultPlan(rate=1.0, max_triggers=1)}
        with fault_injector.arm(plans):
            results = api.GenerationService(executor="serial").run_batch(
                _requests(artifact, 3)
            )
        failed = [r for r in results if not r.ok]
        assert len(failed) == 1
        assert failed[0].error.error_type == "InjectedFault"
        assert sum(r.ok for r in results) == 2


class TestRetries:
    def test_retry_policy_heals_first_attempt_faults(self, artifact):
        plans = {"generation.request": FaultPlan(rate=1.0, max_triggers=2)}
        policy = RetryPolicy(max_attempts=3, base_delay_seconds=0.001,
                             jitter=0.0)
        reference = api.GenerationService(executor="serial").run_batch(
            _requests(artifact, 2)
        )
        with fault_injector.arm(plans):
            with api.GenerationService(
                executor="serial", retry_policy=policy
            ) as svc:
                results = svc.run_batch(_requests(artifact, 2))
        assert all(r.ok for r in results)
        assert results[0].attempts == 3  # two injected faults, then success
        for got, want in zip(results, reference):
            assert got.graph == want.graph

    def test_semantic_errors_are_not_retried(self, artifact):
        bad = api.GenerationRequest(artifact, num_timesteps=2, shards=2)
        policy = RetryPolicy(max_attempts=5, base_delay_seconds=0.0)
        with api.GenerationService(
            executor="serial", retry_policy=policy
        ) as svc:
            results = svc.run_batch([bad])
        assert not results[0].ok
        assert results[0].error.error_type == "ValueError"
        assert results[0].attempts == 1  # ValueError is not transient


class TestDeadlines:
    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            api.GenerationService(deadline_seconds=0.0)

    def test_thread_deadline_bounds_slow_workers(self, artifact):
        plans = {
            "generation.request": FaultPlan(
                kind="delay", delay_seconds=1.0, rate=1.0, max_triggers=1
            )
        }
        with fault_injector.arm(plans):
            with api.GenerationService(
                executor="thread", max_workers=2, deadline_seconds=0.2
            ) as svc:
                results = svc.run_batch(_requests(artifact, 3))
        expired = [r for r in results if not r.ok]
        assert len(expired) == 1
        assert expired[0].error.error_type == "DeadlineExceededError"
        assert sum(r.ok for r in results) == 2

    def test_serial_deadline_checked_between_retries(self, artifact):
        plans = {"generation.request": FaultPlan(rate=1.0)}
        policy = RetryPolicy(max_attempts=10, base_delay_seconds=0.2,
                             jitter=0.0)
        with fault_injector.arm(plans):
            with api.GenerationService(
                executor="serial", retry_policy=policy,
                deadline_seconds=0.05,
            ) as svc:
                results = svc.run_batch(_requests(artifact, 1))
        assert not results[0].ok
        assert results[0].error.error_type == "DeadlineExceededError"


class TestBackpressure:
    def test_oversized_batch_is_shed(self, artifact):
        requests = _requests(artifact, 4)
        with api.GenerationService(
            executor="serial", max_pending=2
        ) as svc:
            with pytest.raises(ServiceOverloadedError) as err:
                svc.run_batch(requests)
            assert err.value.capacity == 2
            assert err.value.retry_after_seconds > 0
            results = svc.run_batch(requests[:2])  # fits: runs normally
        assert all(r.ok for r in results)
        assert svc.admission_stats()["shed"] == 4

    def test_capacity_restored_after_batch(self, artifact):
        with api.GenerationService(
            executor="serial", max_pending=2
        ) as svc:
            for _ in range(3):  # sequential batches at capacity
                assert all(
                    r.ok for r in svc.run_batch(_requests(artifact, 2))
                )
            assert svc.admission_stats()["pending"] == 0
