"""Tests for GRUCell, GINLayer, GATLayer and Time2Vec."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import GATLayer, GINLayer, GRUCell, Time2Vec

from tests.conftest import numeric_gradient


class TestGRUCell:
    def test_output_shape(self, rng):
        cell = GRUCell(5, 8, rng=rng)
        h = cell(Tensor(rng.normal(size=(10, 5))), Tensor(np.zeros((10, 8))))
        assert h.shape == (10, 8)

    def test_state_bounded_by_tanh(self, rng):
        cell = GRUCell(3, 4, rng=rng)
        h = Tensor(np.zeros((6, 4)))
        for _ in range(50):
            h = cell(Tensor(rng.normal(size=(6, 3)) * 10), h)
        assert np.all(np.abs(h.data) <= 1.0 + 1e-9)

    def test_zero_update_gate_keeps_memoryless(self, rng):
        """With z≈0 (forced by large negative bias), h' ≈ candidate n."""
        cell = GRUCell(2, 3, rng=rng)
        cell.b_z.data[:] = -50.0  # z -> 0, h' = n
        x = Tensor(rng.normal(size=(4, 2)))
        h_prev = Tensor(rng.normal(size=(4, 3)))
        h = cell(x, h_prev)
        # n depends on x and r*h, but h' should not equal h_prev
        assert not np.allclose(h.data, h_prev.data)

    def test_identity_update_gate_preserves_state(self, rng):
        cell = GRUCell(2, 3, rng=rng)
        cell.b_z.data[:] = 50.0  # z -> 1, h' = h
        h_prev = Tensor(rng.normal(size=(4, 3)))
        h = cell(Tensor(rng.normal(size=(4, 2))), h_prev)
        np.testing.assert_allclose(h.data, h_prev.data, atol=1e-9)

    def test_gradient_through_time(self, rng):
        cell = GRUCell(2, 3, rng=rng)
        x_data = rng.normal(size=(4, 2))

        def run(x_np):
            h = Tensor(np.zeros((4, 3)))
            for _ in range(3):
                h = cell(Tensor(x_np), h)
            return h

        x = Tensor(x_data.copy(), requires_grad=True)
        h = Tensor(np.zeros((4, 3)))
        for _ in range(3):
            h = cell(x, h)
        h.sum().backward()
        num = numeric_gradient(
            lambda a: float(run(a).sum().data), x_data.copy(), eps=1e-6
        )
        np.testing.assert_allclose(x.grad, num, atol=1e-4)


class TestGINLayer:
    def test_shapes(self, rng):
        layer = GINLayer(4, 6, rng=rng)
        adj = (rng.random((5, 5)) < 0.4).astype(float)
        out = layer(Tensor(rng.normal(size=(5, 4))), adj)
        assert out.shape == (5, 6)

    def test_isolated_node_uses_self_only(self, rng):
        layer = GINLayer(3, 3, rng=rng)
        adj = np.zeros((4, 4))
        h = rng.normal(size=(4, 3))
        out1 = layer(Tensor(h), adj).data
        # with no neighbours output depends only on own state
        h2 = h.copy()
        h2[1:] += 10.0  # perturb other nodes
        out2 = layer(Tensor(h2), adj).data
        np.testing.assert_allclose(out1[0], out2[0], atol=1e-12)

    def test_aggregation_sums_neighbours(self, rng):
        layer = GINLayer(2, 2, mlp_layers=1, rng=rng)
        # make the MLP identity-ish: single linear layer; check agg input
        adj = np.array([[0.0, 1.0, 1.0], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        h = np.array([[1.0, 0.0], [0.0, 2.0], [0.0, 3.0]])
        layer.epsilon.data[:] = 0.0
        out = layer(Tensor(h), adj)
        expected_pre = np.array([[1.0, 5.0], [0.0, 2.0], [0.0, 3.0]])
        manual = layer.mlp(Tensor(expected_pre)).data
        np.testing.assert_allclose(out.data, manual)

    def test_epsilon_is_learnable(self, rng):
        layer = GINLayer(2, 2, rng=rng)
        adj = np.ones((3, 3)) - np.eye(3)
        out = layer(Tensor(rng.normal(size=(3, 2))), adj)
        out.sum().backward()
        assert layer.epsilon.grad is not None


class TestGATLayer:
    def test_shapes(self, rng):
        layer = GATLayer(4, 6, rng=rng)
        adj = (rng.random((7, 7)) < 0.3).astype(float)
        np.fill_diagonal(adj, 0)
        out = layer(Tensor(rng.normal(size=(7, 4))), adj)
        assert out.shape == (7, 6)

    def test_isolated_node_finite(self, rng):
        layer = GATLayer(3, 3, rng=rng)
        adj = np.zeros((4, 4))
        out = layer(Tensor(rng.normal(size=(4, 3))), adj)
        assert np.all(np.isfinite(out.data))

    def test_masked_nodes_do_not_contribute(self, rng):
        layer = GATLayer(3, 3, rng=rng)
        adj = np.zeros((3, 3))
        adj[0, 1] = 1.0  # node 0 attends to node 1 (and itself)
        h = rng.normal(size=(3, 3))
        out1 = layer(Tensor(h), adj).data
        h2 = h.copy()
        h2[2] += 100.0  # node 2 is invisible to node 0
        out2 = layer(Tensor(h2), adj).data
        np.testing.assert_allclose(out1[0], out2[0], atol=1e-9)

    def test_gradients_flow(self, rng):
        layer = GATLayer(3, 3, rng=rng)
        adj = (rng.random((5, 5)) < 0.5).astype(float)
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        layer(x, adj).sum().backward()
        assert x.grad is not None
        assert layer.attn_src.grad is not None


class TestTime2Vec:
    def test_output_shape(self, rng):
        t2v = Time2Vec(8, rng=rng)
        assert t2v(3.0).shape == (8,)

    def test_first_coordinate_linear(self, rng):
        t2v = Time2Vec(4, rng=rng)
        v1 = t2v(1.0).data
        v2 = t2v(2.0).data
        v3 = t2v(3.0).data
        # linear head: equal increments
        np.testing.assert_allclose(v2[0] - v1[0], v3[0] - v2[0], atol=1e-12)

    def test_periodic_coords_bounded(self, rng):
        t2v = Time2Vec(6, rng=rng)
        for t in range(20):
            v = t2v(float(t)).data
            assert np.all(np.abs(v[1:]) <= 1.0 + 1e-12)

    def test_dim_one(self, rng):
        t2v = Time2Vec(1, rng=rng)
        assert t2v(5.0).shape == (1,)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            Time2Vec(0)

    def test_parameters_learnable(self, rng):
        t2v = Time2Vec(4, rng=rng)
        out = t2v(2.0)
        out.sum().backward()
        assert t2v.w.grad is not None
        assert t2v.phi.grad is not None
