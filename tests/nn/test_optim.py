"""Optimizer tests: SGD, momentum, Adam, clipping."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Adam, SGD
from repro.nn.module import Parameter


def quad_loss(p: Parameter):
    return ((p - 3.0) ** 2).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            loss = quad_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_faster_than_plain(self):
        def run(momentum):
            p = Parameter(np.zeros(1))
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(30):
                loss = quad_loss(p)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return abs(float(p.data[0]) - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.full(3, 10.0))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        # zero task gradient: pure decay
        p.grad = np.zeros(3)
        opt.step()
        assert np.all(np.abs(p.data) < 10.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_param_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad: no movement, no crash
        np.testing.assert_allclose(p.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            loss = quad_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-2)

    def test_bias_correction_first_step(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        # with bias correction, the first step has magnitude ~lr
        np.testing.assert_allclose(abs(p.data), 0.1, rtol=1e-6)

    def test_zero_grad_clears(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p])
        p.grad = np.ones(2)
        opt.zero_grad()
        assert p.grad is None


class TestClipGradNorm:
    def test_clips_large_gradient(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        p.grad = np.full(4, 10.0)
        pre = opt.clip_grad_norm(1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradient(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        p.grad = np.full(4, 0.1)
        opt.clip_grad_norm(10.0)
        np.testing.assert_allclose(p.grad, 0.1)

    def test_handles_missing_grads(self):
        a, b = Parameter(np.zeros(2)), Parameter(np.zeros(2))
        opt = SGD([a, b], lr=0.1)
        a.grad = np.ones(2)
        opt.clip_grad_norm(0.5)  # b.grad None must not crash
        assert b.grad is None
