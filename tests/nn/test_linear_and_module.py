"""Tests for Linear, MLP and the Module container protocol."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Linear, MLP, Module, Parameter
from repro.nn.linear import get_activation


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(7, 4))))
        assert out.shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_gradients_flow_to_params(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert layer.weight.grad.shape == (4, 3)

    def test_linear_is_affine(self, rng):
        layer = Linear(3, 2, rng=rng)
        x1 = rng.normal(size=(1, 3))
        x2 = rng.normal(size=(1, 3))
        y1 = layer(Tensor(x1)).data
        y2 = layer(Tensor(x2)).data
        y12 = layer(Tensor(x1 + x2)).data
        b = layer.bias.data
        np.testing.assert_allclose(y12 - b, (y1 - b) + (y2 - b), atol=1e-12)


class TestMLP:
    def test_forward_shapes(self, rng):
        mlp = MLP([4, 8, 8, 2], rng=rng)
        assert mlp(Tensor(rng.normal(size=(6, 4)))).shape == (6, 2)

    def test_too_few_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_out_activation(self, rng):
        mlp = MLP([3, 4, 2], out_activation="sigmoid", rng=rng)
        out = mlp(Tensor(rng.normal(size=(5, 3)))).data
        assert np.all((out >= 0) & (out <= 1))

    def test_unknown_activation_raises(self):
        with pytest.raises(KeyError):
            get_activation("swishish")

    def test_training_reduces_loss(self, rng):
        from repro.nn import Adam

        mlp = MLP([2, 16, 1], rng=rng)
        x = rng.normal(size=(64, 2))
        y = (x[:, 0] * x[:, 1])[:, None]
        opt = Adam(mlp.parameters(), lr=1e-2)
        losses = []
        for _ in range(60):
            pred = mlp(Tensor(x))
            loss = ((pred - y) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < 0.5 * losses[0]


class TestModule:
    def test_named_parameters_nested(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 3, rng=rng)
                self.blocks = [Linear(3, 3, rng=rng), Linear(3, 1, rng=rng)]

        net = Net()
        names = dict(net.named_parameters())
        assert "a.weight" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert len(net.parameters()) == 6

    def test_num_parameters(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.inner = Linear(2, 2, rng=rng)

        net = Net()
        net.eval()
        assert not net.training and not net.inner.training
        net.train()
        assert net.training and net.inner.training

    def test_zero_grad(self, rng):
        layer = Linear(2, 2, rng=rng)
        layer(Tensor(rng.normal(size=(3, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        a = MLP([3, 5, 2], rng=rng)
        b = MLP([3, 5, 2], rng=np.random.default_rng(999))
        x = Tensor(rng.normal(size=(4, 3)))
        assert not np.allclose(a(x).data, b(x).data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_load_state_dict_missing_key(self, rng):
        a = MLP([3, 5, 2], rng=rng)
        with pytest.raises(KeyError):
            a.load_state_dict({})

    def test_load_state_dict_shape_mismatch(self, rng):
        a = Linear(3, 2, rng=rng)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 3))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_state_dict_is_copy(self, rng):
        a = Linear(2, 2, rng=rng)
        state = a.state_dict()
        state["weight"][:] = 99.0
        assert not np.allclose(a.weight.data, 99.0)
