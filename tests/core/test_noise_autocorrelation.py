"""Tests for the AR(1)-correlated generation noise (Figs. 7–8 fidelity)."""

import numpy as np
import pytest

from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.metrics import attribute_difference_series


def ar1_graph(rho, t_len=12, n=20, f=2, seed=0):
    """Attributes follow a per-node AR(1) with coefficient rho."""
    rng = np.random.default_rng(seed)
    adj = (rng.random((n, n)) < 0.15).astype(float)
    np.fill_diagonal(adj, 0.0)
    x = rng.normal(size=(n, f))
    snaps = []
    for _ in range(t_len):
        snaps.append(GraphSnapshot(adj, x.copy()))
        x = rho * x + np.sqrt(1 - rho**2) * rng.normal(size=(n, f))
    return DynamicAttributedGraph(snaps)


class TestEstimator:
    @pytest.mark.parametrize("rho", [0.0, 0.5, 0.9])
    def test_recovers_ar1_coefficient(self, rho):
        g = ar1_graph(rho, t_len=60, n=60, seed=1)
        est = VRDAG.estimate_attribute_autocorrelation(g)
        assert est == pytest.approx(rho, abs=0.12)

    def test_single_snapshot_returns_zero(self):
        g = ar1_graph(0.9, t_len=1)
        assert VRDAG.estimate_attribute_autocorrelation(g) == 0.0

    def test_no_attributes_returns_zero(self):
        adj = np.zeros((4, 4))
        adj[0, 1] = 1.0
        g = DynamicAttributedGraph([GraphSnapshot(adj)] * 3)
        assert VRDAG.estimate_attribute_autocorrelation(g) == 0.0

    def test_constant_attributes_clipped_high(self):
        n, f = 6, 2
        adj = np.zeros((n, n))
        adj[0, 1] = 1.0
        x = np.ones((n, f))
        g = DynamicAttributedGraph([GraphSnapshot(adj, x)] * 5)
        # zero variance -> no valid dims -> 0
        assert VRDAG.estimate_attribute_autocorrelation(g) == 0.0

    def test_clip_range(self):
        g = ar1_graph(0.999, t_len=40, n=40, seed=2)
        est = VRDAG.estimate_attribute_autocorrelation(g)
        assert 0.0 <= est <= 0.99


class TestSetter:
    def model(self):
        cfg = VRDAGConfig(
            num_nodes=10, num_attributes=2, hidden_dim=8, latent_dim=4,
            encode_dim=8, seed=0,
        )
        return VRDAG(cfg)

    def test_rejects_out_of_range(self):
        m = self.model()
        with pytest.raises(ValueError, match="rho"):
            m.set_noise_autocorrelation(1.0)
        with pytest.raises(ValueError, match="rho"):
            m.set_noise_autocorrelation(-0.1)

    def test_accepts_zero(self):
        m = self.model()
        m.set_noise_autocorrelation(0.0)
        assert m._attr_noise_rho == 0.0


class TestGenerationSmoothness:
    def trained(self, graph, seed=0):
        cfg = VRDAGConfig(
            num_nodes=graph.num_nodes, num_attributes=graph.num_attributes,
            hidden_dim=8, latent_dim=4, encode_dim=8, seed=seed,
        )
        model = VRDAG(cfg)
        VRDAGTrainer(model, TrainConfig(epochs=5)).fit(graph)
        return model

    def test_trainer_sets_rho_from_data(self):
        g = ar1_graph(0.9, t_len=16, n=24, seed=3)
        model = self.trained(g)
        assert model._attr_noise_rho > 0.5

    def test_correlated_noise_smoother_than_white(self):
        g = ar1_graph(0.95, t_len=16, n=24, seed=4)
        model = self.trained(g)
        fitted_rho = model._attr_noise_rho
        smooth = model.generate(12, seed=9)
        model.set_noise_autocorrelation(0.0)
        white = model.generate(12, seed=9)
        model.set_noise_autocorrelation(fitted_rho)
        d_smooth = attribute_difference_series(smooth, "mae").mean()
        d_white = attribute_difference_series(white, "mae").mean()
        assert d_smooth < d_white

    def test_marginal_dispersion_preserved(self):
        """AR(1) must not shrink the marginal attribute spread."""
        g = ar1_graph(0.9, t_len=16, n=24, seed=5)
        model = self.trained(g)
        fitted_rho = model._attr_noise_rho
        smooth = model.generate(12, seed=9).attribute_tensor()
        model.set_noise_autocorrelation(0.0)
        white = model.generate(12, seed=9).attribute_tensor()
        model.set_noise_autocorrelation(fitted_rho)
        assert smooth.std() == pytest.approx(white.std(), rel=0.35)
