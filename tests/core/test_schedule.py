"""Tests for training schedules and their trainer integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.core.schedule import (
    ConstantSchedule,
    CosineAnnealing,
    CyclicalAnnealing,
    LinearWarmup,
    Schedule,
    StepDecay,
)


class TestConstant:
    def test_value(self):
        assert ConstantSchedule(0.5).value(0) == 0.5
        assert ConstantSchedule(0.5).value(100) == 0.5

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError, match="epoch"):
            ConstantSchedule(1.0).value(-1)

    def test_protocol_conformance(self):
        assert isinstance(ConstantSchedule(1.0), Schedule)


class TestLinearWarmup:
    def test_ramp(self):
        sched = LinearWarmup(target=1.0, warmup_epochs=4)
        assert sched.value(0) == 0.0
        assert sched.value(2) == pytest.approx(0.5)
        assert sched.value(4) == 1.0
        assert sched.value(99) == 1.0

    def test_nonzero_start(self):
        sched = LinearWarmup(target=2.0, warmup_epochs=2, start=1.0)
        assert sched.value(1) == pytest.approx(1.5)

    def test_rejects_zero_warmup(self):
        with pytest.raises(ValueError, match="warmup"):
            LinearWarmup(1.0, 0)

    def test_repr(self):
        assert "LinearWarmup" in repr(LinearWarmup(1.0, 3))


class TestStepDecay:
    def test_decay_steps(self):
        sched = StepDecay(initial=1.0, gamma=0.1, step_epochs=2)
        assert sched.value(0) == 1.0
        assert sched.value(1) == 1.0
        assert sched.value(2) == pytest.approx(0.1)
        assert sched.value(4) == pytest.approx(0.01)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError, match="gamma"):
            StepDecay(1.0, 0.0, 1)


class TestCosineAnnealing:
    def test_endpoints(self):
        sched = CosineAnnealing(start=1.0, end=0.0, total_epochs=10)
        assert sched.value(0) == pytest.approx(1.0)
        assert sched.value(10) == pytest.approx(0.0)
        assert sched.value(50) == 0.0

    def test_midpoint(self):
        sched = CosineAnnealing(start=1.0, end=0.0, total_epochs=10)
        assert sched.value(5) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        sched = CosineAnnealing(start=1.0, end=0.1, total_epochs=8)
        values = [sched.value(e) for e in range(9)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestCyclicalAnnealing:
    def test_sawtooth(self):
        sched = CyclicalAnnealing(target=1.0, cycle_epochs=4, ramp_fraction=0.5)
        assert sched.value(0) == 0.0
        assert sched.value(1) == pytest.approx(0.5)
        assert sched.value(2) == 1.0
        assert sched.value(3) == 1.0
        assert sched.value(4) == 0.0  # new cycle

    def test_rejects_bad_ramp(self):
        with pytest.raises(ValueError, match="ramp_fraction"):
            CyclicalAnnealing(1.0, 4, 0.0)


@settings(max_examples=50, deadline=None)
@given(
    epoch=st.integers(0, 200),
    target=st.floats(0.01, 10, allow_nan=False),
    warmup=st.integers(1, 50),
)
def test_property_warmup_bounded(epoch, target, warmup):
    v = LinearWarmup(target, warmup).value(epoch)
    assert 0.0 <= v <= target + 1e-12


@settings(max_examples=50, deadline=None)
@given(epoch=st.integers(0, 100), cycle=st.integers(1, 20))
def test_property_cyclical_periodic(epoch, cycle):
    sched = CyclicalAnnealing(1.0, cycle)
    assert sched.value(epoch) == pytest.approx(sched.value(epoch + cycle))


class TestTrainerIntegration:
    def make_model(self, graph):
        cfg = VRDAGConfig(
            num_nodes=graph.num_nodes,
            num_attributes=graph.num_attributes,
            hidden_dim=8,
            latent_dim=4,
            encode_dim=8,
            seed=0,
        )
        return VRDAG(cfg)

    def test_lr_schedule_applied(self, tiny_graph):
        model = self.make_model(tiny_graph)
        sched = StepDecay(initial=1e-2, gamma=0.5, step_epochs=1)
        trainer = VRDAGTrainer(
            model, TrainConfig(epochs=3, lr_schedule=sched)
        )
        trainer.fit(tiny_graph)
        # after the last epoch the optimizer holds the epoch-2 value
        assert trainer.optimizer.lr == pytest.approx(1e-2 * 0.25)

    def test_kl_schedule_restores_base_weight(self, tiny_graph):
        model = self.make_model(tiny_graph)
        base = model.config.kl_weight
        trainer = VRDAGTrainer(
            model,
            TrainConfig(epochs=3, kl_schedule=LinearWarmup(1.0, 10)),
        )
        trainer.fit(tiny_graph)
        assert model.config.kl_weight == base

    def test_kl_warmup_trains_and_generates(self, tiny_graph):
        model = self.make_model(tiny_graph)
        trainer = VRDAGTrainer(
            model,
            TrainConfig(epochs=4, kl_schedule=LinearWarmup(1.0, 4)),
        )
        result = trainer.fit(tiny_graph)
        assert len(result.loss_history) == 4
        out = model.generate(3, seed=1)
        assert out.num_timesteps == 3
