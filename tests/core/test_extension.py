"""§III-H node addition/deletion extension tests."""

import numpy as np
import pytest

from repro.core import NodeDynamicsWrapper, TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.graph import DynamicAttributedGraph, GraphSnapshot


@pytest.fixture
def trained_model(tiny_graph):
    cfg = VRDAGConfig(
        num_nodes=tiny_graph.num_nodes,
        num_attributes=tiny_graph.num_attributes,
        hidden_dim=8, latent_dim=4, encode_dim=8, time_dim=4, seed=0,
    )
    model = VRDAG(cfg)
    VRDAGTrainer(model, TrainConfig(epochs=3)).fit(tiny_graph)
    return model


class TestValidation:
    def test_bad_threshold(self, trained_model):
        with pytest.raises(ValueError):
            NodeDynamicsWrapper(trained_model, deletion_threshold=0)

    def test_bad_rate(self, trained_model):
        with pytest.raises(ValueError):
            NodeDynamicsWrapper(trained_model, arrival_rate=-1.0)


class TestArrivalEstimation:
    def test_no_arrivals_for_always_active(self):
        adj = np.zeros((4, 4))
        adj[0, 1] = adj[1, 2] = adj[2, 3] = adj[3, 0] = 1.0
        g = DynamicAttributedGraph([GraphSnapshot(adj)] * 3)
        assert NodeDynamicsWrapper.estimate_arrival_rate(g) == 0.0

    def test_staggered_arrivals(self):
        n = 6
        snaps = []
        for t in range(3):
            adj = np.zeros((n, n))
            # nodes 2t and 2t+1 first become active at step t
            for k in range(0, 2 * (t + 1), 2):
                adj[k, k + 1] = 1.0
            snaps.append(GraphSnapshot(adj))
        g = DynamicAttributedGraph(snaps)
        assert NodeDynamicsWrapper.estimate_arrival_rate(g) == pytest.approx(2.0)

    def test_single_snapshot_zero(self):
        g = DynamicAttributedGraph([GraphSnapshot(np.zeros((3, 3)))])
        assert NodeDynamicsWrapper.estimate_arrival_rate(g) == 0.0


class TestGeneration:
    def test_shapes_and_masks(self, trained_model):
        wrapper = NodeDynamicsWrapper(trained_model, arrival_rate=1.0)
        graph, masks = wrapper.generate(4, initial_active=8, seed=3)
        assert graph.num_timesteps == 4
        assert masks.shape == (4, trained_model.config.num_nodes)
        assert masks.dtype == bool

    def test_inactive_nodes_have_no_edges(self, trained_model):
        wrapper = NodeDynamicsWrapper(trained_model, arrival_rate=0.0)
        graph, masks = wrapper.generate(3, initial_active=6, seed=1)
        for t, snap in enumerate(graph):
            inactive = ~masks[t]
            assert snap.adjacency[inactive].sum() == 0
            assert snap.adjacency[:, inactive].sum() == 0

    def test_node_addition_grows_active_set(self, trained_model):
        wrapper = NodeDynamicsWrapper(
            trained_model, arrival_rate=2.0, deletion_threshold=100
        )
        _, masks = wrapper.generate(4, initial_active=4, seed=7)
        assert masks[-1].sum() >= masks[0].sum()

    def test_deletion_removes_isolated(self, trained_model):
        # no arrivals + threshold 1: an isolated node vanishes next step
        wrapper = NodeDynamicsWrapper(
            trained_model, arrival_rate=0.0, deletion_threshold=1
        )
        graph, masks = wrapper.generate(4, seed=2)
        for t in range(1, 4):
            prev_isolated = masks[t - 1] & (graph[t - 1].degrees() == 0)
            assert not np.any(prev_isolated & masks[t])

    def test_determinism(self, trained_model):
        w = NodeDynamicsWrapper(trained_model, arrival_rate=1.0)
        g1, m1 = w.generate(3, initial_active=8, seed=11)
        g2, m2 = w.generate(3, initial_active=8, seed=11)
        assert g1 == g2
        np.testing.assert_array_equal(m1, m2)


class TestFit:
    def churn_graph(self, trained_model, num_arrivals=6):
        """Sequence where nodes activate progressively over time."""
        n = trained_model.config.num_nodes
        f = trained_model.config.num_attributes
        rng = np.random.default_rng(5)
        snaps = []
        for t in range(4):
            k = max(2, n - num_arrivals + t * 2)
            adj = np.zeros((n, n))
            for _ in range(3 * k):
                u, v = rng.integers(0, k, 2)
                if u != v:
                    adj[u, v] = 1.0
            snaps.append(GraphSnapshot(adj, rng.normal(size=(n, f))))
        return DynamicAttributedGraph(snaps)

    def test_fit_sets_arrival_rate(self, trained_model, tiny_graph):
        wrapper = NodeDynamicsWrapper(trained_model).fit(tiny_graph)
        assert wrapper.arrival_rate == NodeDynamicsWrapper.estimate_arrival_rate(
            tiny_graph
        )

    def test_fit_trains_init_sampler(self, trained_model):
        graph = self.churn_graph(trained_model)
        wrapper = NodeDynamicsWrapper(trained_model)
        before = wrapper.init_mu.weight.data.copy()
        wrapper.fit(graph)
        assert not np.array_equal(wrapper.init_mu.weight.data, before)
        # σ_ω is a constant head after fitting: zero weights, log-std bias
        assert np.all(wrapper.init_log_sigma.weight.data == 0)
        assert np.all(np.isfinite(wrapper.init_log_sigma.bias.data))

    def test_fit_no_arrivals_keeps_sampler(self, trained_model):
        n = trained_model.config.num_nodes
        f = trained_model.config.num_attributes
        adj = np.zeros((n, n))
        adj[np.arange(n), (np.arange(n) + 1) % n] = 1.0  # all active always
        g = DynamicAttributedGraph(
            [GraphSnapshot(adj, np.zeros((n, f)))] * 3
        )
        wrapper = NodeDynamicsWrapper(trained_model)
        before = wrapper.init_mu.weight.data.copy()
        wrapper.fit(g)
        assert wrapper.arrival_rate == 0.0
        np.testing.assert_array_equal(wrapper.init_mu.weight.data, before)

    def test_fitted_generation_density_sane(self, trained_model):
        """Fitted p_ω must not blow up the generated edge density."""
        graph = self.churn_graph(trained_model)
        wrapper = NodeDynamicsWrapper(
            trained_model, deletion_threshold=10
        ).fit(graph)
        out, masks = wrapper.generate(
            4, initial_active=trained_model.config.num_nodes - 4, seed=3
        )
        n = trained_model.config.num_nodes
        density = out.num_temporal_edges / (4 * n * (n - 1))
        assert density < 0.5
