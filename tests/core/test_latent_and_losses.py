"""Latent sampler (Eq. 3–4, 8–9) and loss-term tests (Eq. 15–18)."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import PriorNetwork, PosteriorNetwork, losses
from repro.core.latent import GaussianParams


@pytest.fixture
def gaussians(rng):
    q = GaussianParams(
        mu=Tensor(rng.normal(size=(5, 3))),
        sigma=Tensor(np.abs(rng.normal(size=(5, 3))) + 0.5),
    )
    p = GaussianParams(
        mu=Tensor(rng.normal(size=(5, 3))),
        sigma=Tensor(np.abs(rng.normal(size=(5, 3))) + 0.5),
    )
    return q, p


class TestNetworks:
    def test_prior_shapes(self, rng):
        net = PriorNetwork(hidden_dim=8, latent_dim=4, rng=rng)
        params = net(Tensor(rng.normal(size=(6, 8))))
        assert params.mu.shape == (6, 4)
        assert params.sigma.shape == (6, 4)
        assert np.all(params.sigma.data > 0)

    def test_posterior_shapes(self, rng):
        net = PosteriorNetwork(encode_dim=5, hidden_dim=8, latent_dim=4, rng=rng)
        params = net(Tensor(rng.normal(size=(6, 5))), Tensor(rng.normal(size=(6, 8))))
        assert params.mu.shape == (6, 4)

    def test_sigma_clamped(self, rng):
        net = PriorNetwork(hidden_dim=4, latent_dim=2, rng=rng)
        params = net(Tensor(rng.normal(size=(3, 4)) * 1e6))
        assert np.all(np.isfinite(params.sigma.data))

    def test_reparameterized_sample(self, rng, gaussians):
        q, _ = gaussians
        z1 = q.sample(np.random.default_rng(0))
        z2 = q.sample(np.random.default_rng(0))
        np.testing.assert_allclose(z1.data, z2.data)  # same rng -> same sample
        z3 = q.sample(np.random.default_rng(1))
        assert not np.allclose(z1.data, z3.data)

    def test_sample_statistics(self, rng):
        mu = np.full((1, 2), 3.0)
        sigma = np.full((1, 2), 0.5)
        g = GaussianParams(mu=Tensor(mu), sigma=Tensor(sigma))
        samples = np.stack(
            [g.sample(np.random.default_rng(i)).data for i in range(2000)]
        )
        np.testing.assert_allclose(samples.mean(axis=0), 3.0, atol=0.05)
        np.testing.assert_allclose(samples.std(axis=0), 0.5, atol=0.05)


class TestGaussianKL:
    def test_identical_zero(self, gaussians):
        q, _ = gaussians
        assert float(losses.gaussian_kl(q, q).data) == pytest.approx(0.0, abs=1e-10)

    def test_nonnegative(self, gaussians):
        q, p = gaussians
        assert float(losses.gaussian_kl(q, p).data) >= 0.0

    def test_closed_form_against_monte_carlo(self):
        q = GaussianParams(mu=Tensor(np.array([[1.0]])), sigma=Tensor(np.array([[0.7]])))
        p = GaussianParams(mu=Tensor(np.array([[0.0]])), sigma=Tensor(np.array([[1.0]])))
        analytic = float(losses.gaussian_kl(q, p).data)
        rng = np.random.default_rng(0)
        z = 1.0 + 0.7 * rng.standard_normal(200000)
        log_q = -0.5 * ((z - 1.0) / 0.7) ** 2 - np.log(0.7) - 0.5 * np.log(2 * np.pi)
        log_p = -0.5 * z**2 - 0.5 * np.log(2 * np.pi)
        mc = float((log_q - log_p).mean())
        assert analytic == pytest.approx(mc, abs=0.01)

    def test_grad_flows(self, rng):
        mu = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        q = GaussianParams(mu=mu, sigma=Tensor(np.ones((3, 2))))
        p = GaussianParams(mu=Tensor(np.zeros((3, 2))), sigma=Tensor(np.ones((3, 2))))
        losses.gaussian_kl(q, p).backward()
        assert mu.grad is not None


class TestStructureLosses:
    def test_bce_perfect_prediction_near_zero(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = 1.0
        probs = Tensor(np.where(adj > 0, 1.0 - 1e-9, 1e-9))
        loss = float(losses.bce_structure_loss(probs, adj).data)
        assert loss < 1e-4

    def test_bce_wrong_prediction_large(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = 1.0
        probs = Tensor(np.where(adj > 0, 1e-9, 1.0 - 1e-9))
        assert float(losses.bce_structure_loss(probs, adj).data) > 5.0

    def test_bce_ignores_diagonal(self):
        adj = np.zeros((3, 3))
        # probability 1 on the diagonal should not be penalized
        probs_data = np.full((3, 3), 1e-9)
        np.fill_diagonal(probs_data, 0.999)
        loss = float(losses.bce_structure_loss(Tensor(probs_data), adj).data)
        assert loss < 1e-4


class TestAttributeLosses:
    def test_sce_perfect_zero(self, rng):
        x = rng.normal(size=(4, 3))
        loss = losses.sce_attribute_loss(x, Tensor(x * 2.0))  # same direction
        assert float(loss.data) == pytest.approx(0.0, abs=1e-9)

    def test_sce_opposite_max(self, rng):
        x = rng.normal(size=(4, 3))
        loss = losses.sce_attribute_loss(x, Tensor(-x), alpha=1.0)
        assert float(loss.data) == pytest.approx(2.0, abs=1e-6)

    def test_sce_alpha_downweights_easy(self, rng):
        x = rng.normal(size=(6, 3))
        pred = x + 0.1 * rng.normal(size=(6, 3))  # easy samples
        l1 = float(losses.sce_attribute_loss(x, Tensor(pred), alpha=1.0).data)
        l3 = float(losses.sce_attribute_loss(x, Tensor(pred), alpha=3.0).data)
        assert l3 < l1

    def test_sce_alpha_validation(self, rng):
        with pytest.raises(ValueError):
            losses.sce_attribute_loss(np.ones((2, 2)), Tensor(np.ones((2, 2))), alpha=0.5)

    def test_sce_scale_invariance(self, rng):
        """SCE ignores norms — the documented reason for the MSE anchor."""
        x = rng.normal(size=(4, 3))
        l1 = float(losses.sce_attribute_loss(x, Tensor(x * 0.001)).data)
        assert l1 == pytest.approx(0.0, abs=1e-6)

    def test_mse(self, rng):
        x = rng.normal(size=(4, 3))
        assert float(losses.mse_attribute_loss(x, Tensor(x)).data) == pytest.approx(0.0)
        assert float(
            losses.mse_attribute_loss(x, Tensor(x + 2.0)).data
        ) == pytest.approx(4.0)

    def test_sce_grad_flows(self, rng):
        x = rng.normal(size=(4, 3))
        pred = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        losses.sce_attribute_loss(x, pred).backward()
        assert pred.grad is not None
        assert np.all(np.isfinite(pred.grad))
