"""Bi-flow encoder tests (Eq. 5–7)."""

import numpy as np
import pytest

from repro.core import BiFlowEncoder
from repro.graph import GraphSnapshot


@pytest.fixture
def encoder(rng):
    return BiFlowEncoder(
        num_attributes=2, hidden_dim=8, encode_dim=6, num_layers=2, rng=rng
    )


class TestBiFlowEncoder:
    def test_output_shape(self, encoder, tiny_snapshot):
        out = encoder(tiny_snapshot)
        assert out.shape == (12, 6)

    def test_initial_features_include_degrees(self, encoder, tiny_snapshot):
        feats = encoder.initial_features(tiny_snapshot)
        assert feats.shape == (12, 4)  # 2 attrs + in/out degree
        np.testing.assert_allclose(
            feats[:, 2] * 11, tiny_snapshot.in_degrees()
        )

    def test_direction_sensitivity(self, rng):
        """A directed edge reversal must change the encoding (bi-flow)."""
        enc = BiFlowEncoder(0, 8, 6, rng=rng)
        adj = np.zeros((4, 4))
        adj[0, 1] = 1.0
        fwd = enc(GraphSnapshot(adj, None)).data
        rev = enc(GraphSnapshot(adj.T.copy(), None)).data
        assert not np.allclose(fwd, rev)

    def test_unidirectional_ablation_ignores_in_flow(self, rng):
        """With bidirectional=False only out-neighbourhoods matter."""
        enc = BiFlowEncoder(0, 8, 6, bidirectional=False, rng=rng)
        # node 3 has only an incoming edge: invisible to a pure out-flow
        # encoding of node 3 beyond degree features
        adj1 = np.zeros((4, 4))
        adj1[0, 3] = 1.0
        adj2 = np.zeros((4, 4))
        adj2[1, 3] = 1.0
        out1 = enc(GraphSnapshot(adj1, None)).data
        out2 = enc(GraphSnapshot(adj2, None)).data
        # node 2 (untouched, no degree change) identical in both
        np.testing.assert_allclose(out1[2], out2[2], atol=1e-9)

    def test_attribute_sensitivity(self, encoder, tiny_snapshot):
        base = encoder(tiny_snapshot).data
        mod = tiny_snapshot.copy()
        mod.attributes[0] += 5.0
        out = encoder(mod).data
        assert not np.allclose(base[0], out[0])

    def test_gradients_reach_all_parameters(self, encoder, tiny_snapshot):
        out = encoder(tiny_snapshot)
        out.sum().backward()
        grads = [p.grad is not None for _, p in encoder.named_parameters()]
        # in-flows, out-flows, aggregator, pool and input proj all used
        assert all(grads)

    def test_empty_graph_finite(self, encoder):
        snap = GraphSnapshot(np.zeros((5, 5)), np.zeros((5, 2)))
        out = encoder(snap)
        assert np.all(np.isfinite(out.data))

    def test_jump_connection_uses_all_hops(self, rng):
        enc = BiFlowEncoder(0, 4, 4, num_layers=3, rng=rng)
        assert enc.pool.layers[0].in_features == 3 * 4
