"""Fused MixBernoulli decode: parity with the reference path and the
no-autodiff guarantee of the generation fast path."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.core import VRDAG, VRDAGConfig
from repro.core.generator import MixBernoulliSampler


@pytest.fixture
def sampler():
    return MixBernoulliSampler(
        12, num_components=3, rng=np.random.default_rng(3)
    )


@pytest.fixture
def states(rng):
    return Tensor(rng.normal(size=(23, 12)))


class TestFusedDecodeParity:
    def test_sample_matches_reference(self, sampler, states):
        fused = sampler.sample(states, np.random.default_rng(7), block_size=5)
        ref = sampler._reference_sample(states, np.random.default_rng(7))
        np.testing.assert_array_equal(fused, ref)

    def test_edge_probabilities_match_reference(self, sampler, states):
        np.testing.assert_allclose(
            sampler.edge_probabilities(states, block_size=5),
            sampler._reference_edge_probabilities(states),
            atol=1e-10,
        )

    def test_blocking_is_invisible(self, sampler, states):
        whole = sampler.sample(states, np.random.default_rng(9), block_size=None)
        blocked = sampler.sample(states, np.random.default_rng(9), block_size=3)
        np.testing.assert_array_equal(whole, blocked)

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_component_counts(self, rng, k):
        sampler = MixBernoulliSampler(
            8, num_components=k, rng=np.random.default_rng(k)
        )
        s = Tensor(rng.normal(size=(11, 8)))
        fused = sampler.sample(s, np.random.default_rng(1), block_size=4)
        ref = sampler._reference_sample(s, np.random.default_rng(1))
        np.testing.assert_array_equal(fused, ref)

    def test_single_node(self, sampler):
        s = Tensor(np.zeros((1, 12)))
        adj = sampler.sample(s, np.random.default_rng(0))
        assert adj.shape == (1, 1) and adj[0, 0] == 0.0

    def test_pooled_alpha_fallback_agrees(self, states):
        """A non-decomposable α activation falls back to the blocked
        pairwise pass and still matches the reference."""
        from repro.nn import MLP

        sampler = MixBernoulliSampler(
            12, num_components=3, rng=np.random.default_rng(3)
        )
        sampler.f_alpha = MLP(
            [12, 12, 3], activation="tanh", rng=np.random.default_rng(4)
        )
        assert sampler._pooled_alpha_features_np(np.zeros((3, 12))) is None
        np.testing.assert_allclose(
            sampler.edge_probabilities(states, block_size=6),
            sampler._reference_edge_probabilities(states),
            atol=1e-10,
        )


class TestNoGradFastPath:
    def _spy_on_ops(self, monkeypatch):
        created = []
        orig = Tensor._from_op.__func__

        def spy(cls, data, parents, backwards, op):
            out = orig(cls, data, parents, backwards, op)
            created.append(out)
            return out

        monkeypatch.setattr(Tensor, "_from_op", classmethod(spy))
        return created

    def test_sample_creates_no_autodiff_ops(
        self, monkeypatch, sampler, states
    ):
        created = self._spy_on_ops(monkeypatch)
        sampler.sample(states, np.random.default_rng(0))
        assert created == []

    def test_edge_probabilities_create_no_autodiff_ops(
        self, monkeypatch, sampler, states
    ):
        created = self._spy_on_ops(monkeypatch)
        sampler.edge_probabilities(states)
        assert created == []

    def test_generate_records_no_tape(self, monkeypatch):
        """Algorithm 1 rollouts never build an autodiff graph: every
        Tensor produced during generation is tape-free."""
        created = self._spy_on_ops(monkeypatch)
        cfg = VRDAGConfig(
            num_nodes=10,
            num_attributes=2,
            hidden_dim=8,
            latent_dim=4,
            encode_dim=8,
            seed=0,
        )
        model = VRDAG(cfg)
        model.generate(num_timesteps=2, seed=1)
        assert created, "expected encoder/recurrence ops to run"
        for t in created:
            assert not t.requires_grad
            assert t._parents == ()

    def test_generate_inside_tape_records_nothing(self):
        """Generation respects no_grad even with a training tape open:
        an interleaved rollout must not append a single record to it."""
        from repro.autodiff import Tape

        cfg = VRDAGConfig(
            num_nodes=10,
            num_attributes=2,
            hidden_dim=8,
            latent_dim=4,
            encode_dim=8,
            seed=0,
        )
        model = VRDAG(cfg)
        with Tape() as tape:
            model.generate(num_timesteps=2, seed=1)
        assert len(tape) == 0

    def test_sample_inside_tape_records_nothing(self, sampler, states):
        from repro.autodiff import Tape

        with Tape() as tape:
            sampler.sample(states, np.random.default_rng(0))
            sampler.edge_probabilities(states)
        assert len(tape) == 0
