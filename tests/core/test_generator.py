"""MixBernoulli sampler (Eq. 11) and attribute decoder (Eq. 12) tests."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import AttributeDecoder, MixBernoulliSampler


@pytest.fixture
def sampler(rng):
    return MixBernoulliSampler(state_dim=6, num_components=3, rng=rng)


@pytest.fixture
def states(rng):
    return Tensor(rng.normal(size=(8, 6)))


class TestMixBernoulliSampler:
    def test_distribution_shapes(self, sampler, states):
        alpha, theta = sampler.distribution(states)
        assert alpha.shape == (8, 3)
        assert theta.shape == (8, 8, 3)
        np.testing.assert_allclose(alpha.data.sum(axis=1), 1.0, atol=1e-9)
        assert np.all((theta.data >= 0) & (theta.data <= 1))

    def test_sample_binary_no_self_loops(self, sampler, states, rng):
        adj = sampler.sample(states, rng)
        assert adj.shape == (8, 8)
        assert set(np.unique(adj)) <= {0.0, 1.0}
        assert np.all(np.diag(adj) == 0)

    def test_sample_deterministic_under_rng(self, sampler, states):
        a1 = sampler.sample(states, np.random.default_rng(3))
        a2 = sampler.sample(states, np.random.default_rng(3))
        np.testing.assert_array_equal(a1, a2)

    def test_log_likelihood_higher_for_likely_graph(self, sampler, states, rng):
        probs = sampler.edge_probabilities(states)
        likely = (probs > 0.5).astype(float)
        np.fill_diagonal(likely, 0.0)
        unlikely = 1.0 - likely
        np.fill_diagonal(unlikely, 0.0)
        ll_likely = float(sampler.log_likelihood(states, likely).data)
        ll_unlikely = float(sampler.log_likelihood(states, unlikely).data)
        assert ll_likely > ll_unlikely

    def test_edge_probabilities_are_mixture_marginals(self, sampler, states):
        alpha, theta = sampler.distribution(states)
        manual = (theta.data * alpha.data[:, None, :]).sum(axis=2)
        np.fill_diagonal(manual, 0.0)
        np.testing.assert_allclose(
            sampler.edge_probabilities(states), manual
        )

    def test_calibrate_bias_sets_initial_density(self, rng):
        s = MixBernoulliSampler(state_dim=4, num_components=2, rng=rng)
        s.calibrate_bias(0.05)
        states = Tensor(np.zeros((10, 4)))
        probs = s.edge_probabilities(states)
        off_diag = probs[~np.eye(10, dtype=bool)]
        # at zero states the MLP is bias-dominated: density near 0.05
        assert abs(off_diag.mean() - 0.05) < 0.05

    def test_k1_reduces_to_independent_bernoulli(self, rng):
        """With K=1 the mixture log-lik equals the plain BCE (negated)."""
        from repro.core.losses import bce_structure_loss

        s = MixBernoulliSampler(state_dim=4, num_components=1, rng=rng)
        states = Tensor(rng.normal(size=(6, 4)))
        adj = (rng.random((6, 6)) < 0.3).astype(float)
        np.fill_diagonal(adj, 0.0)
        _, theta = s.distribution(states)
        probs = Tensor(theta.data[:, :, 0])
        ll = float(s.log_likelihood(states, adj).data)
        bce = float(bce_structure_loss(probs, adj).data)
        assert ll == pytest.approx(-bce, rel=1e-6)

    def test_gradients_flow(self, sampler, states, rng):
        adj = (rng.random((8, 8)) < 0.2).astype(float)
        np.fill_diagonal(adj, 0.0)
        s = Tensor(states.data.copy(), requires_grad=True)
        (-sampler.log_likelihood(s, adj)).backward()
        assert s.grad is not None
        for _, p in sampler.named_parameters():
            assert p.grad is not None


class TestAttributeDecoder:
    def test_shapes(self, rng, states):
        dec = AttributeDecoder(state_dim=6, num_attributes=3, rng=rng)
        adj = (rng.random((8, 8)) < 0.3).astype(float)
        out = dec(states, adj)
        assert out.shape == (8, 3)

    def test_conditions_on_structure(self, rng, states):
        """Changing the adjacency must change decoded attributes (Eq. 10)."""
        dec = AttributeDecoder(state_dim=6, num_attributes=2, rng=rng)
        adj1 = np.zeros((8, 8))
        adj2 = np.zeros((8, 8))
        adj2[0, 1:] = 1.0
        out1 = dec(states, adj1).data
        out2 = dec(states, adj2).data
        assert not np.allclose(out1[0], out2[0])

    def test_sigmoid_activation(self, rng, states):
        dec = AttributeDecoder(6, 2, activation="sigmoid", rng=rng)
        out = dec(states, np.zeros((8, 8))).data
        assert np.all((out >= 0) & (out <= 1))

    def test_empty_adjacency_finite(self, rng, states):
        dec = AttributeDecoder(6, 2, rng=rng)
        out = dec(states, np.zeros((8, 8)))
        assert np.all(np.isfinite(out.data))
