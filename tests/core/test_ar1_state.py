"""Properties of the whitened AR(1) noise process used at generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import _Ar1State


def run_chain(rho, steps, shape=(2000,), seed=0):
    rng = np.random.default_rng(seed)
    state = _Ar1State(rho)
    return np.stack([state.step(shape, rng) for _ in range(steps)])


class TestAr1State:
    def test_rho_zero_is_white(self):
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        state = _Ar1State(0.0)
        draws = [state.step((5,), rng1) for _ in range(4)]
        whites = [rng2.standard_normal((5,)) for _ in range(4)]
        for d, w in zip(draws, whites):
            np.testing.assert_array_equal(d, w)

    @pytest.mark.parametrize("rho", [0.0, 0.5, 0.9, 0.99])
    def test_unit_marginal_variance(self, rho):
        chain = run_chain(rho, steps=40)
        # every step is marginally N(0, 1)
        stds = chain.std(axis=1)
        assert np.all(np.abs(stds - 1.0) < 0.08)

    @pytest.mark.parametrize("rho", [0.3, 0.7, 0.95])
    def test_lag1_correlation_matches_rho(self, rho):
        chain = run_chain(rho, steps=30, shape=(5000,))
        corrs = [
            np.corrcoef(chain[t], chain[t + 1])[0, 1]
            for t in range(chain.shape[0] - 1)
        ]
        assert np.mean(corrs) == pytest.approx(rho, abs=0.05)

    def test_first_step_is_pure_innovation(self):
        rng = np.random.default_rng(0)
        state = _Ar1State(0.9)
        first = state.step((1000,), rng)
        assert abs(first.std() - 1.0) < 0.1


@settings(max_examples=25, deadline=None)
@given(
    rho=st.floats(0.0, 0.99, allow_nan=False),
    seed=st.integers(0, 1000),
)
def test_property_marginal_preserved_for_any_rho(rho, seed):
    chain = run_chain(rho, steps=15, shape=(1500,), seed=seed)
    assert np.all(np.abs(chain.std(axis=1) - 1.0) < 0.12)


@settings(max_examples=25, deadline=None)
@given(rho=st.floats(0.5, 0.99, allow_nan=False), seed=st.integers(0, 1000))
def test_property_consecutive_difference_shrinks(rho, seed):
    """E[(w_{t+1} - w_t)^2] = 2(1 - rho) — smoothness scales with rho."""
    chain = run_chain(rho, steps=25, shape=(3000,), seed=seed)
    msd = ((chain[1:] - chain[:-1]) ** 2).mean()
    assert msd == pytest.approx(2 * (1 - rho), rel=0.25, abs=0.02)
