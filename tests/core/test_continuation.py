"""Conditional-generation (sequence continuation) tests."""

import numpy as np
import pytest

from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.core.continuation import continue_sequence, encode_prefix


@pytest.fixture
def trained(tiny_graph):
    cfg = VRDAGConfig(
        num_nodes=tiny_graph.num_nodes,
        num_attributes=tiny_graph.num_attributes,
        hidden_dim=8, latent_dim=4, encode_dim=8, time_dim=4, seed=0,
    )
    model = VRDAG(cfg)
    VRDAGTrainer(model, TrainConfig(epochs=3)).fit(tiny_graph)
    return model


class TestEncodePrefix:
    def test_shape(self, trained, tiny_graph):
        h = encode_prefix(trained, tiny_graph.truncated(2))
        assert h.shape == (tiny_graph.num_nodes, 8)

    def test_deterministic(self, trained, tiny_graph):
        h1 = encode_prefix(trained, tiny_graph.truncated(2))
        h2 = encode_prefix(trained, tiny_graph.truncated(2))
        np.testing.assert_allclose(h1.data, h2.data)

    def test_prefix_length_matters(self, trained, tiny_graph):
        h1 = encode_prefix(trained, tiny_graph.truncated(1))
        h2 = encode_prefix(trained, tiny_graph.truncated(3))
        assert not np.allclose(h1.data, h2.data)

    def test_node_mismatch(self, trained, structure_only_graph):
        with pytest.raises(ValueError):
            encode_prefix(trained, structure_only_graph)


class TestContinueSequence:
    def test_horizon_length(self, trained, tiny_graph):
        cont = continue_sequence(trained, tiny_graph.truncated(2), horizon=3)
        assert cont.num_timesteps == 3
        assert cont.num_nodes == tiny_graph.num_nodes
        assert cont.num_attributes == tiny_graph.num_attributes

    def test_invalid_horizon(self, trained, tiny_graph):
        with pytest.raises(ValueError):
            continue_sequence(trained, tiny_graph, horizon=0)

    def test_deterministic_under_seed(self, trained, tiny_graph):
        c1 = continue_sequence(trained, tiny_graph.truncated(2), 2, seed=4)
        c2 = continue_sequence(trained, tiny_graph.truncated(2), 2, seed=4)
        assert c1 == c2

    def test_prefix_conditioning_changes_output(self, trained, tiny_graph):
        c1 = continue_sequence(trained, tiny_graph.truncated(1), 2, seed=4)
        c2 = continue_sequence(trained, tiny_graph.truncated(3), 2, seed=4)
        assert c1 != c2

    def test_valid_snapshots(self, trained, tiny_graph):
        cont = continue_sequence(trained, tiny_graph.truncated(2), 2, seed=1)
        for snap in cont:
            assert set(np.unique(snap.adjacency)) <= {0.0, 1.0}
            assert np.all(np.diag(snap.adjacency) == 0)
            assert np.all(np.isfinite(snap.attributes))
