"""Model save/load round-trip tests."""

import numpy as np
import pytest

from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.core.persistence import load_model, save_model


@pytest.fixture
def trained(tiny_graph):
    cfg = VRDAGConfig(
        num_nodes=tiny_graph.num_nodes,
        num_attributes=tiny_graph.num_attributes,
        hidden_dim=8, latent_dim=4, encode_dim=8, time_dim=4, seed=0,
    )
    model = VRDAG(cfg)
    VRDAGTrainer(model, TrainConfig(epochs=2)).fit(tiny_graph)
    return model


class TestPersistence:
    def test_roundtrip_generates_identically(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_model(trained, path)
        clone = load_model(path)
        g1 = trained.generate(3, seed=5)
        g2 = clone.generate(3, seed=5)
        assert g1 == g2

    def test_config_restored(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_model(trained, path)
        clone = load_model(path)
        assert clone.config == trained.config

    def test_calibration_restored(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_model(trained, path)
        clone = load_model(path)
        np.testing.assert_allclose(clone._attr_mean, trained._attr_mean)
        np.testing.assert_allclose(clone._attr_std, trained._attr_std)
        np.testing.assert_allclose(
            clone._attr_noise_chol, trained._attr_noise_chol
        )
        np.testing.assert_allclose(
            clone._attr_target_mean, trained._attr_target_mean
        )

    def test_noise_autocorrelation_restored(self, trained, tmp_path):
        trained.set_noise_autocorrelation(0.73)
        path = tmp_path / "model.npz"
        save_model(trained, path)
        assert load_model(path)._attr_noise_rho == pytest.approx(0.73)

    def test_untrained_model_roundtrip(self, tmp_path):
        cfg = VRDAGConfig(num_nodes=10, num_attributes=0, hidden_dim=8,
                          latent_dim=4, encode_dim=8)
        model = VRDAG(cfg)
        path = tmp_path / "raw.npz"
        save_model(model, path)
        clone = load_model(path)
        assert clone.generate(2, seed=1) == model.generate(2, seed=1)

    def test_bad_version(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_model(trained, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.array(99)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_model(path)
