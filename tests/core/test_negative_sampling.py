"""Negative-sampled structure loss tests (§III-G estimator)."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import MixBernoulliSampler, TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer


@pytest.fixture
def sampler(rng):
    return MixBernoulliSampler(state_dim=6, num_components=2, rng=rng)


@pytest.fixture
def states(rng):
    return Tensor(rng.normal(size=(10, 6)))


@pytest.fixture
def sparse_adj(rng):
    adj = (rng.random((10, 10)) < 0.15).astype(float)
    np.fill_diagonal(adj, 0.0)
    return adj


class TestSampledLogLikelihood:
    def test_validates_num_negatives(self, sampler, states, sparse_adj, rng):
        with pytest.raises(ValueError):
            sampler.sampled_log_likelihood(states, sparse_adj, 0, rng)

    def test_unbiased_estimate_near_dense(self, sampler, states, sparse_adj):
        """Averaged over many negative-sample draws, the estimator should
        approach the exact dense log-likelihood."""
        exact = float(sampler.log_likelihood(states, sparse_adj).data)
        estimates = []
        for seed in range(100):
            rng = np.random.default_rng(seed)
            estimates.append(
                float(
                    sampler.sampled_log_likelihood(
                        states, sparse_adj, 8, rng
                    ).data
                )
            )
        # logsumexp of an unbiased row-sum estimate is not exactly
        # unbiased, but the gap should be small relative to |exact|
        assert abs(np.mean(estimates) - exact) < 0.25 * abs(exact) + 1.0

    def test_full_coverage_matches_dense(self, sampler, states, sparse_adj):
        """With enough negatives to cover every non-edge (importance
        weights then average duplicates), the estimate concentrates."""
        rng = np.random.default_rng(0)
        est = float(
            sampler.sampled_log_likelihood(states, sparse_adj, 200, rng).data
        )
        exact = float(sampler.log_likelihood(states, sparse_adj).data)
        assert abs(est - exact) < 0.15 * abs(exact) + 0.5

    def test_gradients_flow(self, sampler, states, sparse_adj, rng):
        s = Tensor(states.data.copy(), requires_grad=True)
        (-sampler.sampled_log_likelihood(s, sparse_adj, 5, rng)).backward()
        assert s.grad is not None
        assert np.all(np.isfinite(s.grad))


class TestEndToEndWithNegativeSampling:
    def test_training_works(self, tiny_graph):
        cfg = VRDAGConfig(
            num_nodes=tiny_graph.num_nodes,
            num_attributes=tiny_graph.num_attributes,
            hidden_dim=8, latent_dim=4, encode_dim=8,
            struct_negative_samples=5, seed=0,
        )
        model = VRDAG(cfg)
        result = VRDAGTrainer(model, TrainConfig(epochs=8)).fit(tiny_graph)
        assert result.loss_history[-1] < result.loss_history[0]
        out = model.generate(2, seed=1)
        assert out.num_timesteps == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VRDAGConfig(num_nodes=5, struct_negative_samples=-1).validate()
