"""Seeded training is bit-deterministic on both autodiff engines."""

import numpy as np
import pytest

from repro.core import TrainConfig, VRDAG, VRDAGConfig, VRDAGTrainer
from repro.graph import DynamicAttributedGraph, GraphSnapshot


def _toy_graph(n=10, t_len=3, f=2, seed=5):
    rng = np.random.default_rng(seed)
    snaps = []
    adj = (rng.random((n, n)) < 0.25).astype(float)
    np.fill_diagonal(adj, 0.0)
    for _ in range(t_len):
        flip = (rng.random((n, n)) < 0.05).astype(float)
        adj = np.clip(adj + flip, 0, 1)
        np.fill_diagonal(adj, 0.0)
        snaps.append(GraphSnapshot(adj.copy(), rng.normal(size=(n, f))))
    return DynamicAttributedGraph(snaps)


def _fit(engine: str, epochs: int = 3):
    cfg = VRDAGConfig(
        num_nodes=10, num_attributes=2, hidden_dim=6, latent_dim=4,
        encode_dim=6, mixture_components=2, seed=21,
    )
    model = VRDAG(cfg)
    trainer = VRDAGTrainer(model, TrainConfig(epochs=epochs, engine=engine))
    result = trainer.fit(_toy_graph())
    params = [p.data.copy() for p in model.parameters()]
    return result, params


class TestSeededDeterminism:
    @pytest.mark.parametrize("engine", ["tape", "legacy"])
    def test_identical_seed_identical_result(self, engine):
        r1, p1 = _fit(engine)
        r2, p2 = _fit(engine)
        assert r1.loss_history == r2.loss_history  # bit-identical floats
        assert r1.component_history == r2.component_history
        assert r1.epochs_run == r2.epochs_run
        for a, b in zip(p1, p2):
            np.testing.assert_array_equal(a, b)

    def test_engines_agree_within_tolerance(self):
        r_tape, p_tape = _fit("tape")
        r_legacy, p_legacy = _fit("legacy")
        np.testing.assert_allclose(
            r_tape.loss_history, r_legacy.loss_history, rtol=1e-8
        )
        for a, b in zip(p_tape, p_legacy):
            np.testing.assert_allclose(a, b, rtol=1e-6, atol=1e-8)


class TestEngineValidation:
    def test_unknown_engine_rejected(self):
        cfg = VRDAGConfig(
            num_nodes=10, num_attributes=2, hidden_dim=6, latent_dim=4,
            encode_dim=6, seed=0,
        )
        trainer = VRDAGTrainer(
            VRDAG(cfg), TrainConfig(epochs=1, engine="torch")
        )
        with pytest.raises(ValueError, match="unknown autodiff engine"):
            trainer.fit(_toy_graph())

    def test_baseline_unknown_engine_rejected(self):
        from repro.baselines.gran import GRAN

        with pytest.raises(ValueError, match="unknown autodiff engine"):
            GRAN(engine="jax", epochs=1).fit(_toy_graph())
