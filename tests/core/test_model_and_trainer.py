"""End-to-end VRDAG model, trainer and recurrence tests."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import (
    RecurrenceUpdater,
    TrainConfig,
    VRDAG,
    VRDAGConfig,
    VRDAGTrainer,
)
from repro.graph import DynamicAttributedGraph


@pytest.fixture
def config(tiny_graph):
    return VRDAGConfig(
        num_nodes=tiny_graph.num_nodes,
        num_attributes=tiny_graph.num_attributes,
        hidden_dim=8,
        latent_dim=4,
        encode_dim=8,
        time_dim=4,
        seed=0,
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_nodes": 1},
            {"num_attributes": -1},
            {"hidden_dim": 0},
            {"gnn_layers": 0},
            {"mixture_components": 0},
            {"sce_alpha": 0.5},
            {"attr_loss": "huber"},
        ],
    )
    def test_invalid(self, overrides):
        base = dict(num_nodes=10, num_attributes=2)
        base.update(overrides)
        with pytest.raises(ValueError):
            VRDAGConfig(**base).validate()


class TestRecurrenceUpdater:
    def test_initial_state_zero(self, rng):
        rec = RecurrenceUpdater(4, 3, 2, 6, rng=rng)
        h0 = rec.initial_state(5)
        assert h0.shape == (5, 6)
        np.testing.assert_allclose(h0.data, 0.0)

    def test_update_shape(self, rng):
        rec = RecurrenceUpdater(4, 3, 2, 6, rng=rng)
        h = rec(
            Tensor(rng.normal(size=(5, 4))),
            Tensor(rng.normal(size=(5, 3))),
            2.0,
            rec.initial_state(5),
        )
        assert h.shape == (5, 6)

    def test_time_affects_update(self, rng):
        rec = RecurrenceUpdater(4, 3, 2, 6, rng=rng)
        enc = Tensor(rng.normal(size=(5, 4)))
        z = Tensor(rng.normal(size=(5, 3)))
        h0 = rec.initial_state(5)
        h1 = rec(enc, z, 1.0, h0)
        h2 = rec(enc, z, 9.0, h0)
        assert not np.allclose(h1.data, h2.data)


class TestVRDAGModel:
    def test_sequence_loss_finite(self, config, tiny_graph):
        model = VRDAG(config)
        loss, logs = model.sequence_loss(tiny_graph)
        assert np.isfinite(float(loss.data))
        assert set(logs) == {"kl", "struct", "attr"}

    def test_node_count_mismatch(self, config, tiny_graph):
        bad = VRDAGConfig(num_nodes=99, num_attributes=2)
        model = VRDAG(bad)
        with pytest.raises(ValueError, match="nodes"):
            model.sequence_loss(tiny_graph)

    def test_attr_count_mismatch(self, config, tiny_graph):
        bad = VRDAGConfig(num_nodes=tiny_graph.num_nodes, num_attributes=7)
        model = VRDAG(bad)
        with pytest.raises(ValueError, match="attributes"):
            model.sequence_loss(tiny_graph)

    def test_generate_shape_and_validity(self, config):
        model = VRDAG(config)
        out = model.generate(num_timesteps=3)
        assert isinstance(out, DynamicAttributedGraph)
        assert out.num_timesteps == 3
        assert out.num_nodes == config.num_nodes
        assert out.num_attributes == config.num_attributes
        for snap in out:
            assert set(np.unique(snap.adjacency)) <= {0.0, 1.0}
            assert np.all(np.diag(snap.adjacency) == 0)
            assert np.all(np.isfinite(snap.attributes))

    def test_generate_invalid_steps(self, config):
        with pytest.raises(ValueError):
            VRDAG(config).generate(0)

    def test_generate_deterministic_under_seed(self, config):
        model = VRDAG(config)
        g1 = model.generate(3, seed=5)
        g2 = model.generate(3, seed=5)
        assert g1 == g2
        assert g1 != model.generate(3, seed=6)

    def test_structure_only_model(self, structure_only_graph):
        cfg = VRDAGConfig(
            num_nodes=structure_only_graph.num_nodes,
            num_attributes=0,
            hidden_dim=8, latent_dim=4, encode_dim=8,
        )
        model = VRDAG(cfg)
        assert model.attribute_decoder is None
        loss, logs = model.sequence_loss(structure_only_graph)
        assert np.isfinite(float(loss.data))
        out = model.generate(2)
        assert out.num_attributes == 0

    def test_calibrate_normalizes(self, config, tiny_graph):
        model = VRDAG(config)
        normalized = model.calibrate(tiny_graph)
        x = normalized.attribute_tensor().reshape(-1, 2)
        np.testing.assert_allclose(x.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(x.std(axis=0), 1.0, atol=1e-6)

    def test_calibrate_sets_density_bias(self, config, tiny_graph):
        model = VRDAG(config)
        model.calibrate(tiny_graph)
        n = tiny_graph.num_nodes
        density = tiny_graph.num_temporal_edges / (
            tiny_graph.num_timesteps * n * (n - 1)
        )
        probs = model.structure_sampler.edge_probabilities(
            Tensor(np.zeros((n, config.latent_dim + config.hidden_dim)))
        )
        mean_p = probs[~np.eye(n, dtype=bool)].mean()
        assert abs(mean_p - density) < 0.15

    def test_expected_adjacency(self, config):
        model = VRDAG(config)
        probs = model.expected_adjacency(2)
        assert probs.shape == (2, config.num_nodes, config.num_nodes)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_set_attribute_noise_validation(self, config):
        model = VRDAG(config)
        with pytest.raises(ValueError):
            model.set_attribute_noise(np.ones(5))
        with pytest.raises(ValueError):
            model.set_attribute_noise(np.ones((4, 3)))
        model.set_attribute_noise(np.ones(2))          # (F,) stds ok
        model.set_attribute_noise(np.eye(2))           # (F, F) cov ok
        model.set_attribute_noise(np.stack([np.eye(2)] * 4))  # (T, F, F) ok

    def test_correlated_noise_preserves_correlation(self, config):
        """Cholesky sampling must realize the requested covariance."""
        model = VRDAG(config)
        cov = np.array([[1.0, 0.9], [0.9, 1.0]])
        model.set_attribute_noise(cov)
        rng = np.random.default_rng(0)
        white = rng.standard_normal((20000, 2))
        samples = white @ model._attr_noise_chol[0].T
        emp = np.corrcoef(samples, rowvar=False)
        assert emp[0, 1] == pytest.approx(0.9, abs=0.02)

    def test_set_output_calibration_validation(self, config):
        model = VRDAG(config)
        with pytest.raises(ValueError):
            model.set_output_calibration(
                np.ones((3, 9)), np.stack([np.eye(2)] * 3)
            )
        with pytest.raises(ValueError):
            model.set_output_calibration(np.ones((3, 2)), np.ones((3, 2)))

    def test_safe_cholesky_projects_indefinite(self):
        from repro.core.model import _safe_cholesky

        indefinite = np.array([[1.0, 0.0], [0.0, -4.0]])
        chol = _safe_cholesky(indefinite)
        realized = chol @ chol.T
        assert realized[1, 1] == pytest.approx(0.0, abs=1e-9)
        assert realized[0, 0] == pytest.approx(1.0, abs=1e-6)

    def test_model_parameter_count_scales_with_dims(self, tiny_graph):
        small = VRDAG(VRDAGConfig(num_nodes=16, num_attributes=2, hidden_dim=8,
                                  latent_dim=4, encode_dim=8))
        big = VRDAG(VRDAGConfig(num_nodes=16, num_attributes=2, hidden_dim=32,
                                latent_dim=16, encode_dim=32))
        assert big.num_parameters() > small.num_parameters()


class TestVRDAGTrainer:
    def test_loss_decreases(self, config, tiny_graph):
        model = VRDAG(config)
        result = VRDAGTrainer(model, TrainConfig(epochs=12)).fit(tiny_graph)
        assert result.epochs_run == 12
        assert result.loss_history[-1] < result.loss_history[0]

    def test_history_lengths(self, config, tiny_graph):
        model = VRDAG(config)
        result = VRDAGTrainer(model, TrainConfig(epochs=3)).fit(tiny_graph)
        assert len(result.loss_history) == 3
        assert len(result.component_history) == 3
        assert result.train_seconds > 0
        assert np.isfinite(result.final_loss)

    def test_time_budget_stops_early(self, config, tiny_graph):
        model = VRDAG(config)
        result = VRDAGTrainer(
            model, TrainConfig(epochs=10000, time_budget=0.5)
        ).fit(tiny_graph)
        assert result.epochs_run < 10000

    def test_trainer_sets_noise_and_calibration(self, config, tiny_graph):
        model = VRDAG(config)
        VRDAGTrainer(model, TrainConfig(epochs=2)).fit(tiny_graph)
        assert model._attr_noise_std.shape == (tiny_graph.num_timesteps, 2)
        assert model._attr_target_mean is not None

    def test_patience_stops_on_plateau(self, config, tiny_graph):
        model = VRDAG(config)
        # lr=0 never improves the loss, so patience kicks in immediately
        result = VRDAGTrainer(
            model,
            TrainConfig(epochs=50, learning_rate=0.0, patience=2),
        ).fit(tiny_graph)
        assert result.epochs_run <= 4

    def test_patience_ignores_improving_runs(self, config, tiny_graph):
        model = VRDAG(config)
        result = VRDAGTrainer(
            model, TrainConfig(epochs=6, patience=100)
        ).fit(tiny_graph)
        assert result.epochs_run == 6

    def test_weight_decay_shrinks_weights(self, config, tiny_graph):
        model = VRDAG(config)
        trainer = VRDAGTrainer(
            model, TrainConfig(epochs=3, weight_decay=0.5)
        )
        norm_before = sum(
            float((p.data**2).sum()) for p in model.parameters()
        )
        trainer.fit(tiny_graph)
        norm_after = sum(
            float((p.data**2).sum()) for p in model.parameters()
        )
        assert norm_after < norm_before

    def test_verbose_prints_epoch_lines(self, config, tiny_graph, capsys):
        model = VRDAG(config)
        VRDAGTrainer(model, TrainConfig(epochs=2, verbose=True)).fit(tiny_graph)
        out = capsys.readouterr().out
        assert "epoch   0" in out and "loss=" in out

    def test_empty_result_final_loss_nan(self):
        from repro.core.trainer import TrainResult

        assert np.isnan(TrainResult().final_loss)

    def test_training_improves_data_likelihood(self, config, tiny_graph):
        """Training must raise the model's likelihood of the observed
        sequence (reconstruction terms of the ELBO, Eq. 14)."""
        untrained = VRDAG(config)
        norm = untrained.calibrate(tiny_graph)
        _, before = untrained.sequence_loss(norm)

        trained = VRDAG(config)
        VRDAGTrainer(trained, TrainConfig(epochs=25)).fit(tiny_graph)
        norm2 = trained.calibrate(tiny_graph)
        _, after = trained.sequence_loss(norm2)
        assert after["struct"] < before["struct"]
        assert after["attr"] < before["attr"]
