"""Text plotting tests."""

import numpy as np

from repro.eval.plotting import series_chart, sparkline


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_ticks(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_rendered_as_dot(self):
        assert sparkline([1.0, np.nan, 2.0])[1] == "·"

    def test_all_nan(self):
        assert sparkline([np.nan, np.nan]) == "··"


class TestSeriesChart:
    def test_contains_all_series(self):
        chart = series_chart({"a": [1, 2], "b": [2, 1]})
        assert "a" in chart and "b" in chart
        assert chart.count("\n") == 1

    def test_shared_scale(self):
        # series 'low' stays at the bottom tick because 'high' sets the scale
        chart = series_chart({"low": [0, 0], "high": [100, 100]})
        low_line = chart.splitlines()[0]
        assert "▁▁" in low_line

    def test_ranges_reported(self):
        chart = series_chart({"x": [1.0, 3.0]})
        assert "[1.000, 3.000]" in chart
