"""Harness and experiment-registry tests (fast, tiny scales)."""

import numpy as np
import pytest

from repro.baselines import GenCAT
from repro.eval import default_generators, make_vrdag, timed_fit_generate
from repro.eval import experiments as E


class TestHarness:
    def test_default_generators_cover_table1(self):
        registry = default_generators()
        assert set(registry) == {
            "GRAN", "GenCAT", "TagGen", "Dymond", "TGGAN", "TIGGER", "VRDAG"
        }

    def test_timed_fit_generate(self, tiny_graph):
        run = timed_fit_generate("GenCAT", GenCAT(seed=0), tiny_graph)
        assert run.fit_seconds > 0
        assert run.generate_seconds > 0
        assert run.generated.num_timesteps == tiny_graph.num_timesteps

    def test_timed_with_horizon_override(self, tiny_graph):
        run = timed_fit_generate("GenCAT", GenCAT(seed=0), tiny_graph, num_timesteps=2)
        assert run.generated.num_timesteps == 2

    def test_make_vrdag_generator(self, tiny_graph):
        gen = make_vrdag(epochs=2, hidden_dim=8, latent_dim=4, encode_dim=8)
        gen.fit(tiny_graph)
        assert gen.train_result is not None
        out = gen.generate(2)
        assert out.num_timesteps == 2

    def test_white_noise_ablation_switch(self, tiny_graph):
        gen = make_vrdag(
            epochs=2, hidden_dim=8, latent_dim=4, encode_dim=8,
            correlated_noise=False,
        )
        gen.fit(tiny_graph)
        assert gen.model._attr_noise_rho == 0.0

    def test_correlated_noise_default_on(self, tiny_graph):
        gen = make_vrdag(epochs=2, hidden_dim=8, latent_dim=4, encode_dim=8)
        gen.fit(tiny_graph)
        assert gen.model._attr_noise_rho >= 0.0  # fitted from data

    def test_kl_warmup_switch(self, tiny_graph):
        gen = make_vrdag(
            epochs=3, hidden_dim=8, latent_dim=4, encode_dim=8,
            kl_warmup_epochs=2,
        )
        gen.fit(tiny_graph)
        # warmup must restore the base weight after training
        assert gen.model.config.kl_weight == 1.0
        assert gen.generate(2).num_timesteps == 2


@pytest.mark.slow
class TestExperiments:
    """Smoke-level runs of every experiment entry point."""

    SCALE = 0.012
    EPOCHS = 3

    def test_table1(self):
        rows = E.run_table1(
            "email", methods=["GenCAT", "VRDAG"], scale=self.SCALE,
            epochs=self.EPOCHS,
        )
        assert set(rows) == {"GenCAT", "VRDAG"}
        for metrics in rows.values():
            assert len(metrics) == 8

    def test_table1_dymond_skipped_on_large(self):
        rows = E.run_table1(
            "wiki", methods=["Dymond"], scale=0.08, epochs=1
        )
        assert rows == {}  # capacity guard skips, like the paper

    def test_table2(self):
        out = E.run_table2("email", scale=self.SCALE, epochs=self.EPOCHS)
        assert set(out) == {"Normal", "GenCAT", "VRDAG"}
        assert all(np.isfinite(v) for v in out.values())

    def test_table2_rejects_single_attribute(self):
        with pytest.raises(ValueError):
            E.run_table2("wiki", scale=self.SCALE, epochs=1)

    def test_fig3(self):
        out = E.run_fig3("email", scale=self.SCALE, epochs=self.EPOCHS)
        for method in ("VRDAG", "GenCAT", "Normal"):
            assert set(out[method]) == {"jsd", "emd"}

    def test_difference_figure_structure(self):
        out = E.run_difference_figure(
            "email", "degree", scale=self.SCALE, epochs=self.EPOCHS,
            include_tigger=False,
        )
        assert set(out) == {"Original", "VRDAG"}
        assert len(out["Original"]) == len(out["VRDAG"])

    def test_difference_figure_attribute(self):
        out = E.run_difference_figure(
            "email", "mae", kind="attribute", scale=self.SCALE,
            epochs=self.EPOCHS,
        )
        assert set(out) == {"Original", "VRDAG"}

    def test_fig9_times(self):
        out = E.run_fig9_times(
            "email", methods=["VRDAG", "TIGGER"], scale=self.SCALE,
            epochs=self.EPOCHS,
        )
        for method in ("VRDAG", "TIGGER"):
            assert out[method]["train"] > 0
            assert out[method]["test"] > 0

    def test_scalability_sweep(self):
        out = E.run_scalability_sweep(
            edge_counts=(50, 150), methods=["TIGGER", "VRDAG"],
            scale=0.012, epochs=2,
        )
        assert set(out) == {"TIGGER", "VRDAG"}
        assert set(out["VRDAG"]) == {50, 150}

    def test_fig10_downstream(self):
        out = E.run_fig10(
            "email", scale=self.SCALE, vrdag_epochs=self.EPOCHS,
            downstream_epochs=2, n_runs=1,
        )
        assert set(out) == {"NoAugmentation", "GenCAT", "VRDAG"}
        for row in out.values():
            assert 0.0 <= row["f1"] <= 1.0
            assert np.isfinite(row["rmse"])

    def test_parameter_analysis(self):
        out = E.run_parameter_analysis(
            "email", scale=self.SCALE, epochs=self.EPOCHS
        )
        assert "K=1" in out and "latent_dim=4" in out
        for row in out.values():
            assert row["params"] > 0
            assert row["train_s"] > 0

    def test_privacy_audit(self):
        out = E.run_privacy_audit("email", scale=self.SCALE, epochs=self.EPOCHS)
        assert out["IdentityCopy"]["edge_overlap"] == 1.0
        assert out["VRDAG"]["edge_overlap"] <= 1.0

    def test_fig9_timestep_sweep(self):
        out = E.run_fig9_timestep_sweep(
            "bitcoin", timesteps=(2, 4), methods=["VRDAG"],
            scale=self.SCALE, epochs=2,
        )
        assert set(out["VRDAG"]) == {2, 4}

    def test_ablation(self):
        out = E.run_ablation("email", scale=self.SCALE, epochs=self.EPOCHS)
        assert set(out) == {
            "full", "uni_flow", "K1", "mse_attr", "white_noise", "kl_warmup",
        }
        for metrics in out.values():
            assert "attr_jsd" in metrics
