"""Tests for report rendering."""

import numpy as np
import pytest

from repro.eval.reporting import (
    ExperimentReport,
    csv_lines,
    format_cell,
    markdown_table,
    nested_dict_table,
    series_table,
    summarize_ranking,
    win_counts,
    write_markdown_report,
)


class TestFormatCell:
    def test_int_verbatim(self):
        assert format_cell(42) == "42"

    def test_float_rounded(self):
        assert format_cell(0.123456) == "0.1235"

    def test_tiny_float_scientific(self):
        assert "e" in format_cell(3.2e-7)

    def test_huge_float_scientific(self):
        assert "e" in format_cell(5.4e8)

    def test_zero(self):
        assert format_cell(0.0) == "0.0000"

    def test_nan(self):
        assert format_cell(float("nan")) == "nan"

    def test_string_passthrough(self):
        assert format_cell("VRDAG") == "VRDAG"

    def test_bool_not_treated_as_int(self):
        assert format_cell(True) == "True"


class TestMarkdownTable:
    def test_basic_shape(self):
        md = markdown_table(["a", "b"], [[1, 2.5], ["x", 0.1]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_rejects_empty_header(self):
        with pytest.raises(ValueError, match="header"):
            markdown_table([], [])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            markdown_table(["a", "b"], [[1]])


class TestCsvLines:
    def test_round_trips_through_csv_reader(self):
        import csv as _csv
        import io

        text = csv_lines(["m", "v"], [["VRDAG", 0.25], ["GenCAT", 1.0]])
        rows = list(_csv.reader(io.StringIO(text)))
        assert rows[0] == ["m", "v"]
        assert rows[1][0] == "VRDAG"

    def test_quotes_commas(self):
        text = csv_lines(["name"], [["a,b"]])
        assert '"a,b"' in text


class TestNestedDictTable:
    def test_column_union_preserves_order(self):
        data = {"m1": {"a": 1.0, "b": 2.0}, "m2": {"b": 3.0, "c": 4.0}}
        header, rows = nested_dict_table(data)
        assert header == ["method", "a", "b", "c"]
        assert rows[1][1] != rows[1][1] or np.isnan(rows[1][1])  # m2 missing a

    def test_pinned_columns(self):
        data = {"m": {"a": 1.0, "b": 2.0}}
        header, rows = nested_dict_table(data, columns=["b"])
        assert header == ["method", "b"]
        assert rows[0] == ["m", 2.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            nested_dict_table({})


class TestSeriesTable:
    def test_pads_short_series(self):
        header, rows = series_table(
            {"Original": np.array([1.0, 2.0, 3.0]), "VRDAG": np.array([1.5])}
        )
        assert header == ["timestep", "Original", "VRDAG"]
        assert len(rows) == 3
        assert np.isnan(rows[2][2])

    def test_scalar_series_promoted(self):
        header, rows = series_table({"x": np.float64(2.0)})
        assert rows == [[0, 2.0]]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            series_table({})


class TestRankingAndWins:
    data = {
        "VRDAG": {"in_deg": 0.1, "out_deg": 0.3},
        "TIGGER": {"in_deg": 0.2, "out_deg": 0.2},
        "GRAN": {"in_deg": 0.9, "out_deg": 0.9},
    }

    def test_ranking_lower_is_better(self):
        ranking = summarize_ranking(self.data)
        assert ranking["in_deg"] == ["VRDAG", "TIGGER", "GRAN"]
        assert ranking["out_deg"][0] == "TIGGER"

    def test_ranking_higher_is_better(self):
        ranking = summarize_ranking(self.data, lower_is_better=False)
        assert ranking["in_deg"][0] == "GRAN"

    def test_win_counts(self):
        wins = win_counts(self.data)
        assert wins == {"VRDAG": 1, "TIGGER": 1, "GRAN": 0}

    def test_nan_excluded_from_ranking(self):
        data = {
            "a": {"m": float("nan")},
            "b": {"m": 1.0},
        }
        assert summarize_ranking(data)["m"] == ["b"]


class TestExperimentReport:
    def test_render_sections(self):
        report = ExperimentReport(
            experiment_id="Table I",
            title="structure quality",
            paper_claim="VRDAG wins most metrics",
            measured="| a |\n|---|\n| 1 |",
            verdict="reproduced",
            notes="scale reduced",
        )
        text = report.render()
        assert text.startswith("## Table I — structure quality")
        assert "**Paper:** VRDAG wins most metrics" in text
        assert "**Verdict:** reproduced" in text
        assert "*Notes:* scale reduced" in text

    def test_render_without_notes(self):
        report = ExperimentReport("F1", "t", "c", "m", "v")
        assert "Notes" not in report.render()

    def test_write_markdown_report(self, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        write_markdown_report(
            path,
            "Experiments",
            "preamble text",
            [ExperimentReport("T1", "a", "b", "c", "d")],
        )
        text = path.read_text()
        assert text.startswith("# Experiments")
        assert "preamble text" in text
        assert "## T1 — a" in text
