"""FaultInjector: deterministic, seeded, near-zero-overhead when off."""

import time

import pytest

from repro.reliability import FaultPlan, InjectedFault, fault_injector
from repro.reliability.faults import FaultInjector, _unit_interval


class TestFaultPlan:
    def test_defaults_are_always_error(self):
        plan = FaultPlan()
        assert plan.kind == "error" and plan.rate == 1.0

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"kind": "explode"}, "unknown fault kind"),
            ({"rate": -0.1}, "rate"),
            ({"rate": 1.5}, "rate"),
            ({"delay_seconds": -1.0}, "delay_seconds"),
            ({"max_triggers": 0}, "max_triggers"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FaultPlan(**kwargs)


class TestFire:
    def test_disabled_is_a_no_op(self):
        fault_injector.fire("anything.at.all")  # must not raise

    def test_armed_point_raises_injected_fault(self):
        with fault_injector.arm({"p": FaultPlan()}):
            with pytest.raises(InjectedFault) as err:
                fault_injector.fire("p")
        assert err.value.point == "p"
        assert err.value.trigger == 1

    def test_unarmed_point_stays_silent(self):
        with fault_injector.arm({"p": FaultPlan()}):
            fault_injector.fire("other.point")  # no plan -> no fault

    def test_disarmed_after_context(self):
        with fault_injector.arm({"p": FaultPlan()}):
            pass
        fault_injector.fire("p")
        assert not fault_injector.enabled

    def test_max_triggers_caps_firings(self):
        faults = 0
        with fault_injector.arm({"p": FaultPlan(max_triggers=2)}):
            for i in range(10):
                try:
                    fault_injector.fire("p", key=i)
                except InjectedFault:
                    faults += 1
        assert faults == 2

    def test_delay_plan_sleeps(self):
        plan = FaultPlan(kind="delay", delay_seconds=0.05)
        with fault_injector.arm({"p": plan}):
            t0 = time.perf_counter()
            fault_injector.fire("p")
            assert time.perf_counter() - t0 >= 0.05

    def test_corrupt_plan_is_noop_for_fire(self):
        with fault_injector.arm({"p": FaultPlan(kind="corrupt")}):
            fault_injector.fire("p")  # corrupt acts via corrupt_bytes only


class TestDeterminism:
    def _decisions(self, seed, keys, rate):
        injector = FaultInjector()
        out = []
        with injector.arm({"p": FaultPlan(rate=rate)}, seed=seed):
            for k in keys:
                try:
                    injector.fire("p", key=k)
                    out.append(False)
                except InjectedFault:
                    out.append(True)
        return out

    def test_same_seed_same_keys_same_decisions(self):
        keys = list(range(200))
        assert self._decisions(7, keys, 0.3) == self._decisions(7, keys, 0.3)

    def test_decisions_are_schedule_independent(self):
        """The decision for a key doesn't depend on arrival order."""
        keys = list(range(100))
        forward = self._decisions(3, keys, 0.5)
        backward = self._decisions(3, list(reversed(keys)), 0.5)
        assert forward == list(reversed(backward))

    def test_rate_roughly_honored(self):
        hits = sum(self._decisions(0, range(1000), 0.3))
        assert 200 < hits < 400

    def test_different_seeds_differ(self):
        keys = list(range(200))
        assert self._decisions(1, keys, 0.5) != self._decisions(2, keys, 0.5)

    def test_unit_interval_range(self):
        for k in range(100):
            u = _unit_interval(0, "p", k, "trigger")
            assert 0.0 <= u < 1.0


class TestCorruptBytes:
    def test_flips_exactly_one_byte(self):
        data = bytes(range(64))
        with fault_injector.arm({"p": FaultPlan(kind="corrupt")}, seed=5):
            out = fault_injector.corrupt_bytes("p", data, key="k")
        diff = [i for i in range(64) if out[i] != data[i]]
        assert len(diff) == 1
        assert out[diff[0]] == data[diff[0]] ^ 0xFF

    def test_deterministic_position(self):
        data = b"x" * 128
        outs = []
        for _ in range(2):
            injector = FaultInjector()
            with injector.arm({"p": FaultPlan(kind="corrupt")}, seed=9):
                outs.append(injector.corrupt_bytes("p", data, key="k"))
        assert outs[0] == outs[1] != data

    def test_noop_when_disabled_or_unplanned(self):
        data = b"payload"
        assert fault_injector.corrupt_bytes("p", data) == data
        with fault_injector.arm({"q": FaultPlan(kind="corrupt")}):
            assert fault_injector.corrupt_bytes("p", data) == data

    def test_noop_on_empty_payload(self):
        with fault_injector.arm({"p": FaultPlan(kind="corrupt")}):
            assert fault_injector.corrupt_bytes("p", b"") == b""


class TestBookkeeping:
    def test_stats_count_arrivals_and_triggers(self):
        with fault_injector.arm({"p": FaultPlan(max_triggers=1)}):
            for i in range(3):
                try:
                    fault_injector.fire("p", key=i)
                except InjectedFault:
                    pass
            stats = fault_injector.stats()
        assert stats["p"] == {"arrivals": 3, "triggers": 1}

    def test_configure_rejects_non_plans(self):
        with pytest.raises(TypeError, match="FaultPlan"):
            fault_injector.configure({"p": "error"})

    def test_reset_clears_everything(self):
        fault_injector.configure({"p": FaultPlan()})
        fault_injector.enabled = True
        fault_injector.reset()
        assert not fault_injector.enabled
        assert fault_injector.stats() == {}
        fault_injector.fire("p")  # plans dropped

    def test_repr_names_state(self):
        assert "disarmed" in repr(fault_injector)
