"""AdmissionController: bounded in-flight requests, structured shedding."""

import pytest

from repro.reliability import AdmissionController, ServiceOverloadedError


class TestValidation:
    def test_max_pending_bounds(self):
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionController(0)

    def test_hint_positive(self):
        with pytest.raises(ValueError, match="retry_after_hint"):
            AdmissionController(1, retry_after_hint_seconds=0.0)

    def test_acquire_at_least_one(self):
        with pytest.raises(ValueError, match="at least one"):
            AdmissionController().try_acquire(0)


class TestAdmission:
    def test_unbounded_never_sheds(self):
        ctl = AdmissionController(None)
        ctl.try_acquire(10_000)
        assert ctl.stats()["pending"] == 10_000
        assert ctl.stats()["capacity"] == -1

    def test_overflow_sheds_with_structured_error(self):
        ctl = AdmissionController(3)
        ctl.try_acquire(2)
        with pytest.raises(ServiceOverloadedError) as err:
            ctl.try_acquire(2)
        assert err.value.pending == 2
        assert err.value.capacity == 3
        assert err.value.retry_after_seconds > 0
        stats = ctl.stats()
        assert stats["shed"] == 2
        assert stats["pending"] == 2  # the shed batch was never admitted

    def test_release_frees_capacity(self):
        ctl = AdmissionController(2)
        ctl.try_acquire(2)
        ctl.release(2)
        ctl.try_acquire(2)  # must not raise

    def test_retry_after_tracks_observed_drain_rate(self):
        ctl = AdmissionController(1, retry_after_hint_seconds=0.05)
        ctl.try_acquire(1)
        ctl.release(1, seconds=10.0)  # one very slow request observed
        ctl.try_acquire(1)
        with pytest.raises(ServiceOverloadedError) as err:
            ctl.try_acquire(1)
        assert err.value.retry_after_seconds > 0.05  # EWMA moved up

    def test_deeper_overflow_waits_longer(self):
        ctl = AdmissionController(1, retry_after_hint_seconds=0.1)
        ctl.try_acquire(1)
        shallow = deep = None
        with pytest.raises(ServiceOverloadedError) as err:
            ctl.try_acquire(1)
        shallow = err.value.retry_after_seconds
        with pytest.raises(ServiceOverloadedError) as err:
            ctl.try_acquire(5)
        deep = err.value.retry_after_seconds
        assert deep > shallow

    def test_admit_context_releases_on_error(self):
        ctl = AdmissionController(1)
        with pytest.raises(RuntimeError):
            with ctl.admit(1):
                raise RuntimeError("boom")
        assert ctl.stats()["pending"] == 0

    def test_stats_shape(self):
        stats = AdmissionController(4).stats()
        assert set(stats) == {
            "pending", "admitted", "shed", "capacity",
            "drain_seconds_per_request",
        }

    def test_repr(self):
        assert "unbounded" in repr(AdmissionController())
