"""Deadline + RetryPolicy: deterministic backoff, never sleep past expiry."""

import time

import pytest

from repro.reliability import (
    Deadline,
    DeadlineExceededError,
    InjectedFault,
    RetryPolicy,
)


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            Deadline(0.0)

    def test_after_maps_none_to_none(self):
        assert Deadline.after(None) is None
        assert isinstance(Deadline.after(1.0), Deadline)

    def test_fresh_deadline_not_expired(self):
        d = Deadline(10.0)
        assert not d.expired
        assert 0.0 < d.remaining() <= 10.0
        d.check()  # must not raise

    def test_expiry_raises_structured_error(self):
        d = Deadline(0.001)
        time.sleep(0.005)
        assert d.expired
        with pytest.raises(DeadlineExceededError) as err:
            d.check("unit-test")
        assert err.value.deadline_seconds == 0.001
        assert err.value.elapsed_seconds >= 0.001
        assert "unit-test" in str(err.value)


class TestRetryPolicyConfig:
    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"max_attempts": 0}, "max_attempts"),
            ({"base_delay_seconds": -1}, "delays"),
            ({"backoff_multiplier": 0.5}, "multiplier"),
            ({"jitter": 2.0}, "jitter"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_seconds=0.01,
            backoff_multiplier=2.0,
            max_delay_seconds=0.05,
            jitter=0.0,
        )
        delays = [policy.backoff_seconds(k) for k in range(5)]
        assert delays[:3] == [0.01, 0.02, 0.04]
        assert delays[3] == delays[4] == 0.05  # capped

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(jitter=0.5, seed=3, base_delay_seconds=0.1)
        again = RetryPolicy(jitter=0.5, seed=3, base_delay_seconds=0.1)
        for k in range(4):
            d = policy.backoff_seconds(k, key="req")
            assert d == again.backoff_seconds(k, key="req")
            raw = min(0.1 * 2.0**k, policy.max_delay_seconds)
            assert raw * 0.5 <= d <= raw

    def test_jitter_varies_by_key(self):
        policy = RetryPolicy(jitter=1.0, base_delay_seconds=0.1)
        assert policy.backoff_seconds(0, key="a") != policy.backoff_seconds(
            0, key="b"
        )


class TestRetryRun:
    def test_success_first_try(self):
        policy = RetryPolicy()
        result, attempts = policy.run(lambda: 42)
        assert (result, attempts) == (42, 1)

    def test_transient_fault_retried_to_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise InjectedFault("p", calls["n"])
            return "ok"

        slept = []
        policy = RetryPolicy(max_attempts=5, jitter=0.0,
                             base_delay_seconds=0.01)
        result, attempts = policy.run(flaky, sleep=slept.append)
        assert result == "ok" and attempts == 3
        assert slept == [0.01, 0.02]  # deterministic schedule

    def test_exhausted_attempts_reraise_with_count(self):
        policy = RetryPolicy(max_attempts=2)

        def always():
            raise InjectedFault("p", 1)

        with pytest.raises(InjectedFault) as err:
            policy.run(always, sleep=lambda s: None)
        assert err.value._retry_attempts == 2

    def test_semantic_errors_never_retried(self):
        calls = {"n": 0}

        def bad():
            calls["n"] += 1
            raise ValueError("nope")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(ValueError):
            policy.run(bad, sleep=lambda s: None)
        assert calls["n"] == 1

    def test_custom_retry_on(self):
        policy = RetryPolicy(max_attempts=2, retry_on=(KeyError,),
                             base_delay_seconds=0.0)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyError("x")
            return calls["n"]

        result, attempts = policy.run(flaky, sleep=lambda s: None)
        assert (result, attempts) == (2, 2)

    def test_expired_deadline_raises_before_calling(self):
        d = Deadline(0.001)
        time.sleep(0.005)
        policy = RetryPolicy()
        with pytest.raises(DeadlineExceededError):
            policy.run(lambda: pytest.fail("must not run"), deadline=d)

    def test_never_sleeps_past_deadline(self):
        """A backoff longer than the remaining budget raises instead."""
        policy = RetryPolicy(
            max_attempts=5, base_delay_seconds=10.0, jitter=0.0
        )
        d = Deadline(0.2)
        slept = []
        with pytest.raises(DeadlineExceededError) as err:
            policy.run(
                lambda: (_ for _ in ()).throw(InjectedFault("p", 1)),
                deadline=d,
                sleep=slept.append,
            )
        assert slept == []  # refused to sleep 10s on a 0.2s budget
        assert err.value.__cause__.point == "p"
        assert err.value._retry_attempts == 1
