"""Reliability-suite fixtures: the injector never leaks across tests."""

import pytest

from repro.reliability import fault_injector


@pytest.fixture(autouse=True)
def _clean_injector():
    fault_injector.reset()
    yield
    fault_injector.reset()
