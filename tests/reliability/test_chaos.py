"""Chaos suite: the reliability layer's three load-bearing invariants.

1. **Bit-exact completion** — every request that *completes* under
   injected faults returns exactly what the fault-free run returns,
   in request order, for every executor.
2. **Never hang** — overload and expiry surface as typed errors or
   structured results; every scenario finishes under a watchdog.
3. **Resumable ingestion** — an ingestion killed mid-stream and
   resumed from its checkpoint builds the same store as an
   uninterrupted run.

The fault schedule is a pure function of ``REPRO_CHAOS_SEED``
(default 0), so a CI failure reproduces locally with the same seed.
"""

import os
import threading

import numpy as np
import pytest

from repro import api
from repro.graph import DynamicAttributedGraph
from repro.graph.store import TemporalEdgeStore
from repro.graph.streams import StreamingStoreBuilder, ingest_stream
from repro.reliability import (
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    ServiceOverloadedError,
    fault_injector,
)
from repro.workloads import (
    QueryRequest,
    QueryService,
    WorkloadConfig,
    WorkloadGenerator,
    serving_mix,
)

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
WATCHDOG_SECONDS = 60.0


def within_watchdog(fn):
    """Run ``fn`` on a thread; fail the test if it outlives the watchdog."""
    out = {}

    def target():
        try:
            out["result"] = fn()
        except BaseException as exc:  # propagated to the test thread
            out["error"] = exc

    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    worker.join(WATCHDOG_SECONDS)
    assert not worker.is_alive(), (
        f"chaos scenario still running after {WATCHDOG_SECONDS}s — "
        "the never-hang invariant is broken"
    )
    if "error" in out:
        raise out["error"]
    return out["result"]


# ---------------------------------------------------------------------------
# query serving
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(11)
    n, m, t_len = 40, 400, 5
    store = TemporalEdgeStore(
        n, t_len,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
        rng.normal(size=(t_len, n, 2)),
    )
    return DynamicAttributedGraph.from_store(store)


@pytest.fixture(scope="module")
def query_requests(graph):
    config = WorkloadConfig(num_queries=160, mix=serving_mix(), seed=3)
    queries = WorkloadGenerator(graph, config).generate()
    return [
        QueryRequest(queries[i:i + 20]) for i in range(0, len(queries), 20)
    ]


@pytest.fixture(scope="module")
def query_reference(graph, query_requests):
    """Fault-free per-request cardinalities (the bit-exactness oracle)."""
    with QueryService(graph, executor="serial") as svc:
        results = svc.run_batch(query_requests)
    assert all(r.ok for r in results)
    return [r.cardinalities.copy() for r in results]


FULL_STACK_PLANS = {
    "query.request": FaultPlan(kind="error", rate=0.25),
    "query.batch_kernel": FaultPlan(kind="error", rate=0.5),
    "cache.plan": FaultPlan(kind="error", rate=0.5),
}


class TestQueryChaos:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_completed_results_bit_identical(
        self, graph, query_requests, query_reference, executor
    ):
        def scenario():
            with QueryService(graph, executor=executor) as svc:
                with fault_injector.arm(FULL_STACK_PLANS, seed=CHAOS_SEED):
                    return svc.run_batch(query_requests)

        results = within_watchdog(scenario)
        assert [r.request for r in results] == query_requests
        completed = 0
        for result, expected in zip(results, query_reference):
            if result.ok:
                completed += 1
                np.testing.assert_array_equal(result.cardinalities, expected)
            else:
                assert result.cardinalities is None
                assert result.error.error_type == "InjectedFault"
        assert 0 < completed < len(results)  # the chaos actually bit

    def test_fault_pattern_identical_across_executors(
        self, graph, query_requests
    ):
        """Keyed injection makes serial and thread fail the same requests."""
        patterns = []
        for executor in ("serial", "thread"):
            with QueryService(graph, executor=executor) as svc:
                plans = {"query.request": FaultPlan(rate=0.4)}
                with fault_injector.arm(plans, seed=CHAOS_SEED):
                    results = svc.run_batch(query_requests)
            patterns.append([r.ok for r in results])
        assert patterns[0] == patterns[1]

    def test_retries_heal_transient_faults(
        self, graph, query_requests, query_reference
    ):
        """First two attempts fault; the retry policy completes them all."""
        policy = RetryPolicy(
            max_attempts=3, base_delay_seconds=0.001, jitter=0.0
        )
        plans = {"query.request": FaultPlan(rate=1.0, max_triggers=2)}

        def scenario():
            with QueryService(
                graph, executor="serial", retry_policy=policy
            ) as svc:
                with fault_injector.arm(plans, seed=CHAOS_SEED):
                    return svc.run_batch(query_requests)

        results = within_watchdog(scenario)
        assert all(r.ok for r in results)
        assert any(r.attempts > 1 for r in results)
        for result, expected in zip(results, query_reference):
            np.testing.assert_array_equal(result.cardinalities, expected)

    def test_slow_workers_expire_without_hanging(
        self, graph, query_requests, query_reference
    ):
        plans = {
            "query.request": FaultPlan(
                kind="delay", delay_seconds=0.5, rate=0.3
            )
        }

        def scenario():
            with QueryService(
                graph, executor="thread", deadline_seconds=0.15
            ) as svc:
                with fault_injector.arm(plans, seed=CHAOS_SEED):
                    return svc.run_batch(query_requests)

        results = within_watchdog(scenario)
        expired = [r for r in results if not r.ok]
        assert expired, "no deadline expiries — the delay plan never bit"
        for r in expired:
            assert r.error.error_type == "DeadlineExceededError"
        for result, expected in zip(results, query_reference):
            if result.ok:
                np.testing.assert_array_equal(result.cardinalities, expected)

    def test_overload_sheds_structurally_and_recovers(
        self, graph, query_requests, query_reference
    ):
        def scenario():
            with QueryService(
                graph, executor="serial", max_pending=2
            ) as svc:
                with pytest.raises(ServiceOverloadedError) as err:
                    svc.run_batch(query_requests)  # 8 > 2: shed, not queued
                assert err.value.retry_after_seconds > 0
                assert svc.admission_stats()["shed"] == len(query_requests)
                return svc.run_batch(query_requests[:2])  # capacity honored

        results = within_watchdog(scenario)
        assert all(r.ok for r in results)
        for result, expected in zip(results, query_reference[:2]):
            np.testing.assert_array_equal(result.cardinalities, expected)


# ---------------------------------------------------------------------------
# generation serving
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from repro.datasets import load_dataset

    fitted = api.get_generator(
        "ErdosRenyi", seed=0, **api.smoke_config("ErdosRenyi")
    )
    fitted.fit(load_dataset("email", scale=0.012, seed=0))
    path = str(tmp_path_factory.mktemp("chaos-artifacts") / "gen.npz")
    api.save_artifact(fitted, path)
    return path


@pytest.fixture(scope="module")
def generation_requests(artifact):
    return [
        api.GenerationRequest(artifact, num_timesteps=3, seed=s)
        for s in range(6)
    ]


@pytest.fixture(scope="module")
def generation_reference(generation_requests):
    results = api.GenerationService(executor="serial").run_batch(
        generation_requests
    )
    assert all(r.ok for r in results)
    return [r.graph for r in results]


class TestGenerationChaos:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_completed_results_bit_identical(
        self, generation_requests, generation_reference, executor
    ):
        plans = {"generation.request": FaultPlan(rate=0.4)}

        def scenario():
            with api.GenerationService(executor=executor) as svc:
                with fault_injector.arm(plans, seed=CHAOS_SEED):
                    return svc.run_batch(generation_requests)

        results = within_watchdog(scenario)
        completed = 0
        for result, expected in zip(results, generation_reference):
            if result.ok:
                completed += 1
                assert result.graph == expected
            else:
                assert result.graph is None
                assert result.error.error_type == "InjectedFault"
        assert 0 < completed < len(results)

    def test_artifact_load_faults_stay_per_request(
        self, generation_requests, generation_reference
    ):
        plans = {"artifact.load": FaultPlan(rate=0.5)}
        with api.GenerationService(executor="serial") as svc:
            with fault_injector.arm(plans, seed=CHAOS_SEED):
                results = svc.run_batch(generation_requests)
        assert any(not r.ok for r in results)
        for result, expected in zip(results, generation_reference):
            if result.ok:
                assert result.graph == expected


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------
class TestArtifactChaos:
    def test_corrupted_state_is_detected(self, artifact):
        plans = {"artifact.state": FaultPlan(kind="corrupt")}
        with fault_injector.arm(plans, seed=CHAOS_SEED):
            with pytest.raises(api.ArtifactError, match="checksum mismatch"):
                api.load_artifact(artifact)
        api.load_artifact(artifact)  # pristine once disarmed


# ---------------------------------------------------------------------------
# streaming ingestion
# ---------------------------------------------------------------------------
class TestIngestionChaos:
    N, T, M = 40, 6, 5000

    def _events(self):
        rng = np.random.default_rng(CHAOS_SEED + 17)
        return (
            rng.integers(0, self.N, size=self.M),
            rng.integers(0, self.N, size=self.M),
            rng.integers(0, self.T, size=self.M),
        )

    def _reference(self, events):
        return ingest_stream(events, self.N, self.T, chunk_events=256)

    def test_resumed_build_equals_uninterrupted(self, tmp_path):
        events = self._events()
        reference = self._reference(events)
        ckpt = str(tmp_path / "ingest.ckpt.npz")

        # a partial run that checkpointed, then "crashed"
        partial = StreamingStoreBuilder(self.N, self.T, chunk_events=256)
        partial.extend(events[0][:2100], events[1][:2100], events[2][:2100])
        partial.checkpoint(ckpt)
        del partial

        def resume():
            return ingest_stream(
                events, self.N, self.T,
                chunk_events=256, checkpoint_path=ckpt,
            )

        resumed = within_watchdog(resume)
        assert resumed == reference
        assert not os.path.exists(ckpt)  # cleaned up after success

    def test_kill_mid_stream_then_rerun_converges(self, tmp_path):
        """A seal fault after a checkpoint aborts the run; the rerun
        resumes from the surviving checkpoint and matches exactly."""
        events = self._events()
        reference = self._reference(events)
        ckpt = str(tmp_path / "ingest.ckpt.npz")

        partial = StreamingStoreBuilder(self.N, self.T, chunk_events=256)
        partial.extend(events[0][:1500], events[1][:1500], events[2][:1500])
        partial.checkpoint(ckpt)
        del partial

        plans = {"ingest.seal": FaultPlan(rate=1.0, max_triggers=1)}
        with fault_injector.arm(plans, seed=CHAOS_SEED):
            with pytest.raises(InjectedFault):
                ingest_stream(
                    events, self.N, self.T,
                    chunk_events=256, checkpoint_path=ckpt,
                )
        assert os.path.exists(ckpt)  # the crash never destroys progress

        resumed = ingest_stream(
            events, self.N, self.T,
            chunk_events=256, checkpoint_path=ckpt,
        )
        assert resumed == reference
        assert not os.path.exists(ckpt)
