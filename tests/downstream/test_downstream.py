"""CoEvoGNN forecaster and augmentation case-study tests."""

import numpy as np
import pytest

from repro.downstream import (
    CoEvoGNN,
    CoEvoGNNConfig,
    attribute_prediction_rmse,
    evaluate_augmentation,
    link_prediction_f1,
)


class TestTaskMetrics:
    def test_f1_perfect(self):
        adj = np.zeros((4, 4))
        adj[0, 1] = adj[2, 3] = 1.0
        assert link_prediction_f1(adj, adj) == pytest.approx(1.0)

    def test_f1_no_overlap_zero(self):
        a = np.zeros((4, 4))
        a[0, 1] = 1.0
        b = np.zeros((4, 4))
        b[1, 0] = 1.0
        assert link_prediction_f1(a, b) == 0.0

    def test_f1_ignores_diagonal(self):
        a = np.zeros((3, 3))
        b = np.eye(3)
        assert link_prediction_f1(a, b) == 0.0

    def test_f1_partial(self):
        true = np.zeros((4, 4))
        true[0, 1] = true[0, 2] = 1.0
        pred = np.zeros((4, 4))
        pred[0, 1] = 1.0  # 1 TP, 0 FP, 1 FN
        # precision 1, recall 0.5 -> F1 = 2/3
        assert link_prediction_f1(true, pred) == pytest.approx(2 / 3)

    def test_rmse(self):
        x = np.zeros((3, 2))
        y = np.full((3, 2), 2.0)
        assert attribute_prediction_rmse(x, y) == pytest.approx(2.0)


class TestCoEvoGNN:
    @pytest.fixture
    def model(self, tiny_graph):
        cfg = CoEvoGNNConfig(
            num_nodes=tiny_graph.num_nodes,
            num_attributes=tiny_graph.num_attributes,
            hidden_dim=8,
            epochs=5,
            seed=0,
        )
        return CoEvoGNN(cfg)

    def test_fit_returns_history(self, model, tiny_graph):
        history = model.fit([tiny_graph])
        assert len(history) == 5
        assert all(np.isfinite(h) for h in history)

    def test_fit_multiple_sequences(self, model, tiny_graph):
        history = model.fit([tiny_graph, tiny_graph.copy()])
        assert len(history) == 5

    def test_fit_rejects_too_short(self, model, tiny_graph):
        with pytest.raises(ValueError):
            model.fit([tiny_graph[0:1]])

    def test_predict_snapshot_shapes(self, model, tiny_graph):
        model.fit([tiny_graph])
        adj, attrs = model.predict_snapshot(tiny_graph.snapshots[:-1], edge_budget=10)
        n = tiny_graph.num_nodes
        assert adj.shape == (n, n)
        assert int(adj.sum()) == 10
        assert attrs.shape == (n, tiny_graph.num_attributes)
        assert np.all(np.diag(adj) == 0)

    def test_zero_edge_budget(self, model, tiny_graph):
        model.fit([tiny_graph])
        adj, _ = model.predict_snapshot(tiny_graph.snapshots[:-1], edge_budget=0)
        assert adj.sum() == 0

    def test_training_reduces_loss(self, tiny_graph):
        cfg = CoEvoGNNConfig(
            num_nodes=tiny_graph.num_nodes,
            num_attributes=tiny_graph.num_attributes,
            hidden_dim=12,
            epochs=40,
            seed=0,
        )
        history = CoEvoGNN(cfg).fit([tiny_graph])
        assert np.mean(history[-5:]) < np.mean(history[:5])


class TestEvaluateAugmentation:
    def test_requires_three_steps(self, tiny_graph):
        with pytest.raises(ValueError):
            evaluate_augmentation(tiny_graph[0:2], None, epochs=1)

    def test_result_fields(self, tiny_graph):
        res = evaluate_augmentation(tiny_graph, None, epochs=3, hidden_dim=8)
        assert 0.0 <= res.f1 <= 1.0
        assert res.rmse >= 0.0

    def test_with_synthetic_augmentation(self, tiny_graph):
        res = evaluate_augmentation(
            tiny_graph, tiny_graph.copy(), epochs=3, hidden_dim=8
        )
        assert 0.0 <= res.f1 <= 1.0

    def test_structure_only_rmse_nan(self, structure_only_graph):
        res = evaluate_augmentation(structure_only_graph, None, epochs=2, hidden_dim=8)
        assert np.isnan(res.rmse)
