"""Sharded generation: determinism, executor equivalence, merging.

The load-bearing contract: for a fixed seed the generated graph is a
function of the seed alone — shard count and executor are deployment
knobs that can never change a single edge.  ``n_shards=1`` must equal
``VRDAG.generate`` bit-for-bit, and every other configuration must
equal ``n_shards=1``.
"""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.core import VRDAG, VRDAGConfig
from repro.core.generator import MixBernoulliSampler
from repro.generation import (
    ShardPlan,
    ShardedStructureDecoder,
    decode_draw_count,
    generate_sharded,
    merge_step_columns,
    sliced_generator,
)
from repro.graph.store import track_dense_materializations


@pytest.fixture(scope="module")
def model():
    cfg = VRDAGConfig(
        num_nodes=21,
        num_attributes=2,
        hidden_dim=8,
        latent_dim=4,
        encode_dim=8,
        seed=0,
    )
    return VRDAG(cfg)


@pytest.fixture(scope="module")
def reference(model):
    return model.generate(3, seed=11)


class TestShardPlan:
    def test_balanced_partition(self):
        plan = ShardPlan.balanced(10, 3)
        assert plan.bounds == (0, 4, 7, 10)
        assert plan.ranges() == [(0, 4), (4, 7), (7, 10)]

    def test_more_shards_than_nodes(self):
        plan = ShardPlan.balanced(2, 5)
        assert plan.n_shards == 5
        assert plan.ranges() == [(0, 1), (1, 2)]  # empties dropped

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ShardPlan(5, (0, 3))  # doesn't end at N
        with pytest.raises(ValueError):
            ShardPlan(5, (0, 4, 2, 5))  # decreasing
        with pytest.raises(ValueError):
            ShardPlan.balanced(5, 0)


class TestSlicedStreams:
    def test_slices_reproduce_master_draws(self):
        master = np.random.default_rng(99)
        state = master.bit_generator.state
        n = 13
        u = master.random((n, 1))
        edge_u = master.random((n, n))
        for lo, hi in [(0, 5), (5, 9), (9, n)]:
            np.testing.assert_array_equal(
                sliced_generator(state, lo).random((hi - lo, 1)), u[lo:hi]
            )
            np.testing.assert_array_equal(
                sliced_generator(state, n + lo * n).random((hi - lo, n)),
                edge_u[lo:hi],
            )

    def test_decode_draw_count(self):
        assert decode_draw_count(7) == 7 + 49


class TestShardCountInvariance:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_identical_edge_columns(self, model, reference, n_shards):
        """The headline guarantee: shard count never changes the graph."""
        generated = generate_sharded(model, 3, seed=11, n_shards=n_shards)
        ref_store = reference.store
        store = generated.store
        np.testing.assert_array_equal(store.src, ref_store.src)
        np.testing.assert_array_equal(store.dst, ref_store.dst)
        np.testing.assert_array_equal(store.t, ref_store.t)
        np.testing.assert_array_equal(store.attributes, ref_store.attributes)

    def test_single_shard_matches_vrdag_generate(self, model, reference):
        """n_shards=1 is RNG-identical to the unsharded Algorithm 1."""
        assert generate_sharded(model, 3, seed=11, n_shards=1).store == (
            reference.store
        )

    def test_seed_determinism_multishard(self, model):
        a = generate_sharded(model, 3, seed=4, n_shards=4)
        b = generate_sharded(model, 3, seed=4, n_shards=4)
        assert a.store == b.store

    def test_different_seeds_differ(self, model):
        a = generate_sharded(model, 3, seed=4, n_shards=2)
        b = generate_sharded(model, 3, seed=5, n_shards=2)
        assert a.store != b.store

    def test_dense_materialization_free_end_to_end(self, model):
        with track_dense_materializations() as materialized:
            generate_sharded(model, 3, seed=11, n_shards=4)
        assert materialized() == 0


class TestExecutors:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pooled_executors_match_serial(self, model, reference, executor):
        generated = generate_sharded(
            model, 3, seed=11, n_shards=3, executor=executor, max_workers=2
        )
        assert generated.store == reference.store

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            ShardedStructureDecoder(ShardPlan.balanced(4, 2), executor="gpu")

    def test_decoder_reusable_across_steps_and_closeable(self, model):
        plan = ShardPlan.balanced(model.config.num_nodes, 2)
        with ShardedStructureDecoder(plan, executor="thread") as decoder:
            a = model.generate(2, seed=3, structure_decoder=decoder)
            b = model.generate(2, seed=3, structure_decoder=decoder)
        assert a.store == b.store
        decoder.close()  # idempotent


class TestDecoderAgainstSampleEdges:
    def test_matches_sample_edges_and_rng_state(self):
        """The decoder consumes the master stream exactly like
        ``sample_edges``: same columns out, same generator state after."""
        sampler = MixBernoulliSampler(
            12, num_components=3, rng=np.random.default_rng(3)
        )
        s = Tensor(np.random.default_rng(8).normal(size=(23, 12)))
        rng_ref = np.random.default_rng(42)
        src_ref, dst_ref = sampler.sample_edges(s, rng_ref)
        rng_sharded = np.random.default_rng(42)
        decoder = ShardedStructureDecoder(ShardPlan.balanced(23, 4))
        src, dst = decoder(sampler, s, rng_sharded)
        np.testing.assert_array_equal(src, src_ref)
        np.testing.assert_array_equal(dst, dst_ref)
        assert (
            rng_sharded.bit_generator.state == rng_ref.bit_generator.state
        )
        # downstream draws stay aligned too
        np.testing.assert_array_equal(
            rng_sharded.standard_normal(5), rng_ref.standard_normal(5)
        )

    def test_plan_size_mismatch_rejected(self):
        sampler = MixBernoulliSampler(
            6, num_components=2, rng=np.random.default_rng(0)
        )
        s = Tensor(np.zeros((5, 6)))
        decoder = ShardedStructureDecoder(ShardPlan.balanced(9, 2))
        with pytest.raises(ValueError):
            decoder(sampler, s, np.random.default_rng(0))

    def test_non_pcg64_rejected(self):
        sampler = MixBernoulliSampler(
            6, num_components=2, rng=np.random.default_rng(0)
        )
        s = Tensor(np.zeros((5, 6)))
        decoder = ShardedStructureDecoder(ShardPlan.balanced(5, 2))
        mt_rng = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(TypeError):
            decoder(sampler, s, mt_rng)


class TestMergeStepColumns:
    def test_concatenates_ordered_ranges(self):
        parts = [
            (np.array([0, 0, 2]), np.array([1, 3, 0])),
            (np.array([], dtype=np.int64), np.array([], dtype=np.int64)),
            (np.array([5, 6]), np.array([2, 2])),
        ]
        src, dst = merge_step_columns(parts)
        np.testing.assert_array_equal(src, [0, 0, 2, 5, 6])
        np.testing.assert_array_equal(dst, [1, 3, 0, 2, 2])

    def test_empty(self):
        src, dst = merge_step_columns([])
        assert src.size == 0 and dst.size == 0

    def test_rejects_out_of_order_shards(self):
        parts = [
            (np.array([4]), np.array([0])),
            (np.array([2]), np.array([1])),
        ]
        with pytest.raises(ValueError):
            merge_step_columns(parts)
