"""Appendix A-C extended attribute metric tests."""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.metrics.extended import (
    attribute_autocorrelation,
    attribute_ks,
    attribute_structure_coupling,
    correlation_matrix_distance,
    extended_attribute_report,
    ks_statistic,
)


def graph_from_attrs(attr_list, adj=None):
    n = attr_list[0].shape[0]
    if adj is None:
        adj = np.zeros((n, n))
    return DynamicAttributedGraph(
        [GraphSnapshot(adj, x, validate=False) for x in attr_list]
    )


class TestKS:
    def test_identical_zero(self, rng):
        x = rng.normal(size=200)
        assert ks_statistic(x, x) == pytest.approx(0.0)

    def test_disjoint_one(self):
        assert ks_statistic(np.zeros(50), np.ones(50)) == pytest.approx(1.0)

    def test_graph_level(self, rng):
        g1 = graph_from_attrs([rng.normal(size=(50, 2)) for _ in range(3)])
        g2 = graph_from_attrs([rng.normal(size=(50, 2)) + 5 for _ in range(3)])
        assert attribute_ks(g1, g2) > 0.8

    def test_no_attrs_nan(self, structure_only_graph):
        assert np.isnan(attribute_ks(structure_only_graph, structure_only_graph))


class TestAutocorrelation:
    def test_persistent_high(self, rng):
        base = rng.normal(size=(40, 2))
        g = graph_from_attrs([base + 0.01 * rng.normal(size=(40, 2))
                              for _ in range(4)])
        assert attribute_autocorrelation(g) > 0.9

    def test_independent_low(self, rng):
        g = graph_from_attrs([rng.normal(size=(40, 2)) for _ in range(4)])
        assert abs(attribute_autocorrelation(g)) < 0.3

    def test_constant_zero(self):
        g = graph_from_attrs([np.ones((10, 2))] * 3)
        assert attribute_autocorrelation(g) == 0.0

    def test_requires_two_steps(self, rng):
        g = graph_from_attrs([rng.normal(size=(10, 2))])
        with pytest.raises(ValueError):
            attribute_autocorrelation(g)

    def test_requires_attributes(self, structure_only_graph):
        with pytest.raises(ValueError):
            attribute_autocorrelation(structure_only_graph)


class TestCorrelationMatrixDistance:
    def test_self_zero(self, rng):
        g = graph_from_attrs([rng.normal(size=(50, 3)) for _ in range(2)])
        assert correlation_matrix_distance(g, g) == pytest.approx(0.0)

    def test_needs_two_dims(self, rng):
        g = graph_from_attrs([rng.normal(size=(10, 1))])
        with pytest.raises(ValueError):
            correlation_matrix_distance(g, g)

    def test_detects_decorrelation(self, rng):
        base = rng.normal(size=(100, 1))
        corr = np.concatenate([base, base + 0.1 * rng.normal(size=(100, 1))], axis=1)
        ind = rng.normal(size=(100, 2))
        g_corr = graph_from_attrs([corr])
        g_ind = graph_from_attrs([ind])
        assert correlation_matrix_distance(g_corr, g_ind) > 0.5


class TestCoupling:
    def test_coupled_graph_nonzero(self, rng):
        n = 40
        adj = np.zeros((n, n))
        # hub nodes 0..4 get many in-edges
        for v in range(5):
            for u in range(5, n):
                if rng.random() < 0.6:
                    adj[u, v] = 1.0
        snap_attrs = np.zeros((n, 1))
        deg = adj.sum(axis=0) + adj.sum(axis=1)
        snap_attrs[:, 0] = deg + 0.01 * rng.normal(size=n)
        g = graph_from_attrs([snap_attrs], adj=adj)
        assert attribute_structure_coupling(g) > 0.9

    def test_uncoupled_near_zero(self, rng):
        n = 60
        adj = (rng.random((n, n)) < 0.1).astype(float)
        np.fill_diagonal(adj, 0.0)
        g = graph_from_attrs([rng.normal(size=(n, 1))], adj=adj)
        assert attribute_structure_coupling(g) < 0.4

    def test_requires_attributes(self, structure_only_graph):
        with pytest.raises(ValueError):
            attribute_structure_coupling(structure_only_graph)


class TestReport:
    def test_keys(self, tiny_graph):
        report = extended_attribute_report(tiny_graph, tiny_graph)
        assert {"ks", "autocorr_original", "autocorr_generated",
                "coupling_original", "coupling_generated",
                "pagerank_divergence", "corr_matrix_dist"} == set(report)
        assert report["ks"] == pytest.approx(0.0)
