"""Tests for the privacy / leakage metrics."""

import numpy as np
import pytest

from repro.datasets.perturb import rewire_edges, shuffle_attribute_rows
from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.metrics.privacy import (
    attribute_nn_distance,
    degree_sequence_uniqueness,
    edge_overlap,
    expected_chance_overlap,
    privacy_report,
)


def graph_pair(seed=0, n=14, t=4, f=2):
    rng = np.random.default_rng(seed)
    adj = (rng.random((t, n, n)) < 0.2).astype(float)
    for k in range(t):
        np.fill_diagonal(adj[k], 0.0)
    attrs = rng.normal(size=(t, n, f))
    return DynamicAttributedGraph.from_tensors(adj, attrs)


class TestEdgeOverlap:
    def test_identical_graphs_full_overlap(self):
        g = graph_pair()
        assert edge_overlap(g, g) == 1.0

    def test_disjoint_graphs_zero_overlap(self):
        g = graph_pair()
        empty = DynamicAttributedGraph.from_tensors(
            np.zeros((g.num_timesteps, g.num_nodes, g.num_nodes))
        )
        assert edge_overlap(g, empty) == 0.0

    def test_rewiring_lowers_overlap(self):
        g = graph_pair()
        part = rewire_edges(g, 0.5, np.random.default_rng(1))
        full = rewire_edges(g, 1.0, np.random.default_rng(1))
        assert edge_overlap(g, full) <= edge_overlap(g, part) <= 1.0

    def test_shorter_synthetic_truncates(self):
        g = graph_pair()
        short = DynamicAttributedGraph(g.snapshots[:2])
        assert edge_overlap(g, short) == 1.0  # first 2 steps identical

    def test_node_mismatch_rejected(self):
        g = graph_pair()
        other = graph_pair(n=10)
        with pytest.raises(ValueError, match="node counts"):
            edge_overlap(g, other)


class TestChanceOverlap:
    def test_chance_close_to_density(self):
        g = graph_pair()
        chance = expected_chance_overlap(g, g)
        densities = [
            s.num_edges / (g.num_nodes * (g.num_nodes - 1)) for s in g
        ]
        assert min(densities) <= chance <= max(densities)

    def test_memorizing_generator_flagged(self):
        """A generator that replays sparse data scores far above chance."""
        rng = np.random.default_rng(0)
        adj = (rng.random((4, 30, 30)) < 0.03).astype(float)
        for k in range(4):
            np.fill_diagonal(adj[k], 0.0)
        g = DynamicAttributedGraph.from_tensors(adj)
        assert edge_overlap(g, g) > 5 * expected_chance_overlap(g, g)


class TestAttributeNN:
    def test_replayed_rows_flagged_as_memorization(self):
        g = graph_pair()
        assert attribute_nn_distance(g, g) == pytest.approx(0.0)

    def test_independent_rows_healthy(self):
        a = graph_pair(seed=0)
        b = graph_pair(seed=99)
        assert attribute_nn_distance(a, b) > 0.3

    def test_attribute_free_graph_nan(self):
        adj = np.zeros((2, 5, 5))
        adj[:, 0, 1] = 1.0
        g = DynamicAttributedGraph.from_tensors(adj)
        assert np.isnan(attribute_nn_distance(g, g))

    def test_row_shuffle_not_memorization_free(self):
        """Shuffling node identities still replays rows verbatim."""
        g = graph_pair()
        shuffled = shuffle_attribute_rows(g, np.random.default_rng(0))
        assert attribute_nn_distance(g, shuffled) == pytest.approx(0.0)


class TestDegreeFingerprint:
    def test_identity_replay_detected(self):
        g = graph_pair()
        assert degree_sequence_uniqueness(g, g) == 1.0

    def test_empty_original_zero(self):
        adj = np.zeros((2, 4, 4))
        g = DynamicAttributedGraph.from_tensors(adj)
        assert degree_sequence_uniqueness(g, g) == 0.0

    def test_different_graph_low(self):
        a = graph_pair(seed=0)
        b = graph_pair(seed=123)
        assert degree_sequence_uniqueness(a, b) < 0.5


class TestReport:
    def test_report_keys_and_types(self):
        g = graph_pair()
        rep = privacy_report(g, graph_pair(seed=5))
        assert set(rep) == {
            "edge_overlap", "chance_overlap", "attr_nn_distance",
            "degree_fp_overlap",
        }
        assert all(isinstance(v, float) for v in rep.values())
