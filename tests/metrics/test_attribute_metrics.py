"""Attribute metric tests: JSD, EMD, Spearman MAE."""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.metrics import attribute_emd, attribute_jsd, spearman_correlation_mae
from repro.metrics.attributes import (
    earth_movers_distance,
    jensen_shannon_divergence,
)


def attr_graph(attr_fn, n=60, t=3, f=2, seed=0):
    rng = np.random.default_rng(seed)
    snaps = []
    for step in range(t):
        adj = (rng.random((n, n)) < 0.1).astype(float)
        np.fill_diagonal(adj, 0.0)
        snaps.append(GraphSnapshot(adj, attr_fn(rng, n, f, step)))
    return DynamicAttributedGraph(snaps)


class TestJSD:
    def test_identical_zero(self):
        p = np.array([0.2, 0.5, 0.3])
        assert jensen_shannon_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_bounded_by_ln2(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert jensen_shannon_divergence(p, q) == pytest.approx(np.log(2))

    def test_symmetric(self, rng):
        p = rng.random(10)
        q = rng.random(10)
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p)
        )

    def test_graph_level_self_low(self):
        g = attr_graph(lambda r, n, f, t: r.normal(size=(n, f)))
        other = attr_graph(lambda r, n, f, t: r.normal(size=(n, f)), seed=1)
        shifted = attr_graph(lambda r, n, f, t: r.normal(size=(n, f)) + 4.0, seed=2)
        assert attribute_jsd(g, other) < attribute_jsd(g, shifted)

    def test_no_attributes_nan(self, structure_only_graph):
        assert np.isnan(
            attribute_jsd(structure_only_graph, structure_only_graph)
        )


class TestEMD:
    def test_identical_zero(self, rng):
        x = rng.normal(size=100)
        assert earth_movers_distance(x, x) == pytest.approx(0.0)

    def test_shift_equals_distance(self, rng):
        x = rng.normal(size=2000)
        assert earth_movers_distance(x, x + 2.0) == pytest.approx(2.0, abs=0.05)

    def test_graph_level(self):
        g = attr_graph(lambda r, n, f, t: r.normal(size=(n, f)))
        shifted = attr_graph(lambda r, n, f, t: r.normal(size=(n, f)) + 3.0, seed=5)
        assert attribute_emd(g, shifted) > 2.0


class TestSpearmanMAE:
    def test_requires_two_attrs(self):
        g = attr_graph(lambda r, n, f, t: r.normal(size=(n, 1)), f=1)
        with pytest.raises(ValueError):
            spearman_correlation_mae(g, g)

    def test_self_zero(self):
        g = attr_graph(lambda r, n, f, t: r.normal(size=(n, f)))
        assert spearman_correlation_mae(g, g) == pytest.approx(0.0)

    def test_correlation_destruction_detected(self):
        def correlated(r, n, f, t):
            base = r.normal(size=(n, 1))
            return np.concatenate([base, base + 0.05 * r.normal(size=(n, 1))], axis=1)

        def independent(r, n, f, t):
            return r.normal(size=(n, 2))

        g_corr = attr_graph(correlated)
        g_ind = attr_graph(independent, seed=9)
        g_corr2 = attr_graph(correlated, seed=10)
        assert spearman_correlation_mae(g_corr, g_ind) > spearman_correlation_mae(
            g_corr, g_corr2
        )

    def test_constant_column_no_nan(self):
        def constant(r, n, f, t):
            x = r.normal(size=(n, 2))
            x[:, 1] = 5.0
            return x

        g = attr_graph(constant)
        h = attr_graph(lambda r, n, f, t: r.normal(size=(n, 2)), seed=2)
        assert np.isfinite(spearman_correlation_mae(g, h))

    def test_multidim(self):
        g = attr_graph(lambda r, n, f, t: r.normal(size=(n, 4)), f=4)
        assert spearman_correlation_mae(g, g) == pytest.approx(0.0)
