"""Eq. 20–21 temporal difference metric tests (Figures 4–8)."""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.metrics.difference import (
    attribute_difference_series,
    difference_alignment_error,
    structure_difference_series,
)


def two_step_graph(adj1, adj2, x1=None, x2=None):
    return DynamicAttributedGraph(
        [GraphSnapshot(adj1, x1), GraphSnapshot(adj2, x2)]
    )


class TestStructureDifference:
    def test_static_sequence_zero(self, tiny_snapshot):
        g = DynamicAttributedGraph([tiny_snapshot.copy(), tiny_snapshot.copy()])
        for metric in ("degree", "clustering", "coreness"):
            np.testing.assert_allclose(
                structure_difference_series(g, metric), 0.0
            )

    def test_length_is_t_minus_one(self, tiny_graph):
        series = structure_difference_series(tiny_graph, "degree")
        assert len(series) == tiny_graph.num_timesteps - 1

    def test_degree_difference_exact(self):
        n = 4
        a1 = np.zeros((n, n))
        a2 = np.zeros((n, n))
        a2[0, 1] = 1.0  # adds out-deg 1 to node0, in-deg 1 to node1
        g = two_step_graph(a1, a2)
        series = structure_difference_series(g, "degree")
        np.testing.assert_allclose(series, [2.0 / n])

    def test_unknown_metric(self, tiny_graph):
        with pytest.raises(KeyError):
            structure_difference_series(tiny_graph, "betweenness")

    def test_known_coreness_change(self):
        n = 5
        a1 = np.zeros((n, n))
        # snapshot2: a triangle raises coreness of 3 nodes to 2
        a2 = np.zeros((n, n))
        for u, v in [(0, 1), (1, 2), (0, 2)]:
            a2[u, v] = 1.0
        g = two_step_graph(a1, a2)
        series = structure_difference_series(g, "coreness")
        np.testing.assert_allclose(series, [3 * 2.0 / n])


class TestAttributeDifference:
    def test_static_zero(self):
        x = np.ones((4, 2))
        g = two_step_graph(np.zeros((4, 4)), np.zeros((4, 4)), x, x.copy())
        np.testing.assert_allclose(attribute_difference_series(g, "mae"), 0.0)
        np.testing.assert_allclose(attribute_difference_series(g, "rmse"), 0.0)

    def test_constant_shift_mae(self):
        x1 = np.zeros((4, 2))
        x2 = np.full((4, 2), 3.0)
        g = two_step_graph(np.zeros((4, 4)), np.zeros((4, 4)), x1, x2)
        np.testing.assert_allclose(attribute_difference_series(g, "mae"), [3.0])
        np.testing.assert_allclose(attribute_difference_series(g, "rmse"), [3.0])

    def test_rmse_upweights_outliers(self):
        x1 = np.zeros((4, 1))
        x2 = np.zeros((4, 1))
        x2[0] = 4.0  # one node jumps
        g = two_step_graph(np.zeros((4, 4)), np.zeros((4, 4)), x1, x2)
        mae = attribute_difference_series(g, "mae")[0]
        rmse = attribute_difference_series(g, "rmse")[0]
        assert rmse > mae

    def test_invalid_metric(self, tiny_graph):
        with pytest.raises(KeyError):
            attribute_difference_series(tiny_graph, "mape")

    def test_no_attributes_raises(self, structure_only_graph):
        with pytest.raises(ValueError):
            attribute_difference_series(structure_only_graph, "mae")


class TestAlignmentError:
    def test_identical_zero(self):
        s = np.array([1.0, 2.0, 3.0])
        assert difference_alignment_error(s, s) == pytest.approx(0.0)

    def test_truncates(self):
        a = np.array([1.0, 1.0, 1.0])
        b = np.array([2.0])
        assert difference_alignment_error(a, b) == pytest.approx(1.0)

    def test_empty_nan(self):
        assert np.isnan(difference_alignment_error(np.array([]), np.array([])))
