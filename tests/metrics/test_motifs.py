"""Tests for the triad / temporal motif analytics."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.metrics.motifs import (
    TRIAD_NAMES,
    motif_count_series,
    motif_discrepancy,
    motif_persistence,
    motif_transition_matrix,
    triad_census,
)


def snapshot_from_edges(n, edges):
    return GraphSnapshot.from_edges(n, edges)


class TestTriadCensus:
    def test_empty_graph_all_003(self):
        census = triad_census(snapshot_from_edges(5, []))
        assert census["003"] == 10  # C(5,3)
        assert sum(census.values()) == 10

    def test_fewer_than_three_nodes(self):
        census = triad_census(snapshot_from_edges(2, [(0, 1)]))
        assert all(v == 0 for v in census.values())

    def test_single_edge_is_012(self):
        census = triad_census(snapshot_from_edges(3, [(0, 1)]))
        assert census["012"] == 1
        assert census["003"] == 0

    def test_mutual_dyad_is_102(self):
        census = triad_census(snapshot_from_edges(3, [(0, 1), (1, 0)]))
        assert census["102"] == 1

    def test_cycle_is_030C(self):
        census = triad_census(snapshot_from_edges(3, [(0, 1), (1, 2), (2, 0)]))
        assert census["030C"] == 1

    def test_transitive_is_030T(self):
        census = triad_census(snapshot_from_edges(3, [(0, 1), (0, 2), (2, 1)]))
        assert census["030T"] == 1

    def test_complete_is_300(self):
        edges = [(i, j) for i in range(3) for j in range(3) if i != j]
        census = triad_census(snapshot_from_edges(3, edges))
        assert census["300"] == 1

    def test_out_star_is_021D(self):
        census = triad_census(snapshot_from_edges(3, [(1, 0), (1, 2)]))
        assert census["021D"] == 1

    def test_in_star_is_021U(self):
        census = triad_census(snapshot_from_edges(3, [(0, 1), (2, 1)]))
        assert census["021U"] == 1

    def test_path_is_021C(self):
        census = triad_census(snapshot_from_edges(3, [(0, 1), (1, 2)]))
        assert census["021C"] == 1

    def test_total_is_number_of_triples(self):
        rng = np.random.default_rng(0)
        adj = (rng.random((9, 9)) < 0.3).astype(float)
        np.fill_diagonal(adj, 0.0)
        census = triad_census(GraphSnapshot(adj))
        assert sum(census.values()) == 9 * 8 * 7 // 6

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("density", [0.1, 0.4, 0.8])
    def test_matches_networkx(self, seed, density):
        rng = np.random.default_rng(seed)
        n = 8
        adj = (rng.random((n, n)) < density).astype(float)
        np.fill_diagonal(adj, 0.0)
        ours = triad_census(GraphSnapshot(adj))
        g = nx.from_numpy_array(adj, create_using=nx.DiGraph)
        theirs = nx.triadic_census(g)
        assert ours == {k: int(v) for k, v in theirs.items()}


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(3, 10))
def test_property_census_matches_networkx(seed, n):
    rng = np.random.default_rng(seed)
    adj = (rng.random((n, n)) < rng.uniform(0.05, 0.9)).astype(float)
    np.fill_diagonal(adj, 0.0)
    ours = triad_census(GraphSnapshot(adj))
    theirs = nx.triadic_census(nx.from_numpy_array(adj, create_using=nx.DiGraph))
    assert ours == {k: int(v) for k, v in theirs.items()}


class TestMotifSeries:
    def graph(self):
        s1 = snapshot_from_edges(4, [(0, 1), (1, 2), (2, 0)])
        s2 = snapshot_from_edges(4, [(0, 1), (1, 2)])
        return DynamicAttributedGraph([s1, s2])

    def test_series_shape_and_order(self):
        series = motif_count_series(self.graph())
        assert series.shape == (2, 16)
        assert series[0, TRIAD_NAMES.index("030C")] == 1
        assert series[1, TRIAD_NAMES.index("021C")] == 1

    def test_transition_matrix_counts_triples(self):
        trans = motif_transition_matrix(self.graph())
        assert trans.sum() == 4  # C(4,3) triples, one step
        i030c = TRIAD_NAMES.index("030C")
        i021c = TRIAD_NAMES.index("021C")
        assert trans[i030c, i021c] == 1

    def test_transition_matrix_single_snapshot_empty(self):
        g = DynamicAttributedGraph([snapshot_from_edges(4, [(0, 1)])])
        assert motif_transition_matrix(g).sum() == 0

    def test_persistence_probabilities(self):
        s = snapshot_from_edges(4, [(0, 1), (1, 2), (2, 0)])
        g = DynamicAttributedGraph([s, s.copy(), s.copy()])
        pers = motif_persistence(g)
        assert pers["030C"] == 1.0
        assert np.isnan(pers["300"])  # class never observed

    def test_identical_graphs_zero_discrepancy(self):
        g = self.graph()
        assert motif_discrepancy(g, g) == 0.0

    def test_discrepancy_positive_when_different(self):
        g = self.graph()
        empty = DynamicAttributedGraph(
            [snapshot_from_edges(4, []), snapshot_from_edges(4, [])]
        )
        assert motif_discrepancy(g, empty) > 0

    def test_discrepancy_invented_class_penalized(self):
        g1 = DynamicAttributedGraph([snapshot_from_edges(3, [])])
        g2 = DynamicAttributedGraph([snapshot_from_edges(3, [(0, 1)])])
        # original has only 003 triads; generated invents 012, which only
        # the include-empty mode penalizes (one 1.0 term out of 15 extras)
        strict = motif_discrepancy(g1, g1, exclude_empty=False)
        invented = motif_discrepancy(g1, g2, exclude_empty=False)
        assert strict == 0.0
        assert invented > strict
