"""Table I structure metric tests."""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.metrics import (
    average_discrepancy,
    clustering_distribution_mmd,
    degree_distribution_mmd,
    structure_metric_table,
)


def er_graph(n, p, t, seed):
    rng = np.random.default_rng(seed)
    snaps = []
    for _ in range(t):
        adj = (rng.random((n, n)) < p).astype(float)
        np.fill_diagonal(adj, 0.0)
        snaps.append(GraphSnapshot(adj))
    return DynamicAttributedGraph(snaps)


class TestDegreeDistributionMMD:
    def test_self_comparison_zero(self, tiny_graph):
        assert degree_distribution_mmd(tiny_graph, tiny_graph) == pytest.approx(0.0)

    def test_discriminates_density(self):
        base = er_graph(30, 0.1, 3, 0)
        near = er_graph(30, 0.1, 3, 1)
        far = er_graph(30, 0.5, 3, 2)
        assert degree_distribution_mmd(base, far) > degree_distribution_mmd(
            base, near
        )

    def test_direction_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            degree_distribution_mmd(tiny_graph, tiny_graph, direction="sideways")

    def test_in_vs_out_differ_on_asymmetric_graph(self):
        # star out-edges only: out-degree dist differs from in-degree dist
        adj = np.zeros((10, 10))
        adj[0, 1:] = 1.0
        g1 = DynamicAttributedGraph([GraphSnapshot(adj)])
        g2 = DynamicAttributedGraph([GraphSnapshot(adj.T.copy())])
        d_in = degree_distribution_mmd(g1, g2, "in")
        assert d_in > 0

    def test_truncates_to_common_length(self, tiny_graph):
        shorter = tiny_graph[0:2]
        val = degree_distribution_mmd(tiny_graph, shorter)
        assert np.isfinite(val)


class TestClusteringMMD:
    def test_self_zero(self, tiny_graph):
        assert clustering_distribution_mmd(tiny_graph, tiny_graph) == pytest.approx(0.0)

    def test_triangle_heavy_vs_tree(self):
        n = 12
        # triangle-rich: union of triangles
        adj_tri = np.zeros((n, n))
        for i in range(0, n - 2, 3):
            for a, b in [(i, i + 1), (i + 1, i + 2), (i, i + 2)]:
                adj_tri[a, b] = 1.0
        # path graph: no triangles
        adj_path = np.zeros((n, n))
        for i in range(n - 1):
            adj_path[i, i + 1] = 1.0
        g_tri = DynamicAttributedGraph([GraphSnapshot(adj_tri)])
        g_path = DynamicAttributedGraph([GraphSnapshot(adj_path)])
        assert clustering_distribution_mmd(g_tri, g_path) > 0.01


class TestAverageDiscrepancy:
    def test_self_zero(self, tiny_graph):
        for m in ("wedge_count", "nc", "lcc"):
            assert average_discrepancy(tiny_graph, tiny_graph, m) == pytest.approx(0.0)

    def test_unknown_metric(self, tiny_graph):
        with pytest.raises(KeyError):
            average_discrepancy(tiny_graph, tiny_graph, "pagerank")

    def test_eq19_formula(self):
        # wedge counts: star with k leaves has C(k,2) wedges
        def star(k, n=10):
            adj = np.zeros((n, n))
            adj[0, 1: k + 1] = 1.0
            return GraphSnapshot(adj)

        g1 = DynamicAttributedGraph([star(4)])  # 6 wedges
        g2 = DynamicAttributedGraph([star(3)])  # 3 wedges
        val = average_discrepancy(g1, g2, "wedge_count")
        assert val == pytest.approx(abs(6 - 3) / 6)

    def test_skips_zero_denominator(self):
        empty = DynamicAttributedGraph([GraphSnapshot(np.zeros((5, 5)))])
        full = er_graph(5, 0.5, 1, 0)
        assert np.isnan(average_discrepancy(empty, full, "wedge_count"))


class TestStructureMetricTable:
    def test_all_eight_columns(self, tiny_graph):
        table = structure_metric_table(tiny_graph, tiny_graph)
        assert set(table) == {
            "in_deg_dist", "out_deg_dist", "clus_dist",
            "in_ple", "out_ple", "wedge_count", "nc", "lcc",
        }

    def test_self_comparison_all_zero(self, tiny_graph):
        table = structure_metric_table(tiny_graph, tiny_graph)
        for key, val in table.items():
            assert val == pytest.approx(0.0), key

    def test_worse_generator_scores_higher(self, tiny_graph):
        dense = er_graph(16, 0.6, 4, 9)
        table = structure_metric_table(tiny_graph, dense)
        assert table["in_deg_dist"] > 0.001
        assert table["wedge_count"] > 0.5
