"""MMD estimator tests: axioms and discrimination."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import gaussian_mmd, histogram_mmd


class TestGaussianMMD:
    def test_identical_samples_zero(self, rng):
        x = rng.normal(size=(50, 2))
        assert gaussian_mmd(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_nonnegative(self, rng):
        for _ in range(10):
            x = rng.normal(size=(30, 1))
            y = rng.normal(size=(40, 1)) + rng.normal()
            assert gaussian_mmd(x, y) >= 0.0

    def test_symmetric(self, rng):
        x = rng.normal(size=(30, 1))
        y = rng.normal(size=(30, 1)) + 1.0
        assert gaussian_mmd(x, y) == pytest.approx(gaussian_mmd(y, x))

    def test_discriminates_shifted_distributions(self, rng):
        x = rng.normal(size=(100, 1))
        near = rng.normal(size=(100, 1))
        far = rng.normal(size=(100, 1)) + 3.0
        assert gaussian_mmd(x, far) > gaussian_mmd(x, near)

    def test_empty_input_nan(self):
        assert np.isnan(gaussian_mmd(np.zeros((0, 1)), np.ones((5, 1))))


class TestHistogramMMD:
    def test_identical_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert histogram_mmd(p, p.copy()) == pytest.approx(0.0, abs=1e-12)

    def test_pads_to_common_length(self):
        p = np.array([1.0])
        q = np.array([0.0, 0.0, 1.0])
        assert histogram_mmd(p, q) > 0

    def test_normalizes_unnormalized_inputs(self):
        p = np.array([2.0, 2.0])
        q = np.array([1.0, 1.0])
        assert histogram_mmd(p, q) == pytest.approx(0.0, abs=1e-12)

    def test_empty_nan(self):
        assert np.isnan(histogram_mmd(np.array([]), np.array([])))

    def test_kernel_smooths_near_misses(self):
        # mass in adjacent bins should be closer than mass far apart
        base = np.array([1.0, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        near = np.array([0, 1.0, 0, 0, 0, 0, 0, 0, 0, 0])
        far = np.array([0, 0, 0, 0, 0, 0, 0, 0, 0, 1.0])
        assert histogram_mmd(base, near) < histogram_mmd(base, far)


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(np.float64, st.integers(1, 10),
               elements=st.floats(0, 10, allow_nan=False)),
    hnp.arrays(np.float64, st.integers(1, 10),
               elements=st.floats(0, 10, allow_nan=False)),
)
def test_histogram_mmd_nonnegative_and_symmetric(p, q):
    if p.sum() == 0 or q.sum() == 0:
        return
    m1 = histogram_mmd(p, q)
    m2 = histogram_mmd(q, p)
    assert m1 >= 0
    assert m1 == pytest.approx(m2, abs=1e-9)
