"""QueryService: deterministic concurrent serving over one shared engine."""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph
from repro.graph.store import TemporalEdgeStore, track_dense_materializations
from repro.workloads import (
    GraphQueryEngine,
    QueryRequest,
    QueryService,
    WorkloadConfig,
    WorkloadGenerator,
    execute_workload,
    serving_mix,
)
from repro.workloads.generator import _run_query


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(2)
    n, m, t_len = 50, 500, 6
    store = TemporalEdgeStore(
        n, t_len,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
        rng.normal(size=(t_len, n, 2)),
    )
    return DynamicAttributedGraph.from_store(store)


@pytest.fixture(scope="module")
def queries(graph):
    config = WorkloadConfig(num_queries=240, mix=serving_mix(), seed=9)
    return WorkloadGenerator(graph, config).generate()


def reference_cards(graph, queries):
    engine = GraphQueryEngine(graph)
    return np.array([_run_query(engine, q) for q in queries])


class TestRequests:
    def test_empty_request_rejected(self):
        with pytest.raises(ValueError, match="at least one query"):
            QueryRequest([])

    def test_request_is_immutable_tuple(self, queries):
        req = QueryRequest(queries[:5])
        assert isinstance(req.queries, tuple)
        assert len(req) == 5


class TestService:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_results_in_request_order_and_bit_identical(
        self, graph, queries, executor
    ):
        requests = [
            QueryRequest(queries[i:i + 50])
            for i in range(0, len(queries), 50)
        ]
        with QueryService(graph, executor=executor, max_workers=3) as svc:
            results = svc.run_batch(requests)
        assert [r.request for r in results] == requests
        flat = np.concatenate([r.cardinalities for r in results])
        assert np.array_equal(flat, reference_cards(graph, queries))
        for r in results:
            assert r.seconds >= 0
            assert set(r.seconds_by_kind) == {
                q.kind.value for q in r.request.queries
            }

    def test_batch_composition_is_a_deployment_knob(self, graph, queries):
        """Any split of the same queries yields the same concatenation."""
        ref = reference_cards(graph, queries)
        for batch_size in (1, 7, 100, len(queries)):
            requests = [
                QueryRequest(queries[i:i + batch_size])
                for i in range(0, len(queries), batch_size)
            ]
            with QueryService(graph, executor="thread", max_workers=2) as svc:
                flat = np.concatenate(
                    [r.cardinalities for r in svc.run_batch(requests)]
                )
            assert np.array_equal(flat, ref)

    def test_unbatched_mode_identical(self, graph, queries):
        requests = [QueryRequest(queries)]
        with QueryService(graph, executor="serial", batched=False) as svc:
            results = svc.run_batch(requests)
        assert np.array_equal(
            results[0].cardinalities, reference_cards(graph, queries)
        )

    def test_empty_batch(self, graph):
        assert QueryService(graph, executor="serial").run_batch([]) == []

    def test_unknown_executor_rejected(self, graph):
        with pytest.raises(ValueError, match="executor"):
            QueryService(graph, executor="gpu")

    def test_process_executor_rejected(self, graph):
        """Process pools are a topology, not a pool mode (shared store)."""
        with pytest.raises(ValueError, match="process"):
            QueryService(graph, executor="process")

    def test_accepts_prebuilt_engine_and_shares_cache(self, graph, queries):
        engine = GraphQueryEngine(graph)
        with QueryService(engine, executor="serial") as svc:
            assert svc.engine is engine
            svc.run_batch([QueryRequest(queries[:20])])
        assert engine.plans.stats().misses > 0

    def test_plan_cache_shared_across_requests(self, graph, queries):
        with QueryService(graph, executor="serial") as svc:
            svc.run_batch([QueryRequest(queries[:100])])
            first = svc.plan_cache_stats()
            svc.run_batch([QueryRequest(queries[:100])])
            second = svc.plan_cache_stats()
        assert second.hits > first.hits
        assert second.misses == first.misses  # warm: no new plans

    def test_no_dense_materializations_on_serving_path(self, graph, queries):
        with track_dense_materializations() as materialized:
            with QueryService(graph, executor="thread", max_workers=2) as svc:
                svc.run_batch([
                    QueryRequest(queries[i:i + 40])
                    for i in range(0, len(queries), 40)
                ])
        assert materialized() == 0

    def test_tiny_cache_budget_still_correct(self, graph, queries):
        with QueryService(
            graph, executor="serial", cache_memory_budget_bytes=1
        ) as svc:
            results = svc.run_batch([QueryRequest(queries)])
        assert np.array_equal(
            results[0].cardinalities, reference_cards(graph, queries)
        )
        assert svc.plan_cache_stats().evictions > 0


class TestWorkloadReplay:
    def test_run_workload_matches_per_query_profile(self, graph):
        config = WorkloadConfig(num_queries=200, mix=serving_mix(), seed=4)
        with QueryService(graph, executor="thread", max_workers=2) as svc:
            report, results = svc.run_workload(config, batch_size=64)
        queries = WorkloadGenerator(graph, config).generate()
        baseline = execute_workload(GraphQueryEngine(graph), queries)
        assert report.total_queries == baseline.total_queries
        assert report.count_by_kind == baseline.count_by_kind
        assert report.mean_result_size == baseline.mean_result_size
        assert report.throughput() > 0
        assert sum(len(r.request) for r in results) == len(queries)

    def test_run_workload_default_oltp_mix(self, graph):
        """The full default mix (traversals included) replays through."""
        config = WorkloadConfig(num_queries=80, seed=1)
        with QueryService(graph, executor="serial") as svc:
            report, _ = svc.run_workload(config, batch_size=32)
        assert report.total_queries == 80

    def test_bad_batch_size_rejected(self, graph):
        with QueryService(graph, executor="serial") as svc:
            with pytest.raises(ValueError, match="batch_size"):
                svc.run_workload(WorkloadConfig(num_queries=10), batch_size=0)


class TestApiReexport:
    def test_api_surface(self):
        from repro import api

        assert api.QueryService is QueryService
        assert api.QueryRequest is QueryRequest
        assert "QueryService" in api.__all__
