"""LiveQueryService: query-while-ingesting with pinned epochs.

Readers hammer a :class:`~repro.workloads.live.LiveQueryService` while
a writer seals timesteps into its
:class:`~repro.graph.live.LiveStoreBuilder`.  Pinned invariants:

* **No torn reads** — every served batch reports an epoch E, and its
  cardinalities are bit-identical to the same queries against a
  bulk-built store of E's sealed event prefix, whatever the writer
  was doing at the time.
* **Monotone epochs** — each reader observes a non-decreasing epoch
  sequence.
* **Deterministic per-epoch results** — serving the same batch twice
  at a pinned epoch returns identical cardinalities.
* **Stats reconcile** — the one shared plan cache's counters satisfy
  ``resident_plans == misses - evictions - invalidations`` in serial
  use (``<=`` under concurrency, where a lost build race double-counts
  a miss).

Chaos scenarios follow the ``REPRO_CHAOS_SEED`` convention.
"""

import os
import threading

import numpy as np
import pytest

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.live import LiveStoreBuilder
from repro.graph.store import TemporalEdgeStore
from repro.reliability import (
    FaultPlan,
    InjectedFault,
    ServiceOverloadedError,
    fault_injector,
)
from repro.workloads import (
    GraphQueryEngine,
    LiveQueryService,
    QueryRequest,
    WorkloadConfig,
    WorkloadGenerator,
    run_queries_batched,
    serving_mix,
)

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
WATCHDOG_SECONDS = 60.0

N, T = 60, 6


def make_stream(seed, m=600):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, N, size=m)
    dst = rng.integers(0, N, size=m)
    t = rng.integers(0, T, size=m)
    attrs = rng.normal(size=(T, N, 2))
    return src, dst, t, attrs


def make_requests(store, seed, num_queries=180, batch=30):
    graph = DynamicAttributedGraph.from_store(store)
    config = WorkloadConfig(
        num_queries=num_queries, mix=serving_mix(), seed=seed
    )
    queries = WorkloadGenerator(graph, config).generate()
    return [
        QueryRequest(queries[i:i + batch])
        for i in range(0, len(queries), batch)
    ]


class Oracle:
    """Bulk-built per-epoch reference engines over one event stream."""

    def __init__(self, src, dst, t, attrs):
        self.columns = (src, dst, t)
        self.attrs = attrs
        self._engines = {}

    def engine(self, epoch):
        if epoch not in self._engines:
            src, dst, t = self.columns
            keep = t < epoch
            store = TemporalEdgeStore(
                N, T, src[keep], dst[keep], t[keep], self.attrs
            )
            self._engines[epoch] = GraphQueryEngine(
                DynamicAttributedGraph.from_store(store)
            )
        return self._engines[epoch]

    def check(self, epoch, request, result):
        assert result.ok, f"request failed at epoch {epoch}: {result.error}"
        want, _ = run_queries_batched(self.engine(epoch), request.queries)
        assert np.array_equal(result.cardinalities, want), (
            f"torn read: batch at epoch {epoch} diverged from the "
            "bulk-built store of that epoch's prefix"
        )


def feed_all(builder, src, dst, t):
    order = np.argsort(t, kind="stable")
    builder.extend(src[order], dst[order], t[order])


class TestSerialEpochPinning:
    def test_every_epoch_matches_bulk_oracle(self):
        src, dst, t, attrs = make_stream(CHAOS_SEED)
        oracle = Oracle(src, dst, t, attrs)
        full = TemporalEdgeStore(N, T, src, dst, t, attrs)
        requests = make_requests(full, CHAOS_SEED)
        builder = LiveStoreBuilder(N, T, attributes=attrs)
        feed_all(builder, src, dst, t)
        with LiveQueryService(builder, executor="serial") as service:
            epochs_seen = []
            for _ in range(T):
                builder.seal_step()
                epoch, results = service.run_batch(requests)
                assert epoch == builder.epoch
                epochs_seen.append(epoch)
                for request, result in zip(requests, results):
                    oracle.check(epoch, request, result)
            assert epochs_seen == list(range(1, T + 1))

    def test_per_epoch_results_deterministic(self):
        src, dst, t, attrs = make_stream(CHAOS_SEED + 1)
        full = TemporalEdgeStore(N, T, src, dst, t, attrs)
        requests = make_requests(full, CHAOS_SEED + 1)
        builder = LiveStoreBuilder(N, T, attributes=attrs)
        feed_all(builder, src, dst, t)
        builder.seal_through(2)
        with LiveQueryService(builder, executor="serial") as service:
            epoch_a, first = service.run_batch(requests)
            # more sealed data exists, but refresh=False keeps the pin
            builder.seal_through(T - 1)
            epoch_b, second = service.run_batch(requests, refresh=False)
            assert epoch_a == epoch_b == 3
            for a, b in zip(first, second):
                assert np.array_equal(a.cardinalities, b.cardinalities)
            assert service.run_batch(requests)[0] == T

    def test_stats_reconciliation_identity(self):
        src, dst, t, attrs = make_stream(CHAOS_SEED + 2)
        full = TemporalEdgeStore(N, T, src, dst, t, attrs)
        requests = make_requests(full, CHAOS_SEED + 2)
        builder = LiveStoreBuilder(N, T, attributes=attrs)
        feed_all(builder, src, dst, t)
        with LiveQueryService(builder, executor="serial") as service:
            for _ in range(T):
                builder.seal_step()
                service.run_batch(requests)
            stats = service.plan_cache_stats()
        assert stats.invalidations > 0  # sealing invalidated open plans
        assert stats.hits > 0 and stats.misses > 0
        assert stats.bypasses == 0
        assert stats.resident_plans == (
            stats.misses - stats.evictions - stats.invalidations
        )

    def test_refresh_counters_and_no_op_refresh(self):
        src, dst, t, attrs = make_stream(CHAOS_SEED + 3)
        builder = LiveStoreBuilder(N, T, attributes=attrs)
        feed_all(builder, src, dst, t)
        with LiveQueryService(builder, executor="serial") as service:
            assert service.epoch == 0
            assert service.refresh() == 0  # nothing sealed yet
            builder.seal_through(1)
            assert service.refresh() == 2
            assert service.refresh() == 2
            live = service.live_stats()
        assert live.epoch == 2
        assert live.refreshes == 3
        assert live.epoch_advances == 1
        assert live.stale_refreshes == 0

    def test_overload_surfaces_through_live_service(self):
        src, dst, t, attrs = make_stream(CHAOS_SEED + 4)
        full = TemporalEdgeStore(N, T, src, dst, t, attrs)
        requests = make_requests(full, CHAOS_SEED + 4)
        builder = LiveStoreBuilder(N, T, attributes=attrs)
        feed_all(builder, src, dst, t)
        builder.seal_through(T - 1)
        with LiveQueryService(
            builder, executor="thread", max_workers=2, max_pending=1
        ) as service:
            with pytest.raises(ServiceOverloadedError):
                service.run_batch(requests)
            stats = service.admission_stats()
            assert stats["shed"] >= len(requests)
            # a batch inside the bound still serves normally
            epoch, results = service.run_batch(requests[:1])
            assert epoch == T and results[0].ok


class TestRefreshDegradation:
    def test_snapshot_fault_serves_stale_epoch(self):
        src, dst, t, attrs = make_stream(CHAOS_SEED + 5)
        oracle = Oracle(src, dst, t, attrs)
        full = TemporalEdgeStore(N, T, src, dst, t, attrs)
        requests = make_requests(full, CHAOS_SEED + 5)
        builder = LiveStoreBuilder(N, T, attributes=attrs)
        feed_all(builder, src, dst, t)
        builder.seal_through(1)
        with LiveQueryService(builder, executor="serial") as service:
            assert service.refresh() == 2
            builder.seal_through(3)
            plans = {"live.snapshot": FaultPlan(rate=1.0, max_triggers=1)}
            with fault_injector.arm(plans, seed=CHAOS_SEED):
                # refresh degrades: stale epoch, never an exception
                epoch, results = service.run_batch(requests)
            assert epoch == 2
            for request, result in zip(requests, results):
                oracle.check(2, request, result)
            live = service.live_stats()
            assert live.stale_refreshes == 1
            # injector exhausted: the next refresh catches up
            assert service.run_batch(requests)[0] == 4

    def test_constructor_snapshot_fault_is_loud(self):
        builder = LiveStoreBuilder(N, T)
        plans = {"live.snapshot": FaultPlan(rate=1.0, max_triggers=1)}
        with fault_injector.arm(plans, seed=CHAOS_SEED):
            with pytest.raises(InjectedFault):
                LiveQueryService(builder, executor="serial")


def hammer(service, requests, oracle, samples, errors, stop):
    last_epoch = -1
    try:
        while not stop.is_set():
            for request in requests:
                epoch, results = service.run_batch([request])
                assert epoch >= last_epoch, "epoch went backwards"
                last_epoch = epoch
                samples.append((epoch, request, results[0]))
            if last_epoch >= T:
                break
    except BaseException as exc:  # surfaced on the main thread
        errors.append(exc)


class TestThreadedIngestWhileQuery:
    def run_scenario(self, seed, writer_fn, n_readers=3):
        src, dst, t, attrs = make_stream(seed)
        oracle = Oracle(src, dst, t, attrs)
        full = TemporalEdgeStore(N, T, src, dst, t, attrs)
        requests = make_requests(full, seed)
        builder = LiveStoreBuilder(N, T, attributes=attrs)
        feed_all(builder, src, dst, t)
        errors: list = []
        stop = threading.Event()
        per_reader = [[] for _ in range(n_readers)]
        with LiveQueryService(
            builder, executor="thread", max_workers=2
        ) as service:
            writer = threading.Thread(
                target=writer_fn, args=(builder, errors), daemon=True
            )
            readers = [
                threading.Thread(
                    target=hammer,
                    args=(service, requests, oracle, per_reader[i],
                          errors, stop),
                    daemon=True,
                )
                for i in range(n_readers)
            ]
            writer.start()
            for reader in readers:
                reader.start()
            writer.join(WATCHDOG_SECONDS)
            assert not writer.is_alive(), "writer hung"
            for reader in readers:
                reader.join(WATCHDOG_SECONDS)
                assert not reader.is_alive(), "reader hung"
            stop.set()
            assert not errors, f"worker thread failed: {errors[0]}"
            stats = service.plan_cache_stats()
        # torn-read check: every sample against its epoch's bulk oracle
        checked = 0
        for samples in per_reader:
            assert samples, "reader served nothing"
            for epoch, request, result in samples:
                oracle.check(epoch, request, result)
                checked += 1
        assert checked >= n_readers * len(requests)
        # concurrent lookups may lose a build race (double-counted
        # miss), so the serial identity relaxes to an inequality
        assert stats.resident_plans <= (
            stats.misses - stats.evictions - stats.invalidations
        )
        return builder, oracle

    def test_no_torn_reads_with_concurrent_writer(self):
        def writer(builder, errors):
            try:
                for _ in range(T):
                    builder.seal_step()
            except BaseException as exc:
                errors.append(exc)

        builder, _ = self.run_scenario(CHAOS_SEED + 6, writer)
        assert builder.epoch == T

    def test_chaos_advance_epoch_faults_retried_by_writer(self):
        plans = {
            "live.advance_epoch": FaultPlan(rate=0.5, max_triggers=8)
        }

        def writer(builder, errors):
            try:
                sealed = 0
                while sealed < T:
                    try:
                        builder.seal_step()
                    except InjectedFault:
                        continue  # seal is atomic: retry is safe
                    sealed += 1
            except BaseException as exc:
                errors.append(exc)

        with fault_injector.arm(plans, seed=CHAOS_SEED):
            builder, oracle = self.run_scenario(CHAOS_SEED + 7, writer)
        assert builder.epoch == T
        # the faulted-and-retried stream still equals the bulk build
        assert builder.snapshot()[1] == (
            oracle.engine(T).graph.store
        )
