"""Randomized traversal-parity harness for the frontier-vectorized
batched BFS kernels.

The contract under test (docs/workloads.md): ``batch_two_hop`` and
``batch_temporal_reach`` are bit-identical to their
``_reference_batch_*`` per-query twins *and* to the scalar engine
methods (``two_hop_neighbors`` / ``k_hop`` / ``temporal_reachable``),
for random stores × random query batches, across every executor
(serial / thread / process) and the live epoch-pinned path — with
zero dense materializations throughout.

Randomization follows the ``REPRO_CHAOS_SEED`` convention: every
store, column and workload below is a pure function of the seed
(default 0), so a CI failure reproduces locally with the same
environment variable.
"""

import os

import numpy as np
import pytest

from repro.graph.dynamic import DynamicAttributedGraph
from repro.graph.live import LiveStoreBuilder
from repro.graph.store import (
    TemporalEdgeStore,
    track_dense_materializations,
)
from repro.workloads import (
    BATCHED_KINDS,
    GraphQueryEngine,
    LiveQueryService,
    Query,
    QueryKind,
    QueryRequest,
    QueryService,
    WorkloadConfig,
    WorkloadGenerator,
    run_queries_batched,
)
from repro.workloads.generator import _run_query

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: Derived per-case seeds: distinct streams per round, all anchored
#: to the one chaos seed.
ROUNDS = [CHAOS_SEED * 1009 + i for i in range(4)]

#: A traversal-heavy mix: the two BFS classes dominate, with a sliver
#: of point lookups so grouped dispatch interleaves kernel classes.
TRAVERSAL_MIX = {
    QueryKind.TWO_HOP: 0.45,
    QueryKind.TEMPORAL_REACH: 0.45,
    QueryKind.OUT_NEIGHBORS: 0.10,
}


def random_engine(seed, n=None, m=None, t_len=None):
    rng = np.random.default_rng(seed)
    n = n or int(rng.integers(5, 70))
    t_len = t_len or int(rng.integers(1, 7))
    m = m if m is not None else int(rng.integers(0, 8 * n))
    store = TemporalEdgeStore(
        n, t_len,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
        rng.normal(size=(t_len, n, 2)),
    )
    return GraphQueryEngine(DynamicAttributedGraph.from_store(store))


def traversal_columns(engine, seed, size=160):
    rng = np.random.default_rng(seed)
    n = engine.graph.num_nodes
    t_len = engine.graph.num_timesteps
    nodes = rng.integers(0, n, size=size)
    ts = rng.integers(0, t_len, size=size)
    ks = rng.integers(0, 4, size=size)
    src = rng.integers(0, n, size=size)
    dst = rng.integers(0, n, size=size)
    t0 = rng.integers(0, t_len, size=size)
    t1 = np.minimum(t0 + rng.integers(0, t_len, size=size), t_len - 1)
    return nodes, ts, ks, src, dst, t0, t1


class TestRandomizedKernelParity:
    """batched == reference twin == scalar methods, per random round."""

    @pytest.mark.parametrize("seed", ROUNDS)
    def test_two_hop_three_way_parity(self, seed):
        engine = random_engine(seed)
        nodes, ts, ks, *_ = traversal_columns(engine, seed + 1)
        with track_dense_materializations() as materialized:
            got = engine.batch_two_hop(nodes, ts, ks)
            twin = engine._reference_batch_two_hop(nodes, ts, ks)
        assert materialized() == 0
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, twin)
        scalar = [
            len(engine.k_hop(v, t, k))
            for v, t, k in zip(nodes.tolist(), ts.tolist(), ks.tolist())
        ]
        np.testing.assert_array_equal(got, scalar)

    @pytest.mark.parametrize("seed", ROUNDS)
    def test_two_hop_default_k_matches_two_hop_neighbors(self, seed):
        engine = random_engine(seed)
        nodes, ts, *_ = traversal_columns(engine, seed + 2, size=60)
        got = engine.batch_two_hop(nodes, ts)  # scalar ks=2 broadcast
        scalar = [
            len(engine.two_hop_neighbors(v, t))
            for v, t in zip(nodes.tolist(), ts.tolist())
        ]
        np.testing.assert_array_equal(got, scalar)

    @pytest.mark.parametrize("seed", ROUNDS)
    def test_temporal_reach_three_way_parity(self, seed):
        engine = random_engine(seed)
        _, _, _, src, dst, t0, t1 = traversal_columns(engine, seed + 3)
        with track_dense_materializations() as materialized:
            got = engine.batch_temporal_reach(src, dst, t0, t1)
            twin = engine._reference_batch_temporal_reach(src, dst, t0, t1)
        assert materialized() == 0
        assert got.dtype == bool
        np.testing.assert_array_equal(got, twin)
        scalar = [
            engine.temporal_reachable(u, v, a, b)
            for u, v, a, b in zip(
                src.tolist(), dst.tolist(), t0.tolist(), t1.tolist()
            )
        ]
        np.testing.assert_array_equal(got, scalar)

    @pytest.mark.parametrize("seed", ROUNDS)
    def test_grouped_dispatch_covers_traversals(self, seed):
        """run_queries_batched answers TWO_HOP / TEMPORAL_REACH via the
        kernels (they are BATCHED_KINDS now) and stays bit-identical."""
        engine = random_engine(seed)
        config = WorkloadConfig(
            num_queries=200, mix=TRAVERSAL_MIX, seed=seed
        )
        queries = WorkloadGenerator(engine.graph, config).generate()
        assert {q.kind for q in queries} <= BATCHED_KINDS
        with track_dense_materializations() as materialized:
            cards, seconds = run_queries_batched(engine, queries)
        assert materialized() == 0
        ref = np.array([_run_query(engine, q) for q in queries])
        np.testing.assert_array_equal(cards, ref)
        assert set(seconds) == {q.kind.value for q in queries}


class TestTraversalEdgeCases:
    @pytest.fixture()
    def engine(self):
        return random_engine(CHAOS_SEED * 7919 + 13, n=30, m=150, t_len=4)

    def test_duplicate_query_ids(self, engine):
        """The same (node, t) repeated gets per-query-distinct packed
        keys — duplicates never collapse or cross-contaminate."""
        nodes = np.array([3, 3, 3, 5, 3])
        ts = np.array([0, 0, 1, 1, 0])
        got = engine.batch_two_hop(nodes, ts)
        np.testing.assert_array_equal(
            got, engine._reference_batch_two_hop(nodes, ts)
        )
        src = np.array([3, 3, 5, 3])
        dst = np.array([7, 7, 7, 3])
        t0 = np.zeros(4, dtype=np.int64)
        t1 = np.full(4, engine.graph.num_timesteps - 1)
        reach = engine.batch_temporal_reach(src, dst, t0, t1)
        np.testing.assert_array_equal(
            reach, engine._reference_batch_temporal_reach(src, dst, t0, t1)
        )
        assert reach[0] == reach[1]  # identical queries, identical answer
        assert reach[3]  # src == dst is always reachable

    def test_empty_batch(self, engine):
        empty = np.zeros(0, dtype=np.int64)
        assert engine.batch_two_hop(empty, empty, empty).size == 0
        out = engine.batch_temporal_reach(empty, empty, empty, empty)
        assert out.size == 0 and out.dtype == bool

    def test_empty_frontier_zero_hops(self, engine):
        """k = 0 queries never expand: the source-only frontier is
        filtered out before the first level."""
        nodes = np.array([0, 1, 2])
        ts = np.zeros(3, dtype=np.int64)
        got = engine.batch_two_hop(nodes, ts, np.array([0, 0, 2]))
        assert got[0] == 0 and got[1] == 0
        assert got[2] == len(engine.two_hop_neighbors(2, 0))

    def test_isolated_nodes(self):
        """Nodes with no edges: two-hop counts 0, reachability only to
        themselves (the empty-frontier path of the shared kernel)."""
        store = TemporalEdgeStore(
            6, 3,
            np.array([0, 1]), np.array([1, 2]), np.array([0, 1]), None,
        )
        engine = GraphQueryEngine(DynamicAttributedGraph.from_store(store))
        isolated = np.array([3, 4, 5])
        ts = np.zeros(3, dtype=np.int64)
        np.testing.assert_array_equal(
            engine.batch_two_hop(isolated, ts), [0, 0, 0]
        )
        reach = engine.batch_temporal_reach(
            isolated, np.array([0, 4, 0]),
            np.zeros(3, dtype=np.int64), np.full(3, 2),
        )
        np.testing.assert_array_equal(reach, [False, True, False])

    def test_edgeless_store(self):
        store = TemporalEdgeStore(
            4, 2, np.zeros(0, int), np.zeros(0, int), np.zeros(0, int), None
        )
        engine = GraphQueryEngine(DynamicAttributedGraph.from_store(store))
        nodes = np.array([0, 1, 2, 3])
        ts = np.array([0, 0, 1, 1])
        np.testing.assert_array_equal(
            engine.batch_two_hop(nodes, ts), [0, 0, 0, 0]
        )
        reach = engine.batch_temporal_reach(
            nodes, nodes[::-1].copy(), np.zeros(4, int), np.ones(4, int)
        )
        np.testing.assert_array_equal(reach, [False, False, False, False])

    def test_out_of_range_rejected(self, engine):
        n = engine.graph.num_nodes
        t_len = engine.graph.num_timesteps
        with pytest.raises(IndexError, match="timesteps out of range"):
            engine.batch_two_hop([0], [t_len])
        with pytest.raises(IndexError, match="node ids out of range"):
            engine.batch_two_hop([n], [0])
        with pytest.raises(IndexError, match="timesteps out of range"):
            engine.batch_temporal_reach([0], [1], [0], [t_len])
        with pytest.raises(IndexError, match="node ids out of range"):
            engine.batch_temporal_reach([-1], [0], [0], [0])

    def test_negative_k_rejected(self, engine):
        with pytest.raises(ValueError, match="k must be >= 0"):
            engine.batch_two_hop([0, 1], [0, 0], [2, -1])

    def test_inverted_window_rejected(self, engine):
        with pytest.raises(ValueError, match="t1 < t0"):
            engine.batch_temporal_reach([0], [1], [2], [1])

    def test_length_mismatch_rejected(self, engine):
        with pytest.raises(ValueError, match="lengths differ"):
            engine.batch_two_hop([0, 1], [0])
        with pytest.raises(ValueError, match="lengths differ"):
            engine.batch_temporal_reach([0], [1, 2], [0], [0])


def _requests(queries, size=40):
    return [
        QueryRequest(queries[i:i + size])
        for i in range(0, len(queries), size)
    ]


class TestExecutorParity:
    """The same traversal workload is bit-identical on every executor."""

    @pytest.fixture(scope="class")
    def workload(self):
        engine = random_engine(CHAOS_SEED * 4241 + 5, n=50, m=400, t_len=5)
        config = WorkloadConfig(
            num_queries=240, mix=TRAVERSAL_MIX, seed=CHAOS_SEED + 11
        )
        queries = WorkloadGenerator(engine.graph, config).generate()
        reference = np.array([_run_query(engine, q) for q in queries])
        return engine.graph, queries, reference

    @pytest.mark.parametrize("executor,workers", [("serial", 1), ("thread", 3)])
    def test_query_service_executors(self, workload, executor, workers):
        graph, queries, reference = workload
        with track_dense_materializations() as materialized:
            with QueryService(
                graph, executor=executor, max_workers=workers
            ) as service:
                results = service.run_batch(_requests(queries))
        assert materialized() == 0
        assert all(r.ok for r in results)
        assert all(r.degraded_kinds == frozenset() for r in results)
        flat = np.concatenate([r.cardinalities for r in results])
        np.testing.assert_array_equal(flat, reference)

    def test_process_executor(self, workload):
        from repro.serving import ProcessQueryService

        graph, queries, reference = workload
        with ProcessQueryService(graph, num_workers=2) as tier:
            results = tier.run_batch(_requests(queries))
        assert all(r.ok for r in results)
        flat = np.concatenate([r.cardinalities for r in results])
        np.testing.assert_array_equal(flat, reference)


class TestLiveEpochParity:
    def test_every_epoch_matches_bulk_oracle(self):
        """Traversal batches through the live epoch-pinned path equal a
        bulk-built store of each pinned epoch's sealed prefix."""
        rng = np.random.default_rng(CHAOS_SEED * 6007 + 3)
        n, t_len, m = 40, 5, 500
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        t = rng.integers(0, t_len, size=m)
        attrs = rng.normal(size=(t_len, n, 2))
        full = TemporalEdgeStore(n, t_len, src, dst, t, attrs)
        config = WorkloadConfig(
            num_queries=150, mix=TRAVERSAL_MIX, seed=CHAOS_SEED + 17
        )
        queries = WorkloadGenerator(
            DynamicAttributedGraph.from_store(full), config
        ).generate()
        requests = _requests(queries, size=30)

        builder = LiveStoreBuilder(n, t_len, attributes=attrs)
        order = np.argsort(t, kind="stable")
        builder.extend(src[order], dst[order], t[order])
        with LiveQueryService(builder, executor="serial") as service:
            for _ in range(t_len):
                builder.seal_step()
                epoch, results = service.run_batch(requests)
                assert epoch == builder.epoch
                keep = t < epoch
                oracle = GraphQueryEngine(
                    DynamicAttributedGraph.from_store(TemporalEdgeStore(
                        n, t_len, src[keep], dst[keep], t[keep], attrs
                    ))
                )
                for request, result in zip(requests, results):
                    assert result.ok
                    assert result.degraded_kinds == frozenset()
                    want = np.array(
                        [_run_query(oracle, q) for q in request.queries]
                    )
                    np.testing.assert_array_equal(
                        result.cardinalities, want
                    )

    def test_queries_against_open_steps(self):
        """Traversals touching unsealed (visible-but-empty) timesteps
        answer through the open-step CSR plans: empty expansions."""
        builder = LiveStoreBuilder(8, 4)
        builder.extend(
            np.array([0, 1]), np.array([1, 2]), np.array([0, 0])
        )
        builder.seal_step()  # epoch 1: t=0 sealed, t=1..3 open
        with LiveQueryService(builder, executor="serial") as service:
            queries = [
                Query(QueryKind.TWO_HOP, 0, (0, 2)),
                Query(QueryKind.TWO_HOP, 2, (0, 2)),  # open step: empty
                Query(QueryKind.TEMPORAL_REACH, 0, (0, 2, 0, 3)),
                Query(QueryKind.TEMPORAL_REACH, 1, (0, 2, 1, 3)),
            ]
            epoch, results = service.run_batch([QueryRequest(queries)])
        assert epoch == 1
        result = results[0]
        assert result.ok
        np.testing.assert_array_equal(
            result.cardinalities, [2, 0, 1, 0]
        )
