"""Parity tests: batched query kernels == per-query reference twins.

The contract under test (docs/workloads.md): every ``batch_*`` kernel
is bit-identical to its ``_reference_batch_*`` per-query loop, in
query order, for any mix of nodes/timesteps including duplicates —
dispatch style must never change an answer.
"""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph
from repro.graph.store import TemporalEdgeStore, track_dense_materializations
from repro.workloads import (
    BATCHED_KINDS,
    GraphQueryEngine,
    Query,
    QueryKind,
    WorkloadConfig,
    WorkloadGenerator,
    execute_workload,
    execute_workload_batched,
    run_queries_batched,
    serving_mix,
)
from repro.workloads.generator import _run_query


def random_graph(seed: int, n: int = 40, m: int = 300, t_len: int = 5,
                 f: int = 2) -> DynamicAttributedGraph:
    rng = np.random.default_rng(seed)
    store = TemporalEdgeStore(
        n, t_len,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
        rng.normal(size=(t_len, n, f)) if f else None,
    )
    return DynamicAttributedGraph.from_store(store)


@pytest.fixture(params=[0, 1])
def engine(request):
    return GraphQueryEngine(random_graph(request.param))


def columns(engine, seed, size=120):
    rng = np.random.default_rng(seed)
    n = engine.graph.num_nodes
    t_len = engine.graph.num_timesteps
    return (
        rng.integers(0, n, size=size),
        rng.integers(0, n, size=size),
        rng.integers(0, t_len, size=size),
    )


class TestKernelParity:
    @pytest.mark.parametrize("direction", ["out", "in", "total"])
    def test_degrees(self, engine, direction):
        nodes, _, ts = columns(engine, 7)
        got = engine.batch_degrees(nodes, ts, direction)
        want = engine._reference_batch_degrees(nodes, ts, direction)
        assert got.dtype == np.int64
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("direction", ["out", "in"])
    def test_neighbors(self, engine, direction):
        nodes, _, ts = columns(engine, 8)
        off, neigh = engine.batch_neighbors(nodes, ts, direction)
        ref_off, ref_neigh = engine._reference_batch_neighbors(
            nodes, ts, direction
        )
        assert np.array_equal(off, ref_off)
        assert np.array_equal(neigh, ref_neigh)

    def test_neighbors_rows_sorted_and_match_scalar(self, engine):
        nodes, _, ts = columns(engine, 9, size=30)
        off, neigh = engine.batch_neighbors(nodes, ts)
        for i, (v, t) in enumerate(zip(nodes.tolist(), ts.tolist())):
            row = neigh[off[i]:off[i + 1]].tolist()
            assert row == engine.out_neighbors(v, t)
            assert row == sorted(row)

    def test_has_edge(self, engine):
        src, dst, ts = columns(engine, 10)
        got = engine.batch_has_edge(src, dst, ts)
        assert got.dtype == bool
        assert np.array_equal(
            got, engine._reference_batch_has_edge(src, dst, ts)
        )
        # force some hits: replay actual store edges
        store = engine.graph.store
        if store.num_edges:
            got = engine.batch_has_edge(store.src, store.dst, store.t)
            assert got.all()

    def test_edge_window_counts(self, engine):
        src, dst, _ = columns(engine, 11)
        t_len = engine.graph.num_timesteps
        rng = np.random.default_rng(12)
        t0 = rng.integers(0, t_len, size=src.size)
        t1 = np.minimum(t0 + rng.integers(0, t_len, size=src.size), t_len - 1)
        got = engine.batch_edge_window_counts(src, dst, t0, t1)
        want = engine._reference_batch_edge_window_counts(src, dst, t0, t1)
        assert np.array_equal(got, want)

    def test_edge_window_full_range_matches_persistence(self, engine):
        src, dst, _ = columns(engine, 13, size=40)
        t_len = engine.graph.num_timesteps
        counts = engine.batch_edge_window_counts(
            src, dst, np.zeros(src.size, int), np.full(src.size, t_len - 1)
        )
        for u, v, c in zip(src.tolist(), dst.tolist(), counts.tolist()):
            assert c / t_len == engine.edge_persistence(u, v)

    def test_attribute_range_counts(self, engine):
        rng = np.random.default_rng(14)
        size = 60
        ts = rng.integers(0, engine.graph.num_timesteps, size=size)
        dims = rng.integers(0, engine.graph.num_attributes, size=size)
        lo = rng.normal(size=size)
        hi = lo + np.abs(rng.normal(size=size))
        got = engine.batch_attribute_range_counts(ts, dims, lo, hi)
        want = engine._reference_batch_attribute_range_counts(
            ts, dims, lo, hi
        )
        assert np.array_equal(got, want)

    def test_duplicate_queries_in_batch(self, engine):
        nodes = np.array([3, 3, 3, 5, 5, 3])
        ts = np.array([0, 0, 1, 1, 1, 0])
        got = engine.batch_degrees(nodes, ts)
        assert np.array_equal(got, engine._reference_batch_degrees(nodes, ts))
        off, neigh = engine.batch_neighbors(nodes, ts)
        ref_off, ref_neigh = engine._reference_batch_neighbors(nodes, ts)
        assert np.array_equal(off, ref_off)
        assert np.array_equal(neigh, ref_neigh)

    def test_scalar_inputs_broadcast(self, engine):
        assert engine.batch_degrees(0, 0).shape == (1,)
        assert engine.batch_has_edge(0, 1, 0).shape == (1,)


class TestKernelValidation:
    def test_empty_batch(self, engine):
        empty = np.zeros(0, dtype=np.int64)
        assert engine.batch_degrees(empty, empty).size == 0
        off, neigh = engine.batch_neighbors(empty, empty)
        assert np.array_equal(off, [0]) and neigh.size == 0
        assert engine.batch_has_edge(empty, empty, empty).size == 0
        assert engine.batch_edge_window_counts(
            empty, empty, empty, empty
        ).size == 0

    def test_length_mismatch_rejected(self, engine):
        with pytest.raises(ValueError, match="lengths differ"):
            engine.batch_degrees([1, 2], [0])
        with pytest.raises(ValueError, match="lengths differ"):
            engine.batch_has_edge([1], [2, 3], [0])

    def test_out_of_range_nodes_rejected(self, engine):
        n = engine.graph.num_nodes
        with pytest.raises(IndexError, match="node ids out of range"):
            engine.batch_degrees([0, n], [0, 0])
        with pytest.raises(IndexError, match="node ids out of range"):
            engine.batch_has_edge([-1], [0], [0])

    def test_out_of_range_timesteps_rejected(self, engine):
        t_len = engine.graph.num_timesteps
        with pytest.raises(IndexError, match="timesteps out of range"):
            engine.batch_degrees([0], [t_len])
        with pytest.raises(IndexError, match="timesteps out of range"):
            engine.batch_neighbors([0], [-1])

    def test_inverted_window_rejected(self, engine):
        with pytest.raises(ValueError, match="t1 < t0"):
            engine.batch_edge_window_counts([0], [1], [2], [1])

    def test_unknown_direction_rejected(self, engine):
        with pytest.raises(ValueError, match="direction"):
            engine.batch_degrees([0], [0], "sideways")
        with pytest.raises(ValueError, match="direction"):
            engine.batch_neighbors([0], [0], "total")


class TestWorkloadBatchedExecution:
    def make_queries(self, graph, mix=None, n=300, seed=3):
        config = WorkloadConfig(
            num_queries=n, mix=mix or serving_mix(), seed=seed
        )
        return WorkloadGenerator(graph, config).generate()

    def test_cardinalities_match_per_query_dispatch(self, engine):
        queries = self.make_queries(engine.graph)
        cards, seconds = run_queries_batched(engine, queries)
        ref = np.array([_run_query(engine, q) for q in queries])
        assert np.array_equal(cards, ref)
        assert set(seconds) == {q.kind.value for q in queries}

    def test_full_default_mix_with_fallback_kinds(self, engine):
        """The per-snapshot analytics kinds (triangle_count,
        degree_topk) — the only ones left without kernels — fall back
        correctly inside a full default mix."""
        queries = self.make_queries(
            engine.graph, mix=WorkloadConfig().mix, n=200
        )
        assert any(q.kind not in BATCHED_KINDS for q in queries)
        cards, _ = run_queries_batched(engine, queries)
        ref = np.array([_run_query(engine, q) for q in queries])
        assert np.array_equal(cards, ref)

    def test_report_matches_per_query_report(self, engine):
        queries = self.make_queries(engine.graph)
        batched = execute_workload_batched(engine, queries)
        per_query = execute_workload(engine, queries)
        assert batched.total_queries == per_query.total_queries
        assert batched.count_by_kind == per_query.count_by_kind
        assert batched.mean_result_size == per_query.mean_result_size
        assert batched.total_seconds > 0
        assert batched.throughput() > 0

    def test_empty_workload_rejected(self, engine):
        with pytest.raises(ValueError, match="empty workload"):
            execute_workload_batched(engine, [])

    def test_no_dense_materialization(self, engine):
        queries = self.make_queries(engine.graph)
        with track_dense_materializations() as materialized:
            run_queries_batched(engine, queries)
        assert materialized() == 0

    def test_edge_window_queries_execute_both_paths(self, engine):
        t_len = engine.graph.num_timesteps
        queries = [
            Query(QueryKind.EDGE_WINDOW, 0, (1, 2, 0, t_len - 1)),
            Query(QueryKind.EDGE_WINDOW, 1, (0, 3, 1, 1)),
        ]
        cards, _ = run_queries_batched(engine, queries)
        assert np.array_equal(
            cards, [_run_query(engine, q) for q in queries]
        )
