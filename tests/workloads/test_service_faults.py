"""QueryService fault tolerance: degradation, deadlines, backpressure."""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph
from repro.graph.store import TemporalEdgeStore
from repro.reliability import (
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    ServiceOverloadedError,
    fault_injector,
)
from repro.workloads import (
    GraphQueryEngine,
    QueryRequest,
    QueryService,
    WorkloadConfig,
    WorkloadGenerator,
    run_queries_batched,
    run_queries_resilient,
    serving_mix,
)


@pytest.fixture(autouse=True)
def _clean_injector():
    fault_injector.reset()
    yield
    fault_injector.reset()


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(6)
    n, m, t_len = 40, 400, 5
    store = TemporalEdgeStore(
        n, t_len,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
        rng.normal(size=(t_len, n, 2)),
    )
    return DynamicAttributedGraph.from_store(store)


@pytest.fixture(scope="module")
def queries(graph):
    config = WorkloadConfig(num_queries=120, mix=serving_mix(), seed=4)
    return WorkloadGenerator(graph, config).generate()


@pytest.fixture(scope="module")
def requests(queries):
    return [
        QueryRequest(queries[i:i + 30]) for i in range(0, len(queries), 30)
    ]


@pytest.fixture(scope="module")
def reference(graph, requests):
    with QueryService(graph, executor="serial") as svc:
        results = svc.run_batch(requests)
    assert all(r.ok for r in results)
    return [r.cardinalities.copy() for r in results]


class TestKernelDegradation:
    def test_strict_path_propagates_kernel_faults(self, graph, queries):
        engine = GraphQueryEngine(graph)
        with fault_injector.arm({"query.batch_kernel": FaultPlan()}):
            with pytest.raises(InjectedFault):
                run_queries_batched(engine, queries)

    def test_resilient_path_degrades_bit_identically(self, graph, queries):
        engine = GraphQueryEngine(graph)
        clean_cards, _ = run_queries_batched(engine, queries)
        with fault_injector.arm({"query.batch_kernel": FaultPlan()}):
            cards, _, degraded = run_queries_resilient(engine, queries)
        np.testing.assert_array_equal(cards, clean_cards)
        assert degraded  # every batched class fell back
        clean_again, _, none_degraded = run_queries_resilient(engine, queries)
        np.testing.assert_array_equal(clean_again, clean_cards)
        assert none_degraded == frozenset()

    def test_service_reports_degraded_kinds(self, graph, requests, reference):
        with fault_injector.arm({"query.batch_kernel": FaultPlan()}):
            with QueryService(graph, executor="serial") as svc:
                results = svc.run_batch(requests)
        assert all(r.ok for r in results)
        assert all(r.degraded_kinds for r in results)
        for result, expected in zip(results, reference):
            np.testing.assert_array_equal(result.cardinalities, expected)


class TestTraversalKernelDegradation:
    """The frontier-vectorized traversal kernels degrade like every
    other batched class: a ``query.batch_kernel`` fault sends
    TWO_HOP / TEMPORAL_REACH back to their per-query reference twins
    with bit-identical results, and the degradation is reported."""

    TRAVERSAL_KINDS = {"two_hop", "temporal_reach"}

    @pytest.fixture(scope="class")
    def traversal_workload(self, graph):
        from repro.workloads import QueryKind

        config = WorkloadConfig(
            num_queries=90,
            mix={QueryKind.TWO_HOP: 0.5, QueryKind.TEMPORAL_REACH: 0.5},
            seed=9,
        )
        queries = WorkloadGenerator(graph, config).generate()
        requests = [
            QueryRequest(queries[i:i + 30]) for i in range(0, 90, 30)
        ]
        with QueryService(graph, executor="serial") as svc:
            clean = svc.run_batch(requests)
        assert all(r.ok for r in clean)
        assert all(r.degraded_kinds == frozenset() for r in clean)
        return requests, [r.cardinalities.copy() for r in clean]

    @pytest.mark.parametrize("executor,workers", [("serial", 1), ("thread", 3)])
    def test_traversal_kinds_degrade_bit_identically(
        self, graph, traversal_workload, executor, workers
    ):
        requests, reference = traversal_workload
        with fault_injector.arm({"query.batch_kernel": FaultPlan()}):
            with QueryService(
                graph, executor=executor, max_workers=workers
            ) as svc:
                results = svc.run_batch(requests)
        assert all(r.ok for r in results)
        for result in results:
            assert self.TRAVERSAL_KINDS <= set(result.degraded_kinds)
        for result, expected in zip(results, reference):
            np.testing.assert_array_equal(result.cardinalities, expected)

    def test_resilient_loop_degrades_traversals(self, graph, traversal_workload):
        requests, reference = traversal_workload
        engine = GraphQueryEngine(graph)
        queries = [q for r in requests for q in r.queries]
        expected = np.concatenate(reference)
        with fault_injector.arm({"query.batch_kernel": FaultPlan()}):
            cards, _, degraded = run_queries_resilient(engine, queries)
        assert self.TRAVERSAL_KINDS <= set(degraded)
        np.testing.assert_array_equal(cards, expected)


class TestCacheDegradation:
    def test_cache_fault_bypasses_without_changing_results(
        self, graph, requests, reference
    ):
        with fault_injector.arm({"cache.plan": FaultPlan(rate=0.5)}, seed=1):
            with QueryService(graph, executor="serial") as svc:
                results = svc.run_batch(requests)
                stats = svc.plan_cache_stats()
        assert all(r.ok for r in results)
        assert stats.bypasses > 0
        for result, expected in zip(results, reference):
            np.testing.assert_array_equal(result.cardinalities, expected)

    def test_eviction_racing_concurrent_queries(self, graph, requests,
                                                reference):
        """A plan cache too small to hold anything (evicting constantly
        under a concurrent request stream) never changes results."""
        with QueryService(
            graph,
            executor="thread",
            max_workers=4,
            cache_memory_budget_bytes=1,
        ) as svc:
            for _ in range(3):  # repeated batches: evict/rebuild churn
                results = svc.run_batch(requests)
                assert all(r.ok for r in results)
                for result, expected in zip(results, reference):
                    np.testing.assert_array_equal(
                        result.cardinalities, expected
                    )
            assert svc.plan_cache_stats().evictions > 0


class TestRequestIsolation:
    def test_injected_fault_is_structured_per_request(
        self, graph, requests, reference
    ):
        plans = {"query.request": FaultPlan(rate=1.0, max_triggers=1)}
        with fault_injector.arm(plans):
            with QueryService(graph, executor="serial") as svc:
                results = svc.run_batch(requests)
        failed = [r for r in results if not r.ok]
        assert len(failed) == 1
        assert failed[0].error.error_type == "InjectedFault"
        assert failed[0].cardinalities is None
        for result, expected in zip(results, reference):
            if result.ok:
                np.testing.assert_array_equal(result.cardinalities, expected)

    def test_retry_policy_heals_and_counts_attempts(
        self, graph, requests, reference
    ):
        plans = {"query.request": FaultPlan(rate=1.0, max_triggers=1)}
        policy = RetryPolicy(max_attempts=2, base_delay_seconds=0.001,
                             jitter=0.0)
        with fault_injector.arm(plans):
            with QueryService(
                graph, executor="serial", retry_policy=policy
            ) as svc:
                results = svc.run_batch(requests)
        assert all(r.ok for r in results)
        assert results[0].attempts == 2
        for result, expected in zip(results, reference):
            np.testing.assert_array_equal(result.cardinalities, expected)


class TestDeadlinesAndBackpressure:
    def test_deadline_must_be_positive(self, graph):
        with pytest.raises(ValueError, match="deadline_seconds"):
            QueryService(graph, deadline_seconds=-1.0)

    def test_thread_deadline_answers_instead_of_hanging(
        self, graph, requests
    ):
        plans = {
            "query.request": FaultPlan(
                kind="delay", delay_seconds=1.0, rate=1.0, max_triggers=1
            )
        }
        with fault_injector.arm(plans):
            with QueryService(
                graph, executor="thread", max_workers=2,
                deadline_seconds=0.2,
            ) as svc:
                results = svc.run_batch(requests)
        expired = [r for r in results if not r.ok]
        assert len(expired) == 1
        assert expired[0].error.error_type == "DeadlineExceededError"

    def test_overflow_is_shed_not_queued(self, graph, requests):
        with QueryService(graph, executor="serial", max_pending=1) as svc:
            with pytest.raises(ServiceOverloadedError):
                svc.run_batch(requests)
            assert svc.admission_stats()["shed"] == len(requests)
            assert all(r.ok for r in svc.run_batch(requests[:1]))

    def test_run_workload_reports_only_completed(self, graph):
        """Failed requests stay visible on results; the report counts
        completed queries only."""
        config = WorkloadConfig(num_queries=60, mix=serving_mix(), seed=2)
        plans = {"query.request": FaultPlan(rate=1.0, max_triggers=1)}
        with fault_injector.arm(plans):
            with QueryService(graph, executor="serial") as svc:
                report, results = svc.run_workload(config, batch_size=20)
        failed = [r for r in results if not r.ok]
        assert len(failed) == 1
        assert report.total_queries == 60 - len(failed[0].request)
