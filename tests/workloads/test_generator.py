"""Tests for workload generation and execution."""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph
from repro.workloads import (
    GraphQueryEngine,
    Query,
    QueryKind,
    WorkloadConfig,
    WorkloadGenerator,
    execute_workload,
)


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    n, t = 20, 3
    adj = (rng.random((t, n, n)) < 0.15).astype(float)
    for k in range(t):
        np.fill_diagonal(adj[k], 0.0)
    attrs = rng.normal(size=(t, n, 2))
    return DynamicAttributedGraph.from_tensors(adj, attrs)


class TestConfig:
    def test_defaults_valid(self):
        WorkloadConfig().validate()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(num_queries=0), "num_queries"),
            (dict(mix={}), "mix"),
            (dict(mix={QueryKind.HAS_EDGE: -1.0}), "weights"),
            (dict(zipf_s=-0.1), "zipf_s"),
            (dict(recent_bias=1.0), "recent_bias"),
            (dict(range_width_quantile=0.0), "range_width"),
        ],
    )
    def test_invalid_settings(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            WorkloadConfig(**kwargs).validate()


class TestGenerator:
    def test_deterministic_per_seed(self, graph):
        cfg = WorkloadConfig(num_queries=50, seed=3)
        a = WorkloadGenerator(graph, cfg).generate()
        b = WorkloadGenerator(graph, cfg).generate()
        assert a == b

    def test_query_count(self, graph):
        queries = WorkloadGenerator(
            graph, WorkloadConfig(num_queries=80)
        ).generate()
        assert len(queries) == 80

    def test_mix_proportions_roughly_respected(self, graph):
        cfg = WorkloadConfig(
            num_queries=600,
            mix={QueryKind.OUT_NEIGHBORS: 0.8, QueryKind.HAS_EDGE: 0.2},
            seed=0,
        )
        queries = WorkloadGenerator(graph, cfg).generate()
        share = sum(
            1 for q in queries if q.kind == QueryKind.OUT_NEIGHBORS
        ) / len(queries)
        assert 0.7 < share < 0.9

    def test_zipf_skew_prefers_hubs(self, graph):
        cfg = WorkloadConfig(
            num_queries=500,
            mix={QueryKind.OUT_NEIGHBORS: 1.0},
            zipf_s=1.5,
            seed=0,
        )
        gen = WorkloadGenerator(graph, cfg)
        queries = gen.generate()
        hub = gen._popularity_rank[0]
        tail = gen._popularity_rank[-1]
        hub_hits = sum(1 for q in queries if q.args[0] == hub)
        tail_hits = sum(1 for q in queries if q.args[0] == tail)
        assert hub_hits > tail_hits

    def test_recent_bias_prefers_late_snapshots(self, graph):
        cfg = WorkloadConfig(
            num_queries=500,
            mix={QueryKind.OUT_NEIGHBORS: 1.0},
            recent_bias=0.8,
            seed=0,
        )
        queries = WorkloadGenerator(graph, cfg).generate()
        last = sum(1 for q in queries if q.t == graph.num_timesteps - 1)
        first = sum(1 for q in queries if q.t == 0)
        assert last > first

    def test_attribute_free_graph_skips_range_queries(self):
        rng = np.random.default_rng(1)
        adj = (rng.random((2, 10, 10)) < 0.2).astype(float)
        for k in range(2):
            np.fill_diagonal(adj[k], 0.0)
        g = DynamicAttributedGraph.from_tensors(adj)
        cfg = WorkloadConfig(
            num_queries=40,
            mix={QueryKind.ATTRIBUTE_RANGE: 0.5, QueryKind.HAS_EDGE: 0.5},
            seed=0,
        )
        queries = WorkloadGenerator(g, cfg).generate()
        assert all(q.kind != QueryKind.ATTRIBUTE_RANGE for q in queries)
        assert queries  # has_edge queries survive

    def test_temporal_reach_windows_ordered(self, graph):
        cfg = WorkloadConfig(
            num_queries=100, mix={QueryKind.TEMPORAL_REACH: 1.0}, seed=2
        )
        for q in WorkloadGenerator(graph, cfg).generate():
            u, v, t0, t1 = q.args
            assert t0 <= t1


class TestExecution:
    def test_report_shape(self, graph):
        engine = GraphQueryEngine(graph)
        queries = WorkloadGenerator(
            graph, WorkloadConfig(num_queries=120, seed=1)
        ).generate()
        report = execute_workload(engine, queries)
        assert report.total_queries == len(queries)
        assert report.total_seconds > 0
        assert report.throughput() > 0
        assert sum(report.count_by_kind.values()) == len(queries)
        for kind, lat in report.latency_by_kind.items():
            assert lat >= 0
            assert report.mean_result_size[kind] >= 0

    def test_empty_workload_rejected(self, graph):
        with pytest.raises(ValueError, match="empty workload"):
            execute_workload(GraphQueryEngine(graph), [])

    def test_every_kind_executes(self, graph):
        engine = GraphQueryEngine(graph)
        queries = [
            Query(QueryKind.OUT_NEIGHBORS, 0, (1,)),
            Query(QueryKind.IN_NEIGHBORS, 0, (1,)),
            Query(QueryKind.HAS_EDGE, 0, (0, 1)),
            Query(QueryKind.TWO_HOP, 0, (1, 2)),
            Query(QueryKind.TRIANGLE_COUNT, 0, ()),
            Query(QueryKind.ATTRIBUTE_RANGE, 0, (0, -1.0, 1.0)),
            Query(QueryKind.DEGREE_TOPK, 0, (3,)),
            Query(QueryKind.TEMPORAL_REACH, 0, (0, 5, 0, 2)),
        ]
        report = execute_workload(engine, queries)
        assert len(report.count_by_kind) == 8
