"""SnapshotPlanCache: LRU semantics, budget sizing, thread safety."""

import threading

import numpy as np
import pytest

from repro.graph.store import TemporalEdgeStore
from repro.workloads import SnapshotPlanCache


@pytest.fixture
def store():
    rng = np.random.default_rng(0)
    n, m, t_len = 30, 200, 6
    return TemporalEdgeStore(
        n, t_len,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
        rng.normal(size=(t_len, n, 2)),
    )


def reference_csr(store, t):
    src, dst = store.edges_at(t)
    counts = np.bincount(src, minlength=store.num_nodes)
    indptr = np.zeros(store.num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst


class TestPlans:
    def test_csr_matches_store(self, store):
        cache = SnapshotPlanCache(store)
        for t in range(store.num_timesteps):
            indptr, indices = cache.csr(t)
            ref_indptr, ref_indices = store.csr_at(t)
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(indices, ref_indices)

    def test_csc_matches_store(self, store):
        cache = SnapshotPlanCache(store)
        for t in range(store.num_timesteps):
            indptr, indices = cache.csc(t)
            ref_indptr, ref_indices = store.csc_at(t)
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(indices, ref_indices)

    def test_does_not_populate_store_caches(self, store):
        cache = SnapshotPlanCache(store)
        cache.csr(0)
        cache.csc(0)
        assert not store._csr_cache and not store._csc_cache

    def test_temporal_keys_sorted_strictly_increasing(self, store):
        keys = SnapshotPlanCache(store).temporal_keys()
        assert np.array_equal(keys, store.temporal_edge_keys())
        assert (np.diff(keys) > 0).all()

    def test_pair_keys_sorted(self, store):
        keys = SnapshotPlanCache(store).pair_keys()
        assert keys.size == store.num_edges
        assert (np.diff(keys) > 0).all()  # dedup makes them strict too

    def test_attribute_order_sorts_values(self, store):
        cache = SnapshotPlanCache(store)
        order = cache.attribute_order(2, 1)
        values = store.attributes[2, :, 1]
        assert (np.diff(values[order]) >= 0).all()


class TestLRU:
    def test_hits_and_misses_counted(self, store):
        cache = SnapshotPlanCache(store)
        cache.csr(0)
        cache.csr(0)
        cache.csr(1)
        stats = cache.stats()
        assert stats.misses == 2
        assert stats.hits == 1
        assert stats.resident_plans == 2
        assert 0 < stats.hit_rate < 1

    def test_budget_evicts_lru_first(self, store):
        # budget fits roughly one CSC plan; touching many evicts oldest
        cache = SnapshotPlanCache(store, max_plans=2)
        cache.csc(0)
        cache.csc(1)
        cache.csc(0)  # refresh 0 -> 1 is now LRU
        cache.csc(2)  # evicts 1
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.resident_plans == 2
        cache.csc(0)  # still resident
        assert cache.stats().hits == 2

    def test_memory_budget_bounds_resident_bytes(self, store):
        budget = 1024
        cache = SnapshotPlanCache(store, memory_budget_bytes=budget)
        for t in range(store.num_timesteps):
            cache.csc(t)
        stats = cache.stats()
        assert stats.evictions > 0
        # the newest plan may alone exceed the budget; with several
        # resident plans the total must respect it
        if stats.resident_plans > 1:
            assert stats.resident_bytes <= budget

    def test_newest_plan_survives_tiny_budget(self, store):
        cache = SnapshotPlanCache(store, memory_budget_bytes=1)
        for t in range(store.num_timesteps):
            indptr, indices = cache.csr(t)
            ref_indptr, ref_indices = reference_csr(store, t)
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(indices, ref_indices)
            assert cache.stats().resident_plans == 1

    def test_eviction_never_changes_results(self, store):
        bounded = SnapshotPlanCache(store, memory_budget_bytes=1)
        unbounded = SnapshotPlanCache(store)
        for t in list(range(store.num_timesteps)) * 2:
            a, b = bounded.csc(t), unbounded.csc(t)
            assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        assert bounded.stats().evictions > 0
        assert unbounded.stats().evictions == 0

    def test_zero_copy_views_are_free(self, store):
        cache = SnapshotPlanCache(store)
        cache.csr(0)
        indptr, indices = cache.csr(0)
        owned = cache.stats().resident_bytes
        assert owned == indptr.nbytes  # indices is a store-column view
        assert indices.base is not None

    def test_clear_counts_evictions(self, store):
        cache = SnapshotPlanCache(store)
        cache.csr(0)
        cache.csr(1)
        cache.clear()
        stats = cache.stats()
        assert stats.resident_plans == 0
        assert stats.resident_bytes == 0
        assert stats.evictions == 2

    def test_invalid_settings_rejected(self, store):
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            SnapshotPlanCache(store, memory_budget_bytes=0)
        with pytest.raises(ValueError, match="max_plans"):
            SnapshotPlanCache(store, max_plans=0)

    def test_repr_shows_residency(self, store):
        cache = SnapshotPlanCache(store, memory_budget_bytes=1 << 20)
        cache.csr(0)
        text = repr(cache)
        assert "plans=1" in text and "budget=" in text


class TestThreadSafety:
    def test_concurrent_lookups_consistent(self, store):
        cache = SnapshotPlanCache(store, memory_budget_bytes=4096)
        expected = {
            t: reference_csr(store, t) for t in range(store.num_timesteps)
        }
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(200):
                t = int(rng.integers(0, store.num_timesteps))
                indptr, indices = cache.csr(t)
                if not (
                    np.array_equal(indptr, expected[t][0])
                    and np.array_equal(indices, expected[t][1])
                ):
                    errors.append(t)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        stats = cache.stats()
        assert stats.hits + stats.misses == 800
