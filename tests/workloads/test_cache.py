"""SnapshotPlanCache: LRU semantics, budget sizing, thread safety."""

import threading

import numpy as np
import pytest

from repro.graph.store import TemporalEdgeStore
from repro.workloads import SnapshotPlanCache


@pytest.fixture
def store():
    rng = np.random.default_rng(0)
    n, m, t_len = 30, 200, 6
    return TemporalEdgeStore(
        n, t_len,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.integers(0, t_len, size=m),
        rng.normal(size=(t_len, n, 2)),
    )


def reference_csr(store, t):
    src, dst = store.edges_at(t)
    counts = np.bincount(src, minlength=store.num_nodes)
    indptr = np.zeros(store.num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst


class TestPlans:
    def test_csr_matches_store(self, store):
        cache = SnapshotPlanCache(store)
        for t in range(store.num_timesteps):
            indptr, indices = cache.csr(t)
            ref_indptr, ref_indices = store.csr_at(t)
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(indices, ref_indices)

    def test_csc_matches_store(self, store):
        cache = SnapshotPlanCache(store)
        for t in range(store.num_timesteps):
            indptr, indices = cache.csc(t)
            ref_indptr, ref_indices = store.csc_at(t)
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(indices, ref_indices)

    def test_does_not_populate_store_caches(self, store):
        cache = SnapshotPlanCache(store)
        cache.csr(0)
        cache.csc(0)
        assert not store._csr_cache and not store._csc_cache

    def test_temporal_keys_sorted_strictly_increasing(self, store):
        keys = SnapshotPlanCache(store).temporal_keys()
        assert np.array_equal(keys, store.temporal_edge_keys())
        assert (np.diff(keys) > 0).all()

    def test_pair_keys_sorted(self, store):
        keys = SnapshotPlanCache(store).pair_keys()
        assert keys.size == store.num_edges
        assert (np.diff(keys) > 0).all()  # dedup makes them strict too

    def test_attribute_order_sorts_values(self, store):
        cache = SnapshotPlanCache(store)
        order = cache.attribute_order(2, 1)
        values = store.attributes[2, :, 1]
        assert (np.diff(values[order]) >= 0).all()


class TestLRU:
    def test_hits_and_misses_counted(self, store):
        cache = SnapshotPlanCache(store)
        cache.csr(0)
        cache.csr(0)
        cache.csr(1)
        stats = cache.stats()
        assert stats.misses == 2
        assert stats.hits == 1
        assert stats.resident_plans == 2
        assert 0 < stats.hit_rate < 1

    def test_budget_evicts_lru_first(self, store):
        # budget fits roughly one CSC plan; touching many evicts oldest
        cache = SnapshotPlanCache(store, max_plans=2)
        cache.csc(0)
        cache.csc(1)
        cache.csc(0)  # refresh 0 -> 1 is now LRU
        cache.csc(2)  # evicts 1
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.resident_plans == 2
        cache.csc(0)  # still resident
        assert cache.stats().hits == 2

    def test_memory_budget_bounds_resident_bytes(self, store):
        budget = 1024
        cache = SnapshotPlanCache(store, memory_budget_bytes=budget)
        for t in range(store.num_timesteps):
            cache.csc(t)
        stats = cache.stats()
        assert stats.evictions > 0
        # the newest plan may alone exceed the budget; with several
        # resident plans the total must respect it
        if stats.resident_plans > 1:
            assert stats.resident_bytes <= budget

    def test_newest_plan_survives_tiny_budget(self, store):
        cache = SnapshotPlanCache(store, memory_budget_bytes=1)
        for t in range(store.num_timesteps):
            indptr, indices = cache.csr(t)
            ref_indptr, ref_indices = reference_csr(store, t)
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(indices, ref_indices)
            assert cache.stats().resident_plans == 1

    def test_eviction_never_changes_results(self, store):
        bounded = SnapshotPlanCache(store, memory_budget_bytes=1)
        unbounded = SnapshotPlanCache(store)
        for t in list(range(store.num_timesteps)) * 2:
            a, b = bounded.csc(t), unbounded.csc(t)
            assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        assert bounded.stats().evictions > 0
        assert unbounded.stats().evictions == 0

    def test_zero_copy_views_are_free(self, store):
        cache = SnapshotPlanCache(store)
        cache.csr(0)
        indptr, indices = cache.csr(0)
        owned = cache.stats().resident_bytes
        assert owned == indptr.nbytes  # indices is a store-column view
        assert indices.base is not None

    def test_clear_counts_evictions(self, store):
        cache = SnapshotPlanCache(store)
        cache.csr(0)
        cache.csr(1)
        cache.clear()
        stats = cache.stats()
        assert stats.resident_plans == 0
        assert stats.resident_bytes == 0
        assert stats.evictions == 2

    def test_invalid_settings_rejected(self, store):
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            SnapshotPlanCache(store, memory_budget_bytes=0)
        with pytest.raises(ValueError, match="max_plans"):
            SnapshotPlanCache(store, max_plans=0)

    def test_repr_shows_residency(self, store):
        cache = SnapshotPlanCache(store, memory_budget_bytes=1 << 20)
        cache.csr(0)
        text = repr(cache)
        assert "plans=1" in text and "budget=" in text


class TestInvalidation:
    """invalidate_step / invalidate_store_plans: the live tier's hooks."""

    def test_invalidate_step_drops_only_that_timestep(self, store):
        cache = SnapshotPlanCache(store)
        for t in range(3):
            cache.csr(t)
            cache.csc(t)
            cache.attribute_order(t, 0)
        dropped = cache.invalidate_step(1)
        assert dropped == 3  # csr + csc + attr for t=1
        stats = cache.stats()
        assert stats.invalidations == 3
        assert stats.resident_plans == 6
        # t=0 and t=2 plans are still hits; t=1 rebuilds as misses
        cache.csr(0)
        cache.csr(2)
        assert cache.stats().hits == 2
        cache.csr(1)
        assert cache.stats().misses == 10

    def test_invalidate_step_keys_extension_variants(self, store):
        # the live tier's open-step keys share the head and timestep
        cache = SnapshotPlanCache(store)

        def build():
            indptr, indices = store.compute_csr_at(2)
            return (indptr, indices), indptr.nbytes

        cache.get_or_build(("csr", 2, "open"), build)
        cache.csr(2)
        assert cache.invalidate_step(2) == 2
        assert cache.stats().resident_plans == 0

    def test_invalidate_store_plans_spares_step_plans(self, store):
        cache = SnapshotPlanCache(store)
        cache.temporal_keys()
        cache.pair_keys()
        cache.csr(0)
        assert cache.invalidate_store_plans() == 2
        stats = cache.stats()
        assert stats.invalidations == 2
        assert stats.resident_plans == 1
        cache.csr(0)
        assert cache.stats().hits == 1

    def test_owned_bytes_accounting_exact(self, store):
        cache = SnapshotPlanCache(store)
        cache.csc(0)
        cache.csc(1)
        cache.temporal_keys()
        before = cache.stats().resident_bytes
        assert before > 0
        cache.invalidate_step(0)
        cache.invalidate_store_plans()
        after = cache.stats().resident_bytes
        # what remains is exactly the csc(1) plan's owned bytes
        cache.clear()
        cache.csc(1)
        assert after == cache.stats().resident_bytes

    def test_invalidation_never_changes_results(self, store):
        cache = SnapshotPlanCache(store)
        pristine = SnapshotPlanCache(store)
        rng = np.random.default_rng(7)
        for _ in range(60):
            t = int(rng.integers(0, store.num_timesteps))
            roll = rng.random()
            if roll < 0.2:
                cache.invalidate_step(t)
            elif roll < 0.3:
                cache.invalidate_store_plans()
            a, b = cache.csc(t), pristine.csc(t)
            assert np.array_equal(a[0], b[0])
            assert np.array_equal(a[1], b[1])
            assert np.array_equal(cache.temporal_keys(),
                                  pristine.temporal_keys())
        assert cache.stats().invalidations > 0

    def test_budget_never_exceeded_mid_invalidation(self, store):
        budget = 4096
        cache = SnapshotPlanCache(store, memory_budget_bytes=budget)
        rng = np.random.default_rng(11)
        for _ in range(80):
            t = int(rng.integers(0, store.num_timesteps))
            cache.csc(t)
            if rng.random() < 0.3:
                cache.invalidate_step(int(rng.integers(0,
                                                       store.num_timesteps)))
            stats = cache.stats()
            if stats.resident_plans > 1:
                assert stats.resident_bytes <= budget
            assert stats.resident_bytes >= 0

    def test_invalidating_absent_keys_is_a_noop(self, store):
        cache = SnapshotPlanCache(store)
        assert cache.invalidate_step(0) == 0
        assert cache.invalidate_store_plans() == 0
        stats = cache.stats()
        assert stats.invalidations == 0

    def test_reconciliation_identity_with_invalidations(self, store):
        cache = SnapshotPlanCache(store, max_plans=4)
        rng = np.random.default_rng(13)
        for _ in range(100):
            t = int(rng.integers(0, store.num_timesteps))
            cache.csr(t)
            cache.csc(t)
            if rng.random() < 0.25:
                cache.invalidate_step(t)
        stats = cache.stats()
        assert stats.evictions > 0 and stats.invalidations > 0
        assert stats.resident_plans == (
            stats.misses - stats.evictions - stats.invalidations
        )


class TestThreadSafety:
    def test_concurrent_lookups_consistent(self, store):
        cache = SnapshotPlanCache(store, memory_budget_bytes=4096)
        expected = {
            t: reference_csr(store, t) for t in range(store.num_timesteps)
        }
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(200):
                t = int(rng.integers(0, store.num_timesteps))
                indptr, indices = cache.csr(t)
                if not (
                    np.array_equal(indptr, expected[t][0])
                    and np.array_equal(indices, expected[t][1])
                ):
                    errors.append(t)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        stats = cache.stats()
        assert stats.hits + stats.misses == 800
