"""Correctness tests for the graph query engine."""

import numpy as np
import pytest

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.workloads import GraphQueryEngine


def build_graph():
    """Two snapshots over 6 nodes with known structure.

    t=0: 0->1, 1->2, 2->0 (directed triangle), 3->4
    t=1: 0->1, 4->5
    """
    n = 6
    a0 = np.zeros((n, n))
    for u, v in [(0, 1), (1, 2), (2, 0), (3, 4)]:
        a0[u, v] = 1.0
    a1 = np.zeros((n, n))
    for u, v in [(0, 1), (4, 5)]:
        a1[u, v] = 1.0
    attrs0 = np.arange(n, dtype=float)[:, None] * np.array([[1.0, -1.0]])
    attrs1 = attrs0 + 10.0
    return DynamicAttributedGraph(
        [GraphSnapshot(a0, attrs0), GraphSnapshot(a1, attrs1)]
    )


@pytest.fixture
def engine():
    return GraphQueryEngine(build_graph())


class TestLookups:
    def test_out_neighbors(self, engine):
        assert engine.out_neighbors(0, 0) == [1]
        assert engine.out_neighbors(3, 0) == [4]
        assert engine.out_neighbors(3, 1) == []

    def test_in_neighbors(self, engine):
        assert engine.in_neighbors(0, 0) == [2]
        assert engine.in_neighbors(1, 1) == [0]

    def test_has_edge(self, engine):
        assert engine.has_edge(0, 1, 0)
        assert not engine.has_edge(1, 0, 0)
        assert not engine.has_edge(3, 4, 1)

    def test_bad_node_rejected(self, engine):
        with pytest.raises(IndexError, match="node"):
            engine.out_neighbors(99, 0)

    def test_bad_timestep_rejected(self, engine):
        with pytest.raises(IndexError, match="timestep"):
            engine.out_neighbors(0, 5)


class TestTraversals:
    def test_k_hop_directed(self, engine):
        assert engine.k_hop(0, 0, 1) == {1}
        assert engine.k_hop(0, 0, 2) == {1, 2}
        assert engine.k_hop(0, 0, 3) == {1, 2}  # cycle closes back to 0

    def test_k_hop_undirected_reaches_more(self, engine):
        directed = engine.k_hop(4, 0, 2, directed=True)
        undirected = engine.k_hop(4, 0, 2, directed=False)
        assert directed == set()
        assert 3 in undirected

    def test_k_hop_zero(self, engine):
        assert engine.k_hop(0, 0, 0) == set()

    def test_k_hop_negative_rejected(self, engine):
        with pytest.raises(ValueError, match="k must"):
            engine.k_hop(0, 0, -1)

    def test_k_hop_monotone_in_k(self, engine):
        prev = set()
        for k in range(4):
            cur = engine.k_hop(0, 0, k)
            assert prev <= cur
            prev = cur


class TestAnalytics:
    def test_triangle_count(self, engine):
        # directed 3-cycle symmetrizes to one undirected triangle
        assert engine.triangle_count(0) == 1
        assert engine.triangle_count(1) == 0

    def test_degree_topk(self, engine):
        top = engine.degree_topk(0, 2, direction="total")
        # nodes 0,1,2 all have total degree 2; ties break by id
        assert top == [0, 1]

    def test_degree_topk_directions(self, engine):
        assert engine.degree_topk(0, 1, direction="out")[0] in {0, 1, 2, 3}
        with pytest.raises(ValueError, match="direction"):
            engine.degree_topk(0, 1, direction="sideways")

    def test_attribute_range(self, engine):
        # dim 0 at t=0 holds values 0..5
        assert engine.attribute_range(0, 0, 1.5, 3.5) == [2, 3]
        assert engine.attribute_range(0, 0, -10, 10) == [0, 1, 2, 3, 4, 5]

    def test_attribute_range_empty(self, engine):
        assert engine.attribute_range(0, 0, 100, 200) == []

    def test_attribute_range_bad_dim(self, engine):
        with pytest.raises(IndexError, match="attribute"):
            engine.attribute_range(0, 7, 0, 1)


class TestTemporal:
    def test_reachable_within_one_snapshot(self, engine):
        assert engine.temporal_reachable(0, 2, 0, 0)

    def test_reachable_across_snapshots(self, engine):
        # 3->4 at t=0, then 4->5 at t=1
        assert engine.temporal_reachable(3, 5, 0, 1)
        assert not engine.temporal_reachable(3, 5, 1, 1)

    def test_time_respect_blocks_backwards(self, engine):
        # 4->5 only at t=1; restricting to t=0 fails
        assert not engine.temporal_reachable(4, 5, 0, 0)

    def test_self_reachable(self, engine):
        assert engine.temporal_reachable(2, 2, 0, 0)

    def test_empty_window_rejected(self, engine):
        with pytest.raises(ValueError, match="window"):
            engine.temporal_reachable(0, 1, 1, 0)

    def test_edge_persistence(self, engine):
        assert engine.edge_persistence(0, 1) == 1.0
        assert engine.edge_persistence(3, 4) == 0.5
        assert engine.edge_persistence(5, 0) == 0.0

    def test_edge_window_count(self, engine):
        assert engine.edge_window_count(0, 1, 0, 1) == 2
        assert engine.edge_window_count(3, 4, 0, 1) == 1
        assert engine.edge_window_count(3, 4, 1, 1) == 0

    def test_edge_window_count_rejects_empty_window(self, engine):
        with pytest.raises(ValueError, match="window"):
            engine.edge_window_count(0, 1, 1, 0)


class TestEdgeCases:
    """Empty stores, bad timesteps, duplicate batch entries, eviction."""

    def make_empty_engine(self, **kwargs):
        from repro.graph.store import TemporalEdgeStore

        store = TemporalEdgeStore(5, 3, [], [], [])
        return GraphQueryEngine(
            DynamicAttributedGraph.from_store(store), **kwargs
        )

    def test_empty_store_scalar_queries(self):
        engine = self.make_empty_engine()
        assert engine.out_neighbors(0, 0) == []
        assert engine.in_neighbors(4, 2) == []
        assert not engine.has_edge(0, 1, 1)
        assert engine.k_hop(0, 0, 3) == set()
        assert engine.triangle_count(0) == 0
        assert engine.edge_persistence(0, 1) == 0.0
        assert not engine.temporal_reachable(0, 1, 0, 2)

    def test_empty_store_batched_kernels(self):
        import numpy as np

        engine = self.make_empty_engine()
        nodes = np.array([0, 1, 4, 1])
        ts = np.array([0, 1, 2, 0])
        assert np.array_equal(engine.batch_degrees(nodes, ts), [0, 0, 0, 0])
        off, neigh = engine.batch_neighbors(nodes, ts)
        assert np.array_equal(off, [0, 0, 0, 0, 0]) and neigh.size == 0
        assert not engine.batch_has_edge(nodes, nodes[::-1], ts).any()
        assert np.array_equal(
            engine.batch_edge_window_counts(
                nodes, nodes[::-1], np.zeros(4, int), np.full(4, 2)
            ),
            [0, 0, 0, 0],
        )

    def test_out_of_range_timestep_scalar_and_batched(self, engine):
        with pytest.raises(IndexError, match="timestep"):
            engine.edge_window_count(0, 1, 0, 9)
        with pytest.raises(IndexError, match="timesteps out of range"):
            engine.batch_degrees([0], [2])
        with pytest.raises(IndexError, match="timesteps out of range"):
            engine.batch_has_edge([0], [1], [-1])

    def test_duplicate_node_ids_in_batch(self, engine):
        import numpy as np

        nodes = np.array([0, 0, 0, 3, 3])
        ts = np.array([0, 1, 0, 0, 0])
        assert np.array_equal(engine.batch_degrees(nodes, ts), [1, 1, 1, 1, 1])
        off, neigh = engine.batch_neighbors(nodes, ts)
        assert np.array_equal(np.diff(off), [1, 1, 1, 1, 1])
        assert np.array_equal(neigh, [1, 1, 1, 4, 4])

    def test_cache_eviction_correctness(self):
        """A budget so small every query misses changes nothing."""
        import numpy as np

        graph = build_graph()
        starved = GraphQueryEngine(graph, cache_memory_budget_bytes=1)
        unbounded = GraphQueryEngine(graph)
        rng = np.random.default_rng(0)
        for _ in range(40):
            v, u = rng.integers(0, graph.num_nodes, size=2)
            t = int(rng.integers(0, graph.num_timesteps))
            assert starved.out_neighbors(v, t) == unbounded.out_neighbors(v, t)
            assert starved.in_neighbors(v, t) == unbounded.in_neighbors(v, t)
            assert starved.has_edge(u, v, t) == unbounded.has_edge(u, v, t)
            assert starved.attribute_range(t, 0, -3.0, 3.0) == (
                unbounded.attribute_range(t, 0, -3.0, 3.0)
            )
        stats = starved.plans.stats()
        assert stats.evictions > 0
        assert stats.resident_plans == 1  # only the newest plan survives

    def test_mismatched_plan_cache_rejected(self, engine):
        from repro.workloads import SnapshotPlanCache

        other = build_graph()
        foreign = SnapshotPlanCache(other.store)
        with pytest.raises(ValueError, match="different store"):
            GraphQueryEngine(build_graph(), plan_cache=foreign)

    def test_shared_plan_cache_across_engines(self):
        from repro.workloads import SnapshotPlanCache

        graph = build_graph()
        cache = SnapshotPlanCache(graph.store)
        a = GraphQueryEngine(graph, plan_cache=cache)
        b = GraphQueryEngine(graph, plan_cache=cache)
        a.out_neighbors(0, 0)
        b.out_neighbors(0, 0)
        assert cache.stats().hits == 1  # b reused a's plan
