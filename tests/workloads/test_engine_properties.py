"""Property-based validation of the query engine against networkx."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.workloads import GraphQueryEngine


def random_graph(seed, n, density, t=1):
    rng = np.random.default_rng(seed)
    adj = (rng.random((t, n, n)) < density).astype(float)
    for k in range(t):
        np.fill_diagonal(adj[k], 0.0)
    return DynamicAttributedGraph.from_tensors(adj)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), n=st.integers(3, 14))
def test_property_neighbors_match_networkx(seed, n):
    g = random_graph(seed, n, 0.3)
    engine = GraphQueryEngine(g)
    nxg = nx.from_numpy_array(g[0].adjacency, create_using=nx.DiGraph)
    for v in range(n):
        assert engine.out_neighbors(v, 0) == sorted(nxg.successors(v))
        assert engine.in_neighbors(v, 0) == sorted(nxg.predecessors(v))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), n=st.integers(3, 12))
def test_property_triangles_match_networkx(seed, n):
    g = random_graph(seed, n, 0.35)
    engine = GraphQueryEngine(g)
    und = nx.from_numpy_array(g[0].undirected_adjacency())
    expected = sum(nx.triangles(und).values()) // 3
    assert engine.triangle_count(0) == expected


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 5000),
    n=st.integers(3, 12),
    k=st.integers(1, 4),
)
def test_property_khop_matches_bfs(seed, n, k):
    g = random_graph(seed, n, 0.25)
    engine = GraphQueryEngine(g)
    nxg = nx.from_numpy_array(g[0].adjacency, create_using=nx.DiGraph)
    for v in range(min(n, 4)):
        lengths = nx.single_source_shortest_path_length(nxg, v, cutoff=k)
        expected = {u for u, d in lengths.items() if 0 < d <= k}
        assert engine.k_hop(v, 0, k) == expected


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), n=st.integers(3, 10))
def test_property_single_window_reachability_matches_closure(seed, n):
    """temporal_reachable over one snapshot equals static reachability."""
    g = random_graph(seed, n, 0.25)
    engine = GraphQueryEngine(g)
    nxg = nx.from_numpy_array(g[0].adjacency, create_using=nx.DiGraph)
    descendants = {v: nx.descendants(nxg, v) for v in range(n)}
    for u in range(min(n, 4)):
        for v in range(n):
            expected = u == v or v in descendants[u]
            assert engine.temporal_reachable(u, v, 0, 0) == expected


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), n=st.integers(4, 10), t=st.integers(2, 4))
def test_property_wider_window_reaches_no_less(seed, n, t):
    g = random_graph(seed, n, 0.15, t=t)
    engine = GraphQueryEngine(g)
    rng = np.random.default_rng(seed)
    for _ in range(5):
        u, v = rng.integers(0, n, 2)
        narrow = engine.temporal_reachable(int(u), int(v), 0, t - 2)
        wide = engine.temporal_reachable(int(u), int(v), 0, t - 1)
        assert wide or not narrow  # narrow implies wide
