"""Tests for the co-evolution simulator."""

import numpy as np
import pytest

from repro.datasets import CoEvolutionConfig, generate_co_evolving_graph


def make(cfg_kwargs=None, seed=0):
    kwargs = dict(
        num_nodes=30, num_timesteps=5, num_attributes=2,
        edges_per_step=60, num_communities=3,
    )
    kwargs.update(cfg_kwargs or {})
    return generate_co_evolving_graph(CoEvolutionConfig(**kwargs), seed=seed)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"num_timesteps": 0},
            {"persistence": 1.5},
            {"community_bias": -0.1},
            {"edges_per_step": -5},
        ],
    )
    def test_invalid_configs(self, kwargs):
        base = dict(num_nodes=10, num_timesteps=3, edges_per_step=5)
        base.update(kwargs)
        with pytest.raises(ValueError):
            CoEvolutionConfig(**base).validate()


class TestGeneration:
    def test_shape_matches_config(self):
        g = make()
        assert g.num_nodes == 30
        assert g.num_timesteps == 5
        assert g.num_attributes == 2

    def test_deterministic_under_seed(self):
        assert make(seed=7) == make(seed=7)

    def test_different_seeds_differ(self):
        assert make(seed=1) != make(seed=2)

    def test_edge_counts_near_target(self):
        g = make()
        for snap in g:
            assert 0.5 * 60 <= snap.num_edges <= 1.5 * 60

    def test_no_self_loops(self):
        g = make()
        for snap in g:
            assert np.all(np.diag(snap.adjacency) == 0)

    def test_attributes_finite(self):
        g = make()
        assert np.all(np.isfinite(g.attribute_tensor()))

    def test_zero_attributes(self):
        g = make({"num_attributes": 0})
        assert g.num_attributes == 0

    def test_persistence_keeps_edges(self):
        high = make({"persistence": 0.95}, seed=3)
        low = make({"persistence": 0.05}, seed=3)

        def overlap(g):
            vals = []
            for t in range(1, g.num_timesteps):
                a, b = g[t - 1].adjacency, g[t].adjacency
                inter = (a * b).sum()
                vals.append(inter / max(a.sum(), 1))
            return np.mean(vals)

        assert overlap(high) > overlap(low)

    def test_heavy_tail_degrees(self):
        g = make({"preferential": 0.9}, seed=11)
        deg = g[-1].in_degrees()
        # heavy-tailed: max degree well above the mean
        assert deg.max() > 3 * deg.mean()

    def test_homophily_zero_still_works(self):
        g = make({"homophily": 0.0})
        assert g.num_temporal_edges > 0

    def test_attribute_trend_shifts_mean(self):
        g = make({"attribute_trend": 0.5, "attribute_center_spread": 1.0}, seed=2)
        first = g[0].attributes.mean(axis=0)
        last = g[-1].attributes.mean(axis=0)
        assert np.linalg.norm(last - first) > 0.3

    def test_skew_changes_distribution(self):
        plain = make({"attribute_skew": 0.0}, seed=4)
        skewed = make({"attribute_skew": 1.0}, seed=4)
        from scipy import stats

        sk_p = abs(stats.skew(plain.attribute_tensor().ravel()))
        sk_s = abs(stats.skew(skewed.attribute_tensor().ravel()))
        assert sk_s > sk_p

    def test_attribute_coupling_pulls_neighbors(self):
        coupled = make({"attribute_coupling": 0.8, "attribute_noise": 0.0,
                        "attribute_trend": 0.0}, seed=5)
        uncoupled = make({"attribute_coupling": 0.0, "attribute_noise": 0.0,
                          "attribute_trend": 0.0}, seed=5)

        def neighbor_gap(g):
            snap = g[-1]
            sym = snap.undirected_adjacency()
            rows, cols = np.nonzero(sym)
            if rows.size == 0:
                return 0.0
            return float(
                np.linalg.norm(
                    snap.attributes[rows] - snap.attributes[cols], axis=1
                ).mean()
            )

        assert neighbor_gap(coupled) < neighbor_gap(uncoupled)
