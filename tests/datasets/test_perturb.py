"""Tests for the perturbation toolkit (and the metric responses to it)."""

import numpy as np
import pytest

from repro.datasets.perturb import (
    add_random_edges,
    attribute_noise,
    drop_edges,
    freeze_first_snapshot,
    rewire_edges,
    shuffle_attribute_rows,
    shuffle_snapshots,
)
from repro.metrics import (
    attribute_jsd,
    degree_distribution_mmd,
    structure_difference_series,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestRewireEdges:
    def test_preserves_edge_count(self, tiny_graph, rng):
        out = rewire_edges(tiny_graph, 0.5, rng)
        assert out.num_temporal_edges == tiny_graph.num_temporal_edges

    def test_zero_fraction_is_identity(self, tiny_graph, rng):
        out = rewire_edges(tiny_graph, 0.0, rng)
        assert out == tiny_graph

    def test_full_fraction_changes_structure(self, tiny_graph, rng):
        out = rewire_edges(tiny_graph, 1.0, rng)
        assert out != tiny_graph

    def test_does_not_mutate_input(self, tiny_graph, rng):
        before = tiny_graph.adjacency_tensor().copy()
        rewire_edges(tiny_graph, 1.0, rng)
        assert np.array_equal(tiny_graph.adjacency_tensor(), before)

    def test_rejects_bad_fraction(self, tiny_graph, rng):
        with pytest.raises(ValueError, match="fraction"):
            rewire_edges(tiny_graph, 1.5, rng)

    def test_no_self_loops_introduced(self, tiny_graph, rng):
        out = rewire_edges(tiny_graph, 1.0, rng)
        for snap in out:
            assert np.all(np.diag(snap.adjacency) == 0)


class TestDropAdd:
    def test_drop_half(self, tiny_graph, rng):
        out = drop_edges(tiny_graph, 0.5, rng)
        assert out.num_temporal_edges < tiny_graph.num_temporal_edges
        assert out.num_temporal_edges > 0

    def test_drop_all(self, tiny_graph, rng):
        out = drop_edges(tiny_graph, 1.0, rng)
        assert out.num_temporal_edges == 0

    def test_add_edges_increases_count(self, tiny_graph, rng):
        out = add_random_edges(tiny_graph, 5, rng)
        expected = tiny_graph.num_temporal_edges + 5 * tiny_graph.num_timesteps
        assert out.num_temporal_edges == expected

    def test_add_zero_is_identity(self, tiny_graph, rng):
        assert add_random_edges(tiny_graph, 0, rng) == tiny_graph

    def test_add_negative_rejected(self, tiny_graph, rng):
        with pytest.raises(ValueError, match=">= 0"):
            add_random_edges(tiny_graph, -1, rng)


class TestAttributeNoise:
    def test_zero_sigma_is_identity(self, tiny_graph, rng):
        assert attribute_noise(tiny_graph, 0.0, rng) == tiny_graph

    def test_noise_changes_attributes_not_structure(self, tiny_graph, rng):
        out = attribute_noise(tiny_graph, 1.0, rng)
        assert np.array_equal(
            out.adjacency_tensor(), tiny_graph.adjacency_tensor()
        )
        assert not np.array_equal(
            out.attribute_tensor(), tiny_graph.attribute_tensor()
        )

    def test_negative_sigma_rejected(self, tiny_graph, rng):
        with pytest.raises(ValueError, match="sigma"):
            attribute_noise(tiny_graph, -0.1, rng)


class TestShuffles:
    def test_shuffle_rows_keeps_marginals(self, tiny_graph, rng):
        out = shuffle_attribute_rows(tiny_graph, rng)
        orig = np.sort(tiny_graph.attribute_tensor(), axis=1)
        new = np.sort(out.attribute_tensor(), axis=1)
        assert np.allclose(np.sort(orig.ravel()), np.sort(new.ravel()))
        assert np.array_equal(
            out.adjacency_tensor(), tiny_graph.adjacency_tensor()
        )

    def test_shuffle_snapshots_multiset_preserved(self, tiny_graph, rng):
        out = shuffle_snapshots(tiny_graph, rng)
        orig_counts = sorted(s.num_edges for s in tiny_graph)
        new_counts = sorted(s.num_edges for s in out)
        assert orig_counts == new_counts

    def test_freeze_first_snapshot(self, tiny_graph):
        out = freeze_first_snapshot(tiny_graph)
        assert out.num_timesteps == tiny_graph.num_timesteps
        for snap in out:
            assert snap == tiny_graph[0]


class TestMetricResponses:
    """Corruption must move the paper's metrics in the right direction."""

    def test_degree_mmd_increases_with_rewiring(self, tiny_graph, rng):
        light = rewire_edges(tiny_graph, 0.1, np.random.default_rng(1))
        heavy = rewire_edges(tiny_graph, 0.9, np.random.default_rng(1))
        mmd_light = degree_distribution_mmd(tiny_graph, light, "in")
        mmd_heavy = degree_distribution_mmd(tiny_graph, heavy, "in")
        assert mmd_heavy >= mmd_light

    def test_attribute_jsd_increases_with_noise(self, tiny_graph):
        light = attribute_noise(tiny_graph, 0.05, np.random.default_rng(1))
        heavy = attribute_noise(tiny_graph, 5.0, np.random.default_rng(1))
        assert attribute_jsd(tiny_graph, heavy) > attribute_jsd(tiny_graph, light)

    def test_frozen_sequence_has_zero_difference_series(self, tiny_graph):
        frozen = freeze_first_snapshot(tiny_graph)
        series = structure_difference_series(frozen, "degree")
        assert np.allclose(series, 0.0)
