"""Tests for the dataset registry and profile scaling."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_PROFILES,
    list_datasets,
    load_dataset,
)


class TestRegistry:
    def test_all_six_paper_datasets_present(self):
        assert set(list_datasets()) == {
            "email", "bitcoin", "wiki", "guarantee", "brain", "gdelt"
        }

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("facebook")

    def test_case_insensitive(self):
        g = load_dataset("EMAIL", scale=0.02, seed=0)
        assert g.num_nodes >= 2

    def test_profiles_match_paper_table1_stats(self):
        p = DATASET_PROFILES["email"]
        assert (p.paper_nodes, p.paper_temporal_edges) == (1891, 39264)
        assert (p.num_attributes, p.num_timesteps) == (2, 14)
        p = DATASET_PROFILES["gdelt"]
        assert (p.paper_nodes, p.paper_temporal_edges) == (5037, 566735)
        assert (p.num_attributes, p.num_timesteps) == (10, 18)
        p = DATASET_PROFILES["guarantee"]
        assert (p.paper_nodes, p.paper_temporal_edges) == (5530, 6169)

    def test_scaling_reduces_size(self):
        small = load_dataset("wiki", scale=0.01, seed=0)
        large = load_dataset("wiki", scale=0.03, seed=0)
        assert small.num_nodes < large.num_nodes

    def test_min_nodes_floor(self):
        g = load_dataset("email", scale=0.001, seed=0, min_nodes=25)
        assert g.num_nodes == 25

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("email", scale=0.0)
        with pytest.raises(ValueError):
            load_dataset("email", scale=2.0)

    def test_timestep_override(self):
        g = load_dataset("bitcoin", scale=0.01, seed=0, num_timesteps=6)
        assert g.num_timesteps == 6

    def test_default_timesteps_from_profile(self):
        g = load_dataset("email", scale=0.02, seed=0)
        assert g.num_timesteps == 14

    def test_attribute_dims_per_profile(self):
        assert load_dataset("brain", scale=0.01, seed=0).num_attributes == 20
        assert load_dataset("wiki", scale=0.01, seed=0).num_attributes == 1

    def test_deterministic(self):
        assert load_dataset("email", scale=0.02, seed=3) == load_dataset(
            "email", scale=0.02, seed=3
        )

    def test_guarantee_is_sparse(self):
        g = load_dataset("guarantee", scale=0.02, seed=0)
        w = load_dataset("wiki", scale=0.02, seed=0)
        g_density = g.num_temporal_edges / (g.num_nodes**2 * g.num_timesteps)
        w_density = w.num_temporal_edges / (w.num_nodes**2 * w.num_timesteps)
        assert g_density < w_density

    def test_guarantee_no_reciprocity(self):
        g = load_dataset("guarantee", scale=0.02, seed=0)
        recip = 0
        total = 0
        for snap in g:
            a = snap.adjacency
            recip += int((a * a.T).sum())
            total += snap.num_edges
        assert recip / max(total, 1) < 0.2
