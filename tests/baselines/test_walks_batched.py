"""Batched temporal-walk sampler: invariants shared with the scalar
reference sampler (:meth:`TemporalWalkSampler.sample_walk`)."""

import numpy as np
import pytest

from repro.baselines.walks import TemporalWalkSampler
from repro.graph import TemporalEdgeList


def _random_stream(seed: int, n: int = 20, e: int = 120, t_len: int = 6):
    rng = np.random.default_rng(seed)
    tel = TemporalEdgeList(n, t_len)
    for u, v, t in zip(
        rng.integers(0, n, size=e),
        rng.integers(0, n, size=e),
        rng.integers(0, t_len, size=e),
    ):
        if u != v:
            tel.add(int(u), int(v), int(t))
    return tel


@pytest.fixture
def stream():
    return _random_stream(0)


class TestBatchedSampler:
    def test_respects_time_window(self, stream):
        sampler = TemporalWalkSampler(stream, time_window=1, seed=0)
        for walk in sampler.sample_walks(200, 6):
            for (u, tu), (v, tv) in zip(walk, walk[1:]):
                assert abs(tv - tu) <= 1

    def test_traverses_real_edges(self, stream):
        sampler = TemporalWalkSampler(stream, time_window=0, seed=1)
        sym = set()
        for u, v, t in stream:
            sym.add((u, v, t))
            sym.add((v, u, t))
        for walk in sampler.sample_walks(200, 5):
            for (u, tu), (v, tv) in zip(walk, walk[1:]):
                assert (u, v, tv) in sym

    def test_starts_are_stream_edges(self, stream):
        sampler = TemporalWalkSampler(stream, seed=2)
        starts = {(u, t) for u, v, t in stream}
        for walk in sampler.sample_walks(100, 4):
            assert walk[0] in starts

    def test_lengths_bounded_and_trivial_filtered(self, stream):
        sampler = TemporalWalkSampler(stream, seed=3)
        walks = sampler.sample_walks(150, 4)
        assert walks
        assert all(2 <= len(w) <= 4 for w in walks)

    def test_empty_stream(self):
        tel = TemporalEdgeList(3, 2)
        sampler = TemporalWalkSampler(tel, seed=0)
        assert sampler.sample_walks(10, 4) == []
        assert sampler.sample_walks(0, 4) == []

    def test_degenerate_lengths(self, stream):
        sampler = TemporalWalkSampler(stream, seed=0)
        assert sampler.sample_walks(10, 0) == []
        assert sampler.sample_walks(10, 1) == []

    def test_deterministic_under_seed(self, stream):
        a = TemporalWalkSampler(stream, seed=11).sample_walks(50, 5)
        b = TemporalWalkSampler(stream, seed=11).sample_walks(50, 5)
        assert a == b

    def test_walk_support_matches_scalar(self):
        """Batch and scalar samplers draw from the same walk process:
        on a tiny chain their supports (sets of distinct sampled
        walks) coincide once enough draws are taken."""
        tel = TemporalEdgeList(4, 3)
        for e in [(0, 1, 0), (1, 2, 1), (2, 3, 2)]:
            tel.add(*e)
        sampler = TemporalWalkSampler(tel, time_window=1, seed=0)
        batch = {tuple(w) for w in sampler.sample_walks(400, 3)}
        scalar = set()
        for _ in range(400):
            w = sampler.sample_walk(3)
            if w and len(w) >= 2:
                scalar.add(tuple(w))
        assert batch == scalar
