"""Behavioural tests specific to each baseline."""

import numpy as np
import pytest

from repro.baselines import (
    Dymond,
    GenCAT,
    GRAN,
    NormalAttributeGenerator,
    TagGen,
    TGGAN,
    TIGGER,
)
from repro.baselines.dymond import DymondCapacityError
from repro.baselines.gencat import kmeans
from repro.datasets import CoEvolutionConfig, generate_co_evolving_graph


class TestNormal:
    def test_matches_per_step_moments(self, tiny_graph):
        gen = NormalAttributeGenerator(seed=0).fit(tiny_graph)
        out = gen.generate(tiny_graph.num_timesteps, seed=1)
        x0 = tiny_graph.attribute_tensor()
        x1 = out.attribute_tensor()
        # means should roughly track per timestep
        gap = np.abs(x0.mean(axis=1) - x1.mean(axis=1)).mean()
        spread = x0.std()
        assert gap < spread

    def test_density_matched(self, tiny_graph):
        gen = NormalAttributeGenerator(seed=0).fit(tiny_graph)
        out = gen.generate(tiny_graph.num_timesteps, seed=1)
        assert (
            abs(out.num_temporal_edges - tiny_graph.num_temporal_edges)
            < 0.5 * tiny_graph.num_temporal_edges
        )

    def test_horizon_clamps_beyond_fit(self, tiny_graph):
        gen = NormalAttributeGenerator(seed=0).fit(tiny_graph)
        out = gen.generate(tiny_graph.num_timesteps + 5, seed=1)
        assert out.num_timesteps == tiny_graph.num_timesteps + 5


class TestGenCAT:
    def test_invalid_classes(self):
        with pytest.raises(ValueError):
            GenCAT(num_classes=0)

    def test_kmeans_labels_partition(self, rng):
        x = np.concatenate([rng.normal(size=(20, 2)), rng.normal(size=(20, 2)) + 10])
        labels = kmeans(x, 2, rng)
        assert set(labels) == {0, 1}
        # the two blobs separate
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1

    def test_kmeans_k_larger_than_n(self, rng):
        labels = kmeans(rng.normal(size=(3, 2)), 10, rng)
        assert len(labels) == 3

    def test_static_snapshots_are_iid(self, tiny_graph):
        """GenCAT is static: per-step statistics do not trend."""
        gen = GenCAT(seed=0).fit(tiny_graph)
        out = gen.generate(6, seed=1)
        means = out.attribute_tensor().mean(axis=(1, 2))
        # no systematic drift: first and last step distributions equal in
        # expectation -> difference is small relative to original trend
        orig = tiny_graph.attribute_tensor().mean(axis=(1, 2))
        gen_trend = abs(means[-1] - means[0])
        orig_trend = abs(orig[-1] - orig[0]) + 1e-9
        assert gen_trend < orig_trend + 0.5

    def test_preserves_rough_density(self, tiny_graph):
        gen = GenCAT(seed=0).fit(tiny_graph)
        out = gen.generate(tiny_graph.num_timesteps, seed=1)
        ratio = out.num_temporal_edges / max(tiny_graph.num_temporal_edges, 1)
        assert 0.3 < ratio < 2.0


class TestGRAN:
    def test_density_adaptation(self, tiny_graph):
        gen = GRAN(epochs=10, seed=0).fit(tiny_graph)
        out = gen.generate(tiny_graph.num_timesteps, seed=1)
        per_step_target = tiny_graph.num_temporal_edges / tiny_graph.num_timesteps
        for snap in out:
            assert snap.num_edges < 5 * per_step_target + 20


class TestWalkBased:
    @pytest.fixture
    def walk_graph(self):
        cfg = CoEvolutionConfig(
            num_nodes=20, num_timesteps=4, num_attributes=1,
            edges_per_step=50, num_communities=2, persistence=0.5,
        )
        return generate_co_evolving_graph(cfg, seed=3)

    def test_taggen_matches_edge_budget(self, walk_graph):
        gen = TagGen(walks_per_edge=2.0, seed=0).fit(walk_graph)
        out = gen.generate(walk_graph.num_timesteps, seed=1)
        for t, snap in enumerate(out):
            assert snap.num_edges <= walk_graph[t].num_edges

    def test_taggen_discriminator_scores_real_higher(self, walk_graph):
        gen = TagGen(walks_per_edge=2.0, seed=0).fit(walk_graph)
        real_scores = [gen._walk_score(w) for w in gen._real_walks[:50]]
        rng = np.random.default_rng(5)
        fake_walks = [
            [(int(rng.integers(20)), int(rng.integers(4))) for _ in range(5)]
            for _ in range(50)
        ]
        fake_scores = [gen._walk_score(w) for w in fake_walks]
        assert np.mean(real_scores) > np.mean(fake_scores)

    def test_tggan_adversarial_rounds_run(self, walk_graph):
        gen = TGGAN(adversarial_rounds=2, disc_epochs=3, seed=0)
        gen.fit(walk_graph)
        assert gen._discriminator is not None

    def test_tigger_rnn_trained(self, walk_graph):
        gen = TIGGER(epochs=2, seed=0).fit(walk_graph)
        assert gen._rnn is not None
        out = gen.generate(3, seed=1)
        assert out.num_timesteps == 3

    def test_tigger_raises_on_empty_graph(self):
        from repro.graph import DynamicAttributedGraph, GraphSnapshot

        empty = DynamicAttributedGraph(
            [GraphSnapshot(np.zeros((5, 5)))] * 2
        )
        with pytest.raises(ValueError, match="walks"):
            TIGGER(epochs=1, seed=0).fit(empty)


class TestDymond:
    def test_capacity_guard(self):
        cfg = CoEvolutionConfig(num_nodes=30, num_timesteps=2, edges_per_step=20)
        g = generate_co_evolving_graph(cfg, seed=0)
        with pytest.raises(DymondCapacityError):
            Dymond(max_nodes=10, seed=0).fit(g)

    def test_motif_rates_fitted(self, tiny_graph):
        gen = Dymond(seed=0).fit(tiny_graph)
        assert gen._edge_rate > 0
        assert gen._triangle_rate >= 0

    def test_edge_budget_respected(self, tiny_graph):
        gen = Dymond(seed=0).fit(tiny_graph)
        out = gen.generate(3, seed=1)
        per_step = tiny_graph.num_temporal_edges / tiny_graph.num_timesteps
        for snap in out:
            assert snap.num_edges <= 2 * per_step + 10


class TestBaselineEngines:
    """The net-training baselines run on both autodiff engines and
    learn the same model (see docs/training.md)."""

    @pytest.fixture
    def walk_graph(self):
        cfg = CoEvolutionConfig(
            num_nodes=20, num_timesteps=4, num_attributes=1,
            edges_per_step=50, num_communities=2, persistence=0.5,
        )
        return generate_co_evolving_graph(cfg, seed=3)

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (GRAN, dict(epochs=3)),
            (TIGGER, dict(epochs=1)),
            (TGGAN, dict(adversarial_rounds=1, disc_epochs=3)),
        ],
    )
    def test_engines_generate_identically(self, walk_graph, cls, kwargs):
        outs = {}
        for engine in ("tape", "legacy"):
            gen = cls(engine=engine, seed=4, **kwargs).fit(walk_graph)
            outs[engine] = gen.generate(3, seed=9)
        for a, b in zip(outs["tape"], outs["legacy"]):
            np.testing.assert_array_equal(a.adjacency, b.adjacency)

    def test_engine_round_trips_through_config(self):
        gen = TIGGER(engine="legacy")
        rebuilt = TIGGER.from_config(**gen.to_config())
        assert rebuilt.engine == "legacy"
