"""Tests for the AGM and ANC related-work attributed baselines."""

import numpy as np
import pytest

from repro.baselines import AGM, ANC
from repro.datasets import CoEvolutionConfig, generate_co_evolving_graph
from repro.graph import DynamicAttributedGraph, GraphSnapshot


def structure_only_graph():
    rng = np.random.default_rng(3)
    adj = (rng.random((4, 10, 10)) < 0.2).astype(float)
    for t in range(4):
        np.fill_diagonal(adj[t], 0.0)
    return DynamicAttributedGraph.from_tensors(adj)


class TestAGM:
    def test_requires_fit(self, tiny_graph):
        with pytest.raises(RuntimeError, match="before fit"):
            AGM(seed=0).generate(3)

    def test_rejects_bad_oversample(self):
        with pytest.raises(ValueError, match="oversample"):
            AGM(oversample=0.5)

    def test_generates_valid_sequence(self, tiny_graph):
        out = AGM(seed=0).fit(tiny_graph).generate(tiny_graph.num_timesteps, seed=1)
        assert out.num_timesteps == tiny_graph.num_timesteps
        assert out.num_nodes == tiny_graph.num_nodes
        assert out.num_attributes == tiny_graph.num_attributes
        for snap in out:
            assert np.all(np.diag(snap.adjacency) == 0)
            assert set(np.unique(snap.adjacency)) <= {0.0, 1.0}

    def test_edge_count_tracks_original(self, tiny_graph):
        out = AGM(seed=0).fit(tiny_graph).generate(tiny_graph.num_timesteps, seed=1)
        per_step = tiny_graph.num_temporal_edges / tiny_graph.num_timesteps
        gen_per_step = out.num_temporal_edges / out.num_timesteps
        assert gen_per_step <= per_step + 1  # accept/reject can only thin
        assert gen_per_step > 0.3 * per_step

    def test_attributes_resampled_from_pool(self, tiny_graph):
        gen = AGM(seed=0).fit(tiny_graph)
        out = gen.generate(2, seed=5)
        pool = {tuple(row) for row in tiny_graph.attribute_tensor().reshape(
            -1, tiny_graph.num_attributes).round(9).tolist()}
        for snap in out:
            for row in snap.attributes.round(9).tolist():
                assert tuple(row) in pool

    def test_acceptance_table_shape_and_range(self, tiny_graph):
        gen = AGM(seed=0).fit(tiny_graph)
        table = gen.acceptance_table()
        b = 1 << min(tiny_graph.num_attributes, 4)
        assert table.shape == (b, b)
        assert np.all(table >= 0)
        assert np.all(np.isfinite(table))

    def test_structure_only_graph_supported(self):
        g = structure_only_graph()
        out = AGM(seed=0).fit(g).generate(g.num_timesteps, seed=2)
        assert out.num_attributes == 0
        assert out.num_temporal_edges > 0

    def test_deterministic_given_seed(self, tiny_graph):
        gen = AGM(seed=0).fit(tiny_graph)
        a = gen.generate(3, seed=9)
        b = gen.generate(3, seed=9)
        assert a == b

    def test_homophilous_graph_learns_coupling(self):
        """On a graph where edges strongly follow attribute sign, the
        acceptance table must favour like-signed bin pairs."""
        rng = np.random.default_rng(0)
        n = 30
        x = np.concatenate([rng.normal(-2, 0.3, (15, 1)),
                            rng.normal(2, 0.3, (15, 1))])
        adj = np.zeros((n, n))
        for _ in range(120):
            u, v = rng.integers(0, 15, 2)  # only low-group edges
            if u != v:
                adj[u, v] = 1.0
        snaps = [GraphSnapshot(adj, x) for _ in range(3)]
        g = DynamicAttributedGraph(snaps)
        table = AGM(seed=0).fit(g).acceptance_table()
        assert table[0, 0] > table[1, 1]
        assert table[0, 0] > table[0, 1]


class TestANC:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="num_communities"):
            ANC(num_communities=0)
        with pytest.raises(ValueError, match="homophily"):
            ANC(homophily=-1)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="before fit"):
            ANC(seed=0).generate(2)

    def test_generates_valid_sequence(self, tiny_graph):
        out = ANC(seed=0).fit(tiny_graph).generate(tiny_graph.num_timesteps, seed=1)
        assert out.num_timesteps == tiny_graph.num_timesteps
        assert out.num_attributes == tiny_graph.num_attributes
        for snap in out:
            assert np.all(np.diag(snap.adjacency) == 0)

    def test_community_labels_partition_nodes(self, tiny_graph):
        gen = ANC(num_communities=3, seed=0).fit(tiny_graph)
        labels = gen.community_labels()
        assert labels.shape == (tiny_graph.num_nodes,)
        assert labels.max() < 3

    def test_within_community_edges_dominate(self):
        """Fitted on a strongly modular graph, generation must keep most
        edges inside communities."""
        cfg = CoEvolutionConfig(
            num_nodes=40, num_timesteps=4, num_attributes=2,
            edges_per_step=120, num_communities=2,
        )
        g = generate_co_evolving_graph(cfg, seed=0)
        gen = ANC(num_communities=2, seed=0).fit(g)
        labels = gen.community_labels()
        out = gen.generate(4, seed=1)
        within = between = 0
        for snap in out:
            src, dst = np.nonzero(snap.adjacency)
            same = labels[src] == labels[dst]
            within += int(same.sum())
            between += int((~same).sum())
        assert within > between

    def test_attribute_moments_track_original(self, tiny_graph):
        out = ANC(seed=0).fit(tiny_graph).generate(6, seed=1)
        x0 = tiny_graph.attribute_tensor()
        x1 = out.attribute_tensor()
        assert abs(x0.mean() - x1.mean()) < 2 * x0.std()

    def test_structure_only_graph_supported(self):
        g = structure_only_graph()
        out = ANC(seed=0).fit(g).generate(2, seed=3)
        assert out.num_attributes == 0

    def test_deterministic_given_seed(self, tiny_graph):
        gen = ANC(seed=0).fit(tiny_graph)
        assert gen.generate(3, seed=4) == gen.generate(3, seed=4)

    def test_edge_rate_tracks_original(self, tiny_graph):
        out = ANC(seed=0).fit(tiny_graph).generate(tiny_graph.num_timesteps, seed=1)
        orig = tiny_graph.num_temporal_edges
        assert 0.3 * orig < out.num_temporal_edges < 2.5 * orig
