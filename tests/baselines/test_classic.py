"""Classic random-graph generator tests."""

import numpy as np
import pytest

from repro.baselines.classic import (
    BarabasiAlbert,
    ErdosRenyi,
    KroneckerGraph,
    StochasticBlockModel,
)
from repro.graph import properties as props

ALL_CLASSIC = [ErdosRenyi, BarabasiAlbert, StochasticBlockModel, KroneckerGraph]


@pytest.mark.parametrize("cls", ALL_CLASSIC)
class TestClassicContract:
    def test_fit_generate_valid(self, cls, tiny_graph):
        gen = cls(seed=0).fit(tiny_graph)
        out = gen.generate(3, seed=1)
        assert out.num_nodes == tiny_graph.num_nodes
        assert out.num_timesteps == 3
        for snap in out:
            assert set(np.unique(snap.adjacency)) <= {0.0, 1.0}
            assert np.all(np.diag(snap.adjacency) == 0)

    def test_requires_fit(self, cls):
        with pytest.raises(RuntimeError):
            cls(seed=0).generate(2)

    def test_deterministic(self, cls, tiny_graph):
        gen = cls(seed=0).fit(tiny_graph)
        assert gen.generate(2, seed=3) == gen.generate(2, seed=3)


class TestErdosRenyi:
    def test_density_matched(self, tiny_graph):
        gen = ErdosRenyi(seed=0).fit(tiny_graph)
        out = gen.generate(20, seed=1)
        target = tiny_graph.num_temporal_edges / tiny_graph.num_timesteps
        actual = out.num_temporal_edges / out.num_timesteps
        assert abs(actual - target) < 0.5 * target

    def test_no_degree_heavy_tail(self, tiny_graph):
        gen = ErdosRenyi(seed=0).fit(tiny_graph)
        out = gen.generate(1, seed=1)
        deg = out[0].in_degrees()
        # ER degrees concentrate: max close to mean
        assert deg.max() < deg.mean() + 6 * np.sqrt(max(deg.mean(), 1))


class TestBarabasiAlbert:
    def test_heavier_tail_than_er(self, tiny_graph):
        ba = BarabasiAlbert(seed=0).fit(tiny_graph).generate(1, seed=1)
        er = ErdosRenyi(seed=0).fit(tiny_graph).generate(1, seed=1)
        ba_max = ba[0].in_degrees().max() / max(ba[0].in_degrees().mean(), 1)
        er_max = er[0].in_degrees().max() / max(er[0].in_degrees().mean(), 1)
        assert ba_max > er_max


class TestSBM:
    def test_invalid_blocks(self):
        with pytest.raises(ValueError):
            StochasticBlockModel(num_blocks=0)

    def test_block_probabilities_valid(self, tiny_graph):
        gen = StochasticBlockModel(num_blocks=3, seed=0).fit(tiny_graph)
        assert np.all((gen._block_p >= 0) & (gen._block_p <= 1))


class TestKronecker:
    def test_power_of_two_cover(self, tiny_graph):
        gen = KroneckerGraph(seed=0).fit(tiny_graph)
        assert 2**gen._k >= tiny_graph.num_nodes

    def test_rough_edge_count(self, tiny_graph):
        gen = KroneckerGraph(seed=0).fit(tiny_graph)
        out = gen.generate(5, seed=1)
        per_step = out.num_temporal_edges / 5
        target = tiny_graph.num_temporal_edges / tiny_graph.num_timesteps
        assert per_step < 5 * target + 20
