"""Contract tests every registered generator must satisfy.

Parametrized over the :mod:`repro.api` registry, so a newly registered
generator is automatically held to the protocol: ``fit()`` returns
``self`` and sets ``fitted``, ``generate()`` before ``fit()`` raises,
output is a valid dynamic attributed graph, generation is
seed-deterministic, and construction round-trips as data
(``to_config`` / ``from_config``).
"""

import numpy as np
import pytest

from repro import api
from repro.graph import DynamicAttributedGraph

GENERATOR_NAMES = api.list_generators()


@pytest.fixture(params=GENERATOR_NAMES, ids=GENERATOR_NAMES)
def generator(request):
    """A cheap instance of each registered generator."""
    return api.get_generator(
        request.param, seed=1, **api.smoke_config(request.param)
    )


class TestGeneratorContract:
    def test_registry_covers_vrdag_and_the_baseline_field(self):
        assert "VRDAG" in GENERATOR_NAMES
        assert len(GENERATOR_NAMES) >= 12

    def test_generate_before_fit_raises(self, generator):
        with pytest.raises(RuntimeError, match="before fit"):
            generator.generate(3)

    def test_fit_returns_self(self, generator, tiny_graph):
        assert generator.fit(tiny_graph) is generator
        assert generator.fitted

    def test_config_roundtrip(self, generator):
        config = generator.to_config()
        assert config["seed"] == 1
        rebuilt = type(generator).from_config(**config)
        assert rebuilt.to_config() == config
        assert not rebuilt.fitted

    def test_output_is_valid_dynamic_graph(self, generator, tiny_graph):
        generator.fit(tiny_graph)
        out = generator.generate(tiny_graph.num_timesteps)
        assert isinstance(out, DynamicAttributedGraph)
        assert out.num_nodes == tiny_graph.num_nodes
        assert out.num_timesteps == tiny_graph.num_timesteps
        assert out.num_attributes == tiny_graph.num_attributes
        for snap in out:
            assert set(np.unique(snap.adjacency)) <= {0.0, 1.0}
            assert np.all(np.diag(snap.adjacency) == 0)
            assert np.all(np.isfinite(snap.attributes))

    def test_generation_deterministic_under_seed(self, generator, tiny_graph):
        generator.fit(tiny_graph)
        g1 = generator.generate(2, seed=9)
        g2 = generator.generate(2, seed=9)
        assert g1 == g2

    def test_shorter_horizon(self, generator, tiny_graph):
        generator.fit(tiny_graph)
        out = generator.generate(2)
        assert out.num_timesteps == 2

    def test_longer_horizon(self, generator, tiny_graph):
        generator.fit(tiny_graph)
        out = generator.generate(tiny_graph.num_timesteps + 2)
        assert out.num_timesteps == tiny_graph.num_timesteps + 2
