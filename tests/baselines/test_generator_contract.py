"""Contract tests every generator must satisfy (incl. VRDAG adapter)."""

import numpy as np
import pytest

from repro.baselines import (
    Dymond,
    GenCAT,
    GRAN,
    NormalAttributeGenerator,
    TagGen,
    TGGAN,
    TIGGER,
)
from repro.eval.harness import VRDAGGenerator
from repro.graph import DynamicAttributedGraph

GENERATORS = [
    ("Normal", lambda: NormalAttributeGenerator(seed=1)),
    ("GenCAT", lambda: GenCAT(seed=1)),
    ("GRAN", lambda: GRAN(epochs=5, seed=1)),
    ("TagGen", lambda: TagGen(walks_per_edge=1.0, seed=1)),
    ("TGGAN", lambda: TGGAN(walks_per_edge=1.0, adversarial_rounds=1,
                            disc_epochs=3, seed=1)),
    ("TIGGER", lambda: TIGGER(walks_per_edge=1.0, epochs=2, seed=1)),
    ("Dymond", lambda: Dymond(seed=1)),
    ("VRDAG", lambda: VRDAGGenerator(epochs=2, hidden_dim=8, latent_dim=4,
                                     encode_dim=8, seed=1)),
]


@pytest.fixture(params=GENERATORS, ids=[name for name, _ in GENERATORS])
def generator(request):
    return request.param[1]()


class TestGeneratorContract:
    def test_generate_before_fit_raises(self, generator):
        with pytest.raises(RuntimeError, match="before fit"):
            generator.generate(3)

    def test_fit_returns_self(self, generator, tiny_graph):
        assert generator.fit(tiny_graph) is generator
        assert generator.fitted

    def test_output_is_valid_dynamic_graph(self, generator, tiny_graph):
        generator.fit(tiny_graph)
        out = generator.generate(tiny_graph.num_timesteps)
        assert isinstance(out, DynamicAttributedGraph)
        assert out.num_nodes == tiny_graph.num_nodes
        assert out.num_timesteps == tiny_graph.num_timesteps
        assert out.num_attributes == tiny_graph.num_attributes
        for snap in out:
            assert set(np.unique(snap.adjacency)) <= {0.0, 1.0}
            assert np.all(np.diag(snap.adjacency) == 0)
            assert np.all(np.isfinite(snap.attributes))

    def test_generation_deterministic_under_seed(self, generator, tiny_graph):
        generator.fit(tiny_graph)
        g1 = generator.generate(2, seed=9)
        g2 = generator.generate(2, seed=9)
        assert g1 == g2

    def test_shorter_horizon(self, generator, tiny_graph):
        generator.fit(tiny_graph)
        out = generator.generate(2)
        assert out.num_timesteps == 2

    def test_longer_horizon(self, generator, tiny_graph):
        generator.fit(tiny_graph)
        out = generator.generate(tiny_graph.num_timesteps + 2)
        assert out.num_timesteps == tiny_graph.num_timesteps + 2
