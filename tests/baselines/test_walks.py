"""Temporal walk machinery tests."""

import numpy as np
import pytest

from repro.baselines.walks import (
    TemporalWalkSampler,
    merge_walks_into_graph,
    walk_transition_counts,
)
from repro.graph import TemporalEdgeList


@pytest.fixture
def stream():
    tel = TemporalEdgeList(6, 4)
    edges = [
        (0, 1, 0), (1, 2, 0), (2, 3, 1), (3, 4, 1),
        (4, 5, 2), (5, 0, 2), (0, 2, 3), (1, 3, 3),
    ]
    for e in edges:
        tel.add(*e)
    return tel


class TestTemporalWalkSampler:
    def test_walks_respect_time_window(self, stream):
        sampler = TemporalWalkSampler(stream, time_window=1, seed=0)
        for _ in range(50):
            walk = sampler.sample_walk(5)
            if walk is None:
                continue
            for (u, tu), (v, tv) in zip(walk, walk[1:]):
                assert abs(tv - tu) <= 1

    def test_walk_length_bounded(self, stream):
        sampler = TemporalWalkSampler(stream, seed=0)
        for _ in range(20):
            walk = sampler.sample_walk(4)
            assert walk is None or len(walk) <= 4

    def test_walks_traverse_real_edges(self, stream):
        sampler = TemporalWalkSampler(stream, time_window=0, seed=0)
        # with window 0, each hop must be an edge at exactly that time
        sym_edges = set()
        for u, v, t in stream:
            sym_edges.add((u, v, t))
            sym_edges.add((v, u, t))
        for _ in range(50):
            walk = sampler.sample_walk(4)
            if walk is None or len(walk) < 2:
                continue
            for (u, tu), (v, tv) in zip(walk, walk[1:]):
                assert (u, v, tv) in sym_edges

    def test_empty_stream(self):
        tel = TemporalEdgeList(3, 2)
        sampler = TemporalWalkSampler(tel, seed=0)
        assert sampler.sample_walk(3) is None
        assert sampler.sample_walks(5, 3) == []

    def test_sample_walks_filters_trivial(self, stream):
        sampler = TemporalWalkSampler(stream, seed=0)
        walks = sampler.sample_walks(30, 5)
        assert all(len(w) >= 2 for w in walks)


class TestTransitionCounts:
    def test_counts(self):
        walks = [[(0, 0), (1, 0), (2, 1)], [(0, 0), (1, 0)]]
        counts = walk_transition_counts(walks, 4, 3)
        assert counts[(0, 1, 0)] == 2
        assert counts[(1, 2, 1)] == 1

    def test_skips_self_transitions(self):
        counts = walk_transition_counts([[(0, 0), (0, 1)]], 3, 2)
        assert len(counts) == 0

    def test_clamps_time(self):
        counts = walk_transition_counts([[(0, 0), (1, 99)]], 3, 2)
        assert counts[(0, 1, 1)] == 1


class TestMergeWalks:
    def test_target_edges_met(self, rng):
        walks = [[(0, 0), (1, 0), (2, 0)], [(3, 0), (4, 0)]]
        g = merge_walks_into_graph(walks, 6, 2, [5, 5], rng)
        assert g[0].num_edges == 5  # padded to target
        assert g[1].num_edges == 5

    def test_high_multiplicity_edges_kept_first(self, rng):
        walks = [[(0, 0), (1, 0)]] * 10 + [[(2, 0), (3, 0)]]
        g = merge_walks_into_graph(walks, 5, 1, [1], rng)
        assert g[0].adjacency[0, 1] == 1.0  # the 10x edge wins

    def test_no_self_loops(self, rng):
        walks = [[(0, 0), (1, 0)]]
        g = merge_walks_into_graph(walks, 4, 1, [8], rng)
        assert np.all(np.diag(g[0].adjacency) == 0)
