"""Profiler: scoped timers, counters, enable/disable semantics."""

from repro.profiling import Profiler


class TestProfiler:
    def test_disabled_by_default_records_nothing(self):
        p = Profiler()
        with p.timer("x"):
            pass
        p.count("c", 5)
        assert p.snapshot() == {"timers": {}, "counters": {}}

    def test_enabled_records_time_and_calls(self):
        p = Profiler(enabled=True)
        for _ in range(3):
            with p.timer("scope"):
                pass
        p.count("edges", 7)
        p.count("edges", 3)
        snap = p.snapshot()
        assert snap["timers"]["scope"]["calls"] == 3
        assert snap["timers"]["scope"]["seconds"] >= 0.0
        assert snap["counters"]["edges"] == 10

    def test_enable_context_restores_prior_state(self):
        p = Profiler()
        with p.enable():
            assert p.enabled
            with p.timer("inner"):
                pass
        assert not p.enabled
        assert p.timers["inner"].calls == 1

    def test_timer_records_on_exception(self):
        p = Profiler(enabled=True)
        try:
            with p.timer("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert p.timers["boom"].calls == 1

    def test_nested_timers(self):
        p = Profiler(enabled=True)
        with p.timer("outer"):
            with p.timer("inner"):
                pass
        assert set(p.timers) == {"outer", "inner"}

    def test_reset(self):
        p = Profiler(enabled=True)
        with p.timer("x"):
            pass
        p.count("y")
        p.reset()
        assert p.snapshot() == {"timers": {}, "counters": {}}

    def test_report_renders_all_scopes(self):
        p = Profiler(enabled=True)
        with p.timer("alpha"):
            pass
        p.count("edges", 4)
        report = p.report()
        assert "alpha" in report and "edges" in report
