"""The generator registry: every generator, by name, as data.

One table maps a public name ("VRDAG", "TagGen", "ErdosRenyi", …) to
its :class:`~repro.baselines.base.GraphGenerator` class plus metadata:

* ``description`` — one line for ``repro list-generators``.
* ``smoke_config`` — a cheap construction used by contract tests and
  CI smoke runs (small epochs / walk budgets); ``get_generator`` with
  no overrides uses the class defaults, not this.

Construction is data end-to-end: ``get_generator(name, **config)``
resolves the class and calls its ``from_config``, and the resulting
instance round-trips through ``to_config()`` — which is what the
artifact envelope (:mod:`repro.api.artifacts`) persists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Type

from repro.baselines import (
    AGM,
    ANC,
    BarabasiAlbert,
    Dymond,
    ErdosRenyi,
    GenCAT,
    GRAN,
    GraphGenerator,
    KroneckerGraph,
    NormalAttributeGenerator,
    StochasticBlockModel,
    TagGen,
    TGGAN,
    TIGGER,
)
from repro.eval.harness import VRDAGGenerator

__all__ = [
    "GeneratorEntry",
    "register_generator",
    "get_generator",
    "generator_entry",
    "generator_name_of",
    "list_generators",
    "smoke_config",
]


@dataclass(frozen=True)
class GeneratorEntry:
    """One row of the registry."""

    name: str
    cls: Type[GraphGenerator]
    description: str = ""
    #: cheap construction kwargs for contract tests / CI smoke runs
    smoke_config: Mapping[str, object] = field(default_factory=dict)


_REGISTRY: Dict[str, GeneratorEntry] = {}


def register_generator(
    name: str,
    cls: Type[GraphGenerator],
    *,
    description: str = "",
    smoke_config: Optional[Mapping[str, object]] = None,
    overwrite: bool = False,
) -> GeneratorEntry:
    """Add a generator class to the registry under ``name``.

    Raises ``ValueError`` on duplicate names unless ``overwrite`` is
    set, and ``TypeError`` for classes outside the
    :class:`GraphGenerator` protocol.
    """
    if not isinstance(cls, type) or not issubclass(cls, GraphGenerator):
        raise TypeError(
            f"{cls!r} is not a GraphGenerator subclass; the registry only "
            "holds generators speaking the fit/generate protocol"
        )
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"generator {name!r} is already registered "
            f"({_REGISTRY[name].cls.__name__}); pass overwrite=True to replace"
        )
    entry = GeneratorEntry(
        name=name,
        cls=cls,
        description=description,
        smoke_config=dict(smoke_config or {}),
    )
    _REGISTRY[name] = entry
    return entry


def list_generators() -> List[str]:
    """Sorted names of every registered generator."""
    return sorted(_REGISTRY)


def generator_entry(name: str) -> GeneratorEntry:
    """The registry row for ``name`` (helpful error on unknown names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown generator {name!r}; registered: "
            + ", ".join(list_generators())
        ) from None


def generator_name_of(generator: GraphGenerator) -> str:
    """The registered name of ``generator``'s exact class."""
    cls = type(generator)
    for entry in _REGISTRY.values():
        if entry.cls is cls:
            return entry.name
    raise ValueError(
        f"{cls.__name__} is not a registered generator class; call "
        "repro.api.register_generator first"
    )


def get_generator(name: str, **config: object) -> GraphGenerator:
    """Construct a registered generator from keyword config.

    ``get_generator(name)`` uses the class defaults;
    ``get_generator(name, **gen.to_config())`` rebuilds an equivalent
    unfitted instance.
    """
    return generator_entry(name).cls.from_config(**config)


def smoke_config(name: str) -> Dict[str, object]:
    """The registered cheap-construction kwargs (copy) for ``name``."""
    return dict(generator_entry(name).smoke_config)


# ---------------------------------------------------------------------------
# built-in registrations: VRDAG + the full baseline field
# ---------------------------------------------------------------------------
_BUILTINS = (
    (
        "VRDAG",
        VRDAGGenerator,
        "the paper's variational recurrent model (train + Algorithm 1)",
        {"epochs": 2, "hidden_dim": 8, "latent_dim": 4, "encode_dim": 8},
    ),
    (
        "Normal",
        NormalAttributeGenerator,
        "per-step Gaussian attributes over density-matched ER edges (Fig. 3)",
        {},
    ),
    (
        "GenCAT",
        GenCAT,
        "latent-class attributed static generator (Maekawa et al., 2023)",
        {},
    ),
    (
        "GRAN",
        GRAN,
        "autoregressive row-wise structure generator (Liao et al., 2019)",
        {"epochs": 5},
    ),
    (
        "TagGen",
        TagGen,
        "temporal-walk + discriminator + merge generator (Zhou et al., 2020)",
        {"walks_per_edge": 1.0},
    ),
    (
        "TGGAN",
        TGGAN,
        "truncated temporal-walk GAN (Zhang et al., 2021)",
        {"walks_per_edge": 1.0, "adversarial_rounds": 1, "disc_epochs": 3},
    ),
    (
        "TIGGER",
        TIGGER,
        "RNN temporal-walk generative model (Gupta et al., 2022)",
        {"walks_per_edge": 1.0, "epochs": 2},
    ),
    (
        "Dymond",
        Dymond,
        "motif arrival-rate model (Zeno et al., 2021)",
        {},
    ),
    (
        "AGM",
        AGM,
        "attributed graph model with accept/reject edges (Pfeiffer, 2014)",
        {},
    ),
    (
        "ANC",
        ANC,
        "community-structured Gaussian-attribute generator (Largeron, 2015)",
        {},
    ),
    (
        "ErdosRenyi",
        ErdosRenyi,
        "density-matched directed G(n, p)",
        {},
    ),
    (
        "BarabasiAlbert",
        BarabasiAlbert,
        "directed preferential attachment matched to edges/step",
        {},
    ),
    (
        "StochasticBlockModel",
        StochasticBlockModel,
        "directed SBM with degree-profile k-means blocks",
        {},
    ),
    (
        "Kronecker",
        KroneckerGraph,
        "stochastic Kronecker graph fitted by moment matching",
        {},
    ),
)

for _name, _cls, _desc, _smoke in _BUILTINS:
    register_generator(_name, _cls, description=_desc, smoke_config=_smoke)
