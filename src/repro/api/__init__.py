"""``repro.api`` — the canonical public surface of the toolkit.

Four pieces, one lifecycle (``fit → save → generate → evaluate``), any
generator:

* **Registry** — :func:`get_generator` / :func:`list_generators` /
  :func:`register_generator`: VRDAG and every baseline constructible
  by name, with construction as data (``from_config`` / ``to_config``).
* **Artifacts** — :func:`save_artifact` / :func:`load_artifact`: a
  versioned envelope round-tripping any registered generator, fitted
  or not (:mod:`repro.api.artifacts` documents the schema).
* **Pipeline** — :class:`Pipeline` runs dataset × generator × metric
  suites in one call and returns a structured :class:`RunResult`,
  threading the sharded-decode knobs through for VRDAG.
* **Service** — :class:`GenerationService` executes batches of
  :class:`GenerationRequest` concurrently with per-request bit-exact
  determinism.

Query serving rides the same surface: :class:`QueryService` /
:class:`QueryRequest` / :class:`QueryResult` (from
:mod:`repro.workloads`, re-exported here) serve workload query mixes
over a shared engine and bounded plan cache, and
:class:`ProcessQueryService` (from :mod:`repro.serving`, with
:class:`ColumnarQueryRequest` as its native request format) scales
the same contract across N worker processes mapping the store from
shared memory — see ``docs/workloads.md``.  For stores still
ingesting, :class:`LiveQueryService` (with
:class:`~repro.graph.live.LiveStoreBuilder`, both re-exported here)
answers each request batch against one pinned epoch snapshot,
bit-identical to a bulk-built store of that epoch's events.

Both services speak the reliability vocabulary of
:mod:`repro.reliability` (re-exported here): per-request failures are
:class:`RequestFailure` values on results, overload raises
:class:`ServiceOverloadedError`, deadlines surface as
:class:`DeadlineExceededError`, and :class:`RetryPolicy` /
:data:`fault_injector` configure retries and chaos testing — see
``docs/reliability.md``.

Quickstart::

    from repro import api

    result = api.Pipeline(dataset="email", generator="VRDAG",
                          metrics=["structure", "privacy"],
                          artifact_out="/tmp/vrdag.npz").run()

    batch = api.GenerationService(executor="thread").run_batch([
        api.GenerationRequest("/tmp/vrdag.npz", num_timesteps=14, seed=s)
        for s in range(8)
    ])
"""

from repro.api.artifacts import (
    ARTIFACT_VERSION,
    ArtifactError,
    ArtifactStateError,
    is_artifact,
    load_artifact,
    save_artifact,
)
from repro.api.pipeline import METRIC_SUITES, Pipeline, RunResult, list_metrics
from repro.api.registry import (
    GeneratorEntry,
    generator_entry,
    generator_name_of,
    get_generator,
    list_generators,
    register_generator,
    smoke_config,
)
from repro.api.service import (
    GenerationRequest,
    GenerationResult,
    GenerationService,
)
from repro.reliability import (
    DeadlineExceededError,
    FaultPlan,
    InjectedFault,
    RequestFailure,
    RetryPolicy,
    ServiceOverloadedError,
    fault_injector,
)
from repro.graph.live import LiveStoreBuilder
from repro.serving import ColumnarQueryRequest, ProcessQueryService
from repro.workloads import (
    LiveQueryService,
    QueryRequest,
    QueryResult,
    QueryService,
)

__all__ = [
    # registry
    "GeneratorEntry",
    "register_generator",
    "get_generator",
    "generator_entry",
    "generator_name_of",
    "list_generators",
    "smoke_config",
    # artifacts
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactStateError",
    "save_artifact",
    "load_artifact",
    "is_artifact",
    # pipeline
    "Pipeline",
    "RunResult",
    "METRIC_SUITES",
    "list_metrics",
    # service
    "GenerationRequest",
    "GenerationResult",
    "GenerationService",
    # query serving (repro.workloads / repro.serving)
    "QueryRequest",
    "QueryResult",
    "QueryService",
    "ColumnarQueryRequest",
    "ProcessQueryService",
    "LiveQueryService",
    "LiveStoreBuilder",
    # reliability (repro.reliability)
    "DeadlineExceededError",
    "FaultPlan",
    "InjectedFault",
    "RequestFailure",
    "RetryPolicy",
    "ServiceOverloadedError",
    "fault_injector",
]
