"""Batched run-serving: many generation requests, one executor pool.

:class:`GenerationService` is the serving front door the ROADMAP's
"heavy traffic" north-star asks for: a batch of
``(artifact, timesteps, seed)`` requests is executed concurrently over
the same executor family the PR-3 sharded decode uses
(``serial`` / ``thread`` / ``process``), and every request is
**bit-identical** to loading the artifact and calling ``generate``
serially:

* Each request loads its *own* generator instance from the artifact
  file — no model object is shared across concurrent requests, so no
  generator-internal state (RNGs, train/eval flags, caches) can leak
  between them.  Determinism is a property of ``(artifact, seed,
  timesteps)`` alone; batch composition and executor are deployment
  knobs.
* Results come back in request order regardless of completion order.

For the ``process`` executor the workers ship back the generated
graph's columnar form (``src``/``dst``/``t`` + attribute block) rather
than pickled graph objects — the store columns are plain arrays, and
the parent rebuilds the store zero-copy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.generation.runner import EXECUTORS
from repro.graph import DynamicAttributedGraph
from repro.graph.store import TemporalEdgeStore
from repro.profiling import profiler

__all__ = ["GenerationRequest", "GenerationResult", "GenerationService"]

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class GenerationRequest:
    """One unit of serving work: which artifact, how long, which seed."""

    artifact: str
    num_timesteps: int
    seed: int = 0
    #: per-request shard count for VRDAG-backed artifacts (bit-identical
    #: for every value; non-VRDAG artifacts require 1)
    shards: int = 1

    def __post_init__(self):
        if self.num_timesteps < 1:
            raise ValueError("num_timesteps must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")


@dataclass
class GenerationResult:
    """A request together with its generated graph and wall-clock."""

    request: GenerationRequest
    graph: DynamicAttributedGraph
    seconds: float


_Columns = Tuple[int, int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _execute_request(request: GenerationRequest) -> Tuple[_Columns, float]:
    """Load the artifact and generate; returns store columns + seconds.

    Module-level (and column-valued) so the ``process`` executor can
    ship it to workers without pickling live model or graph objects.
    """
    from repro.api.artifacts import load_artifact
    from repro.api.pipeline import generate_with_decode

    t0 = perf_counter()
    generator = load_artifact(request.artifact)
    graph = generate_with_decode(
        generator, request.num_timesteps, request.seed,
        shards=request.shards,
    )
    store = graph.store
    columns = (
        store.num_nodes, store.num_timesteps,
        store.src, store.dst, store.t, store.attributes,
    )
    return columns, perf_counter() - t0


def _rebuild(columns: _Columns) -> DynamicAttributedGraph:
    n, t_len, src, dst, t, attributes = columns
    return DynamicAttributedGraph.from_store(
        TemporalEdgeStore(
            n, t_len, src, dst, t, attributes,
            validate=False, canonical=True,
        )
    )


class GenerationService:
    """Concurrent executor of generation-request batches.

    Parameters
    ----------
    executor:
        ``"serial"`` (in-process loop), ``"thread"`` (the decode and
        merge kernels are GIL-releasing NumPy, so threads scale), or
        ``"process"`` (full isolation; artifacts are re-read in each
        worker).
    max_workers:
        Pool width; defaults to ``cpu_count`` (the pool is created
        once and reused across batches, so it is sized for the
        machine, not for whichever batch arrives first).

    Pools are created lazily on the first batch and reused; use the
    service as a context manager (or call :meth:`close`) to release
    them.
    """

    def __init__(self, executor: str = "thread",
                 max_workers: Optional[int] = None):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.executor = executor
        self.max_workers = max_workers
        self._pool = None

    # ------------------------------------------------------------------
    def _workers(self) -> int:
        if self.max_workers is not None:
            return max(int(self.max_workers), 1)
        return max(os.cpu_count() or 1, 1)

    def _map(self, requests: Sequence[GenerationRequest]):
        if self.executor == "serial":
            return [_execute_request(r) for r in requests]
        if self.executor == "thread":
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers(),
                    thread_name_prefix="generation-service",
                )
            return list(self._pool.map(_execute_request, requests))
        if self._pool is None:
            import multiprocessing as mp

            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            self._pool = mp.get_context(method).Pool(
                processes=self._workers()
            )
        return self._pool.map(_execute_request, requests)

    # ------------------------------------------------------------------
    def run_batch(
        self, requests: Sequence[GenerationRequest]
    ) -> List[GenerationResult]:
        """Execute every request; results are in request order."""
        requests = list(requests)
        if not requests:
            return []
        with profiler.timer("api.service.run_batch"):
            outcomes = self._map(requests)
        return [
            GenerationResult(request=req, graph=_rebuild(cols), seconds=s)
            for req, (cols, s) in zip(requests, outcomes)
        ]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (no-op for ``serial``)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if hasattr(pool, "shutdown"):  # ThreadPoolExecutor
            pool.shutdown(wait=True)
        else:  # multiprocessing.Pool
            pool.close()
            pool.join()

    def __enter__(self) -> "GenerationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
