"""Batched run-serving: many generation requests, one executor pool.

:class:`GenerationService` is the serving front door the ROADMAP's
"heavy traffic" north-star asks for: a batch of
``(artifact, timesteps, seed)`` requests is executed concurrently over
the same executor family the PR-3 sharded decode uses
(``serial`` / ``thread`` / ``process``), and every request is
**bit-identical** to loading the artifact and calling ``generate``
serially:

* Each request loads its *own* generator instance from the artifact
  file — no model object is shared across concurrent requests, so no
  generator-internal state (RNGs, train/eval flags, caches) can leak
  between them.  Determinism is a property of ``(artifact, seed,
  timesteps)`` alone; batch composition and executor are deployment
  knobs.
* Results come back in request order regardless of completion order.

For the ``process`` executor the workers ship back the generated
graph's columnar form (``src``/``dst``/``t`` + attribute block) rather
than pickled graph objects — the store columns are plain arrays, and
the parent rebuilds the store zero-copy.

**Fault tolerance** (contract in ``docs/reliability.md``): a failing
request comes back as a structured
:class:`~repro.reliability.errors.RequestFailure` on its own result —
``run_batch`` never raises for one bad request and sibling requests
are unaffected.  Optional knobs add per-request deadlines
(``deadline_seconds``), seeded-backoff retries (``retry_policy``) and
bounded admission (``max_pending`` — overflow is shed with a
structured :class:`~repro.reliability.errors.ServiceOverloadedError`,
never queued unboundedly).  The ``generation.request`` injection
point lets the chaos suite provoke worker crashes and slow workers
deterministically; a request that completes under injected faults is
bit-identical to the fault-free run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.generation.runner import EXECUTORS
from repro.graph import DynamicAttributedGraph
from repro.graph.store import TemporalEdgeStore
from repro.profiling import profiler
from repro.reliability import (
    AdmissionController,
    Deadline,
    DeadlineExceededError,
    RequestFailure,
    RetryPolicy,
    fault_injector,
)

__all__ = ["GenerationRequest", "GenerationResult", "GenerationService"]

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class GenerationRequest:
    """One unit of serving work: which artifact, how long, which seed."""

    artifact: str
    num_timesteps: int
    seed: int = 0
    #: per-request shard count for VRDAG-backed artifacts (bit-identical
    #: for every value; non-VRDAG artifacts require 1)
    shards: int = 1

    def __post_init__(self):
        if self.num_timesteps < 1:
            raise ValueError("num_timesteps must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")


@dataclass
class GenerationResult:
    """A request together with its generated graph and wall-clock.

    ``graph`` is ``None`` exactly when ``error`` is set: the request
    failed (after ``attempts`` executions) and the failure is carried
    here as data instead of poisoning the sibling requests of the
    same batch.
    """

    request: GenerationRequest
    graph: Optional[DynamicAttributedGraph]
    seconds: float
    attempts: int = 1
    error: Optional[RequestFailure] = None

    @property
    def ok(self) -> bool:
        """True when the request produced a graph."""
        return self.error is None


_Columns = Tuple[int, int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _execute_request(request: GenerationRequest) -> Tuple[_Columns, float]:
    """Load the artifact and generate; returns store columns + seconds.

    Module-level (and column-valued) so the ``process`` executor can
    ship it to workers without pickling live model or graph objects.
    """
    from repro.api.artifacts import load_artifact
    from repro.api.pipeline import generate_with_decode

    t0 = perf_counter()
    generator = load_artifact(request.artifact)
    graph = generate_with_decode(
        generator, request.num_timesteps, request.seed,
        shards=request.shards,
    )
    store = graph.store
    columns = (
        store.num_nodes, store.num_timesteps,
        store.src, store.dst, store.t, store.attributes,
    )
    return columns, perf_counter() - t0


def _rebuild(columns: _Columns) -> DynamicAttributedGraph:
    n, t_len, src, dst, t, attributes = columns
    return DynamicAttributedGraph.from_store(
        TemporalEdgeStore(
            n, t_len, src, dst, t, attributes,
            validate=False, canonical=True,
        )
    )


def _execute_request_tagged(payload):
    """Worker-safe wrapper for the ``process`` executor.

    Returns a picklable tagged tuple — ``("ok", columns, seconds,
    attempts)`` or ``("error", type_name, message, attempts)`` — so a
    crashing request surfaces as data instead of tearing down the
    whole ``Pool.map``.  The deadline is cooperative in workers
    (checked at request start and between retries).
    """
    request, deadline_seconds, policy = payload
    deadline = Deadline.after(deadline_seconds)

    def attempt():
        if deadline is not None:
            deadline.check()
        return _execute_request(request)

    try:
        if policy is not None:
            (columns, seconds), attempts = policy.run(
                attempt, key=(request.artifact, request.seed),
                deadline=deadline,
            )
        else:
            columns, seconds = attempt()
            attempts = 1
        return ("ok", columns, seconds, attempts)
    except Exception as exc:
        attempts = getattr(exc, "_retry_attempts", 1)
        return ("error", type(exc).__name__, str(exc), attempts)


class GenerationService:
    """Concurrent executor of generation-request batches.

    Parameters
    ----------
    executor:
        ``"serial"`` (in-process loop), ``"thread"`` (the decode and
        merge kernels are GIL-releasing NumPy, so threads scale), or
        ``"process"`` (full isolation; artifacts are re-read in each
        worker).
    max_workers:
        Pool width; defaults to ``cpu_count`` (the pool is created
        once and reused across batches, so it is sized for the
        machine, not for whichever batch arrives first).
    retry_policy:
        Optional :class:`~repro.reliability.RetryPolicy`: transient
        per-request failures (injected faults, I/O flakes) are
        retried with deterministic seeded backoff before the request
        is reported failed.
    deadline_seconds:
        Optional per-request budget.  ``serial`` checks it at request
        start and between retries (cooperative); ``thread``
        additionally bounds the wait on each worker future, so a
        stuck request surfaces as a structured
        ``DeadlineExceededError`` result instead of a hang;
        ``process`` workers check it cooperatively.
    max_pending:
        Bound on requests admitted but not yet finished, across all
        concurrent ``run_batch`` callers.  A submission that would
        exceed it raises
        :class:`~repro.reliability.ServiceOverloadedError`
        immediately (structured load shedding — the queue is never
        unbounded).  ``None`` (default) disables the bound.

    Pools are created lazily on the first batch and reused; use the
    service as a context manager (or call :meth:`close`) to release
    them.
    """

    def __init__(
        self,
        executor: str = "thread",
        max_workers: Optional[int] = None,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        deadline_seconds: Optional[float] = None,
        max_pending: Optional[int] = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        self.executor = executor
        self.max_workers = max_workers
        self.retry_policy = retry_policy
        self.deadline_seconds = deadline_seconds
        self._admission = AdmissionController(max_pending)
        self._pool = None

    # ------------------------------------------------------------------
    def _workers(self) -> int:
        if self.max_workers is not None:
            return max(int(self.max_workers), 1)
        return max(os.cpu_count() or 1, 1)

    def _guarded(
        self,
        request: GenerationRequest,
        index: int,
        deadline: Optional[Deadline],
    ) -> GenerationResult:
        """Execute one request; failures become result values."""
        t0 = perf_counter()
        attempt_counter = 0

        def attempt():
            nonlocal attempt_counter
            attempt_counter += 1
            if deadline is not None:
                deadline.check()
            fault_injector.fire(
                "generation.request", key=(index, attempt_counter)
            )
            return _execute_request(request)

        try:
            if self.retry_policy is not None:
                (columns, seconds), attempts = self.retry_policy.run(
                    attempt, key=index, deadline=deadline
                )
            else:
                columns, seconds = attempt()
                attempts = 1
            return GenerationResult(
                request=request,
                graph=_rebuild(columns),
                seconds=seconds,
                attempts=attempts,
            )
        except Exception as exc:
            attempts = getattr(exc, "_retry_attempts", None) or max(
                attempt_counter, 1
            )
            return GenerationResult(
                request=request,
                graph=None,
                seconds=perf_counter() - t0,
                attempts=attempts,
                error=RequestFailure.from_exception(exc, attempts),
            )

    def _deadline_result(
        self, request: GenerationRequest, deadline: Deadline
    ) -> GenerationResult:
        failure = RequestFailure.from_exception(
            DeadlineExceededError(
                deadline.budget_seconds, deadline.elapsed()
            )
        )
        return GenerationResult(
            request=request,
            graph=None,
            seconds=deadline.elapsed(),
            error=failure,
        )

    def _map(
        self, requests: Sequence[GenerationRequest]
    ) -> List[GenerationResult]:
        deadlines = [
            Deadline.after(self.deadline_seconds) for _ in requests
        ]
        if self.executor == "serial":
            return [
                self._guarded(request, i, deadline)
                for i, (request, deadline) in enumerate(
                    zip(requests, deadlines)
                )
            ]
        if self.executor == "thread":
            from concurrent.futures import TimeoutError as FuturesTimeout

            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers(),
                    thread_name_prefix="generation-service",
                )
            futures = [
                self._pool.submit(self._guarded, request, i, deadline)
                for i, (request, deadline) in enumerate(
                    zip(requests, deadlines)
                )
            ]
            results: List[GenerationResult] = []
            for request, deadline, future in zip(
                requests, deadlines, futures
            ):
                try:
                    timeout = (
                        None
                        if deadline is None
                        else max(deadline.remaining(), 0.0)
                    )
                    results.append(future.result(timeout=timeout))
                except FuturesTimeout:
                    # the worker keeps running but the request is
                    # answered now, with a structured expiry — the
                    # caller never hangs on a slow worker
                    future.cancel()
                    results.append(self._deadline_result(request, deadline))
            return results
        # process executor
        if self._pool is None:
            import multiprocessing as mp

            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            self._pool = mp.get_context(method).Pool(
                processes=self._workers()
            )
        payloads = [
            (request, self.deadline_seconds, self.retry_policy)
            for request in requests
        ]
        outcomes = self._pool.map(_execute_request_tagged, payloads)
        results = []
        for request, outcome in zip(requests, outcomes):
            if outcome[0] == "ok":
                _, columns, seconds, attempts = outcome
                results.append(
                    GenerationResult(
                        request=request,
                        graph=_rebuild(columns),
                        seconds=seconds,
                        attempts=attempts,
                    )
                )
            else:
                _, error_type, message, attempts = outcome
                results.append(
                    GenerationResult(
                        request=request,
                        graph=None,
                        seconds=0.0,
                        attempts=attempts,
                        error=RequestFailure(error_type, message, attempts),
                    )
                )
        return results

    # ------------------------------------------------------------------
    def run_batch(
        self, requests: Sequence[GenerationRequest]
    ) -> List[GenerationResult]:
        """Execute every request; results are in request order.

        Per-request failures are returned as
        :class:`~repro.reliability.RequestFailure` values on the
        affected results (check ``result.ok``); the only exception
        this method raises itself is
        :class:`~repro.reliability.ServiceOverloadedError` when the
        batch would exceed ``max_pending``.
        """
        requests = list(requests)
        if not requests:
            return []
        self._admission.try_acquire(len(requests))
        t0 = perf_counter()
        try:
            with profiler.timer("api.service.run_batch"):
                return self._map(requests)
        finally:
            self._admission.release(
                len(requests), seconds=perf_counter() - t0
            )

    # ------------------------------------------------------------------
    def admission_stats(self):
        """Pending/admitted/shed counters of the bounded queue."""
        return self._admission.stats()

    def close(self) -> None:
        """Shut down the worker pool (no-op for ``serial``)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if hasattr(pool, "shutdown"):  # ThreadPoolExecutor
            pool.shutdown(wait=True)
        else:  # multiprocessing.Pool
            pool.close()
            pool.join()

    def __enter__(self) -> "GenerationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
