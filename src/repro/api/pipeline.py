"""The run facade: dataset × generator × metrics in one call.

``Pipeline`` wires the pieces the repo already has — the dataset twins,
the generator registry, the sharded decode and the metric suite — into
the uniform lifecycle the CLI, the docs and the benches all speak::

    result = Pipeline(dataset="email", generator="VRDAG",
                      metrics=["structure", "privacy"]).run()
    print(result.metrics["structure"]["in_deg_dist"])

It is deliberately thin: resolving names, timing the stages, and
threading the PR-3 ``shards``/``executor`` knobs through to
:func:`repro.generation.generate_sharded` for VRDAG-backed generators.
The facade adds no per-edge work — ``scripts/bench_report.py`` tracks
its overhead against the direct calls (<5%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.api.registry import generator_name_of, get_generator
from repro.baselines.base import GraphGenerator
from repro.graph import DynamicAttributedGraph
from repro.metrics import (
    attribute_emd,
    attribute_jsd,
    extended_attribute_report,
    motif_discrepancy,
    privacy_report,
    spearman_correlation_mae,
    structure_metric_table,
)
from repro.profiling import profiler
from repro.reliability import InjectedFault, fault_injector

__all__ = [
    "METRIC_SUITES",
    "Pipeline",
    "RunResult",
    "generate_with_decode",
    "list_metrics",
]


def _attribute_suite(
    original: DynamicAttributedGraph, generated: DynamicAttributedGraph
) -> Dict[str, float]:
    """Fig. 3 / Table II attribute fidelity (empty for F=0 graphs)."""
    if original.num_attributes == 0:
        return {}
    return {
        "jsd": attribute_jsd(original, generated),
        "emd": attribute_emd(original, generated),
        "spearman_mae": spearman_correlation_mae(original, generated),
    }


#: Named metric suites: each maps (original, generated) to a scalar or
#: a flat dict of scalars.  Register additional suites by inserting
#: into this mapping.
METRIC_SUITES: Dict[
    str, Callable[[DynamicAttributedGraph, DynamicAttributedGraph], Any]
] = {
    "structure": structure_metric_table,
    "attributes": _attribute_suite,
    "privacy": privacy_report,
    "motifs": lambda o, g: {"discrepancy": motif_discrepancy(o, g)},
    "extended": extended_attribute_report,
}


def list_metrics() -> List[str]:
    """Sorted names of the available metric suites."""
    return sorted(METRIC_SUITES)


def _vrdag_model(generator: GraphGenerator):
    """The wrapped VRDAG when ``generator`` supports the sharded decode."""
    from repro.core.model import VRDAG

    model = getattr(generator, "model", None)
    return model if isinstance(model, VRDAG) else None


def generate_with_decode(
    generator: GraphGenerator,
    num_timesteps: int,
    seed: Optional[int],
    *,
    shards: int = 1,
    executor: str = "serial",
) -> DynamicAttributedGraph:
    """Generate from a fitted generator, honoring the decode knobs.

    The single dispatch point shared by :class:`Pipeline`, the CLI and
    :class:`~repro.api.service.GenerationService`: VRDAG-backed
    generators route through :func:`repro.generation.generate_sharded`
    (bit-identical for every ``shards``/``executor``); everything else
    requires the serial defaults and raises ``ValueError`` otherwise.

    This is also a degradation point (``docs/reliability.md``): the
    sharded decode is bit-identical to the serial decode, so a fault in
    the sharded path (provoked via the ``pipeline.sharded_decode``
    injection point) falls back to ``shards=1 / executor='serial'``
    with identical output — degraded throughput, not a failed request.
    """
    model = _vrdag_model(generator)
    if model is not None:
        from repro.generation import generate_sharded

        if shards != 1 or executor != "serial":
            try:
                fault_injector.fire(
                    "pipeline.sharded_decode", key=(shards, executor)
                )
                return generate_sharded(
                    model, num_timesteps, seed=seed,
                    n_shards=shards, executor=executor,
                )
            except InjectedFault:
                # sharded decode faulted: the serial decode is its
                # bit-identical reference twin, so degrade to it
                pass
        return generate_sharded(
            model, num_timesteps, seed=seed, n_shards=1, executor="serial",
        )
    if shards != 1 or executor != "serial":
        raise ValueError(
            f"{type(generator).__name__} does not support the sharded "
            "decode; use shards=1 / executor='serial'"
        )
    return generator.generate(num_timesteps, seed=seed)


@dataclass
class RunResult:
    """Structured outcome of one :meth:`Pipeline.run`."""

    generator: str
    generator_config: Dict[str, Any]
    dataset: str
    num_timesteps: int
    seed: int
    shards: int
    executor: str
    fit_seconds: float
    generate_seconds: float
    metric_seconds: float
    metrics: Dict[str, Any]
    reference: DynamicAttributedGraph = field(repr=False)
    generated: DynamicAttributedGraph = field(repr=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (graphs summarized, not embedded)."""
        return {
            "generator": self.generator,
            "generator_config": _jsonable(self.generator_config),
            "dataset": self.dataset,
            "num_timesteps": self.num_timesteps,
            "seed": self.seed,
            "shards": self.shards,
            "executor": self.executor,
            "timings": {
                "fit_seconds": round(self.fit_seconds, 6),
                "generate_seconds": round(self.generate_seconds, 6),
                "metric_seconds": round(self.metric_seconds, 6),
            },
            "generated_summary": {
                "num_nodes": self.generated.num_nodes,
                "num_timesteps": self.generated.num_timesteps,
                "num_attributes": self.generated.num_attributes,
                "num_temporal_edges": self.generated.num_temporal_edges,
            },
            "metrics": _jsonable(self.metrics),
        }


class Pipeline:
    """One-shot ``fit -> generate -> evaluate`` over named components.

    Parameters
    ----------
    dataset:
        A dataset-twin name (see :func:`repro.datasets.list_datasets`)
        or an already-built :class:`DynamicAttributedGraph`.
    generator:
        A registry name or a :class:`GraphGenerator` instance (which
        must be of a registered class).
    metrics:
        Suite names from :data:`METRIC_SUITES`.
    generator_config:
        Construction kwargs when ``generator`` is a name; ``seed`` is
        filled from the pipeline seed unless given explicitly.
    scale, dataset_seed:
        Dataset-twin scaling knobs (ignored for graph inputs).
    timesteps:
        Generation horizon; defaults to the dataset's.
    seed:
        Generation seed (and default construction seed).
    shards, executor:
        Passed through to :func:`repro.generation.generate_sharded`
        for VRDAG-backed generators; any shard count / executor is
        bit-identical to the serial decode.  Non-VRDAG generators
        require the defaults (``shards=1``, ``executor="serial"``).
    artifact_out, generated_out:
        Optional paths: persist the fitted generator (artifact
        envelope) and the generated graph (``graph.io`` npz).
    """

    def __init__(
        self,
        dataset: Union[str, DynamicAttributedGraph],
        generator: Union[str, GraphGenerator],
        metrics: Sequence[str] = ("structure",),
        *,
        generator_config: Optional[Mapping[str, Any]] = None,
        scale: float = 0.05,
        dataset_seed: int = 0,
        timesteps: Optional[int] = None,
        seed: int = 0,
        shards: int = 1,
        executor: str = "serial",
        artifact_out: Optional[str] = None,
        generated_out: Optional[str] = None,
    ):
        unknown = [m for m in metrics if m not in METRIC_SUITES]
        if unknown:
            raise ValueError(
                f"unknown metric suites {unknown}; available: {list_metrics()}"
            )
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if timesteps is not None and timesteps < 1:
            raise ValueError("timesteps must be >= 1 (or None for the "
                             "dataset horizon)")
        self.dataset = dataset
        self.generator = generator
        self.metrics = tuple(metrics)
        self.generator_config = dict(generator_config or {})
        self.scale = scale
        self.dataset_seed = dataset_seed
        self.timesteps = timesteps
        self.seed = seed
        self.shards = shards
        self.executor = executor
        self.artifact_out = artifact_out
        self.generated_out = generated_out

    @classmethod
    def from_dict(cls, config: Mapping[str, Any]) -> "Pipeline":
        """Build a pipeline from a plain (e.g. JSON-loaded) mapping."""
        config = dict(config)
        try:
            dataset = config.pop("dataset")
            generator = config.pop("generator")
        except KeyError as exc:
            raise ValueError(
                f"pipeline config missing required key {exc.args[0]!r}"
            ) from None
        metrics = config.pop("metrics", ("structure",))
        known = {
            "generator_config", "scale", "dataset_seed", "timesteps",
            "seed", "shards", "executor", "artifact_out", "generated_out",
        }
        unknown = set(config) - known
        if unknown:
            raise ValueError(
                f"unknown pipeline config keys {sorted(unknown)}; "
                f"known: {sorted(known | {'dataset', 'generator', 'metrics'})}"
            )
        return cls(dataset, generator, metrics, **config)

    # ------------------------------------------------------------------
    def _resolve_dataset(self):
        if isinstance(self.dataset, DynamicAttributedGraph):
            return "<graph>", self.dataset
        from repro.datasets import load_dataset

        return self.dataset, load_dataset(
            self.dataset, scale=self.scale, seed=self.dataset_seed
        )

    def _resolve_generator(self) -> GraphGenerator:
        if isinstance(self.generator, GraphGenerator):
            if self.generator_config:
                raise ValueError(
                    "generator_config only applies when the generator is "
                    "given by name"
                )
            return self.generator
        config = dict(self.generator_config)
        config.setdefault("seed", self.seed)
        return get_generator(self.generator, **config)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute fit → generate → evaluate and collect the result."""
        name, reference = self._resolve_dataset()
        generator = self._resolve_generator()
        generator_name = generator_name_of(generator)

        t0 = perf_counter()
        if not generator.fitted:
            with profiler.timer(f"api.pipeline.fit.{generator_name}"):
                generator.fit(reference)
        fit_s = perf_counter() - t0

        steps = (
            self.timesteps
            if self.timesteps is not None
            else reference.num_timesteps
        )
        t0 = perf_counter()
        with profiler.timer(f"api.pipeline.generate.{generator_name}"):
            generated = generate_with_decode(
                generator, steps, self.seed,
                shards=self.shards, executor=self.executor,
            )
        gen_s = perf_counter() - t0

        t0 = perf_counter()
        results: Dict[str, Any] = {}
        with profiler.timer("api.pipeline.metrics"):
            for metric in self.metrics:
                results[metric] = METRIC_SUITES[metric](reference, generated)
        metric_s = perf_counter() - t0

        if self.artifact_out:
            from repro.api.artifacts import save_artifact

            save_artifact(generator, self.artifact_out)
        if self.generated_out:
            from repro.graph import io as graph_io

            graph_io.save(generated, self.generated_out)

        return RunResult(
            generator=generator_name,
            generator_config=generator.to_config(),
            dataset=name,
            num_timesteps=steps,
            seed=self.seed,
            shards=self.shards,
            executor=self.executor,
            fit_seconds=fit_s,
            generate_seconds=gen_s,
            metric_seconds=metric_s,
            metrics=results,
            reference=reference,
            generated=generated,
        )


def _jsonable(value: Any) -> Any:
    """Recursively coerce metric payloads into JSON-safe values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, float)):
        return round(float(value), 6)
    if isinstance(value, np.integer):
        return int(value)
    return value
