"""Versioned generator artifacts: one envelope for every generator.

An *artifact* is a single compressed ``.npz`` that round-trips any
registered generator — fitted or not — through five fields:

=================  ========================================================
``__artifact__``   magic marker (``"repro-generator-artifact"``)
``version``        envelope format version (currently 3; version 2 lacked
                   the checksum and is still read; version 1 is the legacy
                   VRDAG-only layout read by
                   :func:`repro.core.persistence.load_model`)
``generator``      registry name (``repro.api.get_generator`` resolves it)
``config``         JSON of ``generator.to_config()`` — construction as data
``state``          JSON tree of ``generator.get_state()`` with every numpy
                   array swapped for a ``{"__ndarray__": i}`` reference to
                   the ``arr::<i>`` entry stored alongside
``checksum``       SHA-256 over the logical payload (name, config bytes,
                   state bytes, each array's dtype/shape/C-order bytes) —
                   verified at load, so silent corruption surfaces as a
                   typed :class:`ArtifactError` instead of a garbage model
=================  ========================================================

The state codec closes over: ``None``, ``bool``/``int``/``float``/
``str``, numpy arrays and scalars, and lists/tuples/dicts of those.
Dicts are encoded as ordered ``[key, value]`` pair lists so that
integer keys *and insertion order* survive — both matter for
bit-exact regeneration (e.g. the walk baselines' bigram tables feed
``rng.choice`` in insertion order).  Anything outside that closure
raises :class:`ArtifactStateError` at save time; a generator whose
state legitimately cannot be captured should override
``get_state``/``set_state`` to re-encode it (see ``GRAN``/``TIGGER``)
or exclude it via ``_STATE_EXCLUDE``.

Loading never unpickles: ``np.load`` runs with ``allow_pickle=False``
and the JSON fields decode to plain containers.

**Crash safety** (``docs/reliability.md``): :func:`save_artifact`
writes through a temp file and ``os.replace``, so a crash mid-save
leaves either the old file or the new one — never a torn envelope.
:func:`load_artifact` wraps every decode failure (bad zip, truncated
member, missing entry, invalid JSON, checksum mismatch) in
:class:`ArtifactError` naming the path and the failure mode;
``FileNotFoundError`` still passes through untouched.  The
``artifact.load`` / ``artifact.state`` injection points let the chaos
suite provoke both.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from typing import Any, Dict, List, Sequence, Union

import numpy as np

from repro.baselines.base import GraphGenerator
from repro.reliability import fault_injector

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactStateError",
    "is_artifact",
    "load_artifact",
    "save_artifact",
]

ARTIFACT_VERSION = 3
_MIN_READ_VERSION = 2
_MAGIC = "repro-generator-artifact"
_ARRAY_PREFIX = "arr::"

PathLike = Union[str, os.PathLike]


class ArtifactError(ValueError):
    """An artifact file cannot be read: corrupt, truncated, or foreign.

    Subclasses ``ValueError`` so callers written against the pre-v3
    ``load_artifact`` contract (which raised bare ``ValueError``) keep
    working; the message always names the offending path and the
    failure mode.  ``FileNotFoundError`` is *not* converted — a
    missing file is an addressing error, not a corrupt artifact.
    """


class ArtifactStateError(TypeError):
    """A generator's state holds a value the envelope cannot encode."""


# ---------------------------------------------------------------------------
# state codec
# ---------------------------------------------------------------------------
def _encode(value: Any, arrays: List[np.ndarray], where: str) -> Any:
    """Encode one state value into a JSON-able node, hoisting arrays."""
    if isinstance(value, np.ndarray):
        arrays.append(value)
        return {"__ndarray__": len(arrays) - 1}
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {
            "__tuple__": [
                _encode(v, arrays, f"{where}[{i}]") for i, v in enumerate(value)
            ]
        }
    if isinstance(value, list):
        return [_encode(v, arrays, f"{where}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, dict):
        items = []
        for key, val in value.items():
            if isinstance(key, np.generic):
                key = key.item()
            if not isinstance(key, (bool, int, float, str)):
                raise ArtifactStateError(
                    f"{where}: dict key {key!r} "
                    f"({type(key).__name__}) is not serializable"
                )
            items.append([key, _encode(val, arrays, f"{where}[{key!r}]")])
        return {"__dict__": items}
    raise ArtifactStateError(
        f"{where}: value of type {type(value).__name__} is not serializable; "
        "override get_state/set_state or add the attribute to _STATE_EXCLUDE"
    )


def _decode(node: Any, arrays: Dict[int, np.ndarray]) -> Any:
    """Inverse of :func:`_encode`."""
    if isinstance(node, list):
        return [_decode(v, arrays) for v in node]
    if isinstance(node, dict):
        if "__ndarray__" in node:
            return arrays[int(node["__ndarray__"])]
        if "__tuple__" in node:
            return tuple(_decode(v, arrays) for v in node["__tuple__"])
        return {key: _decode(val, arrays) for key, val in node["__dict__"]}
    return node


def _json_bytes(payload: Any) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8)


def _payload_digest(
    name: str,
    config_bytes: bytes,
    state_bytes: bytes,
    arrays: Sequence[np.ndarray],
) -> str:
    """SHA-256 over the *logical* payload, not the file bytes.

    Hashing dtype + shape + C-order bytes per array makes the digest
    stable across save/load round trips (compression, Fortran layouts
    and views all normalize away) — the digest answers "is this the
    state I wrote", not "are these the bytes zlib produced".
    """
    h = hashlib.sha256()
    for part in (name.encode(), config_bytes, state_bytes):
        h.update(len(part).to_bytes(8, "little"))
        h.update(part)
    for a in arrays:
        h.update(a.dtype.str.encode())
        h.update(str(a.shape).encode())
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# envelope I/O
# ---------------------------------------------------------------------------
def save_artifact(generator: GraphGenerator, path: PathLike) -> None:
    """Serialize any registered generator (fitted or not) to ``path``.

    A bare :class:`~repro.core.model.VRDAG` is accepted too — it is
    wrapped in the ``"VRDAG"`` registry adapter first, so the file is
    indistinguishable from a trained-through-the-registry artifact.

    The write is atomic: the envelope is assembled in a sibling temp
    file and moved into place with ``os.replace``, so readers (and
    crash recovery) only ever see a complete artifact.  Like
    ``np.savez``, a path without a ``.npz`` suffix gets one appended.
    """
    from repro.api.registry import generator_name_of
    from repro.core.model import VRDAG

    if isinstance(generator, VRDAG):
        from repro.eval.harness import VRDAGGenerator

        generator = VRDAGGenerator.from_model(generator)
    name = generator_name_of(generator)
    arrays: List[np.ndarray] = []
    state_tree = _encode(generator.get_state(), arrays, name)
    config_arr = _json_bytes(generator.to_config())
    state_arr = _json_bytes(state_tree)
    checksum = _payload_digest(
        name, config_arr.tobytes(), state_arr.tobytes(), arrays
    )
    final = os.fspath(path)
    if not final.endswith(".npz"):
        final += ".npz"
    tmp = final + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                __artifact__=np.array(_MAGIC),
                version=np.array(ARTIFACT_VERSION),
                generator=np.array(name),
                config=config_arr,
                state=state_arr,
                checksum=np.array(checksum),
                **{f"{_ARRAY_PREFIX}{i}": a for i, a in enumerate(arrays)},
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def load_artifact(path: PathLike) -> GraphGenerator:
    """Reconstruct the generator saved by :func:`save_artifact`.

    Raises :class:`ArtifactError` (a ``ValueError``) for anything
    unreadable — foreign files, unsupported versions, truncated or
    corrupt envelopes (bad zip members, invalid JSON, checksum
    mismatch), missing entries — always naming ``path`` and the
    failure mode.  ``FileNotFoundError`` passes through untouched,
    and unregistered generator names surface from the registry as
    usual.  Reads versions ``2..3`` (v2 files simply lack the
    checksum, so they skip verification).
    """
    from repro.api.registry import generator_entry

    # keyless: the arrival counter varies the decision per load even
    # when every request reads the same artifact path
    fault_injector.fire("artifact.load")
    try:
        with np.load(path, allow_pickle=False) as data:
            if "__artifact__" not in data.files or (
                str(data["__artifact__"][()]) != _MAGIC
            ):
                raise ArtifactError(
                    f"{path} is not a generator artifact (no envelope "
                    "marker); legacy VRDAG model files are read by "
                    "repro.core.persistence.load_model"
                )
            version = int(data["version"])
            if version > ARTIFACT_VERSION or version < _MIN_READ_VERSION:
                raise ArtifactError(
                    f"{path}: unsupported artifact version {version} (this "
                    f"build reads version "
                    f"{_MIN_READ_VERSION}..{ARTIFACT_VERSION})"
                )
            name = str(data["generator"][()])
            config_bytes = bytes(data["config"])
            state_bytes = bytes(data["state"])
            arrays = {
                int(key[len(_ARRAY_PREFIX):]): data[key]
                for key in data.files
                if key.startswith(_ARRAY_PREFIX)
            }
            if version >= 3:
                if "checksum" not in data.files:
                    raise ArtifactError(
                        f"{path}: version {version} artifact is missing its "
                        "checksum entry (truncated write?)"
                    )
                stored = str(data["checksum"][()])
                state_bytes = fault_injector.corrupt_bytes(
                    "artifact.state", state_bytes, key=os.fspath(path)
                )
                actual = _payload_digest(
                    name,
                    config_bytes,
                    state_bytes,
                    [arrays[i] for i in sorted(arrays)],
                )
                if actual != stored:
                    raise ArtifactError(
                        f"{path}: checksum mismatch (stored {stored[:12]}…, "
                        f"computed {actual[:12]}…) — the artifact is corrupt"
                    )
        config = json.loads(config_bytes.decode())
        state_tree = json.loads(state_bytes.decode())
    except FileNotFoundError:
        raise
    except ArtifactError:
        raise
    except (zipfile.BadZipFile, KeyError, json.JSONDecodeError,
            ValueError, OSError) as exc:
        raise ArtifactError(
            f"{path}: corrupt or truncated artifact "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    entry = generator_entry(name)
    generator = entry.cls.from_config(**config)
    generator.set_state(_decode(state_tree, arrays))
    return generator


def is_artifact(path: PathLike) -> bool:
    """True if ``path`` is an artifact envelope (any version)."""
    try:
        with np.load(path, allow_pickle=False) as data:
            return "__artifact__" in data.files
    except FileNotFoundError:
        raise
    except Exception:
        return False
