"""Versioned generator artifacts: one envelope for every generator.

An *artifact* is a single compressed ``.npz`` that round-trips any
registered generator — fitted or not — through four fields:

=================  ========================================================
``__artifact__``   magic marker (``"repro-generator-artifact"``)
``version``        envelope format version (currently 2; version 1 is the
                   legacy VRDAG-only layout read by
                   :func:`repro.core.persistence.load_model`)
``generator``      registry name (``repro.api.get_generator`` resolves it)
``config``         JSON of ``generator.to_config()`` — construction as data
``state``          JSON tree of ``generator.get_state()`` with every numpy
                   array swapped for a ``{"__ndarray__": i}`` reference to
                   the ``arr::<i>`` entry stored alongside
=================  ========================================================

The state codec closes over: ``None``, ``bool``/``int``/``float``/
``str``, numpy arrays and scalars, and lists/tuples/dicts of those.
Dicts are encoded as ordered ``[key, value]`` pair lists so that
integer keys *and insertion order* survive — both matter for
bit-exact regeneration (e.g. the walk baselines' bigram tables feed
``rng.choice`` in insertion order).  Anything outside that closure
raises :class:`ArtifactStateError` at save time; a generator whose
state legitimately cannot be captured should override
``get_state``/``set_state`` to re-encode it (see ``GRAN``/``TIGGER``)
or exclude it via ``_STATE_EXCLUDE``.

Loading never unpickles: ``np.load`` runs with ``allow_pickle=False``
and the JSON fields decode to plain containers.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Union

import numpy as np

from repro.baselines.base import GraphGenerator

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactStateError",
    "is_artifact",
    "load_artifact",
    "save_artifact",
]

ARTIFACT_VERSION = 2
_MAGIC = "repro-generator-artifact"
_ARRAY_PREFIX = "arr::"

PathLike = Union[str, os.PathLike]


class ArtifactStateError(TypeError):
    """A generator's state holds a value the envelope cannot encode."""


# ---------------------------------------------------------------------------
# state codec
# ---------------------------------------------------------------------------
def _encode(value: Any, arrays: List[np.ndarray], where: str) -> Any:
    """Encode one state value into a JSON-able node, hoisting arrays."""
    if isinstance(value, np.ndarray):
        arrays.append(value)
        return {"__ndarray__": len(arrays) - 1}
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {
            "__tuple__": [
                _encode(v, arrays, f"{where}[{i}]") for i, v in enumerate(value)
            ]
        }
    if isinstance(value, list):
        return [_encode(v, arrays, f"{where}[{i}]") for i, v in enumerate(value)]
    if isinstance(value, dict):
        items = []
        for key, val in value.items():
            if isinstance(key, np.generic):
                key = key.item()
            if not isinstance(key, (bool, int, float, str)):
                raise ArtifactStateError(
                    f"{where}: dict key {key!r} "
                    f"({type(key).__name__}) is not serializable"
                )
            items.append([key, _encode(val, arrays, f"{where}[{key!r}]")])
        return {"__dict__": items}
    raise ArtifactStateError(
        f"{where}: value of type {type(value).__name__} is not serializable; "
        "override get_state/set_state or add the attribute to _STATE_EXCLUDE"
    )


def _decode(node: Any, arrays: Dict[int, np.ndarray]) -> Any:
    """Inverse of :func:`_encode`."""
    if isinstance(node, list):
        return [_decode(v, arrays) for v in node]
    if isinstance(node, dict):
        if "__ndarray__" in node:
            return arrays[int(node["__ndarray__"])]
        if "__tuple__" in node:
            return tuple(_decode(v, arrays) for v in node["__tuple__"])
        return {key: _decode(val, arrays) for key, val in node["__dict__"]}
    return node


def _json_bytes(payload: Any) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8)


# ---------------------------------------------------------------------------
# envelope I/O
# ---------------------------------------------------------------------------
def save_artifact(generator: GraphGenerator, path: PathLike) -> None:
    """Serialize any registered generator (fitted or not) to ``path``.

    A bare :class:`~repro.core.model.VRDAG` is accepted too — it is
    wrapped in the ``"VRDAG"`` registry adapter first, so the file is
    indistinguishable from a trained-through-the-registry artifact.
    """
    from repro.api.registry import generator_name_of
    from repro.core.model import VRDAG

    if isinstance(generator, VRDAG):
        from repro.eval.harness import VRDAGGenerator

        generator = VRDAGGenerator.from_model(generator)
    name = generator_name_of(generator)
    arrays: List[np.ndarray] = []
    state_tree = _encode(generator.get_state(), arrays, name)
    np.savez_compressed(
        path,
        __artifact__=np.array(_MAGIC),
        version=np.array(ARTIFACT_VERSION),
        generator=np.array(name),
        config=_json_bytes(generator.to_config()),
        state=_json_bytes(state_tree),
        **{f"{_ARRAY_PREFIX}{i}": a for i, a in enumerate(arrays)},
    )


def load_artifact(path: PathLike) -> GraphGenerator:
    """Reconstruct the generator saved by :func:`save_artifact`.

    Raises ``ValueError`` for unknown versions or unregistered
    generator names, ``FileNotFoundError`` if ``path`` is missing.
    """
    from repro.api.registry import generator_entry

    with np.load(path, allow_pickle=False) as data:
        if "__artifact__" not in data.files or (
            str(data["__artifact__"][()]) != _MAGIC
        ):
            raise ValueError(
                f"{path} is not a generator artifact (no envelope marker); "
                "legacy VRDAG model files are read by "
                "repro.core.persistence.load_model"
            )
        version = int(data["version"])
        if version > ARTIFACT_VERSION or version < 2:
            raise ValueError(
                f"unsupported artifact version {version} "
                f"(this build reads version 2..{ARTIFACT_VERSION})"
            )
        name = str(data["generator"][()])
        config = json.loads(bytes(data["config"]).decode())
        state_tree = json.loads(bytes(data["state"]).decode())
        arrays = {
            int(key[len(_ARRAY_PREFIX):]): data[key]
            for key in data.files
            if key.startswith(_ARRAY_PREFIX)
        }
    entry = generator_entry(name)
    generator = entry.cls.from_config(**config)
    generator.set_state(_decode(state_tree, arrays))
    return generator


def is_artifact(path: PathLike) -> bool:
    """True if ``path`` is an artifact envelope (any version)."""
    try:
        with np.load(path, allow_pickle=False) as data:
            return "__artifact__" in data.files
    except FileNotFoundError:
        raise
    except Exception:
        return False
