"""Scoped wall-clock timers and counters for hot-path accounting.

The ROADMAP's "fast as the hardware allows" goal needs *measured* hot
paths, not guessed ones.  This module provides a process-global
:class:`Profiler` with near-zero overhead when disabled (one attribute
check per call site), used by the trainer, the evaluation harness, and
``scripts/bench_report.py``::

    from repro.profiling import profiler

    with profiler.timer("trainer.epoch"):
        ...
    profiler.count("decode.edges", n_edges)
    print(profiler.report())

Timers nest freely; each named scope accumulates total seconds and call
count.  ``snapshot()`` returns plain dicts ready for JSON serialization
(the ``BENCH_perf.json`` schema documented in ``benchmarks/README.md``).
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class ScopeStats:
    """Accumulated statistics for one named timer scope."""

    seconds: float = 0.0
    calls: int = 0

    @property
    def mean_seconds(self) -> float:
        """Average seconds per call (0 before any call)."""
        return self.seconds / self.calls if self.calls else 0.0


@dataclass
class Profiler:
    """Named scoped timers + monotonic counters.

    Disabled by default so library code can instrument unconditionally;
    benchmarks and the CLI enable it around the regions they measure.
    """

    enabled: bool = False
    timers: Dict[str, ScopeStats] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @contextlib.contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock time of the ``with`` body under ``name``."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            stats = self.timers.setdefault(name, ScopeStats())
            stats.seconds += time.perf_counter() - start
            stats.calls += 1

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (no-op while disabled)."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + int(n)

    @contextlib.contextmanager
    def enable(self) -> Iterator["Profiler"]:
        """Temporarily switch the profiler on (restores the prior state)."""
        prev = self.enabled
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = prev

    def reset(self) -> None:
        """Drop all accumulated timers and counters."""
        self.timers.clear()
        self.counters.clear()

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-ready view: ``{"timers": {...}, "counters": {...}}``."""
        return {
            "timers": {
                name: {
                    "seconds": stats.seconds,
                    "calls": stats.calls,
                    "mean_seconds": stats.mean_seconds,
                }
                for name, stats in sorted(self.timers.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def report(self) -> str:
        """Human-readable table of all scopes, slowest first."""
        lines = ["scope                                    total_s     calls    mean_ms"]
        for name, stats in sorted(
            self.timers.items(), key=lambda kv: -kv[1].seconds
        ):
            lines.append(
                f"{name:<40} {stats.seconds:>8.3f} {stats.calls:>9d} "
                f"{1e3 * stats.mean_seconds:>9.3f}"
            )
        for name, value in sorted(self.counters.items()):
            lines.append(f"{name:<40} {value:>18d}")
        return "\n".join(lines)


def best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock of ``repeats`` calls (min filters scheduler noise).

    Shared by ``scripts/bench_report.py`` and the perf smoke tests so
    the trajectory and the sanity bounds measure the same quantity.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


#: process-global profiler used by the trainer / harness / benchmarks
profiler = Profiler()
