"""VRDAG reproduction: Efficient Dynamic Attributed Graph Generation.

Full from-scratch Python implementation of the ICDE 2025 paper,
including the numpy autodiff/NN substrate, the VRDAG model, six
baseline generators, the metric suite and the evaluation harness.

Quickstart
----------
>>> from repro import datasets, core
>>> graph = datasets.load_dataset("email", scale=0.03, seed=0)
>>> cfg = core.VRDAGConfig(num_nodes=graph.num_nodes,
...                        num_attributes=graph.num_attributes)
>>> model = core.VRDAG(cfg)
>>> core.VRDAGTrainer(model).fit(graph)
>>> synthetic = model.generate(num_timesteps=graph.num_timesteps)
"""

__version__ = "1.0.0"

from repro import autodiff, nn, graph, datasets, metrics, workloads

__all__ = [
    "autodiff",
    "nn",
    "graph",
    "datasets",
    "generation",
    "metrics",
    "workloads",
    "__version__",
]


def __getattr__(name):
    # repro.generation imports repro.core (the model); keeping it lazy
    # here avoids paying the core import for graph/metrics-only users
    if name == "generation":
        import importlib

        return importlib.import_module("repro.generation")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
