"""VRDAG reproduction: Efficient Dynamic Attributed Graph Generation.

Full from-scratch Python implementation of the ICDE 2025 paper,
including the numpy autodiff/NN substrate, the VRDAG model, six
baseline generators, the metric suite and the evaluation harness.

Quickstart
----------
>>> from repro import datasets, core
>>> graph = datasets.load_dataset("email", scale=0.03, seed=0)
>>> cfg = core.VRDAGConfig(num_nodes=graph.num_nodes,
...                        num_attributes=graph.num_attributes)
>>> model = core.VRDAG(cfg)
>>> core.VRDAGTrainer(model).fit(graph)
>>> synthetic = model.generate(num_timesteps=graph.num_timesteps)
"""

__version__ = "1.0.0"

from repro import autodiff, nn, graph, datasets, metrics, workloads

__all__ = [
    "api",
    "autodiff",
    "nn",
    "graph",
    "datasets",
    "generation",
    "metrics",
    "workloads",
    "__version__",
]

#: submodules that import repro.core (the model); keeping them lazy
#: avoids paying the core import for graph/metrics-only users
_LAZY_SUBMODULES = ("api", "generation")


def __getattr__(name):
    if name in _LAZY_SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
