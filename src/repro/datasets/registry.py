"""Dataset registry: profiles of the paper's six datasets + loaders.

Profiles carry the published statistics (Table I) and a characterful
parameterization of the co-evolution simulator; ``load_dataset`` scales
them down (default 5%) so pure-Python experiments finish in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.datasets.synthetic import CoEvolutionConfig, generate_co_evolving_graph
from repro.graph import DynamicAttributedGraph


@dataclass(frozen=True)
class DatasetProfile:
    """Published statistics + simulator character for one paper dataset."""

    name: str
    paper_nodes: int
    paper_temporal_edges: int
    num_attributes: int
    num_timesteps: int
    #: simulator character knobs
    num_communities: int
    persistence: float
    preferential: float
    community_bias: float
    attribute_coupling: float
    homophily: float
    reciprocity: float
    attribute_center_spread: float = 1.5
    attribute_skew: float = 0.5
    attribute_trend: float = 0.12

    def config(self, scale: float = 0.05, min_nodes: int = 40) -> CoEvolutionConfig:
        """Scaled-down simulator config preserving density per step."""
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        n = max(min_nodes, int(round(self.paper_nodes * scale)))
        # paper M counts temporal edges over all T steps; per-step target
        # shrinks quadratically-ish with N, we keep M/T scaled by `scale`
        edges_per_step = max(
            20, int(round(self.paper_temporal_edges / self.num_timesteps * scale))
        )
        return CoEvolutionConfig(
            num_nodes=n,
            num_timesteps=self.num_timesteps,
            num_attributes=self.num_attributes,
            edges_per_step=edges_per_step,
            num_communities=self.num_communities,
            persistence=self.persistence,
            preferential=self.preferential,
            community_bias=self.community_bias,
            attribute_coupling=self.attribute_coupling,
            homophily=self.homophily,
            reciprocity=self.reciprocity,
            attribute_center_spread=self.attribute_center_spread,
            attribute_skew=self.attribute_skew,
            attribute_trend=self.attribute_trend,
        )


# Character choices: Email is bursty mailing behaviour (low persistence,
# strong communities); Bitcoin a slowly growing trust network (high
# persistence, strong reciprocity); Wiki votes are one-shot directed
# actions (low persistence/reciprocity); Guarantee is a sparse directed
# finance network (very low density, no reciprocity — a guarantee is
# one-way); Brain has dense recurring connectivity with many attributes;
# GDELT is a dense event network with medium churn.
DATASET_PROFILES: Dict[str, DatasetProfile] = {
    "email": DatasetProfile(
        name="email", paper_nodes=1891, paper_temporal_edges=39264,
        num_attributes=2, num_timesteps=14,
        num_communities=6, persistence=0.35, preferential=0.75,
        community_bias=0.8, attribute_coupling=0.35, homophily=0.5,
        reciprocity=0.3,
    ),
    "bitcoin": DatasetProfile(
        name="bitcoin", paper_nodes=3783, paper_temporal_edges=24186,
        num_attributes=1, num_timesteps=37,
        num_communities=5, persistence=0.7, preferential=0.85,
        community_bias=0.6, attribute_coupling=0.25, homophily=0.4,
        reciprocity=0.45,
    ),
    "wiki": DatasetProfile(
        name="wiki", paper_nodes=7115, paper_temporal_edges=103689,
        num_attributes=1, num_timesteps=43,
        num_communities=8, persistence=0.3, preferential=0.9,
        community_bias=0.55, attribute_coupling=0.2, homophily=0.3,
        reciprocity=0.05,
    ),
    "guarantee": DatasetProfile(
        name="guarantee", paper_nodes=5530, paper_temporal_edges=6169,
        num_attributes=2, num_timesteps=15,
        num_communities=10, persistence=0.8, preferential=0.6,
        community_bias=0.75, attribute_coupling=0.4, homophily=0.6,
        reciprocity=0.0,
    ),
    "brain": DatasetProfile(
        name="brain", paper_nodes=5000, paper_temporal_edges=529093,
        num_attributes=20, num_timesteps=12,
        num_communities=12, persistence=0.65, preferential=0.5,
        community_bias=0.85, attribute_coupling=0.45, homophily=0.7,
        reciprocity=0.5,
    ),
    "gdelt": DatasetProfile(
        name="gdelt", paper_nodes=5037, paper_temporal_edges=566735,
        num_attributes=10, num_timesteps=18,
        num_communities=10, persistence=0.5, preferential=0.8,
        community_bias=0.65, attribute_coupling=0.3, homophily=0.45,
        reciprocity=0.15,
    ),
}


def list_datasets() -> list[str]:
    """Names of the available dataset twins."""
    return sorted(DATASET_PROFILES)


def load_dataset(
    name: str,
    scale: float = 0.05,
    seed: int = 0,
    num_timesteps: int | None = None,
    min_nodes: int = 40,
) -> DynamicAttributedGraph:
    """Generate the synthetic twin of paper dataset ``name``.

    Parameters
    ----------
    name:
        One of :func:`list_datasets` (case-insensitive).
    scale:
        Linear size factor vs the paper's dataset (0.05 → ~5% of nodes).
    seed:
        RNG seed — the same (name, scale, seed) always yields the same
        graph.
    num_timesteps:
        Optional override of the profile's T (used by the Fig. 9(c,d)
        timestep sweeps).
    """
    key = name.lower()
    if key not in DATASET_PROFILES:
        raise KeyError(f"unknown dataset {name!r}; available: {list_datasets()}")
    cfg = DATASET_PROFILES[key].config(scale=scale, min_nodes=min_nodes)
    if num_timesteps is not None:
        cfg = replace(cfg, num_timesteps=num_timesteps)
    return generate_co_evolving_graph(cfg, seed=seed)
