"""Synthetic twins of the paper's six evaluation datasets (§IV-A1).

The paper evaluates on Emails-DNC, Bitcoin-Alpha, Wiki-Vote, Brain,
GDELT and a proprietary guaranteed-loan network.  None of these can be
shipped or downloaded offline, so this package provides *synthetic
twins*: config-driven co-evolution simulators parameterized to each
dataset's published profile (N, M, X, T from Table I) at a reduced
scale.  The simulators produce directed, heavy-tailed, community-
structured dynamic graphs whose node attributes co-evolve with topology
— exactly the regime the paper's evaluation probes (see DESIGN.md §4
for the substitution argument).

Public API
----------
>>> from repro.datasets import load_dataset, list_datasets
>>> graph = load_dataset("email", scale=0.05, seed=7)
"""

from repro.datasets.synthetic import (
    CoEvolutionConfig,
    generate_co_evolving_graph,
)
from repro.datasets import perturb
from repro.datasets.registry import (
    DATASET_PROFILES,
    DatasetProfile,
    list_datasets,
    load_dataset,
)

__all__ = [
    "CoEvolutionConfig",
    "generate_co_evolving_graph",
    "DatasetProfile",
    "DATASET_PROFILES",
    "list_datasets",
    "load_dataset",
    "perturb",
]
