"""Co-evolving dynamic attributed graph simulator.

The generative process combines the ingredients the paper's datasets
exhibit and its model is designed to capture:

1. **Directed heavy-tailed structure** — edges target nodes by
   preferential attachment mixed with community affinity, so in/out
   degree distributions are power-law-ish.
2. **Temporal churn** — each snapshot keeps a fraction of the previous
   snapshot's edges (persistence) and rewires the rest, producing the
   gradual structural drift visible in Figures 4–6.
3. **Attribute/topology co-evolution** — node attributes follow an
   AR(1) drift *plus* a neighbourhood-mean coupling term (connected
   nodes pull each other's attributes together), and edge formation
   probability in turn increases with attribute similarity.  This is
   the co-evolution loop of §III-C's co-author example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.graph import DynamicAttributedGraph, GraphSnapshot


@dataclass
class CoEvolutionConfig:
    """Parameters of the synthetic co-evolution process.

    Attributes
    ----------
    num_nodes, num_timesteps, num_attributes:
        Size of the generated sequence (paper's N, T, X).
    edges_per_step:
        Target number of directed edges per snapshot.
    num_communities:
        Planted community count (affects clustering / NC).
    persistence:
        Fraction of the previous snapshot's edges retained each step.
    preferential:
        Weight of degree-proportional target choice vs uniform.
    community_bias:
        Probability that a new edge stays inside the source community.
    attribute_coupling:
        Strength of the neighbour-mean pull on attributes (0 = none).
    attribute_drift:
        AR(1) coefficient of attribute self-evolution.
    attribute_noise:
        Std-dev of per-step attribute innovation.
    attribute_center_spread:
        Distance scale between community attribute centers; larger
        values give clearly multimodal marginals (as in real attributed
        graphs), which a single global Gaussian cannot fit.
    attribute_skew:
        Strength of the monotone skewing emission transform
        ``x + skew·(exp(x) − 1)`` applied when a snapshot is observed.
        Real-world attributes (transaction amounts, h-indices, …) are
        right-skewed; 0 disables the transform.
    attribute_trend:
        Per-step drift of the anchor values along a fixed random
        direction — the attribute distribution *evolves over time*
        (growing transaction volumes, shifting topics), which static
        generators cannot track but a recurrent model can.  0 disables.
    homophily:
        How strongly attribute similarity boosts edge probability.
    reciprocity:
        Probability a new edge u->v immediately spawns v->u.
    """

    num_nodes: int = 200
    num_timesteps: int = 10
    num_attributes: int = 2
    edges_per_step: int = 400
    num_communities: int = 4
    persistence: float = 0.6
    preferential: float = 0.7
    community_bias: float = 0.7
    attribute_coupling: float = 0.3
    attribute_drift: float = 0.9
    attribute_noise: float = 0.05
    attribute_center_spread: float = 1.0
    attribute_skew: float = 0.0
    attribute_trend: float = 0.0
    homophily: float = 0.5
    reciprocity: float = 0.1

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent generator settings."""
        if self.num_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if self.num_timesteps < 1:
            raise ValueError("need at least 1 timestep")
        if not 0.0 <= self.persistence <= 1.0:
            raise ValueError("persistence must be in [0, 1]")
        if not 0.0 <= self.community_bias <= 1.0:
            raise ValueError("community_bias must be in [0, 1]")
        if self.edges_per_step < 0:
            raise ValueError("edges_per_step must be non-negative")


def _initial_attributes(
    cfg: CoEvolutionConfig, communities: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Community-dependent Gaussian mixture initial attributes."""
    if cfg.num_attributes == 0:
        return np.zeros((cfg.num_nodes, 0))
    centers = rng.normal(
        0.0,
        cfg.attribute_center_spread,
        size=(cfg.num_communities, cfg.num_attributes),
    )
    x = centers[communities] + rng.normal(
        0.0, 0.25, size=(cfg.num_nodes, cfg.num_attributes)
    )
    return x


def _sample_targets(
    source: int,
    count: int,
    in_deg: np.ndarray,
    communities: np.ndarray,
    attrs: np.ndarray,
    cfg: CoEvolutionConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Pick ``count`` distinct targets for ``source`` (never itself)."""
    n = in_deg.shape[0]
    # base: preferential attachment mixed with uniform
    weights = cfg.preferential * (in_deg + 1.0) + (1.0 - cfg.preferential)
    # community bias
    same = communities == communities[source]
    comm_factor = np.where(same, cfg.community_bias, 1.0 - cfg.community_bias)
    weights = weights * (comm_factor + 1e-9)
    # homophily on attributes
    if attrs.shape[1] > 0 and cfg.homophily > 0:
        diff = np.linalg.norm(attrs - attrs[source], axis=1)
        sim = np.exp(-diff)
        weights = weights * (1.0 + cfg.homophily * sim)
    weights[source] = 0.0
    total = weights.sum()
    if total <= 0:
        return np.empty(0, dtype=int)
    probs = weights / total
    count = min(count, int((probs > 0).sum()))
    if count <= 0:
        return np.empty(0, dtype=int)
    return rng.choice(n, size=count, replace=False, p=probs)


def generate_co_evolving_graph(
    cfg: CoEvolutionConfig, seed: Optional[int] = None
) -> DynamicAttributedGraph:
    """Simulate a dynamic attributed graph per ``cfg``.

    Returns a :class:`DynamicAttributedGraph` with ``cfg.num_timesteps``
    snapshots over a fixed node set.
    """
    cfg.validate()
    rng = np.random.default_rng(seed)
    n = cfg.num_nodes
    communities = rng.integers(0, cfg.num_communities, size=n)
    attrs = _initial_attributes(cfg, communities, rng)
    # per-node anchors: attributes mean-revert to these, keeping the
    # marginal dispersion stationary instead of collapsing to a point
    anchors = attrs.copy()
    if cfg.num_attributes > 0 and cfg.attribute_trend > 0:
        trend_dir = rng.normal(size=cfg.num_attributes)
        trend_dir /= max(np.linalg.norm(trend_dir), 1e-12)
        trend_step = cfg.attribute_trend * cfg.attribute_center_spread * trend_dir
    else:
        trend_step = np.zeros(cfg.num_attributes)

    adj = np.zeros((n, n))
    snapshots: List[GraphSnapshot] = []
    for _ in range(cfg.num_timesteps):
        new_adj = np.zeros((n, n))
        # 1. persist a fraction of existing edges
        rows, cols = np.nonzero(adj)
        if rows.size:
            keep = rng.random(rows.size) < cfg.persistence
            new_adj[rows[keep], cols[keep]] = 1.0
        # 2. add fresh edges until the target count
        deficit = max(0, cfg.edges_per_step - int(new_adj.sum()))
        in_deg = new_adj.sum(axis=0)
        # activity: out-degree propensity is heavy-tailed per node
        activity = rng.pareto(2.0, size=n) + 0.1
        activity /= activity.sum()
        sources = rng.choice(n, size=deficit, p=activity)
        src_counts = np.bincount(sources, minlength=n)
        for source in np.nonzero(src_counts)[0]:
            targets = _sample_targets(
                int(source), int(src_counts[source]), in_deg,
                communities, attrs, cfg, rng,
            )
            for tgt in targets:
                new_adj[source, tgt] = 1.0
                in_deg[tgt] += 1
                if rng.random() < cfg.reciprocity:
                    new_adj[tgt, source] = 1.0
        np.fill_diagonal(new_adj, 0.0)
        # 3. co-evolve attributes on the *new* structure
        if cfg.num_attributes > 0:
            anchors = anchors + trend_step
            sym = np.maximum(new_adj, new_adj.T)
            deg = sym.sum(axis=1, keepdims=True)
            with np.errstate(divide="ignore", invalid="ignore"):
                nbr_mean = np.where(deg > 0, (sym @ attrs) / np.maximum(deg, 1), attrs)
            attrs = (
                attrs
                + (1.0 - cfg.attribute_drift) * (anchors - attrs)
                + cfg.attribute_coupling * (nbr_mean - attrs)
                + rng.normal(0.0, cfg.attribute_noise, size=attrs.shape)
            )
        # adjacency is 0/1 with a cleared diagonal by construction
        snapshots.append(GraphSnapshot(new_adj, _emit(attrs, cfg), validate=False))
        adj = new_adj
    return DynamicAttributedGraph(snapshots)


def _emit(attrs: np.ndarray, cfg: CoEvolutionConfig) -> np.ndarray:
    """Observed attribute values (skewed emission of the latent state)."""
    if cfg.attribute_skew <= 0 or attrs.shape[1] == 0:
        return attrs.copy()
    clipped = np.clip(attrs, -10.0, 10.0)
    return attrs + cfg.attribute_skew * (np.exp(clipped) - 1.0)
