"""Perturbation toolkit for robustness evaluation and failure injection.

Generator quality metrics are only trustworthy if they respond sanely
to controlled corruption: a metric that cannot tell the original graph
from a 30%-rewired copy is useless for ranking generators.  This module
provides the controlled-corruption operators used by the robustness
tests and ablation analyses:

* :func:`rewire_edges` — replace a fraction of each snapshot's edges
  with random ones (degree-free noise).
* :func:`drop_edges` / :func:`add_random_edges` — sparsify / densify.
* :func:`attribute_noise` — additive Gaussian noise on attributes.
* :func:`shuffle_attribute_rows` — break attribute/topology coupling
  while keeping both marginals intact (the targeted negative control
  for coupling metrics).
* :func:`shuffle_snapshots` — destroy temporal ordering while keeping
  every snapshot intact (negative control for difference metrics).
* :func:`freeze_first_snapshot` — replace the sequence by T copies of
  snapshot 0 (the "static generator" caricature).

All operators are pure: they return a new graph and never mutate the
input.  Each takes an ``np.random.Generator`` so corruption levels are
reproducible.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph import DynamicAttributedGraph, GraphSnapshot


def _check_fraction(fraction: float) -> None:
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")


def rewire_edges(
    graph: DynamicAttributedGraph,
    fraction: float,
    rng: np.random.Generator,
) -> DynamicAttributedGraph:
    """Replace ``fraction`` of each snapshot's edges with random pairs.

    Edge counts are preserved per snapshot (up to collisions with
    existing edges, which are skipped).
    """
    _check_fraction(fraction)
    n = graph.num_nodes
    snaps: List[GraphSnapshot] = []
    for snap in graph:
        adj = snap.adjacency.copy()
        edges = snap.edges()
        k = int(round(fraction * len(edges)))
        if k and len(edges):
            picked = rng.choice(len(edges), size=k, replace=False)
            for idx in picked:
                u, v = edges[idx]
                adj[u, v] = 0.0
            placed = 0
            while placed < k:
                u, v = rng.integers(0, n, size=2)
                if u != v and adj[u, v] == 0:
                    adj[u, v] = 1.0
                    placed += 1
        snaps.append(GraphSnapshot(adj, snap.attributes.copy(), validate=False))
    return DynamicAttributedGraph(snaps)


def drop_edges(
    graph: DynamicAttributedGraph,
    fraction: float,
    rng: np.random.Generator,
) -> DynamicAttributedGraph:
    """Remove ``fraction`` of each snapshot's edges uniformly."""
    _check_fraction(fraction)
    snaps: List[GraphSnapshot] = []
    for snap in graph:
        adj = snap.adjacency.copy()
        edges = snap.edges()
        k = int(round(fraction * len(edges)))
        if k and len(edges):
            picked = rng.choice(len(edges), size=k, replace=False)
            for idx in picked:
                u, v = edges[idx]
                adj[u, v] = 0.0
        snaps.append(GraphSnapshot(adj, snap.attributes.copy(), validate=False))
    return DynamicAttributedGraph(snaps)


def add_random_edges(
    graph: DynamicAttributedGraph,
    count_per_step: int,
    rng: np.random.Generator,
) -> DynamicAttributedGraph:
    """Insert up to ``count_per_step`` new random edges per snapshot."""
    if count_per_step < 0:
        raise ValueError("count_per_step must be >= 0")
    n = graph.num_nodes
    snaps: List[GraphSnapshot] = []
    for snap in graph:
        adj = snap.adjacency.copy()
        budget = count_per_step
        attempts = 0
        while budget > 0 and attempts < 20 * count_per_step + 20:
            u, v = rng.integers(0, n, size=2)
            attempts += 1
            if u != v and adj[u, v] == 0:
                adj[u, v] = 1.0
                budget -= 1
        snaps.append(GraphSnapshot(adj, snap.attributes.copy(), validate=False))
    return DynamicAttributedGraph(snaps)


def attribute_noise(
    graph: DynamicAttributedGraph,
    sigma: float,
    rng: np.random.Generator,
) -> DynamicAttributedGraph:
    """Add i.i.d. ``N(0, sigma^2)`` noise to every attribute entry."""
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    snaps = [
        GraphSnapshot(
            snap.adjacency.copy(),
            snap.attributes + rng.normal(0.0, sigma, size=snap.attributes.shape)
            if snap.num_attributes
            else snap.attributes.copy(),
            validate=False,
        )
        for snap in graph
    ]
    return DynamicAttributedGraph(snaps)


def shuffle_attribute_rows(
    graph: DynamicAttributedGraph,
    rng: np.random.Generator,
) -> DynamicAttributedGraph:
    """Permute node identities of attributes (same permutation per step).

    Structure and attribute marginals are both unchanged; only the
    *alignment* between a node's position in the topology and its
    attribute vector is destroyed — the negative control for
    attribute/structure coupling metrics.
    """
    perm = rng.permutation(graph.num_nodes)
    snaps = [
        GraphSnapshot(
            snap.adjacency.copy(),
            snap.attributes[perm].copy() if snap.num_attributes else snap.attributes.copy(),
            validate=False,
        )
        for snap in graph
    ]
    return DynamicAttributedGraph(snaps)


def shuffle_snapshots(
    graph: DynamicAttributedGraph,
    rng: np.random.Generator,
) -> DynamicAttributedGraph:
    """Randomly reorder the sequence (keeps each snapshot intact)."""
    order = rng.permutation(graph.num_timesteps)
    return DynamicAttributedGraph(
        [graph[int(t)].copy() for t in order]
    )


def freeze_first_snapshot(graph: DynamicAttributedGraph) -> DynamicAttributedGraph:
    """T copies of snapshot 0 — the degenerate "static" sequence."""
    return DynamicAttributedGraph(
        [graph[0].copy() for _ in range(graph.num_timesteps)]
    )
