"""AGM — Attributed Graph Model (Pfeiffer III et al., WWW 2014).

The paper's related work (§V) singles AGM out as the framework that
*jointly* models network structure and vertex attributes: a structural
proposal model generates candidate edges, and an attribute-based
accept/reject step reshapes them so the joint distribution of endpoint
attribute combinations matches the observed graph.

Implementation here follows the original's three components:

1. **Attribute model** ``P(X)`` — empirical: generated nodes draw their
   attribute vector by resampling observed rows (preserving the full
   joint marginal, which is exactly what AGM assumes available).
2. **Structural proposal** ``M_E`` — directed Chung–Lu: edge ``(u, v)``
   proposed proportionally to ``outdeg(u) * indeg(v)``.
3. **Acceptance ratios** — attributes are discretized into per-dimension
   median bins; the acceptance weight of an edge is the ratio of the
   observed frequency of its (source-bin, destination-bin) combination
   to the frequency the structural proposal alone would produce
   (Pfeiffer's ``f(x_u, x_v)``), capped for stability.

AGM is a *static* model like GenCAT: fitted once on the time-pooled
graph, each generated snapshot is an independent draw.  Its value in
this reproduction is as an extra reference point for the attribute
evaluation (Fig. 3 family): AGM preserves attribute/structure coupling
better than Normal but, being static, still cannot track temporal
co-evolution.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.base import GraphGenerator
from repro.graph import DynamicAttributedGraph, GraphSnapshot

#: acceptance-ratio cap (avoids unbounded importance weights on rare bins)
_MAX_ACCEPT_RATIO = 20.0


class AGM(GraphGenerator):
    """Chung–Lu structure with attribute-combination accept/reject."""

    def __init__(self, seed: int = 0, oversample: float = 3.0):
        super().__init__(seed)
        if oversample < 1.0:
            raise ValueError("oversample must be >= 1.0")
        #: proposal multiplier: candidates drawn per target edge before
        #: the accept/reject step thins them back down
        self.oversample = oversample
        self._attr_pool: Optional[np.ndarray] = None   # (T*N, F)
        self._mean_attrs: Optional[np.ndarray] = None  # (N, F)
        self._medians: Optional[np.ndarray] = None     # (F,)
        self._out_w: Optional[np.ndarray] = None       # (N,)
        self._in_w: Optional[np.ndarray] = None        # (N,)
        self._accept: Optional[np.ndarray] = None      # (B, B) bin ratios
        self._edges_per_step: float = 0.0
        self._num_nodes = 0
        self._num_attrs = 0

    # ------------------------------------------------------------------
    def fit(self, graph: DynamicAttributedGraph) -> "AGM":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        n, f = graph.num_nodes, graph.num_attributes
        self._num_nodes, self._num_attrs = n, f
        t_len = graph.num_timesteps
        pooled_attrs = (
            graph.attribute_tensor().reshape(t_len * n, f)  # (T*N, F)
            if f
            else np.zeros((t_len * n, 0))
        )
        self._attr_pool = pooled_attrs
        self._medians = (
            np.median(pooled_attrs, axis=0) if f else np.zeros(0)
        )
        self._mean_attrs = (
            graph.attribute_tensor().mean(axis=0)  # (N, F)
            if f
            else np.zeros((n, 0))
        )
        # time-pooled degree weights for the Chung-Lu proposal
        out_w = np.zeros(n)
        in_w = np.zeros(n)
        for snap in graph:
            out_w += snap.out_degrees()
            in_w += snap.in_degrees()
        self._out_w = out_w + 1e-3
        self._in_w = in_w + 1e-3
        self._edges_per_step = graph.num_temporal_edges / t_len
        self._accept = self._fit_acceptance(graph)
        self.fitted = True
        return self

    def _bin_index(self, attrs: np.ndarray) -> np.ndarray:
        """Per-node bin id: binary median split per dimension, packed.

        With ``F`` attribute dimensions this yields ``2^F`` bins; to keep
        the table small only the first 4 dimensions participate.
        """
        if self._num_attrs == 0:
            return np.zeros(attrs.shape[0], dtype=int)
        use = min(self._num_attrs, 4)
        bits = (attrs[:, :use] > self._medians[:use]).astype(int)
        packed = np.zeros(attrs.shape[0], dtype=int)
        for d in range(use):
            packed |= bits[:, d] << d
        return packed

    def _num_bins(self) -> int:
        return 1 << min(self._num_attrs, 4)

    def _fit_acceptance(self, graph: DynamicAttributedGraph) -> np.ndarray:
        """Observed vs proposal frequency ratio per bin combination."""
        b = self._num_bins()
        observed = np.full((b, b), 1e-6)
        for snap in graph:
            bins = self._bin_index(snap.attributes)
            src, dst = np.nonzero(snap.adjacency)
            np.add.at(observed, (bins[src], bins[dst]), 1.0)
        observed /= observed.sum()
        # proposal distribution over bin pairs under Chung-Lu alone,
        # binning each node by its time-mean attributes
        bins_pool = self._bin_index(self._mean_attrs)
        out_mass = np.zeros(b)
        in_mass = np.zeros(b)
        np.add.at(out_mass, bins_pool, self._out_w)
        np.add.at(in_mass, bins_pool, self._in_w)
        proposal = np.outer(out_mass, in_mass)
        # floor at the same scale as the observed floor so bin pairs that
        # are neither observed nor proposable get *low* acceptance instead
        # of an exploding importance ratio
        proposal = np.maximum(proposal / proposal.sum(), 1e-6)
        ratio = observed / proposal
        return np.minimum(ratio, _MAX_ACCEPT_RATIO)

    # ------------------------------------------------------------------
    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        snaps = [self._generate_snapshot(rng) for _ in range(num_timesteps)]
        return DynamicAttributedGraph(snaps)

    def _sample_attributes(self, rng: np.random.Generator) -> np.ndarray:
        if self._num_attrs == 0:
            return np.zeros((self._num_nodes, 0))
        rows = rng.integers(0, len(self._attr_pool), size=self._num_nodes)
        return self._attr_pool[rows].copy()

    def _generate_snapshot(self, rng: np.random.Generator) -> GraphSnapshot:
        n = self._num_nodes
        attrs = self._sample_attributes(rng)
        bins = self._bin_index(attrs)
        p_out = self._out_w / self._out_w.sum()
        p_in = self._in_w / self._in_w.sum()
        target = int(round(self._edges_per_step))
        n_candidates = max(int(target * self.oversample), 1)
        src = rng.choice(n, size=n_candidates, p=p_out)
        dst = rng.choice(n, size=n_candidates, p=p_in)
        accept_p = self._accept[bins[src], bins[dst]]
        accept_p = accept_p / max(accept_p.max(), 1e-9)
        keep = rng.random(n_candidates) < accept_p
        adj = np.zeros((n, n))
        placed = 0
        for u, v in zip(src[keep], dst[keep]):
            if placed >= target:
                break
            if u != v and adj[u, v] == 0:
                adj[u, v] = 1.0
                placed += 1
        return GraphSnapshot(adj, attrs, validate=False)

    def acceptance_table(self) -> np.ndarray:
        """The fitted (bin, bin) acceptance-weight table (read-only view)."""
        self._require_fitted()
        return self._accept.copy()
