"""ANC — Attributed Networks with Communities (Largeron et al., 2015).

The paper's related work (§V) describes ANC as the generator that
produces numeric node attributes following a normal distribution inside
explicit communities.  The original algorithm grows an undirected
attributed graph by repeatedly inserting nodes and wiring them with a
mix of preferential attachment and attribute homophily inside their
community; attributes are Gaussian around per-community centers.

This implementation keeps the three ANC ingredients —

1. **Communities** with Gaussian attribute centers.
2. **Homophily-weighted edge placement**: a node links mostly within
   its community, preferring attribute-similar and high-degree targets.
3. **Between-community noise edges** at a fitted rate.

— and fits their parameters from an observed dynamic graph (community
count via attribute k-means, within/between edge rates and degree
profile from the time-pooled topology).  Like GenCAT/AGM it is a static
model: snapshots are generated independently, so it serves as another
"no temporal modelling" reference point in the attribute evaluation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import GraphGenerator
from repro.baselines.gencat import kmeans
from repro.graph import DynamicAttributedGraph, GraphSnapshot


class ANC(GraphGenerator):
    """Community-structured attributed generator (static, fitted once)."""

    def __init__(self, num_communities: int = 4, seed: int = 0,
                 homophily: float = 2.0):
        super().__init__(seed)
        if num_communities < 1:
            raise ValueError("num_communities must be >= 1")
        if homophily < 0:
            raise ValueError("homophily must be >= 0")
        self.num_communities = num_communities
        #: inverse temperature of the attribute-similarity edge weighting
        self.homophily = homophily
        self._labels: Optional[np.ndarray] = None
        self._centers: Optional[np.ndarray] = None     # (K, F)
        self._spread: Optional[np.ndarray] = None      # (K, F)
        self._within_rate: float = 0.0
        self._between_rate: float = 0.0
        self._out_degrees: Optional[np.ndarray] = None
        self._num_nodes = 0
        self._num_attrs = 0

    # ------------------------------------------------------------------
    def fit(self, graph: DynamicAttributedGraph) -> "ANC":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        rng = self._rng(None)
        n, f = graph.num_nodes, graph.num_attributes
        self._num_nodes, self._num_attrs = n, f
        mean_attrs = graph.attribute_tensor().mean(axis=0)  # (N, F)
        if f:
            labels = kmeans(mean_attrs, self.num_communities, rng)
        else:
            labels = rng.integers(0, self.num_communities, size=n)
        k_eff = int(labels.max()) + 1
        centers = np.zeros((k_eff, max(f, 1)))
        spread = np.ones((k_eff, max(f, 1)))
        if f:
            pooled = graph.attribute_tensor()  # (T, N, F)
            for c in range(k_eff):
                members = pooled[:, labels == c, :].reshape(-1, f)
                if len(members):
                    centers[c, :f] = members.mean(axis=0)
                    spread[c, :f] = np.maximum(members.std(axis=0), 1e-6)
        # within/between community edge counts per step
        within = 0.0
        between = 0.0
        out_deg = np.zeros(n)
        for snap in graph:
            src, dst = np.nonzero(snap.adjacency)
            same = labels[src] == labels[dst]
            within += float(same.sum())
            between += float((~same).sum())
            out_deg += snap.out_degrees()
        t_len = graph.num_timesteps
        self._labels = labels
        self._centers = centers[:, :f] if f else np.zeros((k_eff, 0))
        self._spread = spread[:, :f] if f else np.ones((k_eff, 0))
        self._within_rate = within / t_len
        self._between_rate = between / t_len
        self._out_degrees = out_deg / t_len
        self.fitted = True
        return self

    # ------------------------------------------------------------------
    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        snaps = [self._generate_snapshot(rng) for _ in range(num_timesteps)]
        return DynamicAttributedGraph(snaps)

    def _generate_snapshot(self, rng: np.random.Generator) -> GraphSnapshot:
        n, f = self._num_nodes, self._num_attrs
        labels = self._labels
        if f:
            attrs = rng.normal(self._centers[labels], self._spread[labels])
        else:
            attrs = np.zeros((n, 0))
        adj = np.zeros((n, n))
        degree_w = self._out_degrees + 0.5  # preferential-attachment prior
        k_eff = int(labels.max()) + 1
        members: List[np.ndarray] = [
            np.nonzero(labels == c)[0] for c in range(k_eff)
        ]
        self._place_within(adj, attrs, members, degree_w, rng)
        self._place_between(adj, degree_w, rng)
        np.fill_diagonal(adj, 0.0)
        return GraphSnapshot(adj, attrs, validate=False)

    def _place_within(
        self,
        adj: np.ndarray,
        attrs: np.ndarray,
        members: List[np.ndarray],
        degree_w: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Homophily + preferential attachment edges inside communities."""
        target = rng.poisson(self._within_rate)
        sizes = np.array([len(m) for m in members], dtype=float)
        capacity = sizes * np.maximum(sizes - 1, 0)
        if capacity.sum() == 0 or target == 0:
            return
        quota = rng.multinomial(target, capacity / capacity.sum())
        for c, q in enumerate(quota):
            nodes = members[c]
            if len(nodes) < 2:
                continue
            w_src = degree_w[nodes] / degree_w[nodes].sum()
            for _ in range(int(q)):
                u = rng.choice(nodes, p=w_src)
                weights = degree_w[nodes].copy()
                if self._num_attrs:
                    dist = np.linalg.norm(attrs[nodes] - attrs[u], axis=1)
                    scale = max(float(dist.std()), 1e-9)
                    weights = weights * np.exp(
                        -self.homophily * dist / scale
                    )
                weights[nodes == u] = 0.0
                if weights.sum() <= 0:
                    continue
                v = rng.choice(nodes, p=weights / weights.sum())
                adj[u, v] = 1.0

    def _place_between(
        self,
        adj: np.ndarray,
        degree_w: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Degree-weighted noise edges across communities."""
        target = rng.poisson(self._between_rate)
        if target == 0 or self._num_nodes < 2:
            return
        p = degree_w / degree_w.sum()
        src = rng.choice(self._num_nodes, size=target, p=p)
        dst = rng.choice(self._num_nodes, size=target, p=p)
        labels = self._labels
        for u, v in zip(src, dst):
            if u != v and labels[u] != labels[v]:
                adj[u, v] = 1.0

    def community_labels(self) -> np.ndarray:
        """Fitted community assignment, shape ``(N,)``."""
        self._require_fitted()
        return self._labels.copy()
