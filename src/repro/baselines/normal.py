"""The "Normal" attribute baseline of Fig. 3.

Estimates, per timestep and per attribute dimension, the mean and
variance of the ground-truth attributes and samples i.i.d. Gaussians.
Structure is an Erdős–Rényi match of the original per-step densities so
the output is a complete dynamic attributed graph (only its attributes
are compared in Fig. 3, but the harness treats all generators
uniformly).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import GraphGenerator
from repro.graph import DynamicAttributedGraph, GraphSnapshot


class NormalAttributeGenerator(GraphGenerator):
    """Per-step independent Gaussian attributes + density-matched ER edges."""

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._mu: Optional[np.ndarray] = None      # (T, F)
        self._sigma: Optional[np.ndarray] = None   # (T, F)
        self._density: Optional[np.ndarray] = None  # (T,)
        self._num_nodes = 0

    def fit(self, graph: DynamicAttributedGraph) -> "NormalAttributeGenerator":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        t_len, n, f = graph.num_timesteps, graph.num_nodes, graph.num_attributes
        self._num_nodes = n
        self._mu = np.zeros((t_len, f))
        self._sigma = np.zeros((t_len, f))
        self._density = np.zeros(t_len)
        for t, snap in enumerate(graph):
            if f:
                self._mu[t] = snap.attributes.mean(axis=0)
                self._sigma[t] = snap.attributes.std(axis=0)
            self._density[t] = snap.num_edges / max(n * (n - 1), 1)
        self.fitted = True
        return self

    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        n = self._num_nodes
        f = self._mu.shape[1]
        snaps = []
        for t in range(num_timesteps):
            src = min(t, len(self._density) - 1)  # clamp beyond fitted horizon
            adj = (rng.random((n, n)) < self._density[src]).astype(np.float64)
            np.fill_diagonal(adj, 0.0)
            attrs = rng.normal(
                self._mu[src], np.maximum(self._sigma[src], 1e-9), size=(n, f)
            ) if f else np.zeros((n, 0))
            snaps.append(GraphSnapshot(adj, attrs, validate=False))
        return DynamicAttributedGraph(snaps)
