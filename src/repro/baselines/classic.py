"""Classic random-graph reference generators (§V related work).

The paper positions VRDAG against the traditional model families —
Erdős–Rényi, Barabási–Albert preferential attachment, stochastic block
models and Kronecker graphs.  These are not in Table I but are the
standard sanity baselines any generator library ships; all implement
the common :class:`GraphGenerator` protocol (fitted to match coarse
statistics of the observed sequence, generated i.i.d. per snapshot —
they are static models).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import GraphGenerator
from repro.graph import DynamicAttributedGraph, GraphSnapshot


class ErdosRenyi(GraphGenerator):
    """Directed G(n, p) with p matched to the mean observed density."""

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._p = 0.0
        self._num_nodes = 0
        self._num_attrs = 0

    def fit(self, graph: DynamicAttributedGraph) -> "ErdosRenyi":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        n = graph.num_nodes
        self._num_nodes = n
        self._num_attrs = graph.num_attributes
        self._p = graph.num_temporal_edges / max(
            graph.num_timesteps * n * (n - 1), 1
        )
        self.fitted = True
        return self

    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        n = self._num_nodes
        snaps = []
        for _ in range(num_timesteps):
            adj = (rng.random((n, n)) < self._p).astype(np.float64)
            np.fill_diagonal(adj, 0.0)
            snaps.append(
                GraphSnapshot(adj, np.zeros((n, self._num_attrs)), validate=False)
            )
        return DynamicAttributedGraph(snaps)


class BarabasiAlbert(GraphGenerator):
    """Directed preferential attachment matched to mean edges/step.

    Nodes are processed in random order; each attaches ``m`` out-edges
    to targets drawn proportionally to in-degree + 1 (Albert &
    Barabási, 2002), yielding the heavy-tailed in-degree distribution.
    """

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._m = 1
        self._num_nodes = 0
        self._num_attrs = 0

    def fit(self, graph: DynamicAttributedGraph) -> "BarabasiAlbert":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        n = graph.num_nodes
        self._num_nodes = n
        self._num_attrs = graph.num_attributes
        edges_per_step = graph.num_temporal_edges / graph.num_timesteps
        self._m = max(1, int(round(edges_per_step / n)))
        self._extra = max(0, int(round(edges_per_step - self._m * n)))
        self.fitted = True
        return self

    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        n = self._num_nodes
        snaps = []
        for _ in range(num_timesteps):
            adj = np.zeros((n, n))
            in_deg = np.ones(n)
            order = rng.permutation(n)
            for u in order:
                weights = in_deg.copy()
                weights[u] = 0.0
                probs = weights / weights.sum()
                count = min(self._m, n - 1)
                targets = rng.choice(n, size=count, replace=False, p=probs)
                for v in targets:
                    adj[u, v] = 1.0
                    in_deg[v] += 1
            # spread any residual edge budget uniformly
            for _ in range(self._extra):
                u, v = rng.choice(n, size=2, replace=False)
                adj[u, v] = 1.0
            np.fill_diagonal(adj, 0.0)
            snaps.append(
                GraphSnapshot(adj, np.zeros((n, self._num_attrs)), validate=False)
            )
        return DynamicAttributedGraph(snaps)


class StochasticBlockModel(GraphGenerator):
    """Directed SBM with blocks recovered by degree-profile k-means."""

    def __init__(self, num_blocks: int = 4, seed: int = 0):
        super().__init__(seed)
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        self.num_blocks = num_blocks
        self._labels: Optional[np.ndarray] = None
        self._block_p: Optional[np.ndarray] = None
        self._num_attrs = 0

    def fit(self, graph: DynamicAttributedGraph) -> "StochasticBlockModel":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        from repro.baselines.gencat import kmeans

        rng = self._rng(None)
        n = graph.num_nodes
        self._num_attrs = graph.num_attributes
        # block assignment from time-averaged connectivity profile
        mean_adj = graph.adjacency_tensor().mean(axis=0)
        profile = np.concatenate([mean_adj, mean_adj.T], axis=1)
        labels = kmeans(profile, self.num_blocks, rng)
        k = labels.max() + 1
        counts = np.zeros((k, k))
        sizes = np.zeros((k, k))
        for a in range(k):
            for b in range(k):
                na = int((labels == a).sum())
                nb = int((labels == b).sum())
                pairs = na * nb - (na if a == b else 0)
                sizes[a, b] = max(pairs, 1)
        for snap in graph:
            for u, v in snap.edges():
                counts[labels[u], labels[v]] += 1
        self._block_p = counts / (sizes * graph.num_timesteps)
        self._block_p = np.clip(self._block_p, 0.0, 1.0)
        self._labels = labels
        self.fitted = True
        return self

    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        labels = self._labels
        n = len(labels)
        p_matrix = self._block_p[labels[:, None], labels[None, :]]
        snaps = []
        for _ in range(num_timesteps):
            adj = (rng.random((n, n)) < p_matrix).astype(np.float64)
            np.fill_diagonal(adj, 0.0)
            snaps.append(
                GraphSnapshot(adj, np.zeros((n, self._num_attrs)), validate=False)
            )
        return DynamicAttributedGraph(snaps)


class KroneckerGraph(GraphGenerator):
    """Stochastic Kronecker graph (Leskovec et al., 2010), fitted by
    moment matching of the 2x2 initiator to the observed density and
    degree skew."""

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._initiator: Optional[np.ndarray] = None
        self._k = 0
        self._num_nodes = 0
        self._num_attrs = 0
        self._target_edges = 0.0

    def fit(self, graph: DynamicAttributedGraph) -> "KroneckerGraph":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        n = graph.num_nodes
        self._num_nodes = n
        self._num_attrs = graph.num_attributes
        self._k = max(1, int(np.ceil(np.log2(max(n, 2)))))
        self._target_edges = graph.num_temporal_edges / graph.num_timesteps
        # classic skewed initiator shape [[a, b], [b, c]], scaled so the
        # expected edge count matches: E = (a + 2b + c)^k
        a, b, c = 0.9, 0.5, 0.2
        total = a + 2 * b + c
        scale = (max(self._target_edges, 1.0) ** (1.0 / self._k)) / total
        self._initiator = np.clip(
            np.array([[a, b], [b, c]]) * scale, 0.0, 1.0
        )
        self.fitted = True
        return self

    def _edge_probabilities(self) -> np.ndarray:
        p = self._initiator
        probs = p.copy()
        for _ in range(self._k - 1):
            probs = np.kron(probs, p)
        return probs[: self._num_nodes, : self._num_nodes]

    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        probs = np.clip(self._edge_probabilities(), 0.0, 1.0)
        n = self._num_nodes
        snaps = []
        for _ in range(num_timesteps):
            adj = (rng.random((n, n)) < probs).astype(np.float64)
            np.fill_diagonal(adj, 0.0)
            snaps.append(
                GraphSnapshot(adj, np.zeros((n, self._num_attrs)), validate=False)
            )
        return DynamicAttributedGraph(snaps)
