"""Common protocol for all graph generators (VRDAG and baselines)."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.graph import DynamicAttributedGraph


class GraphGenerator(abc.ABC):
    """fit-then-generate interface shared by every generator.

    Subclasses set :attr:`fitted` in :meth:`fit`; :meth:`generate`
    raises if called before fitting.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.fitted = False

    @abc.abstractmethod
    def fit(self, graph: DynamicAttributedGraph) -> "GraphGenerator":
        """Learn the generator from an observed dynamic attributed graph."""

    @abc.abstractmethod
    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate a new dynamic attributed graph."""

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError(
                f"{type(self).__name__}.generate() called before fit()"
            )

    def _rng(self, seed: Optional[int]) -> np.random.Generator:
        return np.random.default_rng(self.seed if seed is None else seed)
