"""Common protocol for all graph generators (VRDAG and baselines).

Besides the classic ``fit(graph)`` / ``generate(T)`` pair, every
generator speaks two data-oriented protocols consumed by
:mod:`repro.api`:

* **Construction as data** — :meth:`GraphGenerator.to_config` returns
  the keyword arguments that rebuild an equivalent unfitted instance
  via :meth:`GraphGenerator.from_config`; the default implementations
  reflect over ``__init__``, so a subclass only needs to store each
  constructor argument under its own name (all of ours do).
* **Fitted state as data** — :meth:`GraphGenerator.get_state` /
  :meth:`GraphGenerator.set_state` capture everything ``fit`` learned
  as a tree of arrays / scalars / containers, which
  :mod:`repro.api.artifacts` serializes into the versioned artifact
  envelope.  The default is reflective over ``vars(self)``; subclasses
  holding live objects (nn modules, samplers) either exclude them via
  :attr:`GraphGenerator._STATE_EXCLUDE` or override the pair to
  re-encode them (see e.g. ``GRAN`` or ``TIGGER``).
"""

from __future__ import annotations

import abc
import contextlib
import inspect
from typing import Any, Dict, Optional

import numpy as np

from repro.graph import DynamicAttributedGraph


class GraphGenerator(abc.ABC):
    """fit-then-generate interface shared by every generator.

    Subclasses set :attr:`fitted` in :meth:`fit`; :meth:`generate`
    raises if called before fitting.
    """

    #: instance attributes the reflective :meth:`get_state` skips —
    #: live helper objects a subclass either rebuilds lazily or
    #: re-encodes by overriding :meth:`get_state` / :meth:`set_state`
    _STATE_EXCLUDE: tuple = ()

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.fitted = False

    @abc.abstractmethod
    def fit(self, graph: DynamicAttributedGraph) -> "GraphGenerator":
        """Learn the generator from an observed dynamic attributed graph."""

    @abc.abstractmethod
    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate a new dynamic attributed graph."""

    # ------------------------------------------------------------------
    # construction as data
    # ------------------------------------------------------------------
    @classmethod
    def config_keys(cls) -> tuple:
        """Names of the constructor arguments, in signature order."""
        params = inspect.signature(cls.__init__).parameters
        return tuple(
            name
            for name, p in params.items()
            if name != "self"
            and p.kind
            not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        )

    def to_config(self) -> Dict[str, Any]:
        """Constructor keyword arguments rebuilding this instance.

        Reflects over ``__init__``: each parameter must be stored on
        the instance under its own name (the repo-wide convention).
        """
        return {name: getattr(self, name) for name in self.config_keys()}

    @classmethod
    def from_config(cls, **config: Any) -> "GraphGenerator":
        """Build an unfitted instance from :meth:`to_config` output."""
        return cls(**config)

    # ------------------------------------------------------------------
    # fitted state as data
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, Any]:
        """Everything ``fit`` learned, as a serializable tree.

        Values may be numpy arrays, ``None``, primitives, or
        lists/tuples/dicts thereof (the envelope codec in
        :mod:`repro.api.artifacts` defines the exact closure).
        Attributes named in :attr:`_STATE_EXCLUDE` and constructor
        arguments (already covered by :meth:`to_config`) are skipped.
        """
        skip = set(self.config_keys()) | set(self._STATE_EXCLUDE)
        return {
            name: value
            for name, value in vars(self).items()
            if name not in skip
        }

    def set_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`get_state` output onto a config-built instance."""
        for name, value in state.items():
            setattr(self, name, value)

    def _train_ctx(self):
        """Context manager for one training unit on the configured engine.

        Generators that train nn modules take an ``engine`` constructor
        argument (``"tape"`` or ``"legacy"``, see ``docs/training.md``)
        and wrap each optimisation unit — an epoch or a batch — in this
        context: on the fast path the forward pass records onto a fresh
        flat :class:`~repro.autodiff.tape.Tape`; on the legacy closure
        engine the context is a no-op.
        """
        engine = getattr(self, "engine", "legacy")
        if engine not in ("tape", "legacy"):
            raise ValueError(
                f"unknown autodiff engine {engine!r}; "
                "expected 'tape' or 'legacy'"
            )
        if engine == "tape":
            from repro.autodiff import Tape

            return Tape()
        return contextlib.nullcontext()

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError(
                f"{type(self).__name__}.generate() called before fit()"
            )

    def _rng(self, seed: Optional[int]) -> np.random.Generator:
        return np.random.default_rng(self.seed if seed is None else seed)
