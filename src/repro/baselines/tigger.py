"""TIGGER (Gupta et al., AAAI 2022) — scalable RNN temporal-walk model.

TIGGER learns an autoregressive model over temporal interaction walks:
an RNN predicts the next node of a walk and a temporal point process
predicts the inter-event time; generation samples walks from the RNN
and merges them into an edge stream.  It is the fastest walk-based
baseline (pre-trained RNN sampling beats sample-discriminate-merge) but
still pays per-edge walk-sampling cost — the crossover the paper's
Table IV exhibits against VRDAG's one-shot decoding.

Our re-implementation trains a GRU over node-embedding sequences with a
softmax output over the node vocabulary (exact next-node likelihood)
and a geometric time-gap model, using the numpy nn substrate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autodiff import Tensor, functional as F, no_grad
from repro.autodiff.tape import tape_for
from repro.autodiff.tensor import as_tensor
from repro.baselines.base import GraphGenerator
from repro.baselines.taggen import _with_zero_attrs
from repro.baselines.walks import (
    TemporalWalkSampler,
    Walk,
    merge_walks_into_graph,
)
from repro.graph import DynamicAttributedGraph
from repro.graph.temporal import TemporalEdgeList
from repro.nn import Adam, GRUCell, Linear, Module, Parameter
from repro.nn import init as nn_init


class _WalkRNN(Module):
    """GRU language model over node sequences."""

    def __init__(self, num_nodes: int, embed_dim: int, hidden_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.num_nodes = num_nodes
        self.embedding = Parameter(
            nn_init.normal(rng, num_nodes, embed_dim, std=0.1)
        )
        self.gru = GRUCell(embed_dim, hidden_dim, rng=rng)
        self.out = Linear(hidden_dim, num_nodes, rng=rng)
        self.hidden_dim = hidden_dim

    def step(self, nodes: np.ndarray, h: Tensor) -> Tuple[Tensor, Tensor]:
        """One RNN step over a batch of current nodes; returns (logits, h)."""
        tape = tape_for(h)
        if tape is not None:
            # record the embedding lookup as a tape getitem so the
            # scatter-add VJP flows back into the Parameter
            emb = tape.apply("getitem", (self.embedding,), index=nodes)
        else:
            emb = self.embedding[nodes]
        h_new = self.gru(emb, h)
        return self.out(h_new), h_new

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_dim)))


class TIGGER(GraphGenerator):
    """RNN temporal-walk generator."""

    _STATE_EXCLUDE = ("_rnn",)

    def __init__(
        self,
        walk_length: int = 6,
        walks_per_edge: float = 2.0,
        embed_dim: int = 16,
        hidden_dim: int = 32,
        epochs: int = 10,
        batch_size: int = 64,
        learning_rate: float = 1e-2,
        time_window: int = 2,
        engine: str = "tape",
        seed: int = 0,
    ):
        super().__init__(seed)
        self.walk_length = walk_length
        self.walks_per_edge = walks_per_edge
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.time_window = time_window
        self.engine = engine
        self._rnn: Optional[_WalkRNN] = None
        self._start_probs: Optional[np.ndarray] = None
        self._gap_p: float = 0.5  # geometric time-gap parameter
        self._edges_per_step: List[int] = []
        self._num_nodes = 0
        self._num_timesteps = 0
        self._num_attrs = 0

    # ------------------------------------------------------------------
    def fit(self, graph: DynamicAttributedGraph) -> "TIGGER":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        rng = self._rng(None)
        self._num_nodes = graph.num_nodes
        self._num_timesteps = graph.num_timesteps
        self._num_attrs = graph.num_attributes
        self._edges_per_step = graph.store.edges_per_step().tolist()
        stream = TemporalEdgeList.from_dynamic_graph(graph)
        sampler = TemporalWalkSampler(
            stream, time_window=self.time_window, seed=self.seed
        )
        n_walks = int(self.walks_per_edge * max(len(stream), 1))
        walks = sampler.sample_walks(n_walks, self.walk_length)
        if not walks:
            raise ValueError("no temporal walks could be sampled from the graph")
        # start distribution and time-gap statistics
        start_counts = np.ones(self._num_nodes)
        gaps: List[int] = []
        for walk in walks:
            start_counts[walk[0][0]] += 1
            for (_, ta), (_, tb) in zip(walk, walk[1:]):
                gaps.append(abs(tb - ta))
        self._start_probs = start_counts / start_counts.sum()
        mean_gap = float(np.mean(gaps)) if gaps else 0.5
        self._gap_p = 1.0 / (1.0 + mean_gap)  # geometric MLE on gaps >= 0
        # train the walk RNN with teacher forcing
        self._rnn = _WalkRNN(
            self._num_nodes, self.embed_dim, self.hidden_dim, rng
        )
        optimizer = Adam(self._rnn.parameters(), lr=self.learning_rate)
        sequences = [
            np.array([u for u, _ in w], dtype=int)
            for w in walks
            if len(w) >= 2
        ]
        for _ in range(self.epochs):
            rng.shuffle(sequences)
            for lo in range(0, len(sequences), self.batch_size):
                batch = sequences[lo: lo + self.batch_size]
                # one fresh tape per batch: the walk RNN unrolls a new
                # graph for every batch, so batches are the natural
                # tape granularity here (epochs are for whole-sequence
                # losses like the VRDAG trainer's)
                with self._train_ctx():
                    loss = self._batch_loss(batch)
                    if loss is None:
                        continue
                    optimizer.zero_grad()
                    loss.backward()
                optimizer.step()
        self.fitted = True
        return self

    def _batch_loss(self, batch: List[np.ndarray]):
        """Mean next-node cross-entropy over a batch of walks."""
        max_len = max(len(s) for s in batch)
        if max_len < 2:
            return None
        h = self._rnn.initial_state(len(batch))
        total = None
        count = 0
        for pos in range(max_len - 1):
            current = np.array(
                [s[pos] if pos < len(s) else 0 for s in batch], dtype=int
            )
            target = np.array(
                [s[pos + 1] if pos + 1 < len(s) else -1 for s in batch], dtype=int
            )
            valid = target >= 0
            logits, h = self._rnn.step(current, h)
            logp = F.log_softmax(logits, axis=1)
            safe_target = np.where(valid, target, 0)
            picked = logp[np.arange(len(batch)), safe_target]
            masked = picked * valid.astype(np.float64)
            step_loss = -masked.sum() / max(valid.sum(), 1)
            total = step_loss if total is None else total + step_loss
            count += 1
        return total / count if count else None

    # ------------------------------------------------------------------
    def get_state(self):
        """Reflective state plus the walk RNN's weights."""
        state = super().get_state()
        if self._rnn is not None:
            state["__rnn__"] = self._rnn.state_dict()
        return state

    def set_state(self, state) -> None:
        """Restore state, rebuilding the walk RNN from its weights."""
        state = dict(state)
        rnn = state.pop("__rnn__", None)
        super().set_state(state)
        if rnn is None:
            self._rnn = None
        else:
            self._rnn = _WalkRNN(
                self._num_nodes, self.embed_dim, self.hidden_dim,
                np.random.default_rng(0),
            )
            self._rnn.load_state_dict(rnn)

    # ------------------------------------------------------------------
    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        total_edges = sum(
            self._edges_per_step[min(t, len(self._edges_per_step) - 1)]
            for t in range(num_timesteps)
        )
        n_walks = int(self.walks_per_edge * max(total_edges, 1))
        walks: List[Walk] = []
        batch = 128
        with no_grad():
            remaining = n_walks
            while remaining > 0:
                size = min(batch, remaining)
                walks.extend(self._sample_walk_batch(size, num_timesteps, rng))
                remaining -= size
        graph = merge_walks_into_graph(
            walks, self._num_nodes, num_timesteps, self._edges_per_step, rng
        )
        return _with_zero_attrs(graph, self._num_attrs)

    def _sample_walk_batch(
        self, size: int, num_timesteps: int, rng: np.random.Generator
    ) -> List[Walk]:
        nodes = rng.choice(self._num_nodes, size=size, p=self._start_probs)
        times = rng.integers(0, num_timesteps, size=size)
        walks: List[Walk] = [[(int(u), int(t))] for u, t in zip(nodes, times)]
        h = self._rnn.initial_state(size)
        current = nodes.astype(int)
        for _ in range(self.walk_length - 1):
            logits, h = self._rnn.step(current, h)
            probs = F.softmax(logits, axis=1).data
            probs = probs / probs.sum(axis=1, keepdims=True)
            nxt = np.array(
                [rng.choice(self._num_nodes, p=probs[i]) for i in range(size)]
            )
            gaps = rng.geometric(self._gap_p, size=size) - 1
            times = np.clip(times + gaps, 0, num_timesteps - 1)
            for i in range(size):
                walks[i].append((int(nxt[i]), int(times[i])))
            current = nxt
        return walks
