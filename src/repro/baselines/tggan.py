"""TGGAN (Zhang et al., WWW 2021) — truncated temporal walk GAN,
simplified.

TGGAN improves on TagGen by (a) *truncating* temporal walks so that
each walk is short and respects time-validity constraints, and (b)
training a generator/discriminator pair over walk space instead of
sampling+filtering from the data walks directly.

Our re-implementation keeps both ideas at reduced fidelity: the
generator is a learned (start, transition, time-gap) factorized
distribution over truncated walks, updated adversarially — transitions
that the discriminator (an MLP on walk embedding features, trained with
our nn substrate) flags as unrealistic get down-weighted each round.
Walks remain the generation currency, so cost still scales with the
number of temporal edges (the Fig. 9 / Table IV behaviour), but
training is lighter than TagGen's — matching the paper's observation
that TGGAN trains fastest among the walk methods.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autodiff import functional as F, no_grad
from repro.autodiff.tensor import as_tensor
from repro.baselines.base import GraphGenerator
from repro.baselines.taggen import _with_zero_attrs
from repro.baselines.walks import (
    TemporalWalkSampler,
    Walk,
    merge_walks_into_graph,
)
from repro.graph import DynamicAttributedGraph
from repro.graph.temporal import TemporalEdgeList
from repro.nn import Adam, MLP

_WALK_FEATURES = 5


def _walk_features(walk: Walk, num_nodes: int, num_timesteps: int) -> np.ndarray:
    """Fixed-size embedding of a walk for the discriminator."""
    nodes = np.array([u for u, _ in walk], dtype=np.float64)
    times = np.array([t for _, t in walk], dtype=np.float64)
    return np.array(
        [
            len(walk) / 10.0,
            nodes.mean() / num_nodes,
            nodes.std() / num_nodes,
            times.mean() / max(num_timesteps, 1),
            np.abs(np.diff(times)).mean() if len(times) > 1 else 0.0,
        ]
    )


class TGGAN(GraphGenerator):
    """Truncated temporal walk generator with adversarial reweighting.

    The discriminator only steers ``fit``-time reweighting of the
    bigram generator; it is excluded from the serialized state (a
    loaded instance generates identically without it).
    """

    _STATE_EXCLUDE = ("_discriminator",)

    def __init__(
        self,
        walk_length: int = 4,
        walks_per_edge: float = 3.0,
        adversarial_rounds: int = 3,
        disc_epochs: int = 20,
        time_window: int = 1,
        engine: str = "tape",
        seed: int = 0,
    ):
        super().__init__(seed)
        self.walk_length = walk_length
        self.walks_per_edge = walks_per_edge
        self.adversarial_rounds = adversarial_rounds
        self.disc_epochs = disc_epochs
        self.time_window = time_window
        self.engine = engine
        self._bigram: Dict[int, Dict[int, float]] = {}
        self._start_probs: Optional[np.ndarray] = None
        self._edges_per_step: List[int] = []
        self._num_nodes = 0
        self._num_timesteps = 0
        self._num_attrs = 0
        self._discriminator: Optional[MLP] = None

    # ------------------------------------------------------------------
    def fit(self, graph: DynamicAttributedGraph) -> "TGGAN":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        rng = self._rng(None)
        self._num_nodes = graph.num_nodes
        self._num_timesteps = graph.num_timesteps
        self._num_attrs = graph.num_attributes
        self._edges_per_step = graph.store.edges_per_step().tolist()
        stream = TemporalEdgeList.from_dynamic_graph(graph)
        sampler = TemporalWalkSampler(
            stream, time_window=self.time_window, seed=self.seed
        )
        n_walks = int(self.walks_per_edge * max(len(stream), 1))
        real_walks = sampler.sample_walks(n_walks, self.walk_length)
        self._init_generator(real_walks)
        self._discriminator = MLP(
            [_WALK_FEATURES, 16, 1], activation="relu", rng=rng
        )
        optimizer = Adam(self._discriminator.parameters(), lr=1e-2)
        # adversarial rounds: train D on real-vs-fake, reweight G
        for _ in range(self.adversarial_rounds):
            fake_walks = [
                self._sample_walk(rng)
                for _ in range(max(len(real_walks) // 2, 10))
            ]
            fake_walks = [w for w in fake_walks if len(w) >= 2]
            if not fake_walks or not real_walks:
                break
            self._train_discriminator(real_walks, fake_walks, optimizer)
            self._reweight_generator(fake_walks)
        self.fitted = True
        return self

    def _init_generator(self, walks: List[Walk]) -> None:
        counts: Dict[int, Counter] = defaultdict(Counter)
        start_counts = np.ones(self._num_nodes)
        for walk in walks:
            start_counts[walk[0][0]] += 1
            for (u, _), (v, _) in zip(walk, walk[1:]):
                counts[u][v] += 1
        self._bigram = {
            u: {v: c / sum(ctr.values()) for v, c in ctr.items()}
            for u, ctr in counts.items()
        }
        self._start_probs = start_counts / start_counts.sum()

    def _train_discriminator(
        self, real: List[Walk], fake: List[Walk], optimizer: Adam
    ) -> None:
        xr = np.stack(
            [_walk_features(w, self._num_nodes, self._num_timesteps) for w in real]
        )
        xf = np.stack(
            [_walk_features(w, self._num_nodes, self._num_timesteps) for w in fake]
        )
        x = as_tensor(np.concatenate([xr, xf]))
        y = np.concatenate([np.ones(len(xr)), np.zeros(len(xf))])
        for _ in range(self.disc_epochs):
            with self._train_ctx():
                logits = self._discriminator(x).reshape(len(y))
                p = F.clip(F.sigmoid(logits), 1e-7, 1 - 1e-7)
                loss = -(y * F.log(p) + (1 - y) * F.log(1 - p)).mean()
                optimizer.zero_grad()
                loss.backward()
            optimizer.step()

    def _reweight_generator(self, fake_walks: List[Walk]) -> None:
        """Down-weight transitions of walks the discriminator rejects."""
        with no_grad():
            feats = np.stack(
                [
                    _walk_features(w, self._num_nodes, self._num_timesteps)
                    for w in fake_walks
                ]
            )
            logits = self._discriminator(as_tensor(feats)).data.reshape(-1)
        scores = 1.0 / (1.0 + np.exp(-logits))
        for walk, score in zip(fake_walks, scores):
            if score >= 0.5:
                continue  # fooled the discriminator — keep
            for (u, _), (v, _) in zip(walk, walk[1:]):
                if u in self._bigram and v in self._bigram[u]:
                    self._bigram[u][v] *= 0.8
        # renormalize
        for u, ctr in self._bigram.items():
            total = sum(ctr.values())
            if total > 0:
                self._bigram[u] = {v: p / total for v, p in ctr.items()}

    # ------------------------------------------------------------------
    def _sample_walk(self, rng: np.random.Generator,
                     num_timesteps: Optional[int] = None) -> Walk:
        horizon = num_timesteps or self._num_timesteps
        u = int(rng.choice(self._num_nodes, p=self._start_probs))
        t = int(rng.integers(horizon))
        walk: Walk = [(u, t)]
        for _ in range(self.walk_length - 1):
            nxt = self._bigram.get(u)
            if not nxt:
                break
            nodes = list(nxt.keys())
            probs = np.array(list(nxt.values()))
            total = probs.sum()
            if total <= 0:
                break
            u = int(rng.choice(nodes, p=probs / total))
            # time-validity: walks move forward within the truncation window
            t = int(np.clip(t + rng.integers(0, 2), 0, horizon - 1))
            walk.append((u, t))
        return walk

    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        total_edges = sum(
            self._edges_per_step[min(t, len(self._edges_per_step) - 1)]
            for t in range(num_timesteps)
        )
        n_walks = int(self.walks_per_edge * max(total_edges, 1))
        walks = []
        for _ in range(n_walks):
            w = self._sample_walk(rng, num_timesteps)
            if len(w) >= 2:
                walks.append(w)
        graph = merge_walks_into_graph(
            walks, self._num_nodes, num_timesteps, self._edges_per_step, rng
        )
        return _with_zero_attrs(graph, self._num_attrs)
