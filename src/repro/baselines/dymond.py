"""Dymond (Zeno et al., WWW 2021) — dynamic motif-activity generator.

Dymond assumes each motif type (edge, wedge, triangle) arrives with a
time-independent exponential rate and replays motif activity to build
snapshots.  Fitting enumerates motifs per snapshot and estimates (a)
per-type arrival rates and (b) node role propensities; generation
places motifs with degree-weighted role assignment until the expected
per-type counts are met.

Like the original (which stores millions of motifs across time — the
reason the paper could only run it on the smallest dataset), motif
enumeration is the expensive part; we cap it with ``max_nodes`` and
raise on larger inputs, mirroring the paper's footnote that Dymond ran
only on Email.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import GraphGenerator
from repro.baselines.taggen import _with_zero_attrs
from repro.graph import DynamicAttributedGraph, GraphSnapshot


class DymondCapacityError(RuntimeError):
    """Raised when the input exceeds Dymond's motif-storage capacity."""


class Dymond(GraphGenerator):
    """Motif (edge/wedge/triangle) arrival-rate generator."""

    def __init__(self, max_nodes: int = 400, seed: int = 0):
        super().__init__(seed)
        self.max_nodes = max_nodes
        self._edge_rate = 0.0
        self._wedge_rate = 0.0
        self._triangle_rate = 0.0
        self._node_weights: Optional[np.ndarray] = None
        self._num_nodes = 0
        self._num_attrs = 0

    # ------------------------------------------------------------------
    def fit(self, graph: DynamicAttributedGraph) -> "Dymond":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        if graph.num_nodes > self.max_nodes:
            raise DymondCapacityError(
                f"Dymond motif storage capped at {self.max_nodes} nodes "
                f"(got {graph.num_nodes}); the paper could likewise only "
                "run Dymond on the smallest dataset"
            )
        self._num_nodes = graph.num_nodes
        self._num_attrs = graph.num_attributes
        t_len = graph.num_timesteps
        edge_counts, wedge_counts, tri_counts = [], [], []
        node_activity = np.ones(graph.num_nodes)
        for snap in graph:
            sym = snap.undirected_adjacency()
            deg = sym.sum(axis=1)
            node_activity += deg
            m = sym.sum() / 2.0
            tri = np.trace(sym @ sym @ sym) / 6.0
            wedge = float((deg * (deg - 1) / 2.0).sum()) - 3.0 * tri
            edge_counts.append(m)
            wedge_counts.append(max(wedge, 0.0))
            tri_counts.append(tri)
        # exponential arrival MLE = mean per-step count
        self._edge_rate = float(np.mean(edge_counts))
        self._wedge_rate = float(np.mean(wedge_counts))
        self._triangle_rate = float(np.mean(tri_counts))
        self._node_weights = node_activity / node_activity.sum()
        self.fitted = True
        return self

    # ------------------------------------------------------------------
    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        n = self._num_nodes
        snaps: List[GraphSnapshot] = []
        # motif budgets: wedges/triangles consume edges too, so the edge
        # budget is what remains after structured motifs are placed
        tri_budget = int(rng.poisson(max(self._triangle_rate, 0.0)))
        wedge_budget = int(
            rng.poisson(max(self._wedge_rate, 0.0)) // max(num_timesteps, 1)
        )
        for _ in range(num_timesteps):
            adj = np.zeros((n, n))
            placed = 0.0
            tri_budget = int(rng.poisson(max(self._triangle_rate, 0.0)))
            for _ in range(tri_budget):
                trio = rng.choice(n, size=3, replace=False, p=self._node_weights)
                for a, b in ((0, 1), (1, 2), (0, 2)):
                    u, v = trio[a], trio[b]
                    if adj[u, v] == 0 and adj[v, u] == 0:
                        self._orient(adj, u, v, rng)
                        placed += 1
            # wedges: estimated count scaled down (each wedge = 2 edges)
            wedges = int(max(self._wedge_rate, 0.0) ** 0.5)
            for _ in range(wedges):
                trio = rng.choice(n, size=3, replace=False, p=self._node_weights)
                for a, b in ((0, 1), (0, 2)):
                    u, v = trio[a], trio[b]
                    if adj[u, v] == 0 and adj[v, u] == 0:
                        self._orient(adj, u, v, rng)
                        placed += 1
            # independent edges fill the remaining budget
            while placed < self._edge_rate:
                u, v = rng.choice(n, size=2, replace=False, p=self._node_weights)
                if adj[u, v] == 0 and adj[v, u] == 0:
                    self._orient(adj, u, v, rng)
                placed += 1
            np.fill_diagonal(adj, 0.0)
            snaps.append(GraphSnapshot(adj, None, validate=False))
        return _with_zero_attrs(DynamicAttributedGraph(snaps), self._num_attrs)

    @staticmethod
    def _orient(adj: np.ndarray, u: int, v: int, rng: np.random.Generator) -> None:
        if rng.random() < 0.5:
            adj[u, v] = 1.0
        else:
            adj[v, u] = 1.0
