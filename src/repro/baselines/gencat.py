"""GenCAT (Maekawa et al., Information Systems 2023) — static attributed
graph generator with controlled class/attribute/topology relationships.

GenCAT's generative core: (1) latent node classes; (2) a class-to-class
preference matrix governing edge placement; (3) per-node expected
degrees; (4) class-conditioned attribute distributions.

GenCAT is a *static* model: it is fitted **once** on the time-pooled
observed graph and every generated snapshot is an independent draw from
that single fitted model.  This matches how the paper deploys it on
dynamic data and is precisely why it cannot track temporal evolution —
per-timestep attribute dispersion, density drift and the
consecutive-snapshot difference metrics all expose the staleness (the
Fig. 3 / Fig. 10 comparisons).

Simplifications vs the original release: classes come from k-means on
[mean attributes ‖ normalized mean in/out degree] rather than
user-supplied class priors, and attribute distributions are independent
Gaussians per (class, dimension) — consistent with the paper's note
that GenCAT treats attributes as independent variables (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.baselines.base import GraphGenerator
from repro.graph import DynamicAttributedGraph, GraphSnapshot


def kmeans(
    x: np.ndarray, k: int, rng: np.random.Generator, iters: int = 25
) -> np.ndarray:
    """Plain Lloyd's k-means; returns integer labels of shape (N,)."""
    n = x.shape[0]
    k = min(k, n)
    centers = x[rng.choice(n, size=k, replace=False)]
    labels = np.zeros(n, dtype=int)
    for _ in range(iters):
        dists = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
        new_labels = dists.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels
        for c in range(k):
            members = x[labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)
    return labels


class GenCAT(GraphGenerator):
    """Latent-class attributed graph generator (static, fitted once)."""

    def __init__(self, num_classes: int = 4, seed: int = 0):
        super().__init__(seed)
        if num_classes < 1:
            raise ValueError("num_classes must be >= 1")
        self.num_classes = num_classes
        self._labels: Optional[np.ndarray] = None
        self._class_pref: Optional[np.ndarray] = None
        self._out_degrees: Optional[np.ndarray] = None
        self._in_weights: Optional[np.ndarray] = None
        self._attr_mu: Optional[np.ndarray] = None
        self._attr_sigma: Optional[np.ndarray] = None
        self._num_nodes = 0
        self._num_attrs = 0

    # ------------------------------------------------------------------
    def fit(self, graph: DynamicAttributedGraph) -> "GenCAT":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        rng = self._rng(None)
        n = graph.num_nodes
        f = graph.num_attributes
        self._num_nodes = n
        self._num_attrs = f
        t_len = graph.num_timesteps
        # time-pooled statistics
        mean_in = np.zeros(n)
        mean_out = np.zeros(n)
        for snap in graph:
            mean_in += snap.in_degrees()
            mean_out += snap.out_degrees()
        mean_in /= t_len
        mean_out /= t_len
        mean_attrs = graph.attribute_tensor().mean(axis=0)  # (N, F)
        feats = np.concatenate(
            [
                mean_attrs,
                (mean_in / max(mean_in.max(), 1e-9))[:, None],
                (mean_out / max(mean_out.max(), 1e-9))[:, None],
            ],
            axis=1,
        )
        labels = kmeans(feats, self.num_classes, rng)
        k_eff = labels.max() + 1
        pref = np.full((k_eff, k_eff), 1e-6)
        for snap in graph:
            for u, v in snap.edges():
                pref[labels[u], labels[v]] += 1.0
        pref /= pref.sum(axis=1, keepdims=True)
        # class-conditioned attribute Gaussians from pooled samples
        mu = np.zeros((k_eff, f))
        sigma = np.ones((k_eff, f))
        if f:
            pooled = graph.attribute_tensor()  # (T, N, F)
            for c in range(k_eff):
                members = pooled[:, labels == c, :].reshape(-1, f)
                if len(members):
                    mu[c] = members.mean(axis=0)
                    sigma[c] = np.maximum(members.std(axis=0), 1e-6)
        self._labels = labels
        self._class_pref = pref
        self._out_degrees = mean_out
        self._in_weights = mean_in + 1.0
        self._attr_mu = mu
        self._attr_sigma = sigma
        self.fitted = True
        return self

    # ------------------------------------------------------------------
    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        snaps = [self._generate_snapshot(rng) for _ in range(num_timesteps)]
        return DynamicAttributedGraph(snaps)

    def _generate_snapshot(self, rng: np.random.Generator) -> GraphSnapshot:
        n = self._num_nodes
        labels = self._labels
        adj = np.zeros((n, n))
        k_eff = self._class_pref.shape[0]
        class_members = [np.nonzero(labels == c)[0] for c in range(k_eff)]
        member_weights = []
        for c in range(k_eff):
            w = self._in_weights[class_members[c]]
            member_weights.append(w / w.sum() if w.sum() > 0 else None)
        # per-node out-degree budgets are Poisson around the fitted means
        budgets = rng.poisson(np.maximum(self._out_degrees, 0.0))
        for u in np.nonzero(budgets > 0)[0]:
            dest_classes = rng.choice(
                k_eff, size=int(budgets[u]), p=self._class_pref[labels[u]]
            )
            for c in dest_classes:
                members = class_members[c]
                if len(members) == 0 or member_weights[c] is None:
                    continue
                v = rng.choice(members, p=member_weights[c])
                if v != u:
                    adj[u, v] = 1.0
        np.fill_diagonal(adj, 0.0)
        if self._num_attrs:
            attrs = rng.normal(
                self._attr_mu[labels], self._attr_sigma[labels]
            )
        else:
            attrs = np.zeros((n, 0))
        return GraphSnapshot(adj, attrs, validate=False)
