"""Temporal random-walk machinery shared by TagGen / TGGAN / TIGGER.

A *temporal walk* is a sequence of (node, time) pairs where consecutive
steps traverse edges whose timestamps are close (within a window), the
sampling scheme introduced by TagGen [68] and reused (truncated /
RNN-modelled) by its successors.  Walk *merging* assembles a generated
edge stream by accumulating the transitions of many sampled walks and
keeping the most frequent edges per timestep until the target density
is met — the expensive assembly step the paper's efficiency evaluation
highlights.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.graph.temporal import TemporalEdgeList

Walk = List[Tuple[int, int]]  # [(node, time), ...]


class TemporalWalkSampler:
    """Samples temporal random walks from an observed edge stream."""

    def __init__(
        self,
        edges: TemporalEdgeList,
        time_window: int = 2,
        seed: int = 0,
    ):
        self.edges = edges
        self.time_window = time_window
        self.rng = np.random.default_rng(seed)
        # adjacency indexed by (node) -> [(nbr, t)] over symmetrized stream:
        # TagGen walks traverse edges in either direction
        self._adj: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        for u, v, t in edges:
            self._adj[u].append((v, t))
            self._adj[v].append((u, t))
        self._starts: List[Tuple[int, int]] = [(u, t) for u, v, t in edges]

    def sample_walk(self, length: int) -> Optional[Walk]:
        """One temporal walk of at most ``length`` (node, time) steps."""
        if not self._starts:
            return None
        u, t = self._starts[self.rng.integers(len(self._starts))]
        walk: Walk = [(u, t)]
        for _ in range(length - 1):
            candidates = [
                (v, tv)
                for v, tv in self._adj.get(u, [])
                if abs(tv - t) <= self.time_window
            ]
            if not candidates:
                break
            u, t = candidates[self.rng.integers(len(candidates))]
            walk.append((u, t))
        return walk

    def sample_walks(self, count: int, length: int) -> List[Walk]:
        """Draw ``num_walks`` time-respecting random walks."""
        walks = []
        for _ in range(count):
            w = self.sample_walk(length)
            if w and len(w) >= 2:
                walks.append(w)
        return walks


def walk_transition_counts(
    walks: Sequence[Walk], num_nodes: int, num_timesteps: int
) -> Counter:
    """Count per-timestep edge transitions across walks."""
    counts: Counter = Counter()
    for walk in walks:
        for (u, tu), (v, tv) in zip(walk, walk[1:]):
            if u == v:
                continue
            t = min(max(tv, 0), num_timesteps - 1)
            counts[(u, v, t)] += 1
    return counts


def merge_walks_into_graph(
    walks: Sequence[Walk],
    num_nodes: int,
    num_timesteps: int,
    edges_per_step: Sequence[int],
    rng: np.random.Generator,
) -> DynamicAttributedGraph:
    """Assemble a dynamic graph from walks (the merging stage).

    Keeps, per timestep, the highest-multiplicity transitions until the
    target edge count ``edges_per_step[t]`` is reached; pads with
    frequency-weighted random edges when walks under-cover a step.
    """
    counts = walk_transition_counts(walks, num_nodes, num_timesteps)
    per_step: Dict[int, List[Tuple[int, Tuple[int, int]]]] = defaultdict(list)
    for (u, v, t), c in counts.items():
        per_step[t].append((c, (u, v)))

    node_freq = np.ones(num_nodes)
    for walk in walks:
        for u, _ in walk:
            node_freq[u] += 1
    node_probs = node_freq / node_freq.sum()

    snaps = []
    for t in range(num_timesteps):
        adj = np.zeros((num_nodes, num_nodes))
        target = int(edges_per_step[min(t, len(edges_per_step) - 1)])
        ranked = sorted(per_step.get(t, []), reverse=True)
        placed = 0
        for _, (u, v) in ranked:
            if placed >= target:
                break
            if adj[u, v] == 0:
                adj[u, v] = 1.0
                placed += 1
        # pad with walk-frequency-weighted random edges
        attempts = 0
        while placed < target and attempts < target * 20:
            u, v = rng.choice(num_nodes, size=2, p=node_probs)
            attempts += 1
            if u != v and adj[u, v] == 0:
                adj[u, v] = 1.0
                placed += 1
        np.fill_diagonal(adj, 0.0)
        snaps.append(GraphSnapshot(adj, None, validate=False))
    return DynamicAttributedGraph(snaps)
