"""Temporal random-walk machinery shared by TagGen / TGGAN / TIGGER.

A *temporal walk* is a sequence of (node, time) pairs where consecutive
steps traverse edges whose timestamps are close (within a window), the
sampling scheme introduced by TagGen [68] and reused (truncated /
RNN-modelled) by its successors.  Walk *merging* assembles a generated
edge stream by accumulating the transitions of many sampled walks and
keeping the most frequent edges per timestep until the target density
is met — the expensive assembly step the paper's efficiency evaluation
highlights.

The sampler consumes the :class:`TemporalEdgeList` columns zero-copy
(``edges.arrays()``), and merging emits edge lists straight into a
:class:`~repro.graph.store.TemporalEdgeStoreBuilder` — no dense
``(N, N)`` matrices anywhere on the walk-baseline fit/generate path.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph import DynamicAttributedGraph
from repro.graph.store import TemporalEdgeStoreBuilder
from repro.graph.temporal import TemporalEdgeList

Walk = List[Tuple[int, int]]  # [(node, time), ...]


class TemporalWalkSampler:
    """Samples temporal random walks from an observed edge stream.

    The symmetrized stream is stored as flat arrays sorted by
    ``(node, time)``; a walk step for *all* active walks at once then
    reduces to two ``searchsorted`` calls (the per-walk candidate window
    ``|t' - t| <= w`` is a contiguous slice of each node's time-sorted
    row) plus one vectorized uniform pick — no per-candidate Python
    work.  :meth:`sample_walk` keeps the original scalar sampler as the
    parity reference (its adjacency dict is built lazily on first use).
    """

    def __init__(
        self,
        edges: TemporalEdgeList,
        time_window: int = 2,
        seed: int = 0,
    ):
        self.edges = edges
        self.time_window = time_window
        self.rng = np.random.default_rng(seed)
        # scalar-reference structures, built lazily (see _scalar_index)
        self._adj: Optional[Dict[int, List[Tuple[int, int]]]] = None
        self._starts: Optional[List[Tuple[int, int]]] = None
        # flat (node, time)-sorted arrays for the batched sampler,
        # built zero-copy from the stream's columns; the snapshot is
        # frozen here so both samplers see the same edge set even if
        # the list is mutated later
        e_src, e_dst, e_t = edges.arrays()
        self._columns = (e_src, e_dst, e_t)
        if e_src.size:
            src = np.concatenate([e_src, e_dst])
            dst = np.concatenate([e_dst, e_src])
            tim = np.concatenate([e_t, e_t])
            order = np.lexsort((tim, src))
            self._flat_dst = dst[order]
            self._flat_t = tim[order]
            self._t_min = int(tim.min())
            self._t_span = int(tim.max()) - self._t_min + 1
            # composite (node, time) sort key: per-node slices stay
            # time-sorted, so one searchsorted bounds a time window
            self._flat_key = src[order] * self._t_span + tim[order] - self._t_min
            self._start_u = e_src
            self._start_t = e_t
        else:
            self._flat_dst = np.zeros(0, dtype=np.int64)
            self._flat_t = np.zeros(0, dtype=np.int64)
            self._flat_key = np.zeros(0, dtype=np.int64)
            self._t_min = 0
            self._t_span = 1
            self._start_u = np.zeros(0, dtype=np.int64)
            self._start_t = np.zeros(0, dtype=np.int64)

    def _scalar_index(self) -> Tuple[Dict[int, List[Tuple[int, int]]], List[Tuple[int, int]]]:
        """Per-edge Python structures for the reference scalar sampler.

        Built from the columns frozen at construction time (not the
        live edge list), so the scalar and batched paths stay
        consistent by construction.
        """
        if self._adj is None:
            adj: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
            starts: List[Tuple[int, int]] = []
            e_src, e_dst, e_t = self._columns
            for u, v, t in zip(
                e_src.tolist(), e_dst.tolist(), e_t.tolist()
            ):
                adj[u].append((v, t))
                adj[v].append((u, t))
                starts.append((u, t))
            self._adj = adj
            self._starts = starts
        return self._adj, self._starts

    def sample_walk(self, length: int) -> Optional[Walk]:
        """One temporal walk of at most ``length`` (node, time) steps."""
        adj, starts = self._scalar_index()
        if not starts:
            return None
        u, t = starts[self.rng.integers(len(starts))]
        walk: Walk = [(u, t)]
        for _ in range(length - 1):
            candidates = [
                (v, tv)
                for v, tv in adj.get(u, [])
                if abs(tv - t) <= self.time_window
            ]
            if not candidates:
                break
            u, t = candidates[self.rng.integers(len(candidates))]
            walk.append((u, t))
        return walk

    def sample_walks(self, count: int, length: int) -> List[Walk]:
        """Draw up to ``count`` time-respecting walks, batch-stepped.

        All walks advance together: per step, each active walk's
        candidate slice ``[t - w, t + w]`` within its current node's
        time-sorted row is located with two vectorized ``searchsorted``
        calls and one candidate is drawn uniformly.  Walks that reach a
        node with no in-window continuation retire; walks shorter than
        two steps are dropped, as before.
        """
        if count < 1 or length < 2 or self._start_u.size == 0:
            return []  # walks shorter than 2 steps are filtered anyway
        w = self.time_window
        picks = self.rng.integers(self._start_u.size, size=count)
        cur_u = self._start_u[picks].copy()
        cur_t = self._start_t[picks].copy()
        nodes = np.full((count, length), -1, dtype=np.int64)
        times = np.zeros((count, length), dtype=np.int64)
        nodes[:, 0] = cur_u
        times[:, 0] = cur_t
        lengths = np.ones(count, dtype=np.int64)
        active = np.ones(count, dtype=bool)
        for step in range(1, length):
            idx = np.nonzero(active)[0]
            if idx.size == 0:
                break
            au, at = cur_u[idx], cur_t[idx]
            base = au * self._t_span - self._t_min
            lo = np.searchsorted(
                self._flat_key, base + np.maximum(at - w, self._t_min), "left"
            )
            hi = np.searchsorted(
                self._flat_key,
                base + np.minimum(at + w, self._t_min + self._t_span - 1),
                "right",
            )
            counts = hi - lo
            has_next = counts > 0
            stepping = idx[has_next]
            active[idx[~has_next]] = False
            if stepping.size == 0:
                break
            chosen = lo[has_next] + (
                self.rng.random(stepping.size) * counts[has_next]
            ).astype(np.int64)
            cur_u[stepping] = self._flat_dst[chosen]
            cur_t[stepping] = self._flat_t[chosen]
            nodes[stepping, step] = cur_u[stepping]
            times[stepping, step] = cur_t[stepping]
            lengths[stepping] = step + 1
        walks: List[Walk] = []
        for i in range(count):
            n_steps = int(lengths[i])
            if n_steps < 2:
                continue
            walks.append(
                list(zip(nodes[i, :n_steps].tolist(), times[i, :n_steps].tolist()))
            )
        return walks


def walk_transition_counts(
    walks: Sequence[Walk], num_nodes: int, num_timesteps: int
) -> Counter:
    """Count per-timestep edge transitions across walks."""
    counts: Counter = Counter()
    for walk in walks:
        for (u, tu), (v, tv) in zip(walk, walk[1:]):
            if u == v:
                continue
            t = min(max(tv, 0), num_timesteps - 1)
            counts[(u, v, t)] += 1
    return counts


def merge_walks_into_graph(
    walks: Sequence[Walk],
    num_nodes: int,
    num_timesteps: int,
    edges_per_step: Sequence[int],
    rng: np.random.Generator,
) -> DynamicAttributedGraph:
    """Assemble a dynamic graph from walks (the merging stage).

    Keeps, per timestep, the highest-multiplicity transitions until the
    target edge count ``edges_per_step[t]`` is reached; pads with
    frequency-weighted random edges when walks under-cover a step.
    Edges stream into a store builder — the output graph is
    store-backed and no dense matrix is materialized.
    """
    counts = walk_transition_counts(walks, num_nodes, num_timesteps)
    per_step: Dict[int, List[Tuple[int, Tuple[int, int]]]] = defaultdict(list)
    for (u, v, t), c in counts.items():
        per_step[t].append((c, (u, v)))

    node_freq = np.ones(num_nodes)
    for walk in walks:
        for u, _ in walk:
            node_freq[u] += 1
    node_probs = node_freq / node_freq.sum()

    builder = TemporalEdgeStoreBuilder(num_nodes, 0)
    for t in range(num_timesteps):
        placed_pairs: set = set()
        target = int(edges_per_step[min(t, len(edges_per_step) - 1)])
        ranked = sorted(per_step.get(t, []), reverse=True)
        for _, (u, v) in ranked:
            if len(placed_pairs) >= target:
                break
            placed_pairs.add((u, v))
        # pad with walk-frequency-weighted random edges, drawn in
        # batches (per-pair rng.choice calls re-scan the probability
        # vector every time; one batched draw amortizes that)
        attempts = 0
        max_attempts = target * 20
        while len(placed_pairs) < target and attempts < max_attempts:
            placed = len(placed_pairs)
            batch = min(max(2 * (target - placed), 8), max_attempts - attempts)
            pairs = rng.choice(num_nodes, size=(batch, 2), p=node_probs)
            attempts += batch
            for u, v in pairs:
                if len(placed_pairs) >= target:
                    break
                if u != v:
                    placed_pairs.add((int(u), int(v)))
        if placed_pairs:
            # sorted unique loop-free pairs are already canonical
            arr = np.asarray(sorted(placed_pairs), dtype=np.int64)
            builder.add_step(arr[:, 0], arr[:, 1], canonical=True)
        else:
            builder.add_step(
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
            )
    return DynamicAttributedGraph.from_store(builder.build())
