"""GRAN (Liao et al., NeurIPS 2019) — autoregressive graph generation
with a mixture-of-Bernoulli output head, simplified.

GRAN generates a static graph one node (block) at a time: when node
``i`` arrives, a network scores candidate edges to all previously
generated nodes and samples them from a mixture of Bernoullis.  Our
re-implementation keeps the autoregressive row-by-row scheme and the
learned edge scorer, replacing the full GNN-over-partial-graph with a
feature-based MLP (degree-so-far of both endpoints, arrival-rank
distance, and common-neighbour count) trained on the observed
snapshots with our nn substrate.

Being a *static* model, GRAN is fitted on the pooled snapshots and
generates each snapshot independently — matching how the paper applies
static baselines to dynamic data (and why they score poorly on the
dynamic difference metrics).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autodiff import Tensor, functional as F, no_grad
from repro.autodiff.tensor import as_tensor
from repro.baselines.base import GraphGenerator
from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.nn import Adam, MLP

_FEATURES = 4  # deg_i, deg_j, rank distance, common neighbours


def _edge_features(adj: np.ndarray, i: int, order: np.ndarray, upto: int) -> np.ndarray:
    """Features of candidate edges (order[i] -> order[j]) for j < upto."""
    n = adj.shape[0]
    src = order[i]
    prev = order[:upto]
    deg = adj.sum(axis=1) + adj.sum(axis=0)
    common = (adj[src] @ adj[prev].T) / max(n, 1)
    feats = np.stack(
        [
            np.full(upto, deg[src] / n),
            deg[prev] / n,
            (i - np.arange(upto)) / n,
            common,
        ],
        axis=1,
    )
    return feats


class GRAN(GraphGenerator):
    """Autoregressive row-wise structure generator (static, simplified)."""

    _STATE_EXCLUDE = ("_scorer",)

    def __init__(
        self,
        hidden_dim: int = 16,
        epochs: int = 30,
        learning_rate: float = 1e-2,
        engine: str = "tape",
        seed: int = 0,
    ):
        super().__init__(seed)
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.engine = engine
        self._scorer: Optional[MLP] = None
        self._num_nodes = 0
        self._avg_edges = 0.0
        self._num_attrs = 0

    # ------------------------------------------------------------------
    def fit(self, graph: DynamicAttributedGraph) -> "GRAN":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        rng = self._rng(None)
        n = graph.num_nodes
        self._num_nodes = n
        self._num_attrs = graph.num_attributes
        self._avg_edges = graph.num_temporal_edges / graph.num_timesteps
        self._scorer = MLP(
            [_FEATURES, self.hidden_dim, 1], activation="relu", rng=rng
        )
        optimizer = Adam(self._scorer.parameters(), lr=self.learning_rate)
        # training set: pooled (features, label) pairs over all snapshots,
        # with a degree-descending node ordering per snapshot (GRAN's
        # canonical orderings are BFS/degree based)
        feats_list, labels_list = [], []
        for snap in graph:
            adj = snap.adjacency
            order = np.argsort(-snap.degrees())
            for i in range(1, n):
                f = _edge_features(adj, i, order, i)
                y = adj[order[i], order[:i]]
                feats_list.append(f)
                labels_list.append(y)
        feats = np.concatenate(feats_list)
        labels = np.concatenate(labels_list)
        # subsample negatives to balance classes (graphs are sparse)
        pos = np.nonzero(labels > 0)[0]
        neg = np.nonzero(labels == 0)[0]
        keep_neg = rng.choice(
            neg, size=min(len(neg), max(len(pos) * 4, 100)), replace=False
        )
        idx = np.concatenate([pos, keep_neg])
        feats, labels = feats[idx], labels[idx]
        x = as_tensor(feats)
        for _ in range(self.epochs):
            with self._train_ctx():
                logits = self._scorer(x).reshape(len(labels))
                p = F.clip(F.sigmoid(logits), 1e-7, 1 - 1e-7)
                loss = -(
                    labels * F.log(p) + (1 - labels) * F.log(1 - p)
                ).mean()
                optimizer.zero_grad()
                loss.backward()
            optimizer.step()
        self.fitted = True
        return self

    # ------------------------------------------------------------------
    def get_state(self):
        """Reflective state plus the edge scorer's weights."""
        state = super().get_state()
        if self._scorer is not None:
            state["__scorer__"] = self._scorer.state_dict()
        return state

    def set_state(self, state) -> None:
        """Restore state, rebuilding the scorer MLP from its weights."""
        state = dict(state)
        scorer = state.pop("__scorer__", None)
        super().set_state(state)
        if scorer is None:
            self._scorer = None
        else:
            self._scorer = MLP(
                [_FEATURES, self.hidden_dim, 1], activation="relu",
                rng=np.random.default_rng(0),
            )
            self._scorer.load_state_dict(scorer)

    # ------------------------------------------------------------------
    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        snaps = [self._generate_snapshot(rng) for _ in range(num_timesteps)]
        return DynamicAttributedGraph(snaps)

    def _generate_snapshot(self, rng: np.random.Generator) -> GraphSnapshot:
        n = self._num_nodes
        adj = np.zeros((n, n))
        order = rng.permutation(n)
        target_edges = self._avg_edges
        density_scale = 1.0
        with no_grad():
            for i in range(1, n):
                feats = _edge_features(adj, i, order, i)
                logits = self._scorer(as_tensor(feats)).data.reshape(-1)
                probs = 1.0 / (1.0 + np.exp(-logits))
                probs = np.clip(probs * density_scale, 0.0, 1.0)
                draws = rng.random(i) < probs
                src = order[i]
                for j in np.nonzero(draws)[0]:
                    dst = order[j]
                    # orient randomly: GRAN is undirected, datasets are not
                    if rng.random() < 0.5:
                        adj[src, dst] = 1.0
                    else:
                        adj[dst, src] = 1.0
                # adapt density toward the target edge count
                done = adj.sum()
                expected = target_edges * (i / n)
                if done > 1.2 * expected:
                    density_scale *= 0.9
                elif done < 0.8 * expected:
                    density_scale *= 1.1
        np.fill_diagonal(adj, 0.0)
        attrs = np.zeros((n, self._num_attrs))
        return GraphSnapshot(adj, attrs, validate=False)
