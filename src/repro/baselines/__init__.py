"""Baseline graph generators compared against VRDAG (§IV-A1).

Faithful algorithmic re-implementations, scaled to the synthetic
datasets (see DESIGN.md §4 for the substitution notes):

* :class:`GenCAT` — static attributed graph generator with latent
  classes (Maekawa et al., 2023); fitted/generated per snapshot.
* :class:`GRAN` — autoregressive static structure generator with a
  mixture-Bernoulli output head (Liao et al., 2019; simplified).
* :class:`TagGen` — temporal-random-walk generator with a plausibility
  discriminator and walk merging (Zhou et al., 2020).
* :class:`TGGAN` — truncated temporal walk generator/discriminator
  pair (Zhang et al., 2021; simplified adversarial scheme).
* :class:`TIGGER` — RNN temporal-walk generative model (Gupta et al.,
  2022).
* :class:`Dymond` — motif arrival-rate model (Zeno et al., 2021).
* :class:`NormalAttributeGenerator` — the "Normal" attribute baseline
  of Fig. 3.
* :class:`AGM` — attributed graph model with attribute-conditioned edge
  acceptance (Pfeiffer III et al., 2014; §V related work).
* :class:`ANC` — community-structured Gaussian-attribute generator
  (Largeron et al., 2015; §V related work).

All generators implement the common :class:`GraphGenerator` protocol:
``fit(graph)`` then ``generate(num_timesteps) -> DynamicAttributedGraph``.
"""

from repro.baselines.base import GraphGenerator
from repro.baselines.normal import NormalAttributeGenerator
from repro.baselines.classic import (
    BarabasiAlbert,
    ErdosRenyi,
    KroneckerGraph,
    StochasticBlockModel,
)
from repro.baselines.gencat import GenCAT
from repro.baselines.gran import GRAN
from repro.baselines.taggen import TagGen
from repro.baselines.tggan import TGGAN
from repro.baselines.tigger import TIGGER
from repro.baselines.dymond import Dymond
from repro.baselines.agm import AGM
from repro.baselines.anc import ANC

__all__ = [
    "GraphGenerator",
    "NormalAttributeGenerator",
    "AGM",
    "ANC",
    "GenCAT",
    "GRAN",
    "TagGen",
    "TGGAN",
    "TIGGER",
    "Dymond",
    "ErdosRenyi",
    "BarabasiAlbert",
    "StochasticBlockModel",
    "KroneckerGraph",
]
