"""TagGen (Zhou et al., KDD 2020) — temporal-random-walk generator.

Pipeline, matching the original's three stages:

1. **Walk sampling** — extract many temporal random walks that jointly
   capture structural and temporal context (via
   :class:`~repro.baselines.walks.TemporalWalkSampler`).
2. **Discrimination** — score candidate *generated* walks with a
   plausibility model and keep only walks passing a threshold.  The
   original trains a transformer discriminator; we use a smoothed
   bigram transition likelihood fitted on the real walks, which plays
   the same gate-keeping role at matched asymptotic cost (every
   candidate walk must be scored — this stage is exactly why TagGen's
   generation is slow, the property Fig. 9 measures).
3. **Merging** — assemble accepted walks into per-timestep snapshots
   matching the observed densities.

TagGen is structure-only: generated attributes are zero vectors.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.base import GraphGenerator
from repro.baselines.walks import (
    TemporalWalkSampler,
    Walk,
    merge_walks_into_graph,
)
from repro.graph import DynamicAttributedGraph
from repro.graph.temporal import TemporalEdgeList


class TagGen(GraphGenerator):
    """Temporal random walk + discriminator + merge generator.

    The walk sampler and the real-walk sample only feed ``fit``-time
    model estimation; generation runs off the fitted bigram scorer and
    start distribution alone, so both are excluded from the serialized
    state (a loaded instance generates identically without them).
    """

    _STATE_EXCLUDE = ("_sampler", "_real_walks")

    def __init__(
        self,
        walk_length: int = 8,
        walks_per_edge: float = 4.0,
        time_window: int = 2,
        acceptance_quantile: float = 0.3,
        seed: int = 0,
    ):
        super().__init__(seed)
        self.walk_length = walk_length
        self.walks_per_edge = walks_per_edge
        self.time_window = time_window
        self.acceptance_quantile = acceptance_quantile
        self._sampler: Optional[TemporalWalkSampler] = None
        self._bigram: Dict[int, Dict[int, float]] = {}
        self._start_probs: Optional[np.ndarray] = None
        self._edges_per_step: List[int] = []
        self._num_nodes = 0
        self._num_timesteps = 0
        self._num_attrs = 0

    # ------------------------------------------------------------------
    def fit(self, graph: DynamicAttributedGraph) -> "TagGen":
        """Fit to the observed graph (the :class:`GraphGenerator` protocol)."""
        self._num_nodes = graph.num_nodes
        self._num_timesteps = graph.num_timesteps
        self._num_attrs = graph.num_attributes
        self._edges_per_step = graph.store.edges_per_step().tolist()
        stream = TemporalEdgeList.from_dynamic_graph(graph)
        self._sampler = TemporalWalkSampler(
            stream, time_window=self.time_window, seed=self.seed
        )
        n_walks = int(self.walks_per_edge * max(len(stream), 1))
        real_walks = self._sampler.sample_walks(n_walks, self.walk_length)
        # smoothed bigram transition model = the discriminator's scorer
        counts: Dict[int, Counter] = defaultdict(Counter)
        start_counts = np.ones(self._num_nodes)
        for walk in real_walks:
            start_counts[walk[0][0]] += 1
            for (u, _), (v, _) in zip(walk, walk[1:]):
                counts[u][v] += 1
        self._bigram = {
            u: {v: c / sum(ctr.values()) for v, c in ctr.items()}
            for u, ctr in counts.items()
        }
        self._start_probs = start_counts / start_counts.sum()
        self._real_walks = real_walks
        self.fitted = True
        return self

    # ------------------------------------------------------------------
    def _walk_score(self, walk: Walk) -> float:
        """Mean log transition likelihood (the discriminator score)."""
        if len(walk) < 2:
            return -np.inf
        logp = 0.0
        for (u, _), (v, _) in zip(walk, walk[1:]):
            p = self._bigram.get(u, {}).get(v, 1e-6)
            logp += np.log(p)
        return logp / (len(walk) - 1)

    def generate(self, num_timesteps: int,
                 seed: Optional[int] = None) -> DynamicAttributedGraph:
        """Simulate ``num_timesteps`` snapshots from the fitted model."""
        self._require_fitted()
        rng = self._rng(seed)
        total_edges = sum(
            self._edges_per_step[min(t, len(self._edges_per_step) - 1)]
            for t in range(num_timesteps)
        )
        n_candidates = int(self.walks_per_edge * max(total_edges, 1))
        # stage 1: sample candidate walks from the fitted walk space
        candidates: List[Walk] = []
        for _ in range(n_candidates):
            walk = self._sample_synthetic_walk(rng, num_timesteps)
            if len(walk) >= 2:
                candidates.append(walk)
        # stage 2: discriminate — keep the top (1 - q) quantile
        scores = np.array([self._walk_score(w) for w in candidates])
        if len(scores):
            threshold = np.quantile(scores, self.acceptance_quantile)
            accepted = [w for w, s in zip(candidates, scores) if s >= threshold]
        else:
            accepted = []
        # stage 3: merge into snapshots
        graph = merge_walks_into_graph(
            accepted, self._num_nodes, num_timesteps,
            self._edges_per_step, rng,
        )
        return _with_zero_attrs(graph, self._num_attrs)

    def _sample_synthetic_walk(
        self, rng: np.random.Generator, num_timesteps: int
    ) -> Walk:
        """Sample a walk from the bigram model with temporal jitter."""
        u = int(rng.choice(self._num_nodes, p=self._start_probs))
        t = int(rng.integers(num_timesteps))
        walk: Walk = [(u, t)]
        for _ in range(self.walk_length - 1):
            nxt = self._bigram.get(u)
            if not nxt:
                break
            nodes = list(nxt.keys())
            probs = np.array(list(nxt.values()))
            probs = probs / probs.sum()
            u = int(rng.choice(nodes, p=probs))
            t = int(np.clip(t + rng.integers(-1, 2), 0, num_timesteps - 1))
            walk.append((u, t))
        return walk


def _with_zero_attrs(
    graph: DynamicAttributedGraph, num_attrs: int
) -> DynamicAttributedGraph:
    """Attach zero attribute matrices (structure-only baselines).

    Store-backed graphs keep their edge columns zero-copy; only the
    O(N·F·T) zero attribute block is allocated.
    """
    if num_attrs == 0:
        return graph
    import numpy as np

    zeros = np.zeros((graph.num_timesteps, graph.num_nodes, num_attrs))
    return DynamicAttributedGraph.from_store(
        graph.store.with_attributes(zeros)
    )
