"""Bounded admission and structured load shedding for the services.

A long-lived service with an unbounded request queue fails by hanging
or by OOM — both opaque.  :class:`AdmissionController` is the bounded
alternative both services thread their submissions through: at most
``max_pending`` requests are in flight at once, and a submission that
would exceed the bound is *shed immediately* with a structured
:class:`~repro.reliability.errors.ServiceOverloadedError` carrying a
``retry_after_seconds`` estimate derived from the service's recent
per-request drain rate (an exponentially weighted moving average), so
clients can implement honest client-side backoff.

The controller is intentionally tiny: one lock, two counters, one
EWMA.  ``max_pending=None`` disables the bound (the pre-reliability
behavior) while keeping the drain-rate bookkeeping, so enabling
backpressure later is a constructor argument, not a code change.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, Optional

from repro.reliability.errors import ServiceOverloadedError

__all__ = ["AdmissionController"]

#: EWMA smoothing for the observed per-request service time.
_DRAIN_ALPHA = 0.2


class AdmissionController:
    """Bounded in-flight request accounting with load shedding.

    Parameters
    ----------
    max_pending:
        Maximum requests admitted but not yet released.  ``None``
        means unbounded (no shedding, bookkeeping only).
    retry_after_hint_seconds:
        Initial per-request drain-time estimate used for
        ``retry_after_seconds`` before any request has completed;
        refined by an EWMA of observed batch times afterwards.
    """

    def __init__(
        self,
        max_pending: Optional[int] = None,
        *,
        retry_after_hint_seconds: float = 0.05,
    ):
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None)")
        if retry_after_hint_seconds <= 0:
            raise ValueError("retry_after_hint_seconds must be positive")
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self._pending = 0
        self._shed = 0
        self._admitted = 0
        self._drain_seconds = float(retry_after_hint_seconds)

    # ------------------------------------------------------------------
    def try_acquire(self, n: int = 1) -> None:
        """Admit ``n`` requests or shed with ``ServiceOverloadedError``.

        The retry-after estimate is how long the overflow should take
        to drain at the observed per-request rate: at least one
        drain interval, scaled by how deep the overflow runs.
        """
        if n < 1:
            raise ValueError("must acquire at least one slot")
        with self._lock:
            if (
                self.max_pending is not None
                and self._pending + n > self.max_pending
            ):
                self._shed += n
                overflow = self._pending + n - self.max_pending
                raise ServiceOverloadedError(
                    pending=self._pending,
                    capacity=self.max_pending,
                    retry_after_seconds=self._drain_seconds
                    * max(overflow, 1),
                )
            self._pending += n
            self._admitted += n

    def release(self, n: int = 1, seconds: Optional[float] = None) -> None:
        """Return ``n`` slots; ``seconds`` feeds the drain-rate EWMA."""
        with self._lock:
            self._pending = max(self._pending - n, 0)
            if seconds is not None and n > 0 and seconds >= 0:
                per_request = seconds / n
                self._drain_seconds += _DRAIN_ALPHA * (
                    per_request - self._drain_seconds
                )

    @contextlib.contextmanager
    def admit(self, n: int = 1) -> Iterator[None]:
        """``try_acquire``/``release`` as a scope (timing not fed)."""
        self.try_acquire(n)
        try:
            yield
        finally:
            self.release(n)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Pending/admitted/shed counters + current drain estimate."""
        with self._lock:
            return {
                "pending": self._pending,
                "admitted": self._admitted,
                "shed": self._shed,
                "capacity": (
                    -1 if self.max_pending is None else self.max_pending
                ),
                "drain_seconds_per_request": self._drain_seconds,
            }

    def __repr__(self) -> str:
        cap = "unbounded" if self.max_pending is None else self.max_pending
        return (
            f"AdmissionController(pending={self._pending}, capacity={cap}, "
            f"shed={self._shed})"
        )
