"""Typed failure vocabulary of the reliability layer.

Every fault the serving stack can surface is one of a small set of
exception classes, so callers (and the chaos suite) can branch on
*what went wrong* instead of parsing messages:

* :class:`ReliabilityError` — common base.
* :class:`InjectedFault` — a deterministic fault provoked by the
  process-global :data:`~repro.reliability.fault_injector`; never
  raised in production (the injector is disabled by default).
* :class:`DeadlineExceededError` — a per-request deadline expired
  before (or while) the request ran.
* :class:`ServiceOverloadedError` — structured load shedding: the
  bounded request queue is full; ``retry_after_seconds`` tells the
  client when capacity is expected back.  Raised *instead of*
  queueing unboundedly or hanging.
* :class:`CheckpointError` — a streaming-ingestion checkpoint file is
  corrupted, truncated, or inconsistent with the resuming builder.
* :class:`WorkerCrashError` — a serving-tier worker process died
  (crashed or was killed) while holding in-flight requests; the
  router respawns the worker and either retries or fails the
  affected requests individually.

Per-request failures inside a service batch are not raised at all —
they come back as :class:`RequestFailure` values on the affected
result, so one bad request can never poison its siblings.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CheckpointError",
    "DeadlineExceededError",
    "InjectedFault",
    "ReliabilityError",
    "RequestFailure",
    "ServiceOverloadedError",
    "WorkerCrashError",
]


class ReliabilityError(RuntimeError):
    """Base class of every reliability-layer failure."""


class InjectedFault(ReliabilityError):
    """A deterministic fault raised by the :class:`FaultInjector`.

    Carries the injection ``point`` so tests can assert *where* the
    fault fired.  Production code never sees this class unless the
    injector has been armed explicitly.
    """

    def __init__(self, point: str, trigger: int):
        self.point = point
        self.trigger = trigger
        super().__init__(
            f"injected fault at {point!r} (trigger #{trigger})"
        )


class DeadlineExceededError(ReliabilityError):
    """A request's deadline expired before it completed.

    ``deadline_seconds`` is the budget the request was given;
    ``elapsed_seconds`` how long it had been running (or waiting) when
    the expiry was observed.
    """

    def __init__(
        self,
        deadline_seconds: float,
        elapsed_seconds: float,
        where: str = "request",
    ):
        self.deadline_seconds = float(deadline_seconds)
        self.elapsed_seconds = float(elapsed_seconds)
        super().__init__(
            f"{where} exceeded its {deadline_seconds:.3f}s deadline "
            f"(elapsed {elapsed_seconds:.3f}s)"
        )


class ServiceOverloadedError(ReliabilityError):
    """Structured backpressure: the bounded request queue is full.

    The service sheds the submission instead of queueing it; the
    client should retry after ``retry_after_seconds`` (an estimate
    from the service's recent drain rate, never ``None``).
    """

    def __init__(
        self, pending: int, capacity: int, retry_after_seconds: float
    ):
        self.pending = int(pending)
        self.capacity = int(capacity)
        self.retry_after_seconds = float(retry_after_seconds)
        super().__init__(
            f"service overloaded: {pending} requests pending against a "
            f"capacity of {capacity}; retry after "
            f"{retry_after_seconds:.3f}s"
        )


class CheckpointError(ReliabilityError):
    """A streaming-ingestion checkpoint cannot be trusted or applied."""


class WorkerCrashError(ReliabilityError):
    """A serving-tier worker process died with requests in flight.

    ``worker_id`` names the worker; ``exit_code`` its wait status when
    known.  Treated as transient by the router: the worker is
    respawned and, when a retry policy allows, the lost requests are
    resubmitted — otherwise each surfaces as a per-request
    :class:`RequestFailure` naming this class.
    """

    def __init__(self, worker_id: int, exit_code=None):
        self.worker_id = int(worker_id)
        self.exit_code = exit_code
        detail = "" if exit_code is None else f" (exit code {exit_code})"
        super().__init__(
            f"serving worker {worker_id} died with requests in "
            f"flight{detail}"
        )


@dataclass(frozen=True)
class RequestFailure:
    """Structured per-request error carried on a service result.

    ``error_type`` is the exception class name (``"InjectedFault"``,
    ``"DeadlineExceededError"``, ``"ValueError"``, ...), ``message``
    its text, and ``attempts`` how many execution attempts the retry
    policy spent before giving up.
    """

    error_type: str
    message: str
    attempts: int = 1

    @classmethod
    def from_exception(
        cls, exc: BaseException, attempts: int = 1
    ) -> "RequestFailure":
        """Capture ``exc`` as a structured failure value."""
        return cls(
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=int(attempts),
        )

    def __str__(self) -> str:
        return f"{self.error_type}: {self.message}"
