"""Deadlines and retries with deterministic, seeded backoff jitter.

Two small primitives the serving layer composes around every request:

* :class:`Deadline` — an absolute expiry derived from a per-request
  budget.  Cooperative: executors check it at request start and
  between retry attempts, and thread pools additionally bound the
  wait on the worker's future, so an expired request surfaces as a
  structured :class:`~repro.reliability.errors.DeadlineExceededError`
  instead of a hang.
* :class:`RetryPolicy` — capped exponential backoff whose jitter is a
  pure function of ``(seed, key, attempt)``, so a retried chaos run
  sleeps the exact same schedule every time.  Only exception types in
  ``retry_on`` are retried (default: transient injected faults and
  ``OSError`` — the I/O flakes retries exist for); everything else
  propagates immediately.

The policy never sleeps past the deadline: when the next backoff
would overrun it, the retry loop raises ``DeadlineExceededError``
right away instead of burning the remaining budget asleep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, TypeVar

from repro.reliability.errors import DeadlineExceededError, InjectedFault
from repro.reliability.faults import _unit_interval

__all__ = ["Deadline", "RetryPolicy"]

T = TypeVar("T")


class Deadline:
    """Absolute expiry for one request (monotonic clock).

    Create with :meth:`after`, which maps the ``None``-means-no-limit
    convention of service knobs onto an optional instance.
    """

    __slots__ = ("budget_seconds", "_expires_at", "_started_at")

    def __init__(self, budget_seconds: float):
        if budget_seconds <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_seconds = float(budget_seconds)
        self._started_at = time.monotonic()
        self._expires_at = self._started_at + self.budget_seconds

    @classmethod
    def after(
        cls, budget_seconds: Optional[float]
    ) -> Optional["Deadline"]:
        """A deadline ``budget_seconds`` from now, or ``None``."""
        return None if budget_seconds is None else cls(budget_seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires_at - time.monotonic()

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return time.monotonic() - self._started_at

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, where: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` once expired."""
        if self.expired:
            raise DeadlineExceededError(
                self.budget_seconds, self.elapsed(), where
            )

    def __repr__(self) -> str:
        return (
            f"Deadline(budget={self.budget_seconds:.3f}s, "
            f"remaining={self.remaining():.3f}s)"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total execution attempts (1 = no retries).
    base_delay_seconds, backoff_multiplier, max_delay_seconds:
        Attempt ``k`` (0-based failure count) backs off
        ``min(base * multiplier**k, max_delay)`` seconds before the
        jitter discount.
    jitter:
        Fraction of the backoff randomized away: the actual sleep is
        ``backoff * (1 - jitter * u)`` with ``u`` drawn
        deterministically from ``(seed, key, attempt)``.  ``0`` means
        fixed delays; ``1`` allows full collapse to zero.
    seed:
        Jitter seed; two policies with the same seed sleep the same
        schedule for the same keys.
    retry_on:
        Exception types worth retrying.  Defaults to
        (:class:`InjectedFault`, ``OSError``) — transient faults and
        I/O flakes; semantic errors (``ValueError`` et al.) are never
        retried.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.005
    backoff_multiplier: float = 2.0
    max_delay_seconds: float = 0.25
    jitter: float = 0.5
    seed: int = 0
    retry_on: Tuple[type, ...] = field(
        default=(InjectedFault, OSError)
    )

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    # ------------------------------------------------------------------
    def backoff_seconds(self, failures: int, key=0) -> float:
        """Deterministic sleep before the attempt after ``failures``."""
        raw = min(
            self.base_delay_seconds * self.backoff_multiplier**failures,
            self.max_delay_seconds,
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        u = _unit_interval(self.seed, "retry.backoff", key, str(failures))
        return raw * (1.0 - self.jitter * u)

    def run(
        self,
        fn: Callable[[], T],
        *,
        key=0,
        deadline: Optional[Deadline] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Tuple[T, int]:
        """Call ``fn`` under this policy; returns ``(result, attempts)``.

        Retries only ``retry_on`` exceptions, never sleeps past the
        ``deadline``, and annotates the finally-raised exception with
        ``_retry_attempts`` so callers can report how much work the
        failure cost.
        """
        attempts = 0
        while True:
            if deadline is not None and deadline.expired:
                exc = DeadlineExceededError(
                    deadline.budget_seconds, deadline.elapsed()
                )
                exc._retry_attempts = attempts
                raise exc
            attempts += 1
            try:
                return fn(), attempts
            except self.retry_on as exc:
                if attempts >= self.max_attempts:
                    exc._retry_attempts = attempts
                    raise
                delay = self.backoff_seconds(attempts - 1, key)
                if deadline is not None and deadline.remaining() <= delay:
                    expiry = DeadlineExceededError(
                        deadline.budget_seconds, deadline.elapsed()
                    )
                    expiry._retry_attempts = attempts
                    raise expiry from exc
                sleep(delay)
            except Exception as exc:
                try:
                    exc._retry_attempts = attempts
                except Exception:  # exotic exception types without a dict
                    pass
                raise
