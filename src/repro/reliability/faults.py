"""Deterministic, seeded fault injection for chaos testing.

:data:`fault_injector` is a process-global singleton in the mold of
:data:`repro.profiling.profiler`: library code calls
``fault_injector.fire("point.name", key=...)`` unconditionally at its
named injection points, and the call is a single attribute check
(near-zero overhead) until a test *arms* the injector::

    from repro.reliability import FaultPlan, fault_injector

    with fault_injector.arm(
        {"query.request": FaultPlan(kind="error", rate=0.3)}, seed=7
    ):
        service.run_batch(requests)   # ~30% of requests fault, the
                                      # same ones for the same seed

Three fault kinds cover the chaos suite's failure menagerie:

``"error"``
    The point raises :class:`~repro.reliability.errors.InjectedFault`
    — a crashed worker, a failed artifact read, a cache fault.
``"delay"``
    The point sleeps ``delay_seconds`` — a slow worker; used to
    provoke deadline expiry deterministically.
``"corrupt"``
    :meth:`FaultInjector.corrupt_bytes` flips one deterministic byte
    of the payload — truncated/corrupted artifact bytes; ``fire`` is
    a no-op for corrupt plans (only byte-carrying call sites consume
    them).

**Determinism.**  Whether an arrival triggers is a pure function of
``(seed, point, key)`` through a SHA-256 hash — no global RNG state,
no ordering sensitivity.  Call sites pass a stable ``key`` (request
index, retry attempt, path) so the *same* arrivals fault on every run
regardless of thread scheduling; when ``key`` is omitted, a per-point
arrival counter is used instead (deterministic for serial execution).
``max_triggers`` caps a plan's total firings, which is how tests
model "the first k attempts fail, then the retry succeeds".
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional

from repro.reliability.errors import InjectedFault

__all__ = ["FaultInjector", "FaultPlan", "fault_injector"]

_KINDS = ("error", "delay", "corrupt")


def _unit_interval(seed: int, point: str, key, salt: str) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from a stable hash."""
    payload = f"{seed}\x1f{point}\x1f{key!r}\x1f{salt}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """What one injection point does while the injector is armed.

    Parameters
    ----------
    kind:
        ``"error"`` (raise :class:`InjectedFault`), ``"delay"``
        (sleep ``delay_seconds``), or ``"corrupt"`` (flip a byte in
        payloads passed to :meth:`FaultInjector.corrupt_bytes`).
    rate:
        Probability in ``[0, 1]`` that an arrival triggers; the draw
        is deterministic in ``(seed, point, key)``.
    delay_seconds:
        Sleep length for ``"delay"`` plans.
    max_triggers:
        Cap on total firings (``None`` = unlimited).  With
        ``rate=1.0`` this means "the first N arrivals fault".
    """

    kind: str = "error"
    rate: float = 1.0
    delay_seconds: float = 0.0
    max_triggers: Optional[int] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ValueError("max_triggers must be >= 1 (or None)")


class FaultInjector:
    """Process-global registry of armed injection points.

    Disabled by default: every :meth:`fire` / :meth:`corrupt_bytes`
    call site pays one attribute check and returns.  Arm with
    :meth:`arm` (scoped) or :meth:`configure` + ``enabled = True``.
    """

    def __init__(self):
        self.enabled: bool = False
        self.seed: int = 0
        self._plans: Dict[str, FaultPlan] = {}
        self._lock = threading.Lock()
        self._arrivals: Dict[str, int] = {}
        self._triggers: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def configure(
        self, plans: Mapping[str, FaultPlan], seed: int = 0
    ) -> None:
        """Install ``plans`` (point name -> :class:`FaultPlan`) + seed.

        Resets the arrival/trigger counters; does *not* enable the
        injector — use :meth:`arm` for the scoped form tests want.
        """
        for point, plan in plans.items():
            if not isinstance(plan, FaultPlan):
                raise TypeError(
                    f"plan for {point!r} must be a FaultPlan, "
                    f"got {type(plan).__name__}"
                )
        with self._lock:
            self._plans = dict(plans)
            self.seed = int(seed)
            self._arrivals.clear()
            self._triggers.clear()

    @contextlib.contextmanager
    def arm(
        self, plans: Mapping[str, FaultPlan], seed: int = 0
    ) -> Iterator["FaultInjector"]:
        """Enable the given plans for the ``with`` body, then disarm."""
        self.configure(plans, seed=seed)
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = False
            with self._lock:
                self._plans = {}

    def reset(self) -> None:
        """Disarm and drop all plans and counters."""
        self.enabled = False
        with self._lock:
            self._plans = {}
            self._arrivals.clear()
            self._triggers.clear()

    # ------------------------------------------------------------------
    # decision core
    # ------------------------------------------------------------------
    def _triggered(self, point: str, key) -> Optional[int]:
        """Trigger ordinal if this arrival faults, else ``None``."""
        plan = self._plans.get(point)
        if plan is None:
            return None
        with self._lock:
            arrival = self._arrivals.get(point, 0) + 1
            self._arrivals[point] = arrival
        if key is None:
            key = arrival
        if plan.rate < 1.0 and (
            _unit_interval(self.seed, point, key, "trigger") >= plan.rate
        ):
            return None
        with self._lock:
            triggered = self._triggers.get(point, 0)
            if (
                plan.max_triggers is not None
                and triggered >= plan.max_triggers
            ):
                return None
            self._triggers[point] = triggered + 1
        return triggered + 1

    # ------------------------------------------------------------------
    # injection points
    # ------------------------------------------------------------------
    def fire(self, point: str, key=None) -> None:
        """Run the armed plan for ``point`` (no-op when disabled).

        ``"error"`` plans raise :class:`InjectedFault`; ``"delay"``
        plans sleep; ``"corrupt"`` plans do nothing here (they act
        through :meth:`corrupt_bytes`).
        """
        if not self.enabled:
            return
        plan = self._plans.get(point)
        if plan is None or plan.kind == "corrupt":
            return
        trigger = self._triggered(point, key)
        if trigger is None:
            return
        if plan.kind == "delay":
            time.sleep(plan.delay_seconds)
            return
        raise InjectedFault(point, trigger)

    def corrupt_bytes(self, point: str, data: bytes, key=None) -> bytes:
        """Deterministically flip one byte of ``data`` when triggered.

        Returns ``data`` unchanged while disabled, when no
        ``"corrupt"`` plan is armed for ``point``, when the rate draw
        spares this arrival, or when ``data`` is empty.
        """
        if not self.enabled:
            return data
        plan = self._plans.get(point)
        if plan is None or plan.kind != "corrupt" or not data:
            return data
        if self._triggered(point, key) is None:
            return data
        pos = int(
            _unit_interval(self.seed, point, key, "position") * len(data)
        )
        corrupted = bytearray(data)
        corrupted[pos] ^= 0xFF
        return bytes(corrupted)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-point ``{"arrivals": ..., "triggers": ...}`` counters."""
        with self._lock:
            points = set(self._arrivals) | set(self._triggers)
            return {
                point: {
                    "arrivals": self._arrivals.get(point, 0),
                    "triggers": self._triggers.get(point, 0),
                }
                for point in sorted(points)
            }

    def __repr__(self) -> str:
        state = "armed" if self.enabled else "disarmed"
        return (
            f"FaultInjector({state}, seed={self.seed}, "
            f"points={sorted(self._plans)})"
        )


#: process-global injector every library injection point reports to
fault_injector = FaultInjector()
