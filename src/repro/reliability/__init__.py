"""``repro.reliability`` — fault tolerance for the serving stack.

The reliability layer makes the ROADMAP's "millions of users" posture
survivable: deterministic fault injection for chaos tests, per-request
deadlines and seeded-backoff retries, bounded request queues with
structured load shedding, and crash-safe artifacts and ingestion.  The
design contract (fault model, injection-point registry, degradation
matrix, artifact v3 checksums, checkpoint format) lives in
``docs/reliability.md``; the invariant the chaos suite pins is that
**every request that completes under injected faults is bit-identical
to the fault-free run**, and overload/expiry always surface as typed
errors — never a hang.

Four modules:

* :mod:`~repro.reliability.faults` — the process-global, seeded
  :data:`fault_injector` (same shape as ``repro.profiling.profiler``:
  near-zero overhead while disarmed).
* :mod:`~repro.reliability.retry` — :class:`Deadline` +
  :class:`RetryPolicy` (exponential backoff, deterministic jitter).
* :mod:`~repro.reliability.backpressure` —
  :class:`AdmissionController` (bounded in-flight requests,
  :class:`ServiceOverloadedError` with retry-after).
* :mod:`~repro.reliability.errors` — the typed failure vocabulary,
  including the per-request :class:`RequestFailure` value services
  attach to results instead of poisoning sibling requests.
"""

from repro.reliability.backpressure import AdmissionController
from repro.reliability.errors import (
    CheckpointError,
    DeadlineExceededError,
    InjectedFault,
    ReliabilityError,
    RequestFailure,
    ServiceOverloadedError,
    WorkerCrashError,
)
from repro.reliability.faults import FaultInjector, FaultPlan, fault_injector
from repro.reliability.retry import Deadline, RetryPolicy

__all__ = [
    "AdmissionController",
    "CheckpointError",
    "Deadline",
    "DeadlineExceededError",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "ReliabilityError",
    "RequestFailure",
    "RetryPolicy",
    "ServiceOverloadedError",
    "WorkerCrashError",
    "fault_injector",
]
