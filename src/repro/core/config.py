"""Hyperparameter configuration for VRDAG."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class VRDAGConfig:
    """All VRDAG hyperparameters with paper-style defaults.

    Attributes
    ----------
    num_nodes:
        Node universe size N (fixed across the sequence, §II-A).
    num_attributes:
        Attribute dimensionality F (0 for structure-only graphs).
    hidden_dim:
        d_h — GRU hidden state width per node.
    latent_dim:
        d_z — latent variable width per node.
    encode_dim:
        d_ε — bi-flow encoder output width.
    time_dim:
        d_T — Time2Vec width (Eq. 13).
    gnn_layers:
        L — number of bi-flow message-passing hops (Eq. 5).
    mlp_layers:
        L_m — depth of the MLPs inside each GIN flow.
    mixture_components:
        K — MixBernoulli mixture size (Eq. 11); K=1 reduces to
        independent Bernoulli edges (ablation knob).
    sce_alpha:
        α ≥ 1 — scaled-cosine-error sharpening exponent (Eq. 18).
    kl_weight, struct_weight, attr_weight:
        Loss term weights in the step-wise ELBO (Eq. 14).
    bidirectional:
        Ablation switch: False collapses the bi-flow encoder to a
        single (out-flow) direction.
    attr_loss:
        "sce" (paper) or "mse" (ablation baseline).
    attr_mse_weight:
        Weight of a small MSE anchor added to the SCE loss.  SCE
        (Eq. 18) is scale-invariant, so without an anchor the decoder's
        output norms are unconstrained; the anchor pins them (the paper
        works on normalized attributes, which has the same effect).
        Set to 0 for the strictly-pure Eq. 18 objective.
    attr_activation:
        Final nonlinearity of the attribute decoder ("identity",
        "relu", "sigmoid", or "tanh").
    seed:
        Parameter initialization / sampling seed.
    """

    num_nodes: int
    num_attributes: int = 0
    hidden_dim: int = 32
    latent_dim: int = 16
    encode_dim: int = 32
    time_dim: int = 8
    gnn_layers: int = 2
    mlp_layers: int = 2
    mixture_components: int = 3
    sce_alpha: float = 2.0
    kl_weight: float = 1.0
    struct_weight: float = 1.0
    attr_weight: float = 1.0
    bidirectional: bool = True
    attr_loss: str = "sce"
    attr_mse_weight: float = 1.0
    #: Q — non-edges sampled per node for the structure loss (§III-G's
    #: O(N·r + N·Q) estimator); 0 uses the exact dense N² likelihood
    struct_negative_samples: int = 0
    attr_activation: str = "identity"
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent hyperparameters."""
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be >= 2")
        if self.num_attributes < 0:
            raise ValueError("num_attributes must be >= 0")
        if min(self.hidden_dim, self.latent_dim, self.encode_dim, self.time_dim) < 1:
            raise ValueError("all dimensions must be positive")
        if self.gnn_layers < 1 or self.mlp_layers < 1:
            raise ValueError("layer counts must be >= 1")
        if self.mixture_components < 1:
            raise ValueError("mixture_components must be >= 1")
        if self.sce_alpha < 1.0:
            raise ValueError("sce_alpha must be >= 1 (Eq. 18)")
        if self.attr_loss not in ("sce", "mse"):
            raise ValueError("attr_loss must be 'sce' or 'mse'")
        if self.struct_negative_samples < 0:
            raise ValueError("struct_negative_samples must be >= 0")
