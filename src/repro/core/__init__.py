"""VRDAG — the paper's primary contribution (§III).

Components map one-to-one to the paper's architecture (Fig. 1):

* :class:`BiFlowEncoder` — bidirectional GIN message passing with
  jump-connection pooling (Eq. 5–7).
* :class:`PriorNetwork` / :class:`PosteriorNetwork` — the latent
  variable sampler (Eq. 3–4, 8–9).
* :class:`MixBernoulliSampler` — mixture-of-Bernoulli topology decoder
  (Eq. 11).
* :class:`AttributeDecoder` — GAT + MLP attribute decoder (Eq. 12).
* :class:`RecurrenceUpdater` — Time2Vec + GRU hidden state update
  (§III-D, Eq. 13).
* :class:`VRDAG` — the assembled model with ELBO training
  (Eq. 14–18) and Algorithm 1 inference.
* :class:`VRDAGTrainer` — the joint optimization loop (§III-E), with
  optional LR / KL-annealing schedules (:mod:`repro.core.schedule`).
* :class:`NodeDynamicsWrapper` — the §III-H extension for node
  addition/deletion.
"""

from repro.core.config import VRDAGConfig
from repro.core.encoder import BiFlowEncoder
from repro.core.latent import GaussianParams, PriorNetwork, PosteriorNetwork
from repro.core.generator import AttributeDecoder, MixBernoulliSampler
from repro.core.recurrence import RecurrenceUpdater
from repro.core.model import VRDAG
from repro.core.trainer import TrainConfig, TrainResult, VRDAGTrainer
from repro.core.extension import NodeDynamicsWrapper
from repro.core.continuation import continue_sequence, encode_prefix
from repro.core.persistence import load_model, save_model
from repro.core import losses, schedule

__all__ = [
    "VRDAGConfig",
    "BiFlowEncoder",
    "GaussianParams",
    "PriorNetwork",
    "PosteriorNetwork",
    "MixBernoulliSampler",
    "AttributeDecoder",
    "RecurrenceUpdater",
    "VRDAG",
    "VRDAGTrainer",
    "TrainConfig",
    "TrainResult",
    "NodeDynamicsWrapper",
    "continue_sequence",
    "encode_prefix",
    "save_model",
    "load_model",
    "losses",
    "schedule",
]
