"""Training schedules: learning-rate decay and KL annealing.

The paper trains VRDAG's variational objective (Eq. 14) with a fixed
KL weight.  In practice recurrent VAEs are prone to posterior collapse
early in training; the standard remedy — and a documented ablation
target here — is to *anneal* the KL term from (near) zero up to its
full weight over the first epochs (Bowman et al., 2016).  Learning-rate
schedules are the matching knob on the optimizer side.

All schedules are pure functions of the epoch index exposed through a
tiny protocol (``value(epoch) -> float``), so the trainer can apply
them without knowing which schedule it got:

* :class:`ConstantSchedule` — always the same value.
* :class:`LinearWarmup` — 0 → target over ``warmup_epochs``.
* :class:`StepDecay` — multiply by ``gamma`` every ``step_epochs``.
* :class:`CosineAnnealing` — cosine from ``start`` to ``end``.
* :class:`CyclicalAnnealing` — the sawtooth KL schedule of Fu et al.
  (2019), repeatedly ramping 0 → target.

:class:`VRDAGTrainer` accepts ``kl_schedule`` and ``lr_schedule``
through :class:`~repro.core.trainer.TrainConfig`.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable


@runtime_checkable
class Schedule(Protocol):
    """Anything mapping an epoch index to a scalar value."""

    def value(self, epoch: int) -> float:  # pragma: no cover - protocol
        """Scheduled scalar at ``epoch``."""
        ...


def _check_epoch(epoch: int) -> None:
    if epoch < 0:
        raise ValueError(f"epoch must be >= 0, got {epoch}")


class ConstantSchedule:
    """Always ``constant`` — the identity element of scheduling."""

    def __init__(self, constant: float):
        self.constant = float(constant)

    def value(self, epoch: int) -> float:
        """Always the configured constant."""
        _check_epoch(epoch)
        return self.constant

    def __repr__(self) -> str:
        return f"ConstantSchedule({self.constant})"


class LinearWarmup:
    """Ramp linearly from ``start`` to ``target`` over ``warmup_epochs``.

    Epoch 0 yields ``start``; epochs >= ``warmup_epochs`` yield
    ``target``.  The canonical KL-annealing schedule with
    ``start=0, target=1``.
    """

    def __init__(self, target: float, warmup_epochs: int, start: float = 0.0):
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        self.start = float(start)
        self.target = float(target)
        self.warmup_epochs = int(warmup_epochs)

    def value(self, epoch: int) -> float:
        """Linear ramp value at ``epoch`` (clamped at the target)."""
        _check_epoch(epoch)
        if epoch >= self.warmup_epochs:
            return self.target
        frac = epoch / self.warmup_epochs
        return self.start + frac * (self.target - self.start)

    def __repr__(self) -> str:
        return (
            f"LinearWarmup({self.start} -> {self.target} "
            f"over {self.warmup_epochs})"
        )


class StepDecay:
    """Multiply ``initial`` by ``gamma`` every ``step_epochs`` epochs."""

    def __init__(self, initial: float, gamma: float, step_epochs: int):
        if step_epochs < 1:
            raise ValueError("step_epochs must be >= 1")
        if gamma <= 0:
            raise ValueError("gamma must be > 0")
        self.initial = float(initial)
        self.gamma = float(gamma)
        self.step_epochs = int(step_epochs)

    def value(self, epoch: int) -> float:
        """Initial value decayed by ``gamma`` every ``step_epochs``."""
        _check_epoch(epoch)
        return self.initial * self.gamma ** (epoch // self.step_epochs)

    def __repr__(self) -> str:
        return f"StepDecay({self.initial}, x{self.gamma}/{self.step_epochs}ep)"


class CosineAnnealing:
    """Cosine curve from ``start`` at epoch 0 to ``end`` at ``total_epochs``.

    Beyond ``total_epochs`` the value stays at ``end``.
    """

    def __init__(self, start: float, end: float, total_epochs: int):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.start = float(start)
        self.end = float(end)
        self.total_epochs = int(total_epochs)

    def value(self, epoch: int) -> float:
        """Cosine-interpolated value at ``epoch``."""
        _check_epoch(epoch)
        if epoch >= self.total_epochs:
            return self.end
        cos = math.cos(math.pi * epoch / self.total_epochs)
        return self.end + 0.5 * (self.start - self.end) * (1.0 + cos)

    def __repr__(self) -> str:
        return (
            f"CosineAnnealing({self.start} -> {self.end} "
            f"over {self.total_epochs})"
        )


class CyclicalAnnealing:
    """Sawtooth KL annealing (Fu et al., 2019).

    Each cycle of ``cycle_epochs`` ramps 0 → ``target`` during the first
    ``ramp_fraction`` of the cycle, then holds ``target``.
    """

    def __init__(
        self, target: float, cycle_epochs: int, ramp_fraction: float = 0.5
    ):
        if cycle_epochs < 1:
            raise ValueError("cycle_epochs must be >= 1")
        if not 0.0 < ramp_fraction <= 1.0:
            raise ValueError("ramp_fraction must be in (0, 1]")
        self.target = float(target)
        self.cycle_epochs = int(cycle_epochs)
        self.ramp_fraction = float(ramp_fraction)

    def value(self, epoch: int) -> float:
        """Sawtooth value at ``epoch`` within the current cycle."""
        _check_epoch(epoch)
        pos = (epoch % self.cycle_epochs) / self.cycle_epochs
        if pos >= self.ramp_fraction:
            return self.target
        return self.target * pos / self.ramp_fraction

    def __repr__(self) -> str:
        return (
            f"CyclicalAnnealing({self.target}, cycle={self.cycle_epochs}, "
            f"ramp={self.ramp_fraction})"
        )
