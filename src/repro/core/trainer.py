"""Joint optimization loop for VRDAG (§III-E).

Training runs on one of two autodiff engines (see ``docs/training.md``):
``"tape"`` (default) wraps each epoch in a
:class:`~repro.autodiff.tape.Tape` so the forward pass records flat op
entries and the backward pass is a single reverse sweep with fused
VJP kernels; ``"legacy"`` keeps the original per-Tensor closure graph
and serves as the reference twin for the gradient-parity suite.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.autodiff import Tape
from repro.core.model import VRDAG
from repro.core.schedule import Schedule
from repro.graph import DynamicAttributedGraph
from repro.nn import Adam
from repro.profiling import profiler


@dataclass
class TrainConfig:
    """Optimization hyperparameters."""

    epochs: int = 30
    learning_rate: float = 5e-3
    grad_clip: float = 5.0
    weight_decay: float = 0.0
    verbose: bool = False
    #: optional wall-clock budget in seconds (None = unlimited)
    time_budget: Optional[float] = None
    #: early stopping: stop when the loss has not improved by at least
    #: ``min_delta`` for ``patience`` consecutive epochs (None = off)
    patience: Optional[int] = None
    min_delta: float = 1e-4
    #: optional per-epoch learning-rate schedule (overrides the flat
    #: ``learning_rate`` when set); see :mod:`repro.core.schedule`
    lr_schedule: Optional[Schedule] = None
    #: optional per-epoch KL-weight schedule (scales the config's
    #: ``kl_weight``); the standard anti-posterior-collapse warmup
    kl_schedule: Optional[Schedule] = None
    #: autodiff engine: "tape" (flat-tape fast path, default) or
    #: "legacy" (per-Tensor closure graph, the reference twin)
    engine: str = "tape"


@dataclass
class TrainResult:
    """Loss history and timing returned by :meth:`VRDAGTrainer.fit`."""

    loss_history: List[float] = field(default_factory=list)
    component_history: List[Dict[str, float]] = field(default_factory=list)
    epochs_run: int = 0
    train_seconds: float = 0.0

    @property
    def final_loss(self) -> float:
        """Last recorded epoch loss (``nan`` before training)."""
        return self.loss_history[-1] if self.loss_history else float("nan")


class VRDAGTrainer:
    """Trains a :class:`VRDAG` on one observed dynamic attributed graph.

    The paper trains by maximizing the step-wise ELBO (Eq. 14) with the
    reparameterization trick; we use Adam with global gradient-norm
    clipping (BPTT through all T steps can spike gradients early on).
    """

    def __init__(self, model: VRDAG, config: Optional[TrainConfig] = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )

    def fit(self, graph: DynamicAttributedGraph) -> TrainResult:
        """Optimize the step-wise ELBO on ``graph``; returns the history."""
        if self.config.engine not in ("tape", "legacy"):
            raise ValueError(
                f"unknown autodiff engine {self.config.engine!r}; "
                "expected 'tape' or 'legacy'"
            )
        result = TrainResult()
        start = time.perf_counter()
        graph = self.model.calibrate(graph)
        best_loss = float("inf")
        stall = 0
        base_kl_weight = self.model.config.kl_weight
        for epoch in range(self.config.epochs):
            if self.config.lr_schedule is not None:
                self.optimizer.lr = self.config.lr_schedule.value(epoch)
            if self.config.kl_schedule is not None:
                self.model.config.kl_weight = (
                    base_kl_weight * self.config.kl_schedule.value(epoch)
                )
            # one fresh tape per epoch: forward records onto it, backward
            # replays it in reverse; the legacy engine needs no context
            epoch_ctx = (
                Tape()
                if self.config.engine == "tape"
                else contextlib.nullcontext()
            )
            with epoch_ctx:
                with profiler.timer("trainer.forward"):
                    loss, logs = self.model.sequence_loss(graph)
                self.optimizer.zero_grad()
                with profiler.timer("trainer.backward"):
                    loss.backward()
            if self.config.grad_clip:
                self.optimizer.clip_grad_norm(self.config.grad_clip)
            with profiler.timer("trainer.optimizer_step"):
                self.optimizer.step()
            loss_val = float(loss.data)
            if not np.isfinite(loss_val):
                raise FloatingPointError(
                    f"training diverged at epoch {epoch}: loss={loss_val}"
                )
            result.loss_history.append(loss_val)
            result.component_history.append(logs)
            result.epochs_run = epoch + 1
            if self.config.verbose:
                print(
                    f"epoch {epoch:3d}  loss={loss_val:.4f}  "
                    + "  ".join(f"{k}={v:.4f}" for k, v in logs.items())
                )
            elapsed = time.perf_counter() - start
            if self.config.time_budget and elapsed > self.config.time_budget:
                break
            if self.config.patience is not None:
                if loss_val < best_loss - self.config.min_delta:
                    best_loss = loss_val
                    stall = 0
                else:
                    stall += 1
                    if stall >= self.config.patience:
                        break
        self.model.config.kl_weight = base_kl_weight
        if self.model.config.num_attributes > 0:
            with profiler.timer("trainer.calibration"):
                self.model.set_attribute_noise(
                    self.model.attribute_residual_cov(graph)
                )
                self.model.set_noise_autocorrelation(
                    VRDAG.estimate_attribute_autocorrelation(graph)
                )
                self._calibrate_rollout(graph)
        result.train_seconds = time.perf_counter() - start
        return result

    def _calibrate_rollout(self, normalized_graph: DynamicAttributedGraph) -> None:
        """Fit the per-timestep output calibration from one rollout.

        Compares a free-running validation rollout against the training
        sequence (both in raw attribute space) and stores additive
        mean-bias and dispersion-top-up schedules on the model.
        """
        model = self.model
        t_len = normalized_graph.num_timesteps
        rollout = model.generate(t_len, seed=model.config.seed + 4242)
        f = model.config.num_attributes
        target_mean = np.zeros((t_len, f))
        extra = np.zeros((t_len, f, f))
        for t in range(t_len):
            x_true = model._denormalize_attrs(normalized_graph[t].attributes)
            x_roll = rollout[t].attributes
            target_mean[t] = x_true.mean(axis=0)
            # recentring removes the mean wander; only the (full
            # covariance) dispersion deficit of the centred rollout
            # needs topping up — PSD-projected inside the model
            deficit = (
                np.cov(x_true, rowvar=False) - np.cov(x_roll, rowvar=False)
            ).reshape(f, f)
            extra[t] = deficit
        model.set_output_calibration(target_mean, extra)
