"""VRDAG loss terms (§III-E, Eq. 14–18).

Engine-polymorphic by construction: every term is built from
:mod:`repro.autodiff.functional` ops and Tensor/Variable arithmetic,
so inside a training :class:`~repro.autodiff.tape.Tape` the same code
records flat tape entries, while outside it builds the legacy closure
graph.  Constant inputs (``x_true``, adjacency, masks) stay plain
arrays / legacy Tensors on both engines.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.autodiff.tensor import as_tensor
from repro.core.latent import GaussianParams


def gaussian_kl(q: GaussianParams, p: GaussianParams) -> Tensor:
    """Closed-form KL(q || p) between diagonal Gaussians (Eq. 15).

    .. math::
        KL = \\sum \\big( \\log \\frac{\\sigma_p}{\\sigma_q}
             + \\frac{\\sigma_q^2 + (\\mu_q - \\mu_p)^2}{2 \\sigma_p^2}
             - \\tfrac{1}{2} \\big)

    Returned as the mean over nodes (sum over latent dims).
    """
    var_p = p.sigma * p.sigma
    term = (
        F.log(p.sigma, eps=1e-12)
        - F.log(q.sigma, eps=1e-12)
        + (q.sigma * q.sigma + (q.mu - p.mu) ** 2) / (2.0 * var_p)
        - 0.5
    )
    return term.sum(axis=1).mean()


def bce_structure_loss(edge_probs: Tensor, adjacency: np.ndarray) -> Tensor:
    """Eq. 17 dense BCE between the target adjacency and probabilities.

    Provided for completeness / ablations; the model's default structure
    loss is the exact mixture log-likelihood
    (:meth:`MixBernoulliSampler.log_likelihood`), which reduces to this
    BCE when K = 1.  Diagonal excluded; normalized by 1/|V|.
    """
    n = adjacency.shape[0]
    a = np.asarray(adjacency, dtype=np.float64)
    p = F.clip(edge_probs, 1e-7, 1.0 - 1e-7)
    ll = a * F.log(p) + (1.0 - a) * F.log(1.0 - p)
    mask = 1.0 - np.eye(n)
    return -(ll * mask).sum() / float(n)


def sce_attribute_loss(
    x_true: np.ndarray, x_pred: Tensor, alpha: float = 2.0
) -> Tensor:
    """Scaled cosine error (Eq. 18): mean_i (1 - cos(x_i, x̃_i))^α.

    Insensitive to vector norm, adaptively down-weights easy samples
    for α > 1.
    """
    if alpha < 1.0:
        raise ValueError("alpha must be >= 1 (Eq. 18)")
    x = as_tensor(np.asarray(x_true, dtype=np.float64))
    dot = (x * x_pred).sum(axis=1)
    denom = F.norm(x, axis=1) * F.norm(x_pred, axis=1) + 1e-12
    cos = dot / denom
    err = F.clip(1.0 - cos, 0.0, 2.0)
    return (err**alpha).mean()


def mse_attribute_loss(x_true: np.ndarray, x_pred: Tensor) -> Tensor:
    """Plain MSE attribute reconstruction (the ablation alternative)."""
    x = as_tensor(np.asarray(x_true, dtype=np.float64))
    return ((x_pred - x) ** 2).mean()
