"""Attributed graph generator: MixBernoulli sampler + attribute decoder.

Implements §III-C's factorized decoder (Eq. 10):

    p(A_t, X_t | ·) = p(X_t | A_t, ·) · p(A_t | ·)

Structure first (mixture of Bernoullis over the adjacency rows,
Eq. 11), then attributes conditioned on the freshly generated topology
through one round of graph attention (Eq. 12).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.autodiff.fused import FUSED_ACTIVATIONS
from repro.autodiff.tape import Tape, tape_for
from repro.autodiff.tensor import as_tensor
from repro.nn import GATLayer, MLP, Module
from repro.nn.linear import get_activation

_PROB_EPS = 1e-7


# ----------------------------------------------------------------------
# raw-NumPy inference kernels
#
# Generation never needs gradients, so the decode hot path runs the MLP
# heads directly on ndarrays: no Tensor allocation, no tape bookkeeping,
# and the (N, N) pairwise features are processed in row blocks so the
# full (K, N, N) tensor is never materialized.  Each activation mirrors
# its autodiff twin in ``repro.autodiff.functional`` operation-for-
# operation; the only numerical difference from the reference path is
# the reassociated first linear layer (see _first_layer_projection),
# which agrees to within a few ulp.
# ----------------------------------------------------------------------
def _np_sigmoid(x: np.ndarray) -> np.ndarray:
    # same stable piecewise form as F.sigmoid, but each branch is
    # evaluated only on its own elements (a np.where computes both
    # exp passes over the full array); per-element results are
    # bit-identical to the reference
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    neg = ~pos
    e = np.exp(x[neg])
    out[neg] = e / (1.0 + e)
    return out


_NP_ACTIVATIONS = {
    # max(x, 0.2*x) == leaky_relu for any slope < 1, in two array passes
    # instead of the three a where-mask needs; values match
    # F.leaky_relu bit-for-bit (same products, exact max selection)
    "relu": lambda x: np.maximum(x, 0.0),
    "leaky_relu": lambda x: np.maximum(x, 0.2 * x),
    "tanh": np.tanh,
    "sigmoid": _np_sigmoid,
    "elu": lambda x: np.where(x > 0, x, np.exp(np.clip(x, None, 0)) - 1.0),
    "softplus": lambda x: np.logaddexp(0.0, x),
    "identity": lambda x: x,
}

#: piecewise-linear activations decompose as ``a*x + c*|x|`` — the key
#: to pooling them over all pairs in closed form (see
#: :meth:`MixBernoulliSampler._pooled_alpha_features_np`)
_ABS_DECOMPOSITION = {
    "relu": (0.5, 0.5),
    "leaky_relu": (0.6, 0.4),  # slope 0.2: (1+m)/2, (1-m)/2
    "identity": (1.0, 0.0),
}


def _np_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def _first_layer_projection(mlp: MLP, s: np.ndarray) -> np.ndarray:
    """``s @ W1`` — the only O(d) matmul of the pairwise heads.

    The heads evaluate ``mlp(s_i - s_j)`` for all pairs; the first
    layer is linear, so ``(s_i - s_j) @ W1 = P_i - P_j`` with
    ``P = s @ W1`` computed once per decode instead of per pair.  This
    drops the dominant O(N² · d · h) matmul to O(N · d · h).
    """
    return s @ mlp.layers[0].weight.data


def _pairwise_head_block(
    mlp: MLP, proj: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Head outputs for source rows ``[lo, hi)`` against all columns.

    ``proj`` is the :func:`_first_layer_projection` of the states.
    Returns a ``((hi - lo) * N, out)`` array; no autodiff nodes are
    created anywhere on this path.
    """
    h = proj[lo:hi, None, :] - proj[None, :, :]
    first = mlp.layers[0]
    if first.bias is not None:
        h = h + first.bias.data
    x = h.reshape(-1, h.shape[-1])
    act = _NP_ACTIVATIONS[mlp.activation]
    out_act = _NP_ACTIVATIONS[mlp.out_activation]
    if len(mlp.layers) == 1:
        return out_act(x)
    x = act(x)
    for layer in mlp.layers[1:-1]:
        x = x @ layer.weight.data
        if layer.bias is not None:
            x = x + layer.bias.data
        x = act(x)
    last = mlp.layers[-1]
    x = x @ last.weight.data
    if last.bias is not None:
        x = x + last.bias.data
    return out_act(x)


class MixBernoulliSampler(Module):
    """Mixture-of-Bernoulli adjacency model (Eq. 11).

    For every source node ``i`` the adjacency row ``A_{i,·}`` is
    modelled as a K-component mixture: mixing weights ``α_{k,i}`` come
    from pooling pairwise features ``f_α(s_i - s_j)`` over all
    destinations ``j``, and per-component edge probabilities
    ``θ_{k,i,j} = σ(f_θ(s_i - s_j))``.  With K > 1 edges within a row
    are *not* independent — the mixture couples them — yet all rows can
    be computed in parallel, unlike fully autoregressive decoders
    (GRAN/GraphRNN).  ``repro.generation`` exploits exactly this row
    independence to shard the decode across workers with bit-identical
    output.
    """

    def __init__(
        self,
        state_dim: int,
        num_components: int = 3,
        hidden_dim: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        hidden_dim = hidden_dim or state_dim
        self.num_components = num_components
        self.f_alpha = MLP([state_dim, hidden_dim, num_components], rng=rng)
        self.f_theta = MLP([state_dim, hidden_dim, num_components], rng=rng)

    def calibrate_bias(self, density: float) -> None:
        """Initialize the θ-head bias to the observed edge density.

        Sigmoid heads start near p ≈ 0.5; real graphs are sparse, so
        starting every θ at the empirical density (via the logit of the
        final-layer bias) removes dozens of wasted epochs in which the
        model would only be learning "graphs are sparse".
        """
        density = float(np.clip(density, 1e-6, 1.0 - 1e-6))
        logit = float(np.log(density / (1.0 - density)))
        final = self.f_theta.layers[-1]
        if final.bias is not None:
            final.bias.data[:] = logit

    # ------------------------------------------------------------------
    def _pairwise(self, s: Tensor) -> Tensor:
        """All pairwise differences s_i - s_j, shape (N*N, d)."""
        n, d = s.shape
        diff = s.expand_dims(1) - s.expand_dims(0)  # (N, N, d)
        return diff.reshape(n * n, d)

    def _pairwise_feats_tape(self, tape: Tape, mlp: MLP, s) -> "object":
        """Head features ``mlp(s_i - s_j)`` as an ``(N, N, K)`` tape value.

        The standard 2-layer heads go through the fused ``pairwise_mlp2``
        record (first-layer projection trick: O(N·d·h) instead of
        O(N²·d·h)); other shapes fall back to the generic pairwise pass
        on tape primitives.
        """
        if (
            len(mlp.layers) == 2
            and mlp.out_activation == "identity"
            and mlp.activation in FUSED_ACTIVATIONS
        ):
            first, last = mlp.layers
            inputs = [s, first.weight]
            if first.bias is not None:
                inputs.append(first.bias)
            inputs.append(last.weight)
            if last.bias is not None:
                inputs.append(last.bias)
            return tape.apply(
                "pairwise_mlp2",
                tuple(inputs),
                activation=mlp.activation,
                has_b1=first.bias is not None,
                has_b2=last.bias is not None,
            )
        pair = self._pairwise(s)
        return mlp(pair).reshape(s.shape[0], s.shape[0], self.num_components)

    def distribution(self, s: Tensor) -> Tuple[Tensor, Tensor]:
        """Return (α, θ): mixing weights (N, K) and probs (N, N, K)."""
        n = s.shape[0]
        tape = tape_for(s)
        if tape is not None:
            s_v = tape.lift(s)
            alpha_feats = self._pairwise_feats_tape(tape, self.f_alpha, s_v)
            alpha = F.softmax(alpha_feats.sum(axis=1), axis=-1)  # pool over j
            theta = F.sigmoid(self._pairwise_feats_tape(tape, self.f_theta, s_v))
            return alpha, theta
        pair = self._pairwise(s)
        alpha_feats = self.f_alpha(pair).reshape(n, n, self.num_components)
        alpha = F.softmax(alpha_feats.sum(axis=1), axis=-1)  # pool over j
        theta = F.sigmoid(self.f_theta(pair)).reshape(n, n, self.num_components)
        return alpha, theta

    # ------------------------------------------------------------------
    def log_likelihood(self, s: Tensor, adjacency: np.ndarray) -> Tensor:
        """Mean per-node log p(A_{i,·} | s) under the mixture (scalar).

        Used (negated) as the structure reconstruction loss L_struc
        (Eq. 16–17); diagonal entries are excluded since self-loops are
        structurally impossible.
        """
        n = s.shape[0]
        tape = tape_for(s)
        if tape is not None:
            # fused path: σ → clip → Bernoulli log-lik → diagonal mask →
            # pool over j is a single mixbern_row_loglik record
            s_v = tape.lift(s)
            alpha_feats = self._pairwise_feats_tape(tape, self.f_alpha, s_v)
            alpha = F.softmax(alpha_feats.sum(axis=1), axis=-1)
            theta_feats = self._pairwise_feats_tape(tape, self.f_theta, s_v)
            row_loglik = tape.apply(
                "mixbern_row_loglik",
                (theta_feats,),
                adjacency=np.asarray(adjacency, dtype=np.float64),
                eps=_PROB_EPS,
            )
            mixed = F.logsumexp(F.log(alpha, eps=1e-12) + row_loglik, axis=1)
            return mixed.mean()
        alpha, theta = self.distribution(s)
        theta = F.clip(theta, _PROB_EPS, 1.0 - _PROB_EPS)
        a = np.asarray(adjacency, dtype=np.float64)[:, :, None]  # (N, N, 1)
        log_bern = a * F.log(theta) + (1.0 - a) * F.log(1.0 - theta)
        mask = (1.0 - np.eye(n))[:, :, None]
        row_loglik = (log_bern * mask).sum(axis=1)  # (N, K)
        mixed = F.logsumexp(F.log(alpha, eps=1e-12) + row_loglik, axis=1)  # (N,)
        return mixed.mean()

    def sampled_log_likelihood(
        self,
        s: Tensor,
        adjacency: np.ndarray,
        num_negatives: int,
        rng: np.random.Generator,
    ) -> Tensor:
        """Negative-sampled estimate of the structure log-likelihood.

        The paper's complexity analysis (§III-G) counts the structure
        reconstruction loss as O(N·r + N·Q): all positive edges plus Q
        sampled non-edges per node, instead of the dense N² sum.  Each
        sampled term is importance-weighted by the number of non-edges
        it represents, so the estimator is unbiased for the per-row
        Bernoulli sum (the mixture is then applied row-wise as usual).
        """
        n = s.shape[0]
        if num_negatives < 1:
            raise ValueError("num_negatives must be >= 1")
        alpha, theta = self.distribution(s)
        theta = F.clip(theta, _PROB_EPS, 1.0 - _PROB_EPS)
        a = np.asarray(adjacency, dtype=np.float64)
        log_theta = F.log(theta)
        log_one_minus = F.log(1.0 - theta)
        # positive part: exact sum over existing edges
        pos_mask = a[:, :, None]
        diag_mask = (1.0 - np.eye(n))[:, :, None]
        pos_term = (log_theta * pos_mask * diag_mask).sum(axis=1)  # (N, K)
        # negative part: Q uniform samples per row over the non-edges,
        # scaled by the count of non-edges in that row
        neg_counts = (n - 1) - a.sum(axis=1)  # (N,)
        cols = rng.integers(0, n, size=(n, num_negatives))
        rows = np.repeat(np.arange(n)[:, None], num_negatives, axis=1)
        valid = (cols != rows) & (a[rows, cols] == 0)
        weights = np.where(
            valid.sum(axis=1, keepdims=True) > 0,
            valid / np.maximum(valid.sum(axis=1, keepdims=True), 1),
            0.0,
        ) * neg_counts[:, None]
        # gather log(1-θ) at the sampled (row, col) pairs: (N, Q, K)
        gathered = log_one_minus[rows.ravel(), cols.ravel()].reshape(
            n, num_negatives, self.num_components
        )
        neg_term = (gathered * weights[:, :, None]).sum(axis=1)  # (N, K)
        row_loglik = pos_term + neg_term
        mixed = F.logsumexp(F.log(alpha, eps=1e-12) + row_loglik, axis=1)
        return mixed.mean()

    # ------------------------------------------------------------------
    # fused no-grad decode (generation hot path)
    # ------------------------------------------------------------------
    @staticmethod
    def _decode_block_rows(n: int, block_size: Optional[int]) -> int:
        """Row-block height keeping the pairwise buffer ~32k rows."""
        if block_size is not None:
            return max(int(block_size), 1)
        return max(32768 // max(n, 1), 1)

    def _pooled_alpha_features_np(
        self, proj: np.ndarray
    ) -> Optional[np.ndarray]:
        """Closed-form ``Σ_j f_α(s_i - s_j)`` in O(N log N · h).

        The pooled α features sum a 2-layer MLP over all destinations.
        Pooling commutes through the (linear) output layer, and a
        piecewise-linear hidden activation splits as ``a·x + c·|x|``,
        so with ``x_ij = P_i + b₁ - P_j`` the pooled hidden vector is

            Σ_j act(x_ij) = a·(N·v_i - Σ_j P_j) + c·Σ_j |v_i - P_j|

        and the absolute-deviation sum is the classic sorted
        prefix-sum identity — no N² pass at all.  Returns ``None``
        when the head's shape/activation doesn't admit the shortcut
        (caller falls back to the blocked pairwise pass).
        """
        mlp = self.f_alpha
        if (
            len(mlp.layers) != 2
            or mlp.activation not in _ABS_DECOMPOSITION
            or mlp.out_activation != "identity"
        ):
            return None
        a, c = _ABS_DECOMPOSITION[mlp.activation]
        n, h = proj.shape
        first, last = mlp.layers
        v = proj + first.bias.data if first.bias is not None else proj
        linear_part = a * (n * v - proj.sum(axis=0))
        if c:
            q = np.sort(proj, axis=0)  # (N, h), per-dim ascending
            prefix = np.vstack([np.zeros((1, h)), np.cumsum(q, axis=0)])
            abs_part = np.empty_like(v)
            for dim in range(h):
                r = np.searchsorted(q[:, dim], v[:, dim])
                below = prefix[r, dim]
                abs_part[:, dim] = (
                    v[:, dim] * (2 * r - n) - 2 * below + prefix[n, dim]
                )
            pooled = linear_part + c * abs_part
        else:
            pooled = linear_part
        feats = pooled @ last.weight.data
        if last.bias is not None:
            feats = feats + n * last.bias.data
        return feats

    def _mixture_weights_np(
        self, s_np: np.ndarray, block: int
    ) -> np.ndarray:
        """Row mixing weights α (N, K): closed-form pooling when the
        head admits it, otherwise a row-blocked pairwise pass."""
        n = s_np.shape[0]
        proj = _first_layer_projection(self.f_alpha, s_np)
        alpha_feats = self._pooled_alpha_features_np(proj)
        if alpha_feats is None:
            alpha_feats = np.zeros((n, self.num_components))
            for lo in range(0, n, block):
                hi = min(lo + block, n)
                feats = _pairwise_head_block(self.f_alpha, proj, lo, hi)
                alpha_feats[lo:hi] = feats.reshape(
                    hi - lo, n, self.num_components
                ).sum(axis=1)  # pool over j
        return _np_softmax(alpha_feats, axis=-1)

    def edge_probabilities(
        self, s: Tensor, block_size: Optional[int] = None
    ) -> np.ndarray:
        """Marginal edge probability matrix Ã under the mixture.

        Row-blocked no-grad kernel; never materializes the full
        ``(N, N, K)`` θ tensor.
        """
        s_np = np.asarray(s.data if isinstance(s, Tensor) else s, dtype=np.float64)
        n = s_np.shape[0]
        block = self._decode_block_rows(n, block_size)
        alpha = self._mixture_weights_np(s_np, block)
        proj = _first_layer_projection(self.f_theta, s_np)
        probs = np.zeros((n, n))
        for lo in range(0, n, block):
            hi = min(lo + block, n)
            theta = _np_sigmoid(
                _pairwise_head_block(self.f_theta, proj, lo, hi)
            ).reshape(hi - lo, n, self.num_components)
            probs[lo:hi] = (theta * alpha[lo:hi, None, :]).sum(axis=2)
        np.fill_diagonal(probs, 0.0)
        return probs

    def sample_edges(
        self,
        s: Tensor,
        rng: np.random.Generator,
        block_size: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw one adjacency sample as ``(src, dst)`` edge columns.

        Fused decode: one blocked pass pools the α features, the row
        components are drawn, then a second blocked pass evaluates θ and
        samples edges — only the chosen component's probabilities are
        ever used, and no autodiff nodes are created.  Edges stream out
        as int columns in CSR order, ready for a
        :class:`~repro.graph.store.TemporalEdgeStoreBuilder`; only the
        per-block ``(B, N)`` working set is dense.  RNG consumption
        (one ``(N, 1)`` draw, one ``(N, N)`` draw) matches
        :meth:`_reference_sample` exactly; θ agrees with the reference
        to within a few ulp (reassociated first layer), so both paths
        produce the same graphs from identical generator states except
        with vanishing probability.  Because each float64 uniform
        consumes exactly one PCG64 step, rows ``[lo, hi)`` own a known
        contiguous window of the stream — the invariant
        ``repro.generation`` slices to decode shards bit-identically.
        """
        s_np = np.asarray(s.data if isinstance(s, Tensor) else s, dtype=np.float64)
        n = s_np.shape[0]
        block = self._decode_block_rows(n, block_size)
        alpha = self._mixture_weights_np(s_np, block)
        # normalize to be safe against float drift, then vectorize the
        # categorical draw via inverse-CDF sampling per row
        alpha = alpha / alpha.sum(axis=1, keepdims=True)
        cdf = np.cumsum(alpha, axis=1)
        u = rng.random((n, 1))
        components = (u > cdf).sum(axis=1).clip(0, self.num_components - 1)
        edge_u = rng.random((n, n))
        proj = _first_layer_projection(self.f_theta, s_np)
        srcs = []
        dsts = []
        for lo in range(0, n, block):
            hi = min(lo + block, n)
            theta = _np_sigmoid(
                _pairwise_head_block(self.f_theta, proj, lo, hi)
            ).reshape(hi - lo, n, self.num_components)
            row_theta = np.take_along_axis(
                theta, components[lo:hi, None, None], axis=2
            )[:, :, 0]
            hit = edge_u[lo:hi] < row_theta
            # no self-loops: mask the diagonal entries of this row block
            diag = np.arange(lo, hi)
            hit[diag - lo, diag] = False
            rows, cols = np.nonzero(hit)
            srcs.append(rows.astype(np.int64) + lo)
            dsts.append(cols.astype(np.int64))
        return (
            np.concatenate(srcs) if srcs else np.zeros(0, np.int64),
            np.concatenate(dsts) if dsts else np.zeros(0, np.int64),
        )

    def sample(
        self,
        s: Tensor,
        rng: np.random.Generator,
        block_size: Optional[int] = None,
    ) -> np.ndarray:
        """Draw one adjacency sample as a dense ``(N, N)`` 0/1 matrix.

        Convenience wrapper over :meth:`sample_edges` for tests and
        benches; generation paths consume the edge columns directly
        (``VRDAG.generate`` streams them into a store builder and
        never materializes this matrix).
        """
        n = (s.data if isinstance(s, Tensor) else np.asarray(s)).shape[0]
        src, dst = self.sample_edges(s, rng, block_size)
        adj = np.zeros((n, n))
        if src.size:
            adj[src, dst] = 1.0
        return adj

    # ------------------------------------------------------------------
    # reference decode (parity-test ground truth)
    # ------------------------------------------------------------------
    def _reference_edge_probabilities(self, s: Tensor) -> np.ndarray:
        """Dense-tensor marginal Ã (reference)."""
        alpha, theta = self.distribution(as_tensor(s))
        probs = (theta.data * alpha.data[:, None, :]).sum(axis=2)
        np.fill_diagonal(probs, 0.0)
        return probs

    def _reference_sample(self, s: Tensor, rng: np.random.Generator) -> np.ndarray:
        """Dense-tensor adjacency sampling (reference)."""
        s = as_tensor(s)
        n = s.shape[0]
        alpha, theta = self.distribution(s)
        alpha_np = alpha.data
        theta_np = theta.data
        alpha_np = alpha_np / alpha_np.sum(axis=1, keepdims=True)
        cdf = np.cumsum(alpha_np, axis=1)
        u = rng.random((n, 1))
        components = (u > cdf).sum(axis=1).clip(0, self.num_components - 1)
        row_theta = theta_np[np.arange(n), :, components]  # (N, N)
        adj = (rng.random((n, n)) < row_theta).astype(np.float64)
        np.fill_diagonal(adj, 0.0)
        return adj


class AttributeDecoder(Module):
    """GAT + MLP attribute decoder (Eq. 12).

    Runs one attentive message-passing round over the *generated*
    adjacency so attributes condition on the fresh topology, then maps
    node states to the F attribute values.
    """

    def __init__(
        self,
        state_dim: int,
        num_attributes: int,
        hidden_dim: Optional[int] = None,
        activation: str = "identity",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        hidden_dim = hidden_dim or state_dim
        self.gat = GATLayer(state_dim, hidden_dim, rng=rng)
        self.mlp = MLP([hidden_dim, hidden_dim, num_attributes], rng=rng)
        self._activation = get_activation(activation)
        self.activation = activation

    def forward(self, s: Tensor, adjacency: np.ndarray) -> Tensor:
        """Decode attributes from node states ``s`` and adjacency (Eq. 12)."""
        h = self.gat(s, adjacency)
        return self._activation(self.mlp(h))
