"""Attributed graph generator: MixBernoulli sampler + attribute decoder.

Implements §III-C's factorized decoder (Eq. 10):

    p(A_t, X_t | ·) = p(X_t | A_t, ·) · p(A_t | ·)

Structure first (mixture of Bernoullis over the adjacency rows,
Eq. 11), then attributes conditioned on the freshly generated topology
through one round of graph attention (Eq. 12).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.autodiff.tensor import as_tensor
from repro.nn import GATLayer, MLP, Module
from repro.nn.linear import get_activation

_PROB_EPS = 1e-7


class MixBernoulliSampler(Module):
    """Mixture-of-Bernoulli adjacency model (Eq. 11).

    For every source node ``i`` the adjacency row ``A_{i,·}`` is
    modelled as a K-component mixture: mixing weights ``α_{k,i}`` come
    from pooling pairwise features ``f_α(s_i - s_j)`` over all
    destinations ``j``, and per-component edge probabilities
    ``θ_{k,i,j} = σ(f_θ(s_i - s_j))``.  With K > 1 edges within a row
    are *not* independent — the mixture couples them — yet all rows can
    be computed in parallel, unlike fully autoregressive decoders
    (GRAN/GraphRNN).
    """

    def __init__(
        self,
        state_dim: int,
        num_components: int = 3,
        hidden_dim: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        hidden_dim = hidden_dim or state_dim
        self.num_components = num_components
        self.f_alpha = MLP([state_dim, hidden_dim, num_components], rng=rng)
        self.f_theta = MLP([state_dim, hidden_dim, num_components], rng=rng)

    def calibrate_bias(self, density: float) -> None:
        """Initialize the θ-head bias to the observed edge density.

        Sigmoid heads start near p ≈ 0.5; real graphs are sparse, so
        starting every θ at the empirical density (via the logit of the
        final-layer bias) removes dozens of wasted epochs in which the
        model would only be learning "graphs are sparse".
        """
        density = float(np.clip(density, 1e-6, 1.0 - 1e-6))
        logit = float(np.log(density / (1.0 - density)))
        final = self.f_theta.layers[-1]
        if final.bias is not None:
            final.bias.data[:] = logit

    # ------------------------------------------------------------------
    def _pairwise(self, s: Tensor) -> Tensor:
        """All pairwise differences s_i - s_j, shape (N*N, d)."""
        n, d = s.shape
        diff = s.expand_dims(1) - s.expand_dims(0)  # (N, N, d)
        return diff.reshape(n * n, d)

    def distribution(self, s: Tensor) -> Tuple[Tensor, Tensor]:
        """Return (α, θ): mixing weights (N, K) and probs (N, N, K)."""
        n = s.shape[0]
        pair = self._pairwise(s)
        alpha_feats = self.f_alpha(pair).reshape(n, n, self.num_components)
        alpha = F.softmax(alpha_feats.sum(axis=1), axis=-1)  # pool over j
        theta = F.sigmoid(self.f_theta(pair)).reshape(n, n, self.num_components)
        return alpha, theta

    # ------------------------------------------------------------------
    def log_likelihood(self, s: Tensor, adjacency: np.ndarray) -> Tensor:
        """Mean per-node log p(A_{i,·} | s) under the mixture (scalar).

        Used (negated) as the structure reconstruction loss L_struc
        (Eq. 16–17); diagonal entries are excluded since self-loops are
        structurally impossible.
        """
        n = s.shape[0]
        alpha, theta = self.distribution(s)
        theta = F.clip(theta, _PROB_EPS, 1.0 - _PROB_EPS)
        a = np.asarray(adjacency, dtype=np.float64)[:, :, None]  # (N, N, 1)
        log_bern = a * F.log(theta) + (1.0 - a) * F.log(1.0 - theta)
        mask = (1.0 - np.eye(n))[:, :, None]
        row_loglik = (log_bern * mask).sum(axis=1)  # (N, K)
        mixed = F.logsumexp(F.log(alpha, eps=1e-12) + row_loglik, axis=1)  # (N,)
        return mixed.mean()

    def sampled_log_likelihood(
        self,
        s: Tensor,
        adjacency: np.ndarray,
        num_negatives: int,
        rng: np.random.Generator,
    ) -> Tensor:
        """Negative-sampled estimate of the structure log-likelihood.

        The paper's complexity analysis (§III-G) counts the structure
        reconstruction loss as O(N·r + N·Q): all positive edges plus Q
        sampled non-edges per node, instead of the dense N² sum.  Each
        sampled term is importance-weighted by the number of non-edges
        it represents, so the estimator is unbiased for the per-row
        Bernoulli sum (the mixture is then applied row-wise as usual).
        """
        n = s.shape[0]
        if num_negatives < 1:
            raise ValueError("num_negatives must be >= 1")
        alpha, theta = self.distribution(s)
        theta = F.clip(theta, _PROB_EPS, 1.0 - _PROB_EPS)
        a = np.asarray(adjacency, dtype=np.float64)
        log_theta = F.log(theta)
        log_one_minus = F.log(1.0 - theta)
        # positive part: exact sum over existing edges
        pos_mask = a[:, :, None]
        diag_mask = (1.0 - np.eye(n))[:, :, None]
        pos_term = (log_theta * pos_mask * diag_mask).sum(axis=1)  # (N, K)
        # negative part: Q uniform samples per row over the non-edges,
        # scaled by the count of non-edges in that row
        neg_counts = (n - 1) - a.sum(axis=1)  # (N,)
        cols = rng.integers(0, n, size=(n, num_negatives))
        rows = np.repeat(np.arange(n)[:, None], num_negatives, axis=1)
        valid = (cols != rows) & (a[rows, cols] == 0)
        weights = np.where(
            valid.sum(axis=1, keepdims=True) > 0,
            valid / np.maximum(valid.sum(axis=1, keepdims=True), 1),
            0.0,
        ) * neg_counts[:, None]
        # gather log(1-θ) at the sampled (row, col) pairs: (N, Q, K)
        gathered = log_one_minus[rows.ravel(), cols.ravel()].reshape(
            n, num_negatives, self.num_components
        )
        neg_term = (gathered * weights[:, :, None]).sum(axis=1)  # (N, K)
        row_loglik = pos_term + neg_term
        mixed = F.logsumexp(F.log(alpha, eps=1e-12) + row_loglik, axis=1)
        return mixed.mean()

    def edge_probabilities(self, s: Tensor) -> np.ndarray:
        """Marginal edge probability matrix Ã under the mixture."""
        alpha, theta = self.distribution(s)
        probs = (theta.data * alpha.data[:, None, :]).sum(axis=2)
        np.fill_diagonal(probs, 0.0)
        return probs

    def sample(self, s: Tensor, rng: np.random.Generator) -> np.ndarray:
        """Draw an adjacency matrix: per row pick a component, then edges."""
        n = s.shape[0]
        alpha, theta = self.distribution(s)
        alpha_np = alpha.data
        theta_np = theta.data
        # normalize to be safe against float drift, then vectorize the
        # categorical draw via inverse-CDF sampling per row
        alpha_np = alpha_np / alpha_np.sum(axis=1, keepdims=True)
        cdf = np.cumsum(alpha_np, axis=1)
        u = rng.random((n, 1))
        components = (u > cdf).sum(axis=1).clip(0, self.num_components - 1)
        row_theta = theta_np[np.arange(n), :, components]  # (N, N)
        adj = (rng.random((n, n)) < row_theta).astype(np.float64)
        np.fill_diagonal(adj, 0.0)
        return adj


class AttributeDecoder(Module):
    """GAT + MLP attribute decoder (Eq. 12).

    Runs one attentive message-passing round over the *generated*
    adjacency so attributes condition on the fresh topology, then maps
    node states to the F attribute values.
    """

    def __init__(
        self,
        state_dim: int,
        num_attributes: int,
        hidden_dim: Optional[int] = None,
        activation: str = "identity",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        hidden_dim = hidden_dim or state_dim
        self.gat = GATLayer(state_dim, hidden_dim, rng=rng)
        self.mlp = MLP([hidden_dim, hidden_dim, num_attributes], rng=rng)
        self._activation = get_activation(activation)
        self.activation = activation

    def forward(self, s: Tensor, adjacency: np.ndarray) -> Tensor:
        """Decode attributes from node states ``s`` and adjacency (Eq. 12)."""
        h = self.gat(s, adjacency)
        return self._activation(self.mlp(h))
