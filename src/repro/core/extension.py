"""§III-H extension: flexible node addition and deletion.

The base VRDAG keeps the node universe fixed.  This wrapper adds the
paper's two proposed mechanisms on top of a trained model:

* **deletion** — track, per node, the number of consecutive generated
  snapshots in which it is isolated; once the count reaches ``T_del``
  the node's hidden state is frozen out of generation (its adjacency
  row/column and attributes are zeroed in subsequent snapshots);
* **addition** — estimate the number of newly arriving nodes per step
  from the sequence's empirical arrival process, and initialize their
  hidden states from a parameterized Gaussian conditioned on the mean
  hidden graph state ``h̄_t`` and the time embedding.

The wrapper keeps the full (max-size) node universe internally and
exposes the active mask, so downstream metrics can treat inactive nodes
as absent.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autodiff import Tensor, functional as F, no_grad
from repro.core.model import VRDAG
from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.nn import Linear, Module


class NodeDynamicsWrapper(Module):
    """Node addition/deletion layer over a trained :class:`VRDAG`.

    Parameters
    ----------
    model:
        A trained VRDAG (its config fixes the *maximum* node count).
    deletion_threshold:
        ``T_del`` — consecutive isolated steps before a node is removed.
    arrival_rate:
        Expected number of node additions per timestep (Poisson);
        estimate it from data with :meth:`estimate_arrival_rate`.
    """

    def __init__(
        self,
        model: VRDAG,
        deletion_threshold: int = 3,
        arrival_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if deletion_threshold < 1:
            raise ValueError("deletion_threshold must be >= 1")
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be >= 0")
        self.model = model
        self.deletion_threshold = deletion_threshold
        self.arrival_rate = arrival_rate
        self._rng = rng or np.random.default_rng(model.config.seed + 777)
        d_h = model.config.hidden_dim
        d_t = model.config.time_dim
        # p_ω: initial hidden state sampler for added nodes, conditioned
        # on [h̄_t || f_T(t)] (§III-H)
        init_rng = np.random.default_rng(model.config.seed + 778)
        self.init_mu = Linear(d_h + d_t, d_h, rng=init_rng)
        self.init_log_sigma = Linear(d_h + d_t, d_h, rng=init_rng)

    # ------------------------------------------------------------------
    def fit(self, graph: DynamicAttributedGraph) -> "NodeDynamicsWrapper":
        """Fit ``p_ω`` and the arrival rate from an observed sequence.

        §III-H proposes *training* the added-node state sampler; an
        untrained ``p_ω`` hands the decoder out-of-distribution hidden
        states and the generated density explodes.  This method
        teacher-forces the trained model's encoder/recurrence over the
        observed graph, records each node's hidden state at the step it
        first becomes active, and solves a ridge regression from
        ``[h̄_t || f_T(t)]`` to those states; the per-dimension residual
        spread becomes σ_ω.  The Poisson arrival rate is estimated from
        the same pass.
        """
        cfg = self.model.config
        normalized = self._normalized_view(graph)
        contexts: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        seen = graph[0].degrees() > 0
        with no_grad():
            h = self.model.recurrence.initial_state(cfg.num_nodes)
            for t in range(graph.num_timesteps):
                if t >= 1:
                    active = graph[t].degrees() > 0
                    new = active & ~seen
                    if new.any():
                        h_bar = h.data.mean(axis=0)
                        tv = self.model.recurrence.time2vec(float(t)).data
                        ctx = np.concatenate([h_bar, tv])
                        for v in np.nonzero(new)[0]:
                            contexts.append(ctx)
                            targets.append(h.data[v].copy())
                    seen |= active
                encoding = self.model.encoder(normalized[t])
                z = self.model.posterior(encoding, h).mean()
                h = self.model.recurrence(encoding, z, float(t + 1), h)
        self.arrival_rate = self.estimate_arrival_rate(graph)
        if contexts:
            self._fit_init_sampler(np.stack(contexts), np.stack(targets))
        return self

    def _normalized_view(
        self, graph: DynamicAttributedGraph
    ) -> DynamicAttributedGraph:
        """Attributes rescaled to the space the trained model consumes."""
        if self.model.config.num_attributes == 0:
            return graph
        mean = self.model._attr_mean
        std = self.model._attr_std
        return DynamicAttributedGraph(
            [
                GraphSnapshot(
                    s.adjacency, (s.attributes - mean) / std, validate=False
                )
                for s in graph
            ]
        )

    def _fit_init_sampler(
        self, contexts: np.ndarray, targets: np.ndarray, ridge: float = 1e-2
    ) -> None:
        """Closed-form ridge fit of ``init_mu``; residual std -> σ_ω."""
        m = contexts.shape[0]
        x = np.concatenate([contexts, np.ones((m, 1))], axis=1)
        gram = x.T @ x + ridge * np.eye(x.shape[1])
        coef = np.linalg.solve(gram, x.T @ targets)
        self.init_mu.weight.data = coef[:-1]
        self.init_mu.bias.data = coef[-1]
        residual = targets - x @ coef
        sigma = np.maximum(residual.std(axis=0), 1e-3)
        self.init_log_sigma.weight.data = np.zeros_like(
            self.init_log_sigma.weight.data
        )
        self.init_log_sigma.bias.data = np.log(sigma)

    # ------------------------------------------------------------------
    @staticmethod
    def estimate_arrival_rate(graph: DynamicAttributedGraph) -> float:
        """Mean number of first-activations per step in an observed graph."""
        n, t_len = graph.num_nodes, graph.num_timesteps
        seen = np.zeros(n, dtype=bool)
        arrivals = []
        for t in range(t_len):
            active = graph[t].degrees() > 0
            new = active & ~seen
            arrivals.append(int(new.sum()))
            seen |= active
        if len(arrivals) <= 1:
            return 0.0
        return float(np.mean(arrivals[1:]))  # step-0 activations are the seed

    # ------------------------------------------------------------------
    def generate(
        self,
        num_timesteps: int,
        initial_active: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Tuple[DynamicAttributedGraph, np.ndarray]:
        """Roll out generation with node churn.

        Returns the generated graph (full node universe) and an
        ``(T, N)`` boolean activity mask.
        """
        cfg = self.model.config
        n = cfg.num_nodes
        rng = np.random.default_rng(seed if seed is not None else cfg.seed + 999)
        active = np.zeros(n, dtype=bool)
        k0 = n if initial_active is None else min(initial_active, n)
        active[:k0] = True
        isolation = np.zeros(n, dtype=int)

        snapshots: List[GraphSnapshot] = []
        masks = np.zeros((num_timesteps, n), dtype=bool)
        self.model.eval()
        with no_grad():
            h = self.model.recurrence.initial_state(n)
            for t in range(num_timesteps):
                # --- node addition ---------------------------------------
                if self.arrival_rate > 0:
                    n_add = int(rng.poisson(self.arrival_rate))
                    inactive = np.nonzero(~active)[0]
                    joiners = inactive[:n_add]
                    if joiners.size:
                        h_bar = h.data[active].mean(axis=0) if active.any() else (
                            np.zeros(cfg.hidden_dim)
                        )
                        tv = self.model.recurrence.time2vec(float(t)).data
                        ctx = Tensor(
                            np.concatenate([h_bar, tv])[None, :]
                        )
                        mu = self.init_mu(ctx).data[0]
                        sigma = np.exp(
                            np.clip(self.init_log_sigma(ctx).data[0], -6, 6)
                        )
                        h_data = h.data.copy()
                        for j in joiners:
                            h_data[j] = mu + sigma * rng.standard_normal(
                                cfg.hidden_dim
                            )
                            active[j] = True
                            isolation[j] = 0
                        h = Tensor(h_data)
                # --- snapshot generation over the full universe ----------
                z = self.model.prior(h).sample(rng)
                s = F.concat([z, h], axis=1)
                adj = self.model.structure_sampler.sample(s, rng)
                # zero out edges touching inactive nodes
                adj[~active, :] = 0.0
                adj[:, ~active] = 0.0
                if self.model.attribute_decoder is not None:
                    attrs = self.model.attribute_decoder(s, adj).data.copy()
                    attrs[~active] = 0.0
                else:
                    attrs = np.zeros((n, 0))
                snapshot = GraphSnapshot(adj, attrs, validate=False)
                snapshots.append(
                    GraphSnapshot(
                        adj,
                        self.model._denormalize_attrs(attrs),
                        validate=False,
                    )
                )
                masks[t] = active
                # --- node deletion bookkeeping ---------------------------
                deg = snapshot.degrees()
                isolated = active & (deg == 0)
                isolation[isolated] += 1
                isolation[active & (deg > 0)] = 0
                expired = isolation >= self.deletion_threshold
                if expired.any():
                    active[expired] = False
                    h_data = h.data.copy()
                    h_data[expired] = 0.0
                    h = Tensor(h_data)
                # --- recurrence update ------------------------------------
                encoding = self.model.encoder(snapshot)
                h = self.model.recurrence(encoding, z, float(t + 1), h)
        self.model.train()
        return DynamicAttributedGraph(snapshots), masks
