"""Bi-flow graph encoder ε (paper Eq. 5–7, Fig. 2).

Each hop runs two GIN flows — one over in-neighbourhoods, one over
out-neighbourhoods — and fuses them with a shared aggregation MLP
``f_agg``.  Hop-level states are pooled with a jump connection
``f_pool`` into the final node representation ε(v).

Input features per node are the snapshot attributes concatenated with
normalized in/out degrees, so the encoder sees both structural and
attribute information even when F = 0.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.autodiff.tensor import as_tensor
from repro.graph import GraphSnapshot
from repro.nn import GINLayer, Linear, MLP, Module


class BiFlowEncoder(Module):
    """Encode a snapshot ``G_t(A_t, X_t)`` into node embeddings ε(v).

    Parameters
    ----------
    num_attributes:
        F — width of the snapshot attribute matrix.
    hidden_dim:
        Width of the per-hop node states.
    encode_dim:
        d_ε — output width after jump pooling.
    num_layers:
        L — number of bi-flow hops.
    mlp_layers:
        L_m — MLP depth inside each GIN flow.
    bidirectional:
        Ablation switch; ``False`` uses only the out-flow direction and
        feeds the aggregator a duplicated state, keeping shapes equal.
    """

    def __init__(
        self,
        num_attributes: int,
        hidden_dim: int,
        encode_dim: int,
        num_layers: int = 2,
        mlp_layers: int = 2,
        bidirectional: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_attributes = num_attributes
        self.hidden_dim = hidden_dim
        self.encode_dim = encode_dim
        self.num_layers = num_layers
        self.bidirectional = bidirectional
        in_features = num_attributes + 2  # attributes + in/out degree features
        self.input_proj = Linear(in_features, hidden_dim, rng=rng)
        self.in_flows = [
            GINLayer(hidden_dim, hidden_dim, mlp_layers=mlp_layers, rng=rng)
            for _ in range(num_layers)
        ]
        self.out_flows = [
            GINLayer(hidden_dim, hidden_dim, mlp_layers=mlp_layers, rng=rng)
            for _ in range(num_layers)
        ]
        # f_agg shared across layers (paper: "shares weights across layers")
        self.aggregator = MLP([2 * hidden_dim, hidden_dim], rng=rng)
        # f_pool jump connection over the L hop-level states (Eq. 7)
        self.pool = MLP([num_layers * hidden_dim, encode_dim], rng=rng)

    def initial_features(self, snapshot: GraphSnapshot) -> np.ndarray:
        """Raw node features: [X || in_deg/N || out_deg/N]."""
        n = snapshot.num_nodes
        in_deg = snapshot.in_degrees()[:, None] / max(n - 1, 1)
        out_deg = snapshot.out_degrees()[:, None] / max(n - 1, 1)
        return np.concatenate([snapshot.attributes, in_deg, out_deg], axis=1)

    def forward(self, snapshot: GraphSnapshot) -> Tensor:
        """Return ε(G_t) ∈ R^{N×d_ε}."""
        adj = snapshot.adjacency
        # For node i: in-neighbours j have edge j->i, i.e. adj[j, i] = 1,
        # so aggregating them needs adj.T; out-neighbours need adj itself.
        adj_in = adj.T
        adj_out = adj
        h = F.tanh(self.input_proj(as_tensor(self.initial_features(snapshot))))
        hop_states: List[Tensor] = []
        for layer in range(self.num_layers):
            out_h = self.out_flows[layer](h, adj_out)
            if self.bidirectional:
                in_h = self.in_flows[layer](h, adj_in)
            else:
                in_h = out_h
            h = self.aggregator(F.concat([in_h, out_h], axis=1))  # Eq. 6
            hop_states.append(h)
        return self.pool(F.concat(hop_states, axis=1))  # Eq. 7
