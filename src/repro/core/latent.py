"""Latent variable sampler: prior and posterior networks (§III-B).

Both distributions are fully factorized diagonal Gaussians over the
per-node latent variables ``z_{i,t}``:

* the **prior** ``p_ϕ(z_{i,t} | h_{i,t-1})`` (Eq. 3–4) conditions only
  on the recurrent hidden state — this is what generation uses;
* the **posterior** ``q_ψ(z_{i,t} | ε(v_{i,t}), h_{i,t-1})`` (Eq. 8–9)
  additionally sees the bi-flow encoding of the ground-truth snapshot —
  this is what training reconstructs through.

Sampling uses the reparameterization trick; the log-σ head is clamped
to keep σ in a numerically safe range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.nn import Linear, Module

_LOG_SIGMA_CLAMP = 6.0


@dataclass
class GaussianParams:
    """Mean and standard deviation of a diagonal Gaussian (Tensors)."""

    mu: Tensor
    sigma: Tensor

    def sample(self, rng: np.random.Generator) -> Tensor:
        """Reparameterized sample z = μ + ε·σ, ε ~ N(0, I)."""
        eps = rng.standard_normal(self.mu.shape)
        return self.mu + self.sigma * eps

    def mean(self) -> Tensor:
        """Distribution mean (used for deterministic encoding)."""
        return self.mu


class _GaussianHead(Module):
    """Shared trunk + (μ, log σ) heads as in Eq. 4."""

    def __init__(self, in_dim: int, hidden_dim: int, latent_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.trunk = Linear(in_dim, hidden_dim, rng=rng)
        self.mu_head = Linear(hidden_dim, latent_dim, rng=rng)
        self.log_sigma_head = Linear(hidden_dim, latent_dim, rng=rng)

    def forward(self, x: Tensor) -> GaussianParams:
        h = F.leaky_relu(self.trunk(x))
        mu = self.mu_head(h)
        log_sigma = F.clip(
            self.log_sigma_head(h), -_LOG_SIGMA_CLAMP, _LOG_SIGMA_CLAMP
        )
        return GaussianParams(mu=mu, sigma=F.exp(log_sigma))


class PriorNetwork(Module):
    """p_ϕ(Z_t | H_{t-1}) — Eq. 3–4."""

    def __init__(self, hidden_dim: int, latent_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.head = _GaussianHead(hidden_dim, hidden_dim, latent_dim, rng=rng)

    def forward(self, h_prev: Tensor) -> GaussianParams:
        """Gaussian parameters of ``p(z_t | h_{t-1})``."""
        return self.head(h_prev)


class PosteriorNetwork(Module):
    """q_ψ(Z_t | ε(G_t), H_{t-1}) — Eq. 8–9."""

    def __init__(self, encode_dim: int, hidden_dim: int, latent_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.head = _GaussianHead(
            encode_dim + hidden_dim, hidden_dim, latent_dim, rng=rng
        )

    def forward(self, encoding: Tensor, h_prev: Tensor) -> GaussianParams:
        """Gaussian parameters of ``q(z_t | encoding, h_{t-1})``."""
        return self.head(F.concat([encoding, h_prev], axis=1))
