"""The assembled VRDAG model (Fig. 1) with training-step losses and
Algorithm 1 inference."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.autodiff import Tensor, functional as F, no_grad
from repro.core.config import VRDAGConfig
from repro.core.encoder import BiFlowEncoder
from repro.core.generator import AttributeDecoder, MixBernoulliSampler
from repro.core.latent import PosteriorNetwork, PriorNetwork
from repro.core.recurrence import RecurrenceUpdater
from repro.core import losses
from repro.graph import DynamicAttributedGraph, GraphSnapshot
from repro.graph.store import TemporalEdgeStoreBuilder
from repro.nn import Module


def _safe_cholesky(cov: np.ndarray) -> np.ndarray:
    """Cholesky factor of a (possibly indefinite) symmetric matrix.

    Eigenvalues are clipped at zero first, so covariance *deficits*
    (differences of covariances, not guaranteed PSD) are projected onto
    the PSD cone before factorization.
    """
    cov = np.asarray(cov, dtype=np.float64)
    if cov.size == 0:
        return cov
    sym = 0.5 * (cov + cov.T)
    vals, vecs = np.linalg.eigh(sym)
    vals = np.clip(vals, 0.0, None)
    psd = (vecs * vals) @ vecs.T
    return np.linalg.cholesky(psd + 1e-12 * np.eye(cov.shape[0]))


class _Ar1State:
    """Whitened AR(1) noise process: unit marginal, correlation ``rho``.

    ``step`` returns ``w_t = rho * w_{t-1} + sqrt(1 - rho^2) * eps_t``
    with i.i.d. standard-normal innovations, so every draw is
    marginally N(0, I) while consecutive draws correlate by ``rho``.
    Callers apply a per-step Cholesky factor to impose the step's own
    covariance without distorting it.
    """

    def __init__(self, rho: float):
        self.rho = float(rho)
        self._innovation_scale = float(np.sqrt(max(1.0 - self.rho**2, 0.0)))
        self._state: Optional[np.ndarray] = None

    def step(self, shape: tuple, rng: np.random.Generator) -> np.ndarray:
        white = rng.standard_normal(shape)
        if self._state is None or self.rho == 0.0:
            self._state = white
        else:
            self._state = self.rho * self._state + self._innovation_scale * white
        return self._state


@dataclass
class StepLosses:
    """Per-timestep loss breakdown (Tensors, still on the tape)."""

    kl: Tensor
    struct: Tensor
    attr: Optional[Tensor]

    def total(self, cfg: VRDAGConfig) -> Tensor:
        """Weighted sum ``kl_w*KL + struct_w*BCE + attr_w*SCE`` (Eq. 14)."""
        out = cfg.kl_weight * self.kl + cfg.struct_weight * self.struct
        if self.attr is not None:
            out = out + cfg.attr_weight * self.attr
        return out


class VRDAG(Module):
    """Variational Recurrent Dynamic Attributed Graph generator.

    Usage::

        cfg = VRDAGConfig(num_nodes=N, num_attributes=F)
        model = VRDAG(cfg)
        VRDAGTrainer(model).fit(graph)
        synthetic = model.generate(num_timesteps=T)
    """

    def __init__(self, config: VRDAGConfig):
        super().__init__()
        config.validate()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.encoder = BiFlowEncoder(
            num_attributes=config.num_attributes,
            hidden_dim=config.hidden_dim,
            encode_dim=config.encode_dim,
            num_layers=config.gnn_layers,
            mlp_layers=config.mlp_layers,
            bidirectional=config.bidirectional,
            rng=rng,
        )
        self.prior = PriorNetwork(config.hidden_dim, config.latent_dim, rng=rng)
        self.posterior = PosteriorNetwork(
            config.encode_dim, config.hidden_dim, config.latent_dim, rng=rng
        )
        state_dim = config.latent_dim + config.hidden_dim
        self.structure_sampler = MixBernoulliSampler(
            state_dim, config.mixture_components, rng=rng
        )
        self.attribute_decoder = (
            AttributeDecoder(
                state_dim,
                config.num_attributes,
                activation=config.attr_activation,
                rng=rng,
            )
            if config.num_attributes > 0
            else None
        )
        self.recurrence = RecurrenceUpdater(
            config.encode_dim, config.latent_dim, config.time_dim,
            config.hidden_dim, rng=rng,
        )
        self._sample_rng = np.random.default_rng(config.seed + 1)
        # attribute normalization (set by calibrate)
        self._attr_mean = np.zeros(config.num_attributes)
        self._attr_std = np.ones(config.num_attributes)
        # observation noise for sampling X̃ (set by the trainer); shapes:
        # std (T, F) for reporting, Cholesky factors (T, F, F) for sampling
        self._attr_noise_std = np.zeros((1, config.num_attributes))
        self._attr_noise_chol = np.zeros(
            (1, config.num_attributes, config.num_attributes)
        )
        # raw-space per-timestep output calibration (set by the trainer):
        # corrects rollout exposure bias of attribute mean/dispersion
        self._attr_target_mean: Optional[np.ndarray] = None  # (T, F)
        self._attr_extra_chol = np.zeros(
            (1, config.num_attributes, config.num_attributes)
        )
        # AR(1) autocorrelation of the generation-time attribute noise
        # (0 = white noise; set by the trainer from the observed data)
        self._attr_noise_rho = 0.0

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------
    def calibrate(self, graph: DynamicAttributedGraph) -> DynamicAttributedGraph:
        """Data-dependent initialization before training.

        1. Sets the MixBernoulli θ bias to the observed mean edge
           density (sparse graphs would otherwise waste many epochs).
        2. Computes attribute mean/std and returns a *normalized copy*
           of the graph for training; :meth:`generate` de-normalizes
           its outputs so generated attributes live on the original
           scale.
        """
        n = graph.num_nodes
        density = graph.num_temporal_edges / max(
            graph.num_timesteps * n * (n - 1), 1
        )
        self.structure_sampler.calibrate_bias(density)
        if self.config.num_attributes == 0:
            return graph
        stacked = graph.attribute_tensor().reshape(-1, self.config.num_attributes)
        self._attr_mean = stacked.mean(axis=0)
        self._attr_std = np.maximum(stacked.std(axis=0), 1e-6)
        normalized = [
            GraphSnapshot(
                s.adjacency,
                (s.attributes - self._attr_mean) / self._attr_std,
                validate=False,
            )
            for s in graph
        ]
        return DynamicAttributedGraph(normalized)

    def _denormalize_attrs(self, attrs: np.ndarray) -> np.ndarray:
        if self.config.num_attributes == 0:
            return attrs
        return attrs * self._attr_std + self._attr_mean

    def attribute_residual_cov(self, graph: DynamicAttributedGraph) -> np.ndarray:
        """Fitted per-timestep observation-noise covariance.

        Algorithm 1 line 5 *samples* X̃ ~ p_φ(X | ·); the decoder head
        predicts the conditional mean, so the trainer estimates the
        residual covariance per timestep on a teacher-forced pass and
        stores it as the observation noise used at generation time.
        The full F×F covariance (not just per-dimension variances)
        matters: real node attributes are cross-correlated (Table II),
        and independent noise would wash that structure out.
        ``graph`` must already be in the normalized attribute space.
        """
        if self.attribute_decoder is None:
            return np.zeros((0, 0, 0))
        f = self.config.num_attributes
        covs = []
        with no_grad():
            h = self.recurrence.initial_state(self.config.num_nodes)
            for t, snapshot in enumerate(graph):
                encoding = self.encoder(snapshot)
                q = self.posterior(encoding, h)
                z = q.mean()
                s = F.concat([z, h], axis=1)
                x_pred = self.attribute_decoder(s, snapshot.adjacency)
                res = snapshot.attributes - x_pred.data
                covs.append(np.cov(res, rowvar=False).reshape(f, f))
                h = self.recurrence(encoding, z, float(t), h)
        return np.stack(covs)  # (T, F, F)

    def set_attribute_noise(self, cov: np.ndarray) -> None:
        """Set the generation-time observation noise (normalized space).

        Accepts a per-timestep covariance schedule ``(T, F, F)``, a
        single covariance ``(F, F)``, or per-dimension stds ``(F,)``
        (promoted to a diagonal covariance).
        """
        cov = np.asarray(cov, dtype=np.float64)
        f = self.config.num_attributes
        if cov.ndim == 1:
            if cov.shape != (f,):
                raise ValueError(f"noise std must have {f} entries")
            cov = np.diag(cov**2)[None, :, :]
        elif cov.ndim == 2:
            if cov.shape != (f, f):
                raise ValueError(f"noise covariance must be ({f}, {f})")
            cov = cov[None, :, :]
        elif cov.ndim != 3 or cov.shape[1:] != (f, f):
            raise ValueError(f"noise covariance must be (T, {f}, {f})")
        self._attr_noise_chol = np.stack([_safe_cholesky(c) for c in cov])
        self._attr_noise_std = np.sqrt(
            np.maximum(np.diagonal(cov, axis1=1, axis2=2), 0.0)
        )

    def set_noise_autocorrelation(self, rho: float) -> None:
        """Set the AR(1) coefficient of the attribute observation noise.

        With white noise (``rho=0``) the consecutive-snapshot attribute
        difference of a rollout is ``sqrt(2)``·σ regardless of how
        smoothly the real attributes evolve — an order of magnitude too
        jumpy for slowly-drifting data (Figs. 7–8).  An AR(1) noise
        process ``e_t = ρ e_{t-1} + sqrt(1-ρ²) w_t`` keeps the marginal
        covariance identical while shrinking consecutive differences by
        ``sqrt(1-ρ)``, matching the observed temporal smoothness.
        """
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self._attr_noise_rho = float(rho)

    @staticmethod
    def estimate_attribute_autocorrelation(
        graph: DynamicAttributedGraph,
    ) -> float:
        """Fit the AR(1) ρ matching the data's consecutive differences.

        For a stationary AR(1) process, ``E[(x_{t+1} - x_t)^2] =
        2 σ² (1 - ρ)``; solving for ρ from the observed mean squared
        consecutive difference and variance (averaged over attribute
        dimensions) gives the coefficient that reproduces the data's
        step-to-step attribute smoothness.  Scale-invariant per
        dimension.  Returns 0 for sequences too short to estimate.
        """
        if graph.num_timesteps < 2 or graph.num_attributes == 0:
            return 0.0
        x = graph.attribute_tensor()  # (T, N, F)
        var = x.reshape(-1, x.shape[-1]).var(axis=0)  # (F,)
        msd = ((x[1:] - x[:-1]) ** 2).mean(axis=(0, 1))  # (F,)
        valid = var > 1e-12
        if not valid.any():
            return 0.0
        rho = 1.0 - msd[valid] / (2.0 * var[valid])
        return float(np.clip(rho.mean(), 0.0, 0.99))

    def set_output_calibration(
        self, target_mean: np.ndarray, extra_cov: np.ndarray
    ) -> None:
        """Per-timestep raw-space output calibration (trainer-fitted).

        Free-running rollouts accumulate exposure bias: the global
        attribute mean performs a seed-dependent random walk (structure
        feedback couples all hidden states) and dispersion shrinks (the
        decoder outputs conditional means).  The trainer therefore
        anchors the rollout: generated attributes are recentred to the
        training sequence's per-timestep mean trajectory and topped up
        with the (full-covariance) dispersion deficit measured on a
        validation rollout.  The model still provides the distribution
        *shape* (per-node multimodality, skew); only the first two
        global moments are pinned — using no data beyond the training
        graph.  ``extra_cov`` is ``(T, F, F)`` and is PSD-projected.
        """
        target_mean = np.atleast_2d(np.asarray(target_mean, dtype=np.float64))
        extra_cov = np.asarray(extra_cov, dtype=np.float64)
        f = self.config.num_attributes
        if target_mean.shape[1] != f:
            raise ValueError(f"calibration mean must have {f} columns")
        if extra_cov.ndim == 2:
            extra_cov = extra_cov[None, :, :]
        if extra_cov.ndim != 3 or extra_cov.shape[1:] != (f, f):
            raise ValueError(f"calibration covariance must be (T, {f}, {f})")
        self._attr_target_mean = target_mean
        self._attr_extra_chol = np.stack(
            [_safe_cholesky(c) for c in extra_cov]
        )

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def sequence_loss(self, graph: DynamicAttributedGraph) -> tuple[Tensor, Dict[str, float]]:
        """Step-wise ELBO over the whole observed sequence (Eq. 14).

        Teacher-forced: the recurrence consumes the *ground truth*
        snapshots, the posterior conditions on them, and the decoders
        reconstruct them.  Returns the scalar loss tensor plus a float
        breakdown for logging.
        """
        cfg = self.config
        if graph.num_nodes != cfg.num_nodes:
            raise ValueError(
                f"graph has {graph.num_nodes} nodes, model expects {cfg.num_nodes}"
            )
        if graph.num_attributes != cfg.num_attributes:
            raise ValueError(
                f"graph has {graph.num_attributes} attributes, model expects "
                f"{cfg.num_attributes}"
            )
        h = self.recurrence.initial_state(cfg.num_nodes)
        total: Optional[Tensor] = None
        logs = {"kl": 0.0, "struct": 0.0, "attr": 0.0}
        for t, snapshot in enumerate(graph):
            step = self._training_step(snapshot, h, t)
            loss_t, h = step
            total = loss_t.total(cfg) if total is None else total + loss_t.total(cfg)
            logs["kl"] += float(loss_t.kl.data)
            logs["struct"] += float(loss_t.struct.data)
            if loss_t.attr is not None:
                logs["attr"] += float(loss_t.attr.data)
        steps = graph.num_timesteps
        for k in logs:
            logs[k] /= steps
        return total / float(steps), logs

    def _training_step(
        self, snapshot: GraphSnapshot, h_prev: Tensor, t: int
    ) -> tuple[StepLosses, Tensor]:
        encoding = self.encoder(snapshot)
        q = self.posterior(encoding, h_prev)
        p = self.prior(h_prev)
        z = q.sample(self._sample_rng)
        s = F.concat([z, h_prev], axis=1)
        kl = losses.gaussian_kl(q, p)
        if self.config.struct_negative_samples > 0:
            struct = -self.structure_sampler.sampled_log_likelihood(
                s, snapshot.adjacency,
                self.config.struct_negative_samples, self._sample_rng,
            )
        else:
            struct = -self.structure_sampler.log_likelihood(
                s, snapshot.adjacency
            )
        attr: Optional[Tensor] = None
        if self.attribute_decoder is not None:
            # attributes condition on the *true* adjacency (teacher forcing
            # of Eq. 10's structure-first factorization)
            x_pred = self.attribute_decoder(s, snapshot.adjacency)
            if self.config.attr_loss == "sce":
                attr = losses.sce_attribute_loss(
                    snapshot.attributes, x_pred, alpha=self.config.sce_alpha
                )
                if self.config.attr_mse_weight:
                    attr = attr + self.config.attr_mse_weight * (
                        losses.mse_attribute_loss(snapshot.attributes, x_pred)
                    )
            else:
                attr = losses.mse_attribute_loss(snapshot.attributes, x_pred)
        h_new = self.recurrence(encoding, z, float(t), h_prev)
        return StepLosses(kl=kl, struct=struct, attr=attr), h_new

    # ------------------------------------------------------------------
    # inference (Algorithm 1)
    # ------------------------------------------------------------------
    def generate(
        self,
        num_timesteps: int,
        seed: Optional[int] = None,
        *,
        structure_decoder: Optional[Callable] = None,
    ) -> DynamicAttributedGraph:
        """Generate a fresh dynamic attributed graph from scratch.

        Implements Algorithm 1: recurrently sample latents from the
        learned prior, decode structure then attributes, and update the
        hidden state from the *generated* snapshot.

        Structure is decoded straight into a columnar store builder:
        the only dense ``(N, N)`` buffer is the single per-step scratch
        matrix the encoder/GAT consume (reused across steps), so peak
        structural memory is O(M + N²) transient — never an O(N²·T)
        snapshot stack — and the returned graph is store-backed.

        ``structure_decoder`` swaps the per-step structure decode: a
        callable ``(sampler, s, rng) -> (src, dst)`` returning
        CSR-ordered int64 edge columns for the step, and consuming
        ``rng`` exactly as :meth:`MixBernoulliSampler.sample_edges`
        would (one ``(N, 1)`` plus one ``(N, N)`` uniform draw).
        ``repro.generation.ShardedStructureDecoder`` plugs in here to
        run the decode across shards bit-identically; ``None`` uses
        the in-process fused decode.
        """
        if num_timesteps < 1:
            raise ValueError("num_timesteps must be >= 1")
        cfg = self.config
        decode_structure = structure_decoder or (
            lambda sampler, s, step_rng: sampler.sample_edges(s, step_rng)
        )
        rng = np.random.default_rng(seed if seed is not None else cfg.seed + 12345)
        builder = TemporalEdgeStoreBuilder(cfg.num_nodes, cfg.num_attributes)
        adj_scratch = np.zeros((cfg.num_nodes, cfg.num_nodes))
        # AR(1)-correlated noise states are kept *whitened* (unit
        # marginal, shape (N, F)); each step applies the step's own
        # Cholesky factor, so the per-timestep marginal covariance is
        # exact while consecutive draws co-move with coefficient rho
        obs_state = _Ar1State(self._attr_noise_rho)
        extra_state = _Ar1State(self._attr_noise_rho)
        z_state = _Ar1State(self._attr_noise_rho)
        self.eval()
        with no_grad():
            h = self.recurrence.initial_state(cfg.num_nodes)           # line 1
            for t in range(num_timesteps):
                p = self.prior(h)                                       # line 3
                # latent sampling with AR(1)-correlated reparameterization
                # noise: marginally still N(mu, sigma), but consecutive
                # latents co-move with the data's fitted smoothness
                z_eps = z_state.step(p.mu.shape, rng)
                z = Tensor(p.mu.data + p.sigma.data * z_eps)
                s = F.concat([z, h], axis=1)
                src, dst = decode_structure(self.structure_sampler, s, rng)  # line 4
                adj_scratch[:] = 0.0
                if src.size:
                    adj_scratch[src, dst] = 1.0
                adj = adj_scratch
                if self.attribute_decoder is not None:                  # line 5
                    attrs = self.attribute_decoder(s, adj).data.copy()
                    if self._attr_noise_chol.any():
                        row = min(t, self._attr_noise_chol.shape[0] - 1)
                        attrs = attrs + (
                            obs_state.step(attrs.shape, rng)
                            @ self._attr_noise_chol[row].T
                        )
                else:
                    attrs = np.zeros((cfg.num_nodes, 0))
                snapshot = GraphSnapshot(adj, attrs, validate=False)    # line 6
                encoding = self.encoder(snapshot)
                h = self.recurrence(encoding, z, float(t + 1), h)       # line 7
                out_attrs = self._denormalize_attrs(attrs)
                if self.config.num_attributes > 0 and (
                    self._attr_target_mean is not None
                ):
                    b_row = min(t, self._attr_target_mean.shape[0] - 1)
                    s_row = min(t, self._attr_extra_chol.shape[0] - 1)
                    out_attrs = (
                        out_attrs
                        - out_attrs.mean(axis=0)
                        + self._attr_target_mean[b_row]
                        + extra_state.step(out_attrs.shape, rng)
                        @ self._attr_extra_chol[s_row].T
                    )
                # sample_edges emits CSR order, loop-free, deduplicated
                builder.add_step(src, dst, out_attrs, canonical=True)   # line 8
        self.train()
        return DynamicAttributedGraph.from_store(builder.build())

    # ------------------------------------------------------------------
    def expected_adjacency(self, num_timesteps: int, seed: Optional[int] = None
                           ) -> np.ndarray:
        """Marginal edge-probability matrices along a generated rollout.

        Diagnostic helper: rolls the recurrence forward sampling latents
        but records Ã (Eq. 11 marginals) instead of hard samples.
        """
        cfg = self.config
        rng = np.random.default_rng(seed if seed is not None else cfg.seed + 54321)
        probs = np.zeros((num_timesteps, cfg.num_nodes, cfg.num_nodes))
        self.eval()
        with no_grad():
            h = self.recurrence.initial_state(cfg.num_nodes)
            for t in range(num_timesteps):
                z = self.prior(h).sample(rng)
                s = F.concat([z, h], axis=1)
                probs[t] = self.structure_sampler.edge_probabilities(s)
                adj = (probs[t] > 0.5).astype(np.float64)
                np.fill_diagonal(adj, 0.0)
                if self.attribute_decoder is not None:
                    attrs = self.attribute_decoder(s, adj).data.copy()
                else:
                    attrs = np.zeros((cfg.num_nodes, 0))
                snapshot = GraphSnapshot(adj, attrs, validate=False)
                encoding = self.encoder(snapshot)
                h = self.recurrence(encoding, z, float(t + 1), h)
        self.train()
        return probs
