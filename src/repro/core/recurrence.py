"""Recurrence state updater (§III-D, Algorithm 1 line 7).

Concatenates, per node, the bi-flow encoding of the current snapshot,
the sampled latent variable and the Time2Vec embedding of the current
timestep, then updates the hidden node states with a GRU cell:

    H_t = GRU([ε(G_t) || Z_t || f_T(t)], H_{t-1})
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.nn import GRUCell, Module, Time2Vec


class RecurrenceUpdater(Module):
    """Time2Vec + GRU hidden state update."""

    def __init__(
        self,
        encode_dim: int,
        latent_dim: int,
        time_dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.time2vec = Time2Vec(time_dim, rng=rng)
        self.gru = GRUCell(encode_dim + latent_dim + time_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim

    def initial_state(self, num_nodes: int) -> Tensor:
        """H_0 = 0 (Algorithm 1 line 1)."""
        return Tensor(np.zeros((num_nodes, self.hidden_dim)))

    def forward(self, encoding: Tensor, z: Tensor, t: float, h_prev: Tensor) -> Tensor:
        """``H_t = GRU([encoding || z || f_T(t)], H_{t-1})`` (Eq. 13)."""
        n = encoding.shape[0]
        tv = self.time2vec(float(t))           # (d_T,)
        tv_rows = tv.expand_dims(0) + np.zeros((n, 1))  # broadcast to (N, d_T)
        x = F.concat([encoding, z, tv_rows], axis=1)
        return self.gru(x, h_prev)
