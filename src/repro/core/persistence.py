"""Save/load trained VRDAG models (weights + calibration state).

A trained model is more than its parameters: attribute normalization,
the fitted observation-noise Cholesky schedule and the output
calibration are all required to generate faithfully.  This module
serializes everything to one compressed ``.npz``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Union

import numpy as np

from repro.core.config import VRDAGConfig
from repro.core.model import VRDAG

_FORMAT_VERSION = 1
_STATE_PREFIX = "param::"


def save_model(model: VRDAG, path: Union[str, os.PathLike]) -> None:
    """Serialize a (possibly trained) VRDAG to ``path``."""
    arrays = {
        _STATE_PREFIX + name: value
        for name, value in model.state_dict().items()
    }
    arrays["calib::attr_mean"] = model._attr_mean
    arrays["calib::attr_std"] = model._attr_std
    arrays["calib::noise_chol"] = model._attr_noise_chol
    arrays["calib::extra_chol"] = model._attr_extra_chol
    arrays["calib::noise_rho"] = np.array(model._attr_noise_rho)
    arrays["calib::has_target_mean"] = np.array(
        model._attr_target_mean is not None
    )
    if model._attr_target_mean is not None:
        arrays["calib::target_mean"] = model._attr_target_mean
    np.savez_compressed(
        path,
        version=np.array(_FORMAT_VERSION),
        config=np.frombuffer(
            json.dumps(dataclasses.asdict(model.config)).encode(), dtype=np.uint8
        ),
        **arrays,
    )


def load_model(path: Union[str, os.PathLike]) -> VRDAG:
    """Reconstruct a VRDAG saved with :func:`save_model`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported model file version {version}")
        config = VRDAGConfig(**json.loads(bytes(data["config"]).decode()))
        model = VRDAG(config)
        state = {
            name[len(_STATE_PREFIX):]: data[name]
            for name in data.files
            if name.startswith(_STATE_PREFIX)
        }
        model.load_state_dict(state)
        model._attr_mean = data["calib::attr_mean"]
        model._attr_std = data["calib::attr_std"]
        model._attr_noise_chol = data["calib::noise_chol"]
        model._attr_noise_std = np.sqrt(
            np.maximum(
                np.einsum("tij,tij->ti", model._attr_noise_chol,
                          model._attr_noise_chol),
                0.0,
            )
        )
        model._attr_extra_chol = data["calib::extra_chol"]
        if "calib::noise_rho" in data.files:
            model._attr_noise_rho = float(data["calib::noise_rho"])
        if bool(data["calib::has_target_mean"]):
            model._attr_target_mean = data["calib::target_mean"]
    return model
