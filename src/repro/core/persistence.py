"""Save/load trained VRDAG models (weights + calibration state).

A trained model is more than its parameters: attribute normalization,
the fitted observation-noise Cholesky schedule and the output
calibration are all required to generate faithfully.

Historically this module owned a bespoke VRDAG-only ``.npz`` layout
(format version 1).  Since the :mod:`repro.api` redesign the canonical
on-disk form is the *generator artifact envelope*
(:mod:`repro.api.artifacts`), which serializes any registered
generator; :func:`save_model` / :func:`load_model` remain as thin
VRDAG-only shims on top of it (and :func:`load_model` still reads
legacy version-1 files).

The state helpers :func:`vrdag_state` / :func:`vrdag_from_state` are
the single source of truth for what a serialized VRDAG contains; both
the legacy reader and the artifact envelope go through them.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Union

import numpy as np

from repro.core.config import VRDAGConfig
from repro.core.model import VRDAG

_FORMAT_VERSION = 1
_STATE_PREFIX = "param::"


def vrdag_state(model: VRDAG) -> Dict[str, object]:
    """Everything needed to rebuild ``model``: config + named arrays."""
    arrays: Dict[str, np.ndarray] = {
        _STATE_PREFIX + name: value
        for name, value in model.state_dict().items()
    }
    arrays["calib::attr_mean"] = model._attr_mean
    arrays["calib::attr_std"] = model._attr_std
    arrays["calib::noise_chol"] = model._attr_noise_chol
    arrays["calib::extra_chol"] = model._attr_extra_chol
    arrays["calib::noise_rho"] = np.array(model._attr_noise_rho)
    if model._attr_target_mean is not None:
        arrays["calib::target_mean"] = model._attr_target_mean
    return {
        "config": dataclasses.asdict(model.config),
        "arrays": arrays,
    }


def vrdag_from_state(state: Dict[str, object]) -> VRDAG:
    """Inverse of :func:`vrdag_state`."""
    model = VRDAG(VRDAGConfig(**state["config"]))
    _apply_arrays(model, dict(state["arrays"]))
    return model


def _apply_arrays(model: VRDAG, arrays: Dict[str, np.ndarray]) -> None:
    """Load the named-array half of :func:`vrdag_state` onto ``model``."""
    model.load_state_dict(
        {
            name[len(_STATE_PREFIX):]: value
            for name, value in arrays.items()
            if name.startswith(_STATE_PREFIX)
        }
    )
    model._attr_mean = np.asarray(arrays["calib::attr_mean"])
    model._attr_std = np.asarray(arrays["calib::attr_std"])
    model._attr_noise_chol = np.asarray(arrays["calib::noise_chol"])
    model._attr_noise_std = np.sqrt(
        np.maximum(
            np.einsum(
                "tij,tij->ti", model._attr_noise_chol, model._attr_noise_chol
            ),
            0.0,
        )
    )
    model._attr_extra_chol = np.asarray(arrays["calib::extra_chol"])
    if "calib::noise_rho" in arrays:
        model._attr_noise_rho = float(arrays["calib::noise_rho"])
    if "calib::target_mean" in arrays:
        model._attr_target_mean = np.asarray(arrays["calib::target_mean"])


def save_model(model: VRDAG, path: Union[str, os.PathLike]) -> None:
    """Serialize a (possibly trained) VRDAG to ``path``.

    Shim over :func:`repro.api.artifacts.save_artifact`: the file is a
    standard generator artifact (readable by any artifact consumer),
    kept here for source compatibility with the pre-``repro.api`` API.
    """
    from repro.api.artifacts import save_artifact

    save_artifact(model, path)


def load_model(path: Union[str, os.PathLike]) -> VRDAG:
    """Reconstruct a VRDAG saved with :func:`save_model`.

    Reads both the artifact envelope (any VRDAG-backed generator
    artifact — the underlying :class:`VRDAG` is returned) and the
    legacy version-1 layout.
    """
    from repro.api.artifacts import is_artifact, load_artifact

    if is_artifact(path):
        generator = load_artifact(path)
        model = getattr(generator, "model", None)
        if isinstance(generator, VRDAG):
            model = generator
        if not isinstance(model, VRDAG):
            raise ValueError(
                f"{path} holds a {type(generator).__name__} artifact, not a "
                "VRDAG model; use repro.api.load_artifact for arbitrary "
                "generators"
            )
        return model
    return _load_model_v1(path)


def _load_model_v1(path: Union[str, os.PathLike]) -> VRDAG:
    """Legacy (pre-artifact) single-model format reader."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported model file version {version}")
        config = json.loads(bytes(data["config"]).decode())
        arrays = {
            name: data[name]
            for name in data.files
            if name.startswith(_STATE_PREFIX) or name.startswith("calib::")
        }
        if not bool(data["calib::has_target_mean"]):
            arrays.pop("calib::target_mean", None)
        arrays.pop("calib::has_target_mean", None)
    return vrdag_from_state({"config": config, "arrays": arrays})
