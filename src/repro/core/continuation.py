"""Conditional generation: continue an observed graph sequence.

The paper's Algorithm 1 generates from scratch (H_0 = 0).  A natural
extension — and the operation a DBMS tester actually wants for
"what will next quarter's workload look like?" — is to *condition* the
rollout on an observed prefix: encode the prefix with the posterior
machinery (teacher-forced, exactly as in training) to obtain H_T, then
switch to prior sampling and free-run for the requested horizon.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autodiff import Tensor, functional as F, no_grad
from repro.core.model import VRDAG, _Ar1State
from repro.graph import DynamicAttributedGraph, GraphSnapshot


def encode_prefix(model: VRDAG, prefix: DynamicAttributedGraph) -> Tensor:
    """Run the recurrence over an observed prefix; returns H_T.

    Uses posterior means (no sampling) for a deterministic encoding.
    The prefix must be in the model's *raw* attribute space; it is
    normalized internally with the model's fitted statistics.
    """
    cfg = model.config
    if prefix.num_nodes != cfg.num_nodes:
        raise ValueError(
            f"prefix has {prefix.num_nodes} nodes, model expects {cfg.num_nodes}"
        )
    if prefix.num_attributes != cfg.num_attributes:
        raise ValueError(
            f"prefix has {prefix.num_attributes} attributes, model expects "
            f"{cfg.num_attributes}"
        )
    with no_grad():
        h = model.recurrence.initial_state(cfg.num_nodes)
        for t, snapshot in enumerate(prefix):
            if cfg.num_attributes > 0:
                normalized = GraphSnapshot(
                    snapshot.adjacency,
                    (snapshot.attributes - model._attr_mean) / model._attr_std,
                    validate=False,
                )
            else:
                normalized = snapshot
            encoding = model.encoder(normalized)
            z = model.posterior(encoding, h).mean()
            h = model.recurrence(encoding, z, float(t), h)
    return h


def continue_sequence(
    model: VRDAG,
    prefix: DynamicAttributedGraph,
    horizon: int,
    seed: Optional[int] = None,
) -> DynamicAttributedGraph:
    """Generate ``horizon`` future snapshots conditioned on ``prefix``.

    Returns only the generated continuation (length ``horizon``); the
    caller can concatenate with the prefix if desired.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    cfg = model.config
    rng = np.random.default_rng(seed if seed is not None else cfg.seed + 777)
    h = encode_prefix(model, prefix)
    t0 = prefix.num_timesteps
    snapshots: List[GraphSnapshot] = []
    # whitened AR(1) noise states, matching generate()'s smoothness
    obs_state = _Ar1State(model._attr_noise_rho)
    extra_state = _Ar1State(model._attr_noise_rho)
    z_state = _Ar1State(model._attr_noise_rho)
    model.eval()
    with no_grad():
        for k in range(horizon):
            p = model.prior(h)
            z_eps = z_state.step(p.mu.shape, rng)
            z = Tensor(p.mu.data + p.sigma.data * z_eps)
            s = F.concat([z, h], axis=1)
            adj = model.structure_sampler.sample(s, rng)
            if model.attribute_decoder is not None:
                attrs = model.attribute_decoder(s, adj).data.copy()
                if model._attr_noise_chol.any():
                    row = min(t0 + k, model._attr_noise_chol.shape[0] - 1)
                    attrs = attrs + (
                        obs_state.step(attrs.shape, rng)
                        @ model._attr_noise_chol[row].T
                    )
            else:
                attrs = np.zeros((cfg.num_nodes, 0))
            raw_attrs = model._denormalize_attrs(attrs)
            if cfg.num_attributes > 0 and model._attr_target_mean is not None:
                # continuation beyond the fitted horizon keeps the last
                # calibrated mean (the trend's endpoint), same clamping
                # rule as generate()
                b_row = min(t0 + k, model._attr_target_mean.shape[0] - 1)
                s_row = min(t0 + k, model._attr_extra_chol.shape[0] - 1)
                raw_attrs = (
                    raw_attrs
                    - raw_attrs.mean(axis=0)
                    + model._attr_target_mean[b_row]
                    + extra_state.step(raw_attrs.shape, rng)
                    @ model._attr_extra_chol[s_row].T
                )
            inner = GraphSnapshot(adj, attrs, validate=False)
            encoding = model.encoder(inner)
            h = model.recurrence(encoding, z, float(t0 + k + 1), h)
            snapshots.append(GraphSnapshot(adj, raw_attrs, validate=False))
    model.train()
    return DynamicAttributedGraph(snapshots)
