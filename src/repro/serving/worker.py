"""Worker side of the multi-process serving tier.

Each worker is one long-lived process that attaches the shared store
segment (:func:`~repro.serving.segments.attach_store` — zero-copy,
zero owned column bytes), builds the full existing engine stack on
top of it (:class:`~repro.workloads.engine.GraphQueryEngine` with its
own bounded :class:`~repro.workloads.cache.SnapshotPlanCache`), and
then answers :class:`~repro.serving.protocol.ColumnarQueryRequest`
batches off a duplex pipe until told to stop.

The worker owns the *execution* half of the reliability contract —
the same half :class:`~repro.workloads.service.QueryService` runs
in-process:

* per-request ``serving.worker`` fault-injection point, keyed by
  ``(worker_id, request_id, attempt)`` so chaos schedules are
  deterministic regardless of routing;
* a local :class:`~repro.reliability.RetryPolicy` (shipped in
  :class:`WorkerConfig`) retries transient in-worker faults with
  deterministic backoff — the router only retries worker *death*, so
  a fault is never retried on both sides of the pipe;
* cooperative per-request :class:`~repro.reliability.Deadline`
  (remaining budget shipped with each request) checked at request
  start and between retry attempts;
* any other exception becomes a structured error reply — the worker
  process never dies from a request-level failure.

Process death itself is a first-class chaos scenario: the
``serving.worker_exit`` injection point, when armed with an
``"error"`` plan, makes the worker ``os._exit(13)`` mid-request —
an un-catchable crash from the router's point of view, which is
exactly what the respawn/retry path and the segment-lifecycle tests
need to provoke deterministically.

**Fault determinism across start methods.**  A forked worker inherits
the parent's armed :data:`~repro.reliability.fault_injector`
(arrival counters and all), a spawned worker gets a fresh one — so
the worker never trusts inherited state: it resets the injector and
re-arms it from the plans/seed carried in :class:`WorkerConfig`.
Chaos schedules are therefore a pure function of the config under
both start methods.

Wire messages (see :class:`~repro.serving.router.ProcessQueryService`
for the parent half):

* parent → worker: ``("run", request_id, columns, budget_seconds,
  attempt_base)``, ``("stats", request_id)``, ``("stop",)``

``attempt_base`` is the number of attempts the router already spent
on this request in *previous* worker incarnations (crash resends);
the worker offsets its fault-injection attempt keys by it so a
resend is a fresh arrival to rate-based fault plans rather than a
deterministic replay of the crash that killed its predecessor.
* worker → parent: ``("ok", request_id, cardinalities,
  seconds_by_kind, seconds, attempts, degraded_kinds)``,
  ``("err", request_id, error_type, message, attempts)``,
  ``("stats", request_id, payload)``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional, Tuple

from repro.reliability import Deadline, RetryPolicy, fault_injector
from repro.reliability.faults import FaultPlan
from repro.serving.protocol import ColumnarQueryRequest, execute_encoded
from repro.serving.segments import StoreManifest, attach_store, resident_copy_bytes

__all__ = ["WorkerConfig", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker needs, shipped once at spawn time.

    Picklable and small: the store arrives by shared-memory name
    (``manifest``), not by value.  ``fault_plans`` / ``fault_seed`` /
    ``fault_enabled`` replicate the parent's fault-injector arming so
    chaos schedules survive the process boundary (see module
    docstring); a parent with a disarmed injector ships
    ``fault_enabled=False`` and the worker runs clean.
    """

    manifest: StoreManifest
    worker_id: int
    cache_memory_budget_bytes: Optional[int] = None
    cache_max_plans: Optional[int] = None
    batched: bool = True
    retry_policy: Optional[RetryPolicy] = None
    fault_plans: Dict[str, FaultPlan] = field(default_factory=dict)
    fault_seed: int = 0
    fault_enabled: bool = False


def _arm_from_config(config: WorkerConfig) -> None:
    """Reset inherited injector state and re-arm from the config."""
    fault_injector.reset()
    if config.fault_enabled and config.fault_plans:
        fault_injector.configure(
            config.fault_plans, seed=config.fault_seed
        )
        fault_injector.enabled = True


def _build_engine(config: WorkerConfig, store):
    from repro.graph.dynamic import DynamicAttributedGraph
    from repro.workloads.engine import GraphQueryEngine

    graph = DynamicAttributedGraph.from_store(store)
    engine = GraphQueryEngine(
        graph,
        cache_memory_budget_bytes=config.cache_memory_budget_bytes,
        cache_max_plans=config.cache_max_plans,
    )
    engine.plans  # materialize the per-worker plan cache eagerly
    return engine


def _execute(
    config: WorkerConfig,
    engine,
    request_id: int,
    enc: ColumnarQueryRequest,
    budget_seconds: Optional[float],
    attempt_base: int = 0,
) -> Tuple:
    """Run one request batch; returns the reply tuple to send."""
    start = perf_counter()
    deadline = Deadline.after(budget_seconds)
    attempt_counter = 0

    def attempt():
        nonlocal attempt_counter
        attempt_counter += 1
        if deadline is not None:
            deadline.check()
        key = (
            config.worker_id,
            request_id,
            attempt_base + attempt_counter,
        )
        # worker_exit first: a death plan must kill the process even
        # when a serving.worker error plan is armed alongside it
        try:
            fault_injector.fire("serving.worker_exit", key=key)
        except Exception:
            import os

            os._exit(13)
        fault_injector.fire("serving.worker", key=key)
        return execute_encoded(engine, enc, degrade=config.batched)

    try:
        if config.retry_policy is not None:
            (cards, by_kind, degraded), attempts = config.retry_policy.run(
                attempt, key=request_id, deadline=deadline
            )
        else:
            cards, by_kind, degraded = attempt()
            attempts = 1
        return (
            "ok",
            request_id,
            cards,
            by_kind,
            perf_counter() - start,
            attempts,
            tuple(sorted(degraded)),
        )
    except Exception as exc:
        attempts = getattr(exc, "_retry_attempts", None) or max(
            attempt_counter, 1
        )
        return (
            "err",
            request_id,
            type(exc).__name__,
            str(exc),
            int(attempts),
        )


def _stats_payload(engine, store) -> Dict:
    s = engine.plans.stats()
    return {
        "plan_cache": {
            "hits": s.hits,
            "misses": s.misses,
            "evictions": s.evictions,
            "resident_plans": s.resident_plans,
            "resident_bytes": s.resident_bytes,
            "bypasses": s.bypasses,
        },
        "resident_copy_bytes": resident_copy_bytes(store),
        "fault_points": fault_injector.stats(),
    }


def worker_main(config: WorkerConfig, conn) -> None:
    """Entry point of one worker process (runs until ``stop`` or EOF).

    ``conn`` is the worker end of a duplex
    ``multiprocessing.Pipe``.  Startup failures (segment already
    unlinked, bad manifest) are reported as an ``("err", -1, ...)``
    reply before exiting, so the router can distinguish "worker could
    not start" from "worker crashed".
    """
    try:
        attached = attach_store(config.manifest)
        _arm_from_config(config)
        engine = _build_engine(config, attached.store)
    except Exception as exc:
        try:
            conn.send(("err", -1, type(exc).__name__, str(exc), 1))
        except Exception:
            pass
        return
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # router went away; exit quietly
            tag = message[0]
            if tag == "stop":
                break
            if tag == "stats":
                conn.send(
                    ("stats", message[1], _stats_payload(engine, attached.store))
                )
                continue
            if tag == "run":
                _, request_id, columns, budget_seconds, attempt_base = message
                try:
                    enc = ColumnarQueryRequest.from_columns(columns)
                    reply = _execute(
                        config, engine, request_id, enc,
                        budget_seconds, attempt_base,
                    )
                except Exception as exc:  # decode/validation failures
                    reply = (
                        "err", request_id, type(exc).__name__, str(exc), 1,
                    )
                conn.send(reply)
                continue
            conn.send(
                ("err", -1, "ValueError", f"unknown message {tag!r}", 1)
            )
    finally:
        attached.close()
        try:
            conn.close()
        except Exception:
            pass
